#!/usr/bin/env bash
# Tier-1 verification: hermetic build + full test suite + lint gates.
#
# Runs fully offline — the workspace has no external dependencies, so
# no network (and no pre-populated cargo cache) is required.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (SINTEL_THREADS=1, serial paths)"
SINTEL_THREADS=1 cargo test -q

# The determinism contract (DESIGN.md §4e): the same suite must pass —
# with bitwise-identical scores asserted inside the tests — on the
# parallel paths.
echo "==> cargo test -q (SINTEL_THREADS=4, parallel paths)"
SINTEL_THREADS=4 cargo test -q

# Crash-recovery contract (DESIGN.md §4f): every injected crash point
# and every torn-tail byte offset must recover without a panic. The
# fault hooks only exist behind the `faulty` feature, so the suite runs
# as its own compilation of sintel-store.
echo "==> cargo test -q -p sintel-store --features faulty (crash recovery)"
cargo test -q -p sintel-store --features faulty

# Serving-tier chaos contract (DESIGN.md §4g): injected tenant faults
# (panic/hang/slow/flaky) must leave healthy tenants bitwise-unaffected,
# and both serve crash points must recover exactly-once.
echo "==> cargo test -q -p sintel-serve --features faulty (chaos + crash points)"
cargo test -q -p sintel-serve --features faulty

# Contract-conformance sanitizer (DESIGN.md §4i): with slot-access
# instrumentation on, the full shipped primitive set must sweep clean
# against its declared contracts, and the seeded drift mutation must be
# caught replayably. Dev-only feature, so it compiles its own tree.
echo "==> cargo test -q -p sintel-pipeline --features sanitizer (contract sanitizer)"
cargo test -q -p sintel-pipeline --features sanitizer

# Bounded soak: misbehaving tenants streamed for SINTEL_SOAK_SECS
# (default 30s inside the test) must not grow RSS past the cap or
# perturb healthy tenants. Release build keeps the gate wall-clock
# bounded; override SINTEL_SOAK_SECS to lengthen locally.
echo "==> cargo test -p sintel-serve --features faulty --release -- --ignored soak (bounded soak)"
SINTEL_SOAK_SECS="${SINTEL_SOAK_SECS:-10}" \
    cargo test -q -p sintel-serve --features faulty --release -- --ignored soak_

# Introspection smoke (DESIGN.md §4h): the HTTP status endpoint must
# answer every route with well-formed payloads mid-ingest, and a
# hammered endpoint must leave emissions + store bytes bitwise-identical
# (release build: the scrape-purity race is timing-sensitive, so smoke
# it in the optimized profile too, not just the debug runs above).
echo "==> cargo test -q -p sintel-serve --release http smoke + scrape purity"
cargo test -q -p sintel-serve --release --test http_status --test scrape_under_load

# Durability-path throughput trajectory: refreshes BENCH_store.json at
# the repo root so append/replay/compaction rates are tracked per commit.
echo "==> store microbench (writes BENCH_store.json)"
SINTEL_SCALE="${SINTEL_SCALE:-0.25}" cargo run --release -q -p sintel-bench --bin store_bench

# Streaming-tier throughput trajectory: refreshes BENCH_serve.json
# (ingest rate in-memory vs scraped vs checkpointed, cold recovery
# latency).
echo "==> serve microbench (writes BENCH_serve.json)"
SINTEL_SCALE="${SINTEL_SCALE:-0.25}" cargo run --release -q -p sintel-bench --bin serve_bench

# Instrumentation-cost trajectory: refreshes BENCH_obs.json (ns/op per
# obs primitive, serve ingest overhead with instrumentation on vs off
# against the §4h < 5% budget — a console warning, not a hard gate).
echo "==> obs microbench (writes BENCH_obs.json)"
SINTEL_SCALE="${SINTEL_SCALE:-0.25}" cargo run --release -q -p sintel-bench --bin obs_bench

# Compute-kernel trajectory (DESIGN.md §4j): refreshes BENCH_compute.json
# (matmul ns/op across the blocked threshold at 1/4 threads, fused LSTM
# step latency, predict_batch throughput, deep-pipeline wall+cpu), then
# re-validates the written file against the schema — a truncated or
# malformed report fails the gate, not a later reader.
echo "==> compute microbench (writes BENCH_compute.json)"
SINTEL_SCALE="${SINTEL_SCALE:-0.25}" cargo run --release -q -p sintel-bench --bin compute_bench
cargo run --release -q -p sintel-bench --bin compute_bench -- --check BENCH_compute.json

# The fault-isolation layer must never itself abort: deny unwrap in the
# pipeline executor, the framework core, the durability-critical store,
# the long-running serving tier, and the observability substrate every
# one of them calls into (test code is exempt — clippy only lints
# lib/bin targets here).
echo "==> cargo clippy (deny unwrap_used in sintel-pipeline, sintel, sintel-store, sintel-serve, sintel-obs, sintel-analyze)"
cargo clippy -p sintel-pipeline -p sintel -p sintel-store -p sintel-serve -p sintel-obs -p sintel-analyze -- -D clippy::unwrap_used

# Library crates must route diagnostics through sintel-obs, never print
# directly. Lib targets only: binaries (CLI, bench tables) legitimately
# print their output, and the microbench console reporter carries local
# allows.
echo "==> cargo clippy (deny print_stdout/print_stderr in library crates)"
cargo clippy --workspace --lib -- -D clippy::print_stdout -D clippy::print_stderr

# The parallel substrate is scoped-threads only: an Arc around a
# non-Send/Sync payload is always a bug here, never a workaround.
echo "==> cargo clippy (deny arc_with_non_send_sync workspace-wide)"
cargo clippy --workspace -- -D clippy::arc_with_non_send_sync

# Crate-scoped lint extensions (the deny attributes live in each crate's
# lib.rs, with documented inline allows at the justified sites):
#  - sintel-linalg denies clippy::indexing_slicing — dense kernels must
#    justify every direct index against a construction invariant;
#  - sintel-linalg and sintel-nn deny clippy::needless_range_loop — hot
#    kernels iterate slices, they never index by range (DESIGN.md §4j):
#    range loops defeat bounds-check elision and hide access patterns
#    from the vectorizer;
#  - sintel-metrics denies clippy::float_cmp — computed scores must never
#    be compared with `==`.
echo "==> cargo clippy (crate-scoped denies: linalg indexing + range loops, nn range loops, metrics float_cmp)"
cargo clippy -q -p sintel-linalg --lib
cargo clippy -q -p sintel-nn --lib
cargo clippy -q -p sintel-metrics --lib

# Static analysis gate: every hub and extension pipeline must produce
# zero error diagnostics (SA000-SA009) under `sintel-cli analyze`.
echo "==> sintel-cli analyze --all"
cargo run --release -q -p sintel --bin sintel-cli -- analyze --all

# Deployment analysis gate (DESIGN.md §4i): the shipped hub templates
# must be deployable as a tenant roster under the default serve
# configuration — zero SA008/SA010-SA014 error diagnostics. Extensions
# are excluded on purpose: they are benchmark comparators, and e.g.
# holt_winters is legitimately cheaper than the default fallback.
echo "==> sintel-cli analyze --deployment (hub roster)"
cargo run --release -q -p sintel --bin sintel-cli -- analyze --deployment \
    lstm_dynamic_threshold dense_autoencoder lstm_autoencoder tadgan arima \
    azure_anomaly_detection

echo "verify: OK"

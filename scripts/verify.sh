#!/usr/bin/env bash
# Tier-1 verification: hermetic build + full test suite + lint gates.
#
# Runs fully offline — the workspace has no external dependencies, so
# no network (and no pre-populated cargo cache) is required.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

# The fault-isolation layer must never itself abort: deny unwrap in the
# pipeline executor and the framework core (test code is exempt —
# clippy only lints lib/bin targets here).
echo "==> cargo clippy (deny unwrap_used in sintel-pipeline, sintel)"
cargo clippy -p sintel-pipeline -p sintel -- -D clippy::unwrap_used

echo "verify: OK"

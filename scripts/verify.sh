#!/usr/bin/env bash
# Tier-1 verification: hermetic build + full test suite + lint gates.
#
# Runs fully offline — the workspace has no external dependencies, so
# no network (and no pre-populated cargo cache) is required.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

# The fault-isolation layer must never itself abort: deny unwrap in the
# pipeline executor and the framework core (test code is exempt —
# clippy only lints lib/bin targets here).
echo "==> cargo clippy (deny unwrap_used in sintel-pipeline, sintel)"
cargo clippy -p sintel-pipeline -p sintel -- -D clippy::unwrap_used

# Library crates must route diagnostics through sintel-obs, never print
# directly. Lib targets only: binaries (CLI, bench tables) legitimately
# print their output, and the microbench console reporter carries local
# allows.
echo "==> cargo clippy (deny print_stdout/print_stderr in library crates)"
cargo clippy --workspace --lib -- -D clippy::print_stdout -D clippy::print_stderr

echo "verify: OK"

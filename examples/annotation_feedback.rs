//! Human-in-the-loop annotation and feedback — the Figure 1 workflow.
//!
//! An unsupervised pipeline proposes events; an expert (simulated here,
//! as in the paper's own feedback evaluation) confirms, rejects, tags
//! and discusses them; every action lands in the knowledge base; and the
//! semi-supervised pipeline of Figure 2b learns from the verified
//! sequences, improving with each annotation round.
//!
//! Run: `cargo run --release --example annotation_feedback`

use sintel_common::SintelRng;
use sintel_datasets::synth::{inject, AnomalyKind, BaseSignal};
use sintel_hil::event::{apply_action, persist_detected};
use sintel_hil::{
    AnnotationAction, Annotator, FeedbackLoop, RetrainPolicy, ReviewStrategy, SimulatedExpert,
};
use sintel_pipeline::hub;
use sintel_store::SintelDb;
use sintel_timeseries::{Interval, Signal};

fn telemetry(seed: u64, n: usize, events: &[(usize, usize)]) -> (Signal, Vec<Interval>) {
    let mut rng = SintelRng::seed_from_u64(seed);
    let base = BaseSignal {
        level: 20.0,
        seasonal: vec![(4.0, 96.0, 0.7)],
        noise: 0.5,
        ..Default::default()
    };
    let mut values = base.render(n, &mut rng);
    let mut truth = Vec::new();
    for &(s, e) in events {
        inject(&mut values, s, e, AnomalyKind::LevelShift, 5.0, &mut rng);
        truth.push(Interval::new(s as i64, e as i64).expect("ordered"));
    }
    (Signal::from_values("train", values), truth)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (train, train_truth) = telemetry(
        1,
        3600,
        &[(300, 340), (800, 850), (1400, 1430), (2200, 2250), (3000, 3040)],
    );
    let (test, test_truth) =
        telemetry(2, 1400, &[(250, 290), (650, 700), (1100, 1150)]);
    let test = test.with_name("test");

    // Phase 1: unsupervised proposals.
    let mut unsup = hub::build_pipeline("arima")?;
    let proposals = unsup.fit_detect(&train, &train)?;
    println!("unsupervised pipeline proposed {} events", proposals.len());

    // Phase 2: an expert reviews them through the annotation API, every
    // action persisted to the knowledge base.
    let db = SintelDb::in_memory();
    let user = db.add_user("dana", "satellite engineer");
    let run = db.add_signalrun(1, "train", "done");
    let mut expert =
        SimulatedExpert::new(vec![("train".to_string(), train_truth.clone())], 1.0, 3);
    for proposal in &proposals {
        let mut event = persist_detected(&db, run, "train", proposal.interval, proposal.score);
        let action = expert.review(&event);
        apply_action(&db, &mut event, user, &action)?;
        if matches!(action, AnnotationAction::Confirm) {
            apply_action(
                &db,
                &mut event,
                user,
                &AnnotationAction::Comment("confirmed after checking the ops log".into()),
            )?;
        }
        println!(
            "  event [{} .. {}] -> {}",
            event.interval.start,
            event.interval.end,
            action.name()
        );
    }
    use sintel_store::{schema::collections, Filter};
    println!(
        "knowledge base: {} events, {} annotations, {} comments\n",
        db.raw().count(collections::EVENTS, &Filter::All),
        db.raw().count(collections::ANNOTATIONS, &Filter::All),
        db.raw().count(collections::COMMENTS, &Filter::All),
    );

    // Phase 3: the feedback loop — retrain the semi-supervised pipeline
    // after every k = 2 annotations and watch test F1 climb. The review
    // queue here is uncertainty-first (active learning) and retraining
    // is skipped for batches that confirmed nothing (the paper's §5
    // "decide when to retrain" cost optimisation).
    let mut expert =
        SimulatedExpert::new(vec![("train".to_string(), train_truth)], 1.0, 7);
    let cfg = FeedbackLoop {
        epochs: 50,
        strategy: ReviewStrategy::UncertaintyFirst,
        retrain: RetrainPolicy::OnNewAnomaly,
        ..Default::default()
    };
    let points = cfg.run(&mut expert, &train, &test, &test_truth, &proposals)?;
    println!("feedback loop (k = 2, uncertainty-first queue, lazy retraining):");
    for p in &points {
        let bar = "#".repeat((p.f1 * 30.0).round() as usize);
        let tag = if p.retrained { "" } else { "  (retrain skipped)" };
        println!(
            "  after {:>2} annotations: test F1 {:.3} {bar}{tag}",
            p.annotations, p.f1
        );
    }
    let retrains = points.iter().filter(|p| p.retrained).count();
    println!(
        "retrained {retrains}/{} iterations — annotations that only rejected\n\
         false alarms did not trigger a retraining pass.",
        points.len()
    );
    Ok(())
}

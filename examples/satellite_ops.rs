//! Satellite operations — the paper's §2.1 real-world scenario as a
//! runnable end-to-end session: a fleet of telemetry channels flows
//! through an unsupervised pipeline, detections land in the persistent
//! knowledge base, the operations team inspects them through the REST
//! API and the multi-aggregation viewer, and the weekly batch feeds
//! expert annotations back into a semi-supervised pipeline.
//!
//! Run: `cargo run --release --example satellite_ops`

use sintel::api::{Request, RestApi};
use sintel::Sintel;
use sintel_common::SintelRng;
use sintel_datasets::synth::{inject, AnomalyKind, BaseSignal};
use sintel_hil::event::{apply_action, persist_detected};
use sintel_hil::viz::multi_aggregation_view;
use sintel_hil::{AnnotationAction, Annotator, SimulatedExpert};
use sintel_store::{Doc, SintelDb};
use sintel_timeseries::{Interval, Signal};

/// One spacecraft telemetry channel with a known fault.
fn channel(idx: u64, fault: Option<(usize, usize, AnomalyKind)>) -> (Signal, Vec<Interval>) {
    let mut rng = SintelRng::seed_from_u64(0x5A7 + idx);
    let base = BaseSignal {
        level: rng.uniform_range(-0.5, 0.5),
        seasonal: vec![(0.6, 96.0, rng.uniform_range(0.0, 6.0))],
        noise: 0.03,
        quantize: 0.05,
        ..Default::default()
    };
    let mut values = base.render(1800, &mut rng);
    let mut truth = Vec::new();
    if let Some((s, e, kind)) = fault {
        inject(&mut values, s, e, kind, 5.0, &mut rng);
        truth.push(Interval::new(s as i64 * 60, e as i64 * 60).expect("ordered"));
    }
    let ts: Vec<i64> = (0..values.len() as i64).map(|t| t * 60).collect();
    (
        Signal::univariate(format!("SAT/CH-{idx:02}"), ts, values).expect("valid"),
        truth,
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The operations fleet: four channels, two carrying faults.
    let fleet: Vec<(Signal, Vec<Interval>)> = vec![
        channel(0, Some((700, 760, AnomalyKind::AmplitudeChange))),
        channel(1, None),
        channel(2, Some((1200, 1280, AnomalyKind::Flatline))),
        channel(3, None),
    ];

    // Persistent knowledge base on disk (as the paper's mongoDB).
    let dir = std::env::temp_dir().join("sintel-satellite-ops");
    let _ = std::fs::remove_dir_all(&dir);
    let db = SintelDb::open(&dir)?;
    db.add_dataset("SAT", "spacecraft telemetry");
    let operator = db.add_user("ops-team", "satellite engineer");
    for (signal, _) in &fleet {
        db.add_signal(signal.name(), "SAT", signal.start().unwrap(), signal.end().unwrap());
    }

    // Detection sweep with the knowledge base attached: every event is
    // logged automatically.
    let mut sintel = Sintel::new("lstm_autoencoder")?.with_db(db);
    let mut all_events = Vec::new();
    for (signal, _) in &fleet {
        let (train, _) = signal.split(0.5)?;
        sintel.fit(&train)?;
        let anomalies = sintel.detect(signal)?;
        println!("{}: {} events flagged", signal.name(), anomalies.len());
        all_events.push(anomalies);
    }

    // Persist the detection session, then open a second session onto
    // the same knowledge base — the on-call engineer's REST API view.
    sintel.db().unwrap().save()?;
    let api = RestApi::new(SintelDb::open(&dir)?);
    let sintel::api::Response::Ok(Doc::Arr(events)) = api.handle(&Request::get("/events"))
    else {
        panic!("expected event list")
    };
    println!("\nREST GET /events -> {} events pending review", events.len());

    // Review with the multi-aggregation viewer and annotate.
    let truth: Vec<(String, Vec<Interval>)> = fleet
        .iter()
        .map(|(s, t)| (s.name().to_string(), t.clone()))
        .collect();
    let mut expert = SimulatedExpert::new(truth, 1.0, 11);
    let mut confirmed = 0;
    for (fleet_idx, anomalies) in all_events.iter().enumerate() {
        let (signal, _) = &fleet[fleet_idx];
        for a in anomalies {
            let mut event = persist_detected(
                api.db(),
                fleet_idx as u64 + 100,
                signal.name(),
                a.interval,
                a.score,
            );
            let action = expert.review(&event);
            if matches!(action, AnnotationAction::Confirm) {
                confirmed += 1;
                println!(
                    "\nconfirmed anomaly on {} at [{} .. {}]:",
                    signal.name(),
                    a.interval.start,
                    a.interval.end
                );
                let view = multi_aggregation_view(signal, &[a.interval], &[1, 8], 90, 7);
                println!("{view}");
            }
            apply_action(api.db(), &mut event, operator, &action)?;
        }
    }
    println!("review done: {confirmed} events confirmed as anomalies.");

    // Everything survives a restart.
    api.db().save()?;
    let reopened = SintelDb::open(&dir)?;
    use sintel_store::{schema::collections, Filter};
    println!(
        "knowledge base on disk: {} events, {} annotations across sessions.",
        reopened.raw().count(collections::EVENTS, &Filter::All),
        reopened.raw().count(collections::ANNOTATIONS, &Filter::All),
    );
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}

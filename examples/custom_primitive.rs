//! Custom primitive authoring — the "ML researcher" persona of Table 1.
//!
//! The paper's §2.2: *"Contributors can integrate a new primitive into
//! Sintel without modifying an entire pipeline."* This example implements
//! a brand-new modeling primitive — a seasonal-median predictor — against
//! the public `Primitive` trait, drops it into a pipeline next to the
//! stock preprocessing and postprocessing primitives, and runs the whole
//! thing end-to-end.
//!
//! Run: `cargo run --release --example custom_primitive`

use sintel_pipeline::Pipeline;
use sintel_primitives::{
    build_primitive, Context, Engine, HyperSpec, HyperValue, Primitive, PrimitiveError,
    PrimitiveMeta, Value,
};
use sintel_repro::sintel_datasets::load_signal;

/// A deliberately simple "model": predict each value as the median of the
/// values seen at the same seasonal phase. Strong baselines like this are
/// exactly what a researcher would use to sanity-check deep pipelines.
struct SeasonalMedian {
    meta: PrimitiveMeta,
    period: usize,
    /// Per-phase medians learned at fit time.
    phase_medians: Option<Vec<f64>>,
}

impl SeasonalMedian {
    fn new() -> Self {
        Self {
            meta: PrimitiveMeta::new(
                "seasonal_median",
                Engine::Modeling,
                "predict each sample as the median of its seasonal phase",
                &["signal"],
                &["predictions", "targets", "index_timestamps"],
                vec![HyperSpec::int("period", 2, 10_000, 96)],
            ),
            period: 96,
            phase_medians: None,
        }
    }
}

impl Primitive for SeasonalMedian {
    fn meta(&self) -> &PrimitiveMeta {
        &self.meta
    }

    fn set_hyperparam(
        &mut self,
        name: &str,
        value: HyperValue,
    ) -> Result<(), PrimitiveError> {
        self.meta.validate_hyperparam(name, &value)?;
        self.period = value.as_int()? as usize;
        Ok(())
    }

    fn fit(&mut self, ctx: &Context) -> Result<(), PrimitiveError> {
        let signal = ctx.signal("signal")?;
        let mut buckets: Vec<Vec<f64>> = vec![Vec::new(); self.period];
        for (i, &v) in signal.values().iter().enumerate() {
            buckets[i % self.period].push(v);
        }
        self.phase_medians =
            Some(buckets.iter().map(|b| sintel_repro::sintel_common::median(b)).collect());
        Ok(())
    }

    fn produce(&mut self, ctx: &Context) -> Result<Vec<(String, Value)>, PrimitiveError> {
        let medians = self
            .phase_medians
            .as_ref()
            .ok_or_else(|| PrimitiveError::NotFitted("seasonal_median".into()))?;
        let signal = ctx.signal("signal")?;
        let preds: Vec<f64> =
            (0..signal.len()).map(|i| medians[i % self.period]).collect();
        Ok(vec![
            ("predictions".into(), Value::Series(preds)),
            ("targets".into(), Value::Series(signal.values().to_vec())),
            ("index_timestamps".into(), Value::Timestamps(signal.timestamps().to_vec())),
        ])
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Assemble a pipeline mixing stock primitives with the custom one.
    // (Stock primitives come from the registry; the custom one is a local
    // type — no framework changes needed.)
    let steps: Vec<Box<dyn Primitive>> = vec![
        build_primitive("time_segments_aggregate")?,
        build_primitive("SimpleImputer")?,
        build_primitive("MinMaxScaler")?,
        Box::new(SeasonalMedian::new()),
        build_primitive("regression_errors")?,
        build_primitive("find_anomalies")?,
    ];
    let mut pipeline = Pipeline::new("seasonal_median_dt", steps);

    let data = load_signal("S-1").expect("demo signal");
    let anomalies = pipeline.fit_detect(&data.signal, &data.signal)?;
    println!(
        "custom pipeline '{}' ({} steps) found {} anomalies:",
        pipeline.name(),
        pipeline.step_names().len(),
        anomalies.len()
    );
    for a in &anomalies {
        println!("  [{} .. {}] severity {:.3}", a.interval.start, a.interval.end, a.score);
    }

    // Score against the demo ground truth.
    let pred: Vec<_> = anomalies.iter().map(|a| a.interval).collect();
    let scores = sintel_repro::sintel_metrics::overlapping_segment(&data.anomalies, &pred)
        .scores();
    println!(
        "\nvs ground truth: F1 {:.3} precision {:.3} recall {:.3}",
        scores.f1, scores.precision, scores.recall
    );
    println!(
        "(the stock lstm_dynamic_threshold pipeline is the thing to beat — run\n\
         `cargo run --release --example quickstart` to compare)"
    );
    Ok(())
}

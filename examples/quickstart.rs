//! Quickstart — the paper's Figure 4a workflow, end to end.
//!
//! ```text
//! from sintel import Sintel                 | use sintel::Sintel;
//! train_data = load_signal('S-1-train')     | let train = load_signal("S-1-train");
//! sintel = Sintel(pipeline="lstm_dyn...")   | let mut s = Sintel::new("lstm_dynamic_threshold")?;
//! sintel.fit(train_data)                    | s.fit(&train.signal)?;
//! new_data = load_signal('S-1-new')         | let new = load_signal("S-1-new");
//! anomalies = sintel.detect(new_data)       | let anomalies = s.detect(&new.signal)?;
//! ```
//!
//! Run: `cargo run --release --example quickstart`

use sintel::Sintel;
use sintel_datasets::load_signal;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Initialize data: an anomaly-free training slice and fresh incoming
    // data containing two anomalies (a contextual amplitude change and a
    // stuck sensor).
    let train_data = load_signal("S-1-train").expect("demo signal exists");
    let new_data = load_signal("S-1-new").expect("demo signal exists");
    println!(
        "loaded S-1: {} training samples, {} new samples",
        train_data.signal.len(),
        new_data.signal.len()
    );

    // Select a pipeline from the hub and train it.
    let mut sintel = Sintel::new("lstm_dynamic_threshold")?;
    println!("training pipeline '{}' …", sintel.pipeline_name());
    sintel.fit(&train_data.signal)?;
    println!(
        "trained in {}",
        humantime(sintel.profile().fit_total.as_secs_f64())
    );

    // Detect anomalies in the incoming data.
    let anomalies = sintel.detect(&new_data.signal)?;
    println!("\ndetected {} anomalies:", anomalies.len());
    for a in &anomalies {
        println!(
            "  [{} .. {}] severity {:.3}",
            a.interval.start, a.interval.end, a.score
        );
    }

    // Show them on an ASCII rendering of the signal (the MTV stand-in).
    let intervals: Vec<_> = anomalies.iter().map(|a| a.interval).collect();
    println!("\n{}", sintel_hil::viz::render(&new_data.signal, &intervals, 100, 12));

    // Since S-1 is a demo signal we happen to know the ground truth:
    let truth = &new_data.anomalies;
    let scores = sintel::sintel::score(truth, &intervals, sintel::MetricKind::Overlap);
    println!(
        "vs ground truth ({} events): F1 {:.3}, precision {:.3}, recall {:.3}",
        truth.len(),
        scores.f1,
        scores.precision,
        scores.recall
    );
    Ok(())
}

fn humantime(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2} s")
    } else {
        format!("{:.0} ms", s * 1e3)
    }
}

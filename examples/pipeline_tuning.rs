//! Pipeline tuning — the paper's Figure 4b, in both settings of
//! Figure 5: supervised (ground truth available, optimise detection F1)
//! and unsupervised (optimise how well the model reproduces the signal).
//!
//! Run: `cargo run --release --example pipeline_tuning`

use sintel::{Sintel, TuneSetting};
use sintel_datasets::load_signal;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = load_signal("S-2").expect("demo signal exists");
    let ground_truth = data.anomalies.clone();
    println!(
        "tuning on S-2 ({} samples, {} known anomalies)\n",
        data.signal.len(),
        ground_truth.len()
    );

    // --- supervised: ground truth drives the objective (F1) ---
    let mut sintel = Sintel::new("arima")?;
    let report = sintel.tune(
        &data.signal,
        TuneSetting::Supervised { ground_truth: ground_truth.clone() },
        12,
    )?;
    println!("supervised tuning of 'arima' (budget 12):");
    println!("  default F1 {:.3}  ->  tuned F1 {:.3}", report.default_score, report.best_score);
    for (pid, value) in &report.best_lambda {
        println!("  changed {pid} = {value:?}");
    }

    // The orchestrator kept the tuned pipeline; use it directly.
    let anomalies = sintel.detect(&data.signal)?;
    println!("  tuned pipeline now finds {} events\n", anomalies.len());

    // --- unsupervised: no labels, optimise the signal fit ---
    let mut sintel = Sintel::new("arima")?;
    let report = sintel.tune(&data.signal, TuneSetting::Unsupervised, 8)?;
    println!("unsupervised tuning of 'arima' (budget 8, objective = -mean error):");
    println!(
        "  default score {:.4}  ->  tuned score {:.4}",
        report.default_score, report.best_score
    );
    println!("  evaluations: {:?}", report.history.iter().map(|s| (s * 1e3).round() / 1e3).collect::<Vec<_>>());
    Ok(())
}

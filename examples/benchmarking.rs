//! Benchmarking — the paper's Figure 4c: compare multiple pipelines on
//! multiple datasets under identical conditions with one call, then
//! persist the results into the knowledge base.
//!
//! ```text
//! benchmark(pipelines=[...], datasets=['NAB', ...], metrics=[...], rank='f1')
//! ```
//!
//! Run: `cargo run --release --example benchmarking`
//! (set `SINTEL_SCALE` to grow/shrink the corpora)

use sintel::benchmark::{benchmark, persist_benchmark, render_table, BenchmarkConfig, MetricKind};
use sintel_datasets::{DatasetConfig, DatasetId};
use sintel_store::SintelDb;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = std::env::var("SINTEL_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.03);
    let cfg = BenchmarkConfig {
        pipelines: vec!["arima".into(), "dense_autoencoder".into(), "azure_anomaly_detection".into()],
        datasets: vec![DatasetId::Nab, DatasetId::Yahoo],
        data: DatasetConfig { seed: 42, signal_scale: scale, length_scale: 0.12 },
        metric: MetricKind::Overlap,
        rank: "f1",
        ..BenchmarkConfig::default()
    };
    println!(
        "benchmarking {} pipelines on {} datasets (scale {scale}) …\n",
        cfg.pipelines.len(),
        cfg.datasets.len()
    );
    let rows = benchmark(&cfg)?;
    print!("{}", render_table(&rows));

    println!("\ncomputational performance:");
    for row in &rows {
        println!(
            "  {:<24} {:<6} train {:>9.2?}  latency {:>9.2?}  overhead {:>5.2}%",
            row.pipeline,
            row.dataset,
            row.train_time,
            row.detect_time,
            row.overhead_percent()
        );
    }

    // Persist into the knowledge base so future sessions can compare.
    let db = SintelDb::in_memory();
    persist_benchmark(&db, &rows);
    println!(
        "\npersisted {} result rows into the knowledge base ({} experiments).",
        rows.len(),
        db.raw().count(
            sintel_store::schema::collections::EXPERIMENTS,
            &sintel_store::Filter::All
        )
    );
    Ok(())
}

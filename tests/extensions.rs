//! Integration tests for the extension surface: extension pipelines
//! (matrix profile, Holt–Winters, shift-robust ARIMA), multivariate
//! signals through the deep pipelines, and custom dataset loading.

use sintel_repro::sintel_common::SintelRng;
use sintel_repro::sintel_metrics::overlapping_segment;
use sintel_repro::sintel_pipeline::hub;
use sintel_repro::sintel_timeseries::{Interval, Signal};

fn seasonal_with_burst(seed: u64, n: usize, burst: (usize, usize)) -> (Signal, Vec<Interval>) {
    let mut rng = SintelRng::seed_from_u64(seed);
    let mut vals: Vec<f64> = (0..n)
        .map(|t| (std::f64::consts::TAU * t as f64 / 48.0).sin() + rng.normal(0.0, 0.05))
        .collect();
    for v in &mut vals[burst.0..=burst.1] {
        *v += 4.0;
    }
    (
        Signal::from_values("ext", vals),
        vec![Interval::new(burst.0 as i64, burst.1 as i64).unwrap()],
    )
}

#[test]
fn matrix_profile_pipeline_detects_discord() {
    let (signal, truth) = seasonal_with_burst(1, 800, (400, 430));
    let mut pipeline = hub::template_by_name("matrix_profile")
        .unwrap()
        .build_default()
        .unwrap();
    let detected = pipeline.fit_detect(&signal, &signal).unwrap();
    let pred: Vec<Interval> = detected.iter().map(|d| d.interval).collect();
    let scores = overlapping_segment(&truth, &pred).scores();
    assert!(scores.recall > 0.9, "{scores:?}, {pred:?}");
}

#[test]
fn holt_winters_pipeline_detects_burst() {
    let (signal, truth) = seasonal_with_burst(2, 900, (500, 520));
    let mut pipeline = hub::template_by_name("holt_winters")
        .unwrap()
        .build_default()
        .unwrap();
    let detected = pipeline.fit_detect(&signal, &signal).unwrap();
    let pred: Vec<Interval> = detected.iter().map(|d| d.interval).collect();
    let scores = overlapping_segment(&truth, &pred).scores();
    assert!(scores.recall > 0.9, "{scores:?}, {pred:?}");
}

/// The §5 remedy: on a signal with an unlabelled change point, the
/// shift-robust pipeline produces fewer false alarms than plain ARIMA.
#[test]
fn shift_robust_pipeline_handles_change_point() {
    let mut rng = SintelRng::seed_from_u64(3);
    let n = 900;
    let mut vals: Vec<f64> = (0..n)
        .map(|t| (std::f64::consts::TAU * t as f64 / 40.0).sin() + rng.normal(0.0, 0.05))
        .collect();
    // Real anomaly early; permanent change point later (not an anomaly).
    for v in &mut vals[200..=220] {
        *v += 4.0;
    }
    for v in &mut vals[600..] {
        *v += 6.0;
    }
    let signal = Signal::from_values("cp", vals);
    let truth = vec![Interval::new(200, 220).unwrap()];

    let detections_of = |name: &str| -> Vec<Interval> {
        let mut pipeline =
            hub::template_by_name(name).unwrap().build_default().unwrap();
        pipeline
            .fit_detect(&signal, &signal)
            .unwrap()
            .iter()
            .map(|d| d.interval)
            .collect()
    };
    let change_point_region = Interval::new(590, 630).unwrap();
    // Plain ARIMA alarms on the change point (the A4 failure mode)…
    let plain = detections_of("arima");
    assert!(
        plain.iter().any(|p| p.overlaps(&change_point_region)),
        "expected the change point to fool plain arima: {plain:?}"
    );
    // …the shift-robust pipeline does not, while still finding the true
    // anomaly (§5's claim).
    let robust = detections_of("arima_shift_robust");
    assert!(
        !robust.iter().any(|p| p.overlaps(&change_point_region)),
        "change point should no longer alarm: {robust:?}"
    );
    let scores = overlapping_segment(&truth, &robust).scores();
    assert!(scores.recall > 0.9, "true anomaly lost: {scores:?} {robust:?}");
}

/// Multivariate signals flow through the windowed deep pipelines: the
/// paper's problem statement is over m-channel signals.
#[test]
fn multivariate_signal_through_deep_pipeline() {
    let mut rng = SintelRng::seed_from_u64(4);
    let n = 700;
    let mut ch0: Vec<f64> = (0..n)
        .map(|t| (std::f64::consts::TAU * t as f64 / 50.0).sin() + rng.normal(0.0, 0.05))
        .collect();
    let ch1: Vec<f64> = (0..n)
        .map(|t| (std::f64::consts::TAU * t as f64 / 30.0).cos() + rng.normal(0.0, 0.05))
        .collect();
    for v in &mut ch0[350..=380] {
        *v += 4.0;
    }
    let signal = Signal::multivariate(
        "multi",
        (0..n as i64).collect(),
        vec![ch0, ch1],
    )
    .unwrap();
    let truth = vec![Interval::new(350, 380).unwrap()];

    use sintel_repro::sintel_pipeline::StepSpec;
    use sintel_repro::sintel_primitives::HyperValue;
    let mut template = hub::template_by_name("dense_autoencoder").unwrap();
    for step in &mut template.steps {
        if step.primitive == "dense_autoencoder" {
            step.overrides.push(("epochs".into(), HyperValue::Int(6)));
        }
    }
    let _: &StepSpec = &template.steps[0];
    let mut pipeline = template.build_default().unwrap();
    let detected = pipeline.fit_detect(&signal, &signal).unwrap();
    let pred: Vec<Interval> = detected.iter().map(|d| d.interval).collect();
    let scores = overlapping_segment(&truth, &pred).scores();
    assert!(scores.recall > 0.9, "{scores:?} {pred:?}");
}

/// User-supplied CSV corpora load and benchmark without code changes.
#[test]
fn custom_csv_corpus_benchmarks() {
    use sintel_repro::sintel_datasets::{load_from_dir, save_to_dir, DatasetConfig, DatasetId};
    let dir = std::env::temp_dir().join(format!("sintel-ext-csv-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = DatasetConfig { seed: 3, signal_scale: 0.01, length_scale: 0.08 };
    let generated = sintel_repro::sintel_datasets::load(DatasetId::Yahoo, &cfg);
    save_to_dir(&generated, &dir).unwrap();
    let loaded = load_from_dir(&dir, "YAHOO").unwrap();
    assert_eq!(loaded.num_signals(), generated.num_signals());

    // Run one pipeline over the loaded corpus.
    let mut hits = 0;
    for labeled in loaded.iter_signals() {
        let mut pipeline = hub::build_pipeline("azure_anomaly_detection").unwrap();
        let detected = pipeline.fit_detect(&labeled.signal, &labeled.signal).unwrap();
        let pred: Vec<Interval> = detected.iter().map(|d| d.interval).collect();
        hits += overlapping_segment(&labeled.anomalies, &pred).tp as usize;
    }
    assert!(hits > 0, "nothing detected on the reloaded corpus");
    std::fs::remove_dir_all(&dir).ok();
}

//! METRICS.md, the metric catalog and the code's actually-recorded
//! series must agree — this binary is the enforcement promised by
//! `crates/obs/src/catalog.rs`:
//!
//! * every catalog entry appears in METRICS.md with the right kind and
//!   label keys, and METRICS.md lists nothing the catalog doesn't;
//! * every `"sintel_*"` string literal in non-test workspace source
//!   (the names handed to `counter_add`/`gauge_set`/`observe`/
//!   `rollup_*`) resolves to a catalog entry, so no crate can record
//!   an undocumented series.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use sintel_obs::{metric_def, METRICS};

fn repo_root() -> PathBuf {
    // CARGO_MANIFEST_DIR of the facade crate is the workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// METRICS.md table rows as (name, kind, labels).
fn doc_rows() -> Vec<(String, String, String)> {
    let doc = std::fs::read_to_string(repo_root().join("METRICS.md"))
        .expect("METRICS.md exists at the repo root");
    doc.lines()
        .filter_map(|line| {
            let rest = line.strip_prefix("| `sintel_")?;
            let cells: Vec<&str> = rest.split('|').map(str::trim).collect();
            assert!(
                cells.len() >= 4,
                "malformed METRICS.md row (want | `name` | kind | labels | semantics |): {line}"
            );
            let name = format!("sintel_{}", cells[0].trim_end_matches('`'));
            Some((name, cells[1].to_string(), cells[2].to_string()))
        })
        .collect()
}

#[test]
fn doc_and_catalog_agree() {
    let rows = doc_rows();
    assert!(!rows.is_empty(), "METRICS.md catalog table not found");

    let documented: BTreeSet<&str> = rows.iter().map(|(n, _, _)| n.as_str()).collect();
    assert_eq!(rows.len(), documented.len(), "duplicate rows in METRICS.md");

    let catalogued: BTreeSet<&str> = METRICS.iter().map(|d| d.name).collect();
    let missing: Vec<&&str> = catalogued.difference(&documented).collect();
    assert!(missing.is_empty(), "catalogued but undocumented in METRICS.md: {missing:?}");
    let stale: Vec<&&str> = documented.difference(&catalogued).collect();
    assert!(stale.is_empty(), "documented in METRICS.md but not in the catalog: {stale:?}");

    for (name, kind, labels) in &rows {
        let def = metric_def(name).expect("checked above");
        assert_eq!(
            kind,
            def.kind.as_str(),
            "METRICS.md kind for {name} disagrees with the catalog"
        );
        let want_labels =
            if def.labels.is_empty() { "—".to_string() } else { def.labels.join(", ") };
        assert_eq!(
            labels, &want_labels,
            "METRICS.md labels for {name} disagree with the catalog"
        );
    }
}

/// All `.rs` files under `dir`, recursively.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).expect("readable source dir") {
        let path = entry.expect("dir entry").path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// `sintel_[a-z0-9_]+` string literals in `source`, with everything
/// from the first `mod tests` on discarded (tests may name scratch
/// series freely).
fn quoted_metric_names(source: &str) -> Vec<String> {
    let source = source.split("mod tests").next().unwrap_or(source);
    let mut found = Vec::new();
    for chunk in source.split('"').skip(1).step_by(2) {
        if !chunk.starts_with("sintel_") {
            continue;
        }
        if chunk.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_') {
            found.push(chunk.to_string());
        }
    }
    found
}

#[test]
fn every_recorded_series_is_catalogued() {
    let mut files = Vec::new();
    rust_files(&repo_root().join("crates"), &mut files);
    rust_files(&repo_root().join("src"), &mut files);
    assert!(files.len() > 50, "source walk looks broken: {} files", files.len());

    let mut unregistered: Vec<String> = Vec::new();
    for path in &files {
        // The catalog defines the names; it is the reference itself.
        if path.ends_with("obs/src/catalog.rs") {
            continue;
        }
        let source = std::fs::read_to_string(path).expect("readable source file");
        for name in quoted_metric_names(&source) {
            if metric_def(&name).is_none() {
                unregistered.push(format!("{} in {}", name, path.display()));
            }
        }
    }
    assert!(
        unregistered.is_empty(),
        "series recorded but missing from the catalog (add them to \
         crates/obs/src/catalog.rs and METRICS.md): {unregistered:#?}"
    );
}

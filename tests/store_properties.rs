//! Property tests for the knowledge-base query layer: indexed lookups
//! must agree with brute-force scans, and persistence must round-trip
//! arbitrary documents — the invariants everything else (events,
//! annotations, benchmark results) silently relies on.

use proptest::prelude::*;
use sintel_repro::sintel_store::{json, Collection, Doc, Filter};

fn doc_strategy() -> impl Strategy<Value = Doc> {
    let leaf = prop_oneof![
        Just(Doc::Null),
        any::<bool>().prop_map(Doc::Bool),
        (-1_000_000i64..1_000_000).prop_map(Doc::I64),
        (-1e9f64..1e9).prop_map(Doc::F64),
        "[a-z]{0,12}".prop_map(Doc::Str),
    ];
    // Flat objects with a few common fields so filters have targets.
    (
        "[a-z]{1,6}",
        -100i64..100,
        0.0f64..1.0,
        proptest::collection::btree_map("[a-z]{1,5}", leaf, 0..4),
    )
        .prop_map(|(signal, n, score, extra)| {
            let mut doc = Doc::obj().with("signal", signal).with("n", n).with("score", score);
            for (k, v) in extra {
                doc.set(&format!("x_{k}"), v);
            }
            doc
        })
}

fn filter_strategy() -> impl Strategy<Value = Filter> {
    let atom = prop_oneof![
        "[a-z]{1,6}".prop_map(|s| Filter::eq("signal", s.as_str())),
        (-100i64..100).prop_map(|v| Filter::Gt("n".into(), Doc::I64(v))),
        (-100i64..100).prop_map(|v| Filter::Lte("n".into(), Doc::I64(v))),
        (0.0f64..1.0).prop_map(|v| Filter::Lt("score".into(), Doc::F64(v))),
        Just(Filter::Exists("x_a".into(), true)),
        Just(Filter::All),
    ];
    atom.prop_recursive(2, 8, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..3).prop_map(Filter::And),
            proptest::collection::vec(inner.clone(), 1..3).prop_map(Filter::Or),
            inner.prop_map(|f| Filter::Not(Box::new(f))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// An indexed collection returns exactly the documents a brute-force
    /// matches() scan selects, for arbitrary docs and filters.
    #[test]
    fn indexed_find_agrees_with_scan(
        docs in proptest::collection::vec(doc_strategy(), 0..40),
        filter in filter_strategy(),
    ) {
        let mut indexed = Collection::new();
        indexed.create_index("signal");
        let mut plain = Collection::new();
        for doc in &docs {
            indexed.insert(doc.clone());
            plain.insert(doc.clone());
        }
        let from_index: Vec<i64> = indexed
            .find(&filter)
            .iter()
            .map(|d| d.get("_id").unwrap().as_i64().unwrap())
            .collect();
        let from_scan: Vec<i64> = plain
            .find(&filter)
            .iter()
            .map(|d| d.get("_id").unwrap().as_i64().unwrap())
            .collect();
        let mut a = from_index.clone();
        a.sort_unstable();
        let mut b = from_scan.clone();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    /// JSON serialisation of arbitrary (flat-ish) documents round-trips.
    #[test]
    fn json_roundtrip_of_store_docs(doc in doc_strategy()) {
        let encoded = json::to_json(&doc);
        let decoded = json::from_json(&encoded).unwrap();
        prop_assert_eq!(decoded, doc);
    }

    /// Deleting every matched document leaves exactly the complement.
    #[test]
    fn delete_by_filter_leaves_complement(
        docs in proptest::collection::vec(doc_strategy(), 0..30),
        filter in filter_strategy(),
    ) {
        let mut collection = Collection::new();
        for doc in &docs {
            collection.insert(doc.clone());
        }
        let matched: Vec<u64> = collection
            .find(&filter)
            .iter()
            .map(|d| d.get("_id").unwrap().as_i64().unwrap() as u64)
            .collect();
        for id in &matched {
            collection.delete(*id).unwrap();
        }
        prop_assert_eq!(collection.count(&filter), 0);
        prop_assert_eq!(collection.len(), docs.len() - matched.len());
    }
}

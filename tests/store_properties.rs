//! Property tests for the knowledge-base query layer: indexed lookups
//! must agree with brute-force scans, and persistence must round-trip
//! arbitrary documents — the invariants everything else (events,
//! annotations, benchmark results) silently relies on.

use sintel_repro::sintel_common::SintelRng;
use sintel_repro::sintel_store::{json, Collection, Doc, Filter};

fn random_key(rng: &mut SintelRng, min: usize, max: usize) -> String {
    let len = min + rng.index(max - min + 1);
    (0..len).map(|_| (b'a' + rng.index(26) as u8) as char).collect()
}

fn random_leaf(rng: &mut SintelRng) -> Doc {
    match rng.index(5) {
        0 => Doc::Null,
        1 => Doc::Bool(rng.chance(0.5)),
        2 => Doc::I64(rng.int_range(-1_000_000, 1_000_000)),
        3 => Doc::F64(rng.uniform_range(-1e9, 1e9)),
        _ => Doc::Str(random_key(rng, 0, 12)),
    }
}

/// Flat documents with a few common fields so filters have targets.
fn random_doc(rng: &mut SintelRng) -> Doc {
    let signal = random_key(rng, 1, 6);
    let n = rng.int_range(-100, 100);
    let score = rng.uniform();
    let mut doc = Doc::obj().with("signal", signal).with("n", n).with("score", score);
    let extras = rng.index(4);
    for _ in 0..extras {
        let key = random_key(rng, 1, 5);
        let value = random_leaf(rng);
        doc.set(&format!("x_{key}"), value);
    }
    doc
}

fn random_filter(rng: &mut SintelRng, depth: usize) -> Filter {
    let variants = if depth == 0 { 6 } else { 9 };
    match rng.index(variants) {
        0 => {
            let s = random_key(rng, 1, 6);
            Filter::eq("signal", s.as_str())
        }
        1 => Filter::Gt("n".into(), Doc::I64(rng.int_range(-100, 100))),
        2 => Filter::Lte("n".into(), Doc::I64(rng.int_range(-100, 100))),
        3 => Filter::Lt("score".into(), Doc::F64(rng.uniform())),
        4 => Filter::Exists("x_a".into(), true),
        5 => Filter::All,
        6 => {
            let n = 1 + rng.index(2);
            Filter::And((0..n).map(|_| random_filter(rng, depth - 1)).collect())
        }
        7 => {
            let n = 1 + rng.index(2);
            Filter::Or((0..n).map(|_| random_filter(rng, depth - 1)).collect())
        }
        _ => Filter::Not(Box::new(random_filter(rng, depth - 1))),
    }
}

/// An indexed collection returns exactly the documents a brute-force
/// matches() scan selects, for arbitrary docs and filters.
#[test]
fn indexed_find_agrees_with_scan() {
    let mut rng = SintelRng::seed_from_u64(0x8111);
    for _ in 0..64 {
        let docs: Vec<Doc> = (0..rng.index(40)).map(|_| random_doc(&mut rng)).collect();
        let filter = random_filter(&mut rng, 2);
        let mut indexed = Collection::new();
        indexed.create_index("signal");
        let mut plain = Collection::new();
        for doc in &docs {
            indexed.insert(doc.clone());
            plain.insert(doc.clone());
        }
        let from_index: Vec<i64> = indexed
            .find(&filter)
            .iter()
            .map(|d| d.get("_id").unwrap().as_i64().unwrap())
            .collect();
        let from_scan: Vec<i64> = plain
            .find(&filter)
            .iter()
            .map(|d| d.get("_id").unwrap().as_i64().unwrap())
            .collect();
        let mut a = from_index.clone();
        a.sort_unstable();
        let mut b = from_scan.clone();
        b.sort_unstable();
        assert_eq!(a, b);
    }
}

/// JSON serialisation of arbitrary (flat-ish) documents round-trips.
#[test]
fn json_roundtrip_of_store_docs() {
    let mut rng = SintelRng::seed_from_u64(0x8112);
    for _ in 0..256 {
        let doc = random_doc(&mut rng);
        let encoded = json::to_json(&doc);
        let decoded = json::from_json(&encoded).unwrap();
        assert_eq!(decoded, doc);
    }
}

/// Deleting every matched document leaves exactly the complement.
#[test]
fn delete_by_filter_leaves_complement() {
    let mut rng = SintelRng::seed_from_u64(0x8113);
    for _ in 0..64 {
        let docs: Vec<Doc> = (0..rng.index(30)).map(|_| random_doc(&mut rng)).collect();
        let filter = random_filter(&mut rng, 2);
        let mut collection = Collection::new();
        for doc in &docs {
            collection.insert(doc.clone());
        }
        let matched: Vec<u64> = collection
            .find(&filter)
            .iter()
            .map(|d| d.get("_id").unwrap().as_i64().unwrap() as u64)
            .collect();
        for id in &matched {
            collection.delete(*id).unwrap();
        }
        assert_eq!(collection.count(&filter), 0);
        assert_eq!(collection.len(), docs.len() - matched.len());
    }
}

//! Cross-crate integration tests: the full Figure 4a workflow for every
//! hub pipeline, against synthetic corpora with known ground truth.

use sintel_repro::sintel::{MetricKind, Sintel};
use sintel_repro::sintel_datasets::{load, load_signal, DatasetConfig, DatasetId};
use sintel_repro::sintel_pipeline::hub;
use sintel_repro::sintel_timeseries::Interval;

/// Every pipeline in the hub completes fit + detect on a real-ish signal
/// and produces within-range intervals. Deep models run with a reduced
/// epoch budget so the test stays fast in debug builds — coverage here is
/// plumbing, not quality (quality is the bench harness's job).
#[test]
fn every_hub_pipeline_runs_end_to_end() {
    use sintel_repro::sintel_primitives::{build_primitive, HyperValue};
    let full = load_signal("S-2").expect("demo signal");
    let data = sintel_repro::sintel_datasets::LabeledSignal {
        signal: full.signal.slice_index(0, 1000).unwrap(),
        anomalies: Vec::new(),
    };
    for name in hub::available_pipelines() {
        let mut template = hub::template_by_name(name).unwrap();
        for step in &mut template.steps {
            let prim = build_primitive(&step.primitive).unwrap();
            if prim.meta().hyperparam("epochs").is_some() {
                step.overrides.push(("epochs".into(), HyperValue::Int(2)));
                step.overrides.push(("hidden".into(), HyperValue::Int(6)));
            }
        }
        let mut sintel =
            Sintel::from_template(template).unwrap_or_else(|e| panic!("{name}: {e}"));
        sintel.fit(&data.signal).unwrap_or_else(|e| panic!("{name} fit: {e}"));
        let anomalies =
            sintel.detect(&data.signal).unwrap_or_else(|e| panic!("{name} detect: {e}"));
        let start = data.signal.start().unwrap();
        let end = data.signal.end().unwrap();
        for a in &anomalies {
            assert!(
                a.interval.start >= start && a.interval.end <= end,
                "{name}: {:?} outside signal span",
                a.interval
            );
            assert!(a.score.is_finite(), "{name}: non-finite score");
        }
    }
}

/// The ARIMA pipeline finds the demo signal's injected anomalies with
/// decent quality — the canonical quickstart promise.
#[test]
fn quickstart_quality_bar() {
    let train = load_signal("S-2-train").expect("demo signal");
    let new_data = load_signal("S-2-new").expect("demo signal");
    let mut sintel = Sintel::new("arima").unwrap();
    sintel.fit(&train.signal).unwrap();
    let scores = sintel
        .evaluate(&new_data.signal, &new_data.anomalies, MetricKind::Overlap)
        .unwrap();
    assert!(scores.recall >= 0.6, "recall {scores:?}");
    assert!(scores.f1 >= 0.4, "f1 {scores:?}");
}

/// Detection works across corpora: run one fast pipeline over a small
/// sample of each dataset family and require a nonzero aggregate recall
/// (the pipelines must find *something* real everywhere).
#[test]
fn arima_detects_across_all_corpora() {
    let cfg = DatasetConfig { seed: 42, signal_scale: 0.02, length_scale: 0.1 };
    for id in [DatasetId::Nab, DatasetId::Nasa, DatasetId::Yahoo] {
        let dataset = load(id, &cfg);
        let mut tp = 0usize;
        let mut truth_total = 0usize;
        for labeled in dataset.iter_signals().take(4) {
            let mut pipeline = hub::build_pipeline("arima").unwrap();
            let Ok(anomalies) = pipeline.fit_detect(&labeled.signal, &labeled.signal) else {
                continue;
            };
            let pred: Vec<Interval> = anomalies.iter().map(|a| a.interval).collect();
            for t in &labeled.anomalies {
                truth_total += 1;
                if pred.iter().any(|p| p.overlaps(t)) {
                    tp += 1;
                }
            }
        }
        assert!(truth_total > 0, "{:?}: no ground truth sampled", id);
        assert!(tp > 0, "{:?}: nothing detected over {truth_total} true anomalies", id);
    }
}

/// Degenerate inputs do not panic anywhere in the stack.
#[test]
fn degenerate_signals_handled_gracefully() {
    use sintel_repro::sintel_timeseries::Signal;
    // Constant signal: no anomalies, no crash.
    let flat = Signal::from_values("flat", vec![1.0; 600]);
    let mut sintel = Sintel::new("arima").unwrap();
    sintel.fit(&flat).unwrap();
    let anomalies = sintel.detect(&flat).unwrap();
    assert!(anomalies.len() <= 1, "flat signal should be (nearly) quiet: {anomalies:?}");

    // Signal with missing values: imputation keeps the pipeline alive.
    let mut vals: Vec<f64> =
        (0..600).map(|t| (std::f64::consts::TAU * t as f64 / 50.0).sin()).collect();
    for v in vals.iter_mut().step_by(17) {
        *v = f64::NAN;
    }
    let holey = Signal::from_values("holey", vals);
    let mut sintel = Sintel::new("arima").unwrap();
    sintel.fit(&holey).unwrap();
    sintel.detect(&holey).unwrap();

    // Irregularly sampled signal: aggregation normalises it.
    let ts: Vec<i64> = (0..400i64).map(|i| i * 7 + (i % 5)).collect();
    let vs: Vec<f64> = (0..400).map(|t| (t as f64 * 0.21).sin()).collect();
    let irregular = Signal::univariate("irr", ts, vs).unwrap();
    let mut sintel = Sintel::new("arima").unwrap();
    sintel.fit(&irregular).unwrap();
    sintel.detect(&irregular).unwrap();
}

/// Too-short signals error cleanly rather than panicking.
#[test]
fn too_short_signal_is_a_clean_error() {
    use sintel_repro::sintel_timeseries::Signal;
    let tiny = Signal::from_values("tiny", vec![1.0, 2.0, 3.0]);
    let mut sintel = Sintel::new("arima").unwrap();
    let result = sintel.fit(&tiny);
    assert!(result.is_err(), "expected a clean error for a 3-sample signal");
}

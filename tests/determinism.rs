//! Reproducibility guarantees across the stack — the paper's
//! transparency claim (§3.2: "This transparency is crucial to making our
//! results reproducible.").

use sintel_repro::sintel_datasets::{load, DatasetConfig, DatasetId};
use sintel_repro::sintel_hil::study::{run_study, StudyConfig};
use sintel_repro::sintel_pipeline::hub;
use sintel_repro::sintel_store::SintelDb;
use sintel_repro::sintel_timeseries::Signal;

fn demo_signal() -> Signal {
    let vals: Vec<f64> = (0..600)
        .map(|t| {
            (std::f64::consts::TAU * t as f64 / 40.0).sin()
                + if (300..=310).contains(&t) { 4.0 } else { 0.0 }
        })
        .collect();
    Signal::from_values("det", vals)
}

/// Building the same template twice and running it on the same data
/// yields bit-identical detections — model init, shuffling, and every
/// random choice derive from fixed seeds.
#[test]
fn pipelines_are_deterministic() {
    for name in ["arima", "azure_anomaly_detection", "dense_autoencoder"] {
        let signal = demo_signal();
        let run = |_: ()| {
            let mut pipeline = hub::build_pipeline(name).unwrap();
            pipeline.fit_detect(&signal, &signal).unwrap()
        };
        let a = run(());
        let b = run(());
        assert_eq!(a.len(), b.len(), "{name}: detection count differs");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.interval, y.interval, "{name}");
            assert_eq!(x.score.to_bits(), y.score.to_bits(), "{name}: score differs");
        }
    }
}

/// Dataset generation is bit-stable for a given seed, and distinct for
/// different seeds — the property that makes benchmark runs comparable
/// across machines and sessions.
#[test]
fn corpora_are_seed_stable() {
    let cfg = DatasetConfig { seed: 123, signal_scale: 0.02, length_scale: 0.05 };
    let a = load(DatasetId::Yahoo, &cfg);
    let b = load(DatasetId::Yahoo, &cfg);
    for (sa, sb) in a.iter_signals().zip(b.iter_signals()) {
        assert_eq!(sa.signal.values(), sb.signal.values());
        assert_eq!(sa.anomalies, sb.anomalies);
    }
    let c = load(DatasetId::Yahoo, &DatasetConfig { seed: 124, ..cfg });
    let va = a.iter_signals().next().unwrap().signal.values();
    let vc = c.iter_signals().next().unwrap().signal.values();
    assert_ne!(va, vc);
}

/// The user study simulation replays identically from its seed, so the
/// Figure 8b numbers in EXPERIMENTS.md are reproducible claims.
#[test]
fn study_replays_identically() {
    let a = run_study(&StudyConfig::default(), &SintelDb::in_memory());
    let b = run_study(&StudyConfig::default(), &SintelDb::in_memory());
    assert_eq!(a.ml_presented, b.ml_presented);
    assert_eq!(a.ml_missed, b.ml_missed);
}

/// Tuning is reproducible end-to-end: same template, data and budget
/// give the same best score.
#[test]
fn tuning_is_deterministic() {
    use sintel_repro::sintel::tune::{tune_template, TuneSetting};
    let signal = demo_signal();
    let template = hub::template_by_name("arima").unwrap();
    let run = |_: ()| {
        tune_template(&template, &signal, &TuneSetting::Unsupervised, 4).unwrap()
    };
    let a = run(());
    let b = run(());
    assert_eq!(a.best_score.to_bits(), b.best_score.to_bits());
    assert_eq!(a.history.len(), b.history.len());
}

//! Integration tests for the evaluation metrics against full pipeline
//! output, and for the AutoML loop improving a real pipeline.

use sintel_repro::sintel::{MetricKind, Sintel, TuneSetting};
use sintel_repro::sintel_metrics::{overlapping_segment, weighted_segment_in_span};
use sintel_repro::sintel_pipeline::hub;
use sintel_repro::sintel_timeseries::{Interval, Signal};

fn spiky(n: usize, bursts: &[(usize, usize)]) -> (Signal, Vec<Interval>) {
    let mut vals: Vec<f64> =
        (0..n).map(|t| (std::f64::consts::TAU * t as f64 / 40.0).sin()).collect();
    let mut truth = Vec::new();
    for &(s, e) in bursts {
        for v in &mut vals[s..=e] {
            *v += 5.0;
        }
        truth.push(Interval::new(s as i64, e as i64).unwrap());
    }
    (Signal::from_values("spiky", vals), truth)
}

/// The two metrics agree on perfect detections and rank a good detector
/// above a random one.
#[test]
fn metrics_rank_detectors_consistently() {
    let (signal, truth) = spiky(600, &[(150, 170), (400, 430)]);
    let mut pipeline = hub::build_pipeline("arima").unwrap();
    let detected = pipeline.fit_detect(&signal, &signal).unwrap();
    let pred: Vec<Interval> = detected.iter().map(|d| d.interval).collect();

    let good_overlap = overlapping_segment(&truth, &pred).scores();
    let good_weighted = weighted_segment_in_span(&truth, &pred, 0, 599).scores();

    // A detector that alarms at fixed wrong places.
    let bad_pred = vec![Interval::new(10, 30).unwrap(), Interval::new(550, 560).unwrap()];
    let bad_overlap = overlapping_segment(&truth, &bad_pred).scores();
    let bad_weighted = weighted_segment_in_span(&truth, &bad_pred, 0, 599).scores();

    assert!(good_overlap.f1 > bad_overlap.f1, "{good_overlap:?} vs {bad_overlap:?}");
    assert!(good_weighted.f1 > bad_weighted.f1);
    // The lenient metric is never harsher than the strict one on the
    // same (real) detections.
    assert!(good_overlap.f1 >= good_weighted.f1 - 1e-9);
}

/// Supervised tuning through the orchestrator improves (or preserves)
/// detection quality and leaves the orchestrator holding the tuned
/// pipeline.
#[test]
fn orchestrated_supervised_tuning() {
    let (signal, truth) = spiky(500, &[(250, 265)]);
    let mut sintel = Sintel::new("arima").unwrap();
    let report = sintel
        .tune(&signal, TuneSetting::Supervised { ground_truth: truth.clone() }, 6)
        .unwrap();
    assert!(report.best_score >= report.default_score);
    assert_eq!(report.history.len(), 7); // default + budget

    // The tuned pipeline is live in the orchestrator.
    let scores = sintel.evaluate(&signal, &truth, MetricKind::Overlap).unwrap();
    assert!(
        scores.f1 >= report.best_score - 0.35,
        "live pipeline f1 {} far below tuned {}",
        scores.f1,
        report.best_score
    );
}

/// The feedback loop on top of real unsupervised proposals improves the
/// semi-supervised pipeline's test F1 (the Figure 8a mechanism, via the
/// full stack).
#[test]
fn feedback_loop_over_real_pipeline_proposals() {
    use sintel_repro::sintel_hil::{FeedbackLoop, SimulatedExpert};
    let (train, train_truth) = spiky(900, &[(200, 240), (600, 640)]);
    let train = train.with_name("train");
    let (test, test_truth) = spiky(700, &[(300, 340)]);
    let test = test.with_name("test");

    let mut unsup = hub::build_pipeline("arima").unwrap();
    let proposals = unsup.fit_detect(&train, &train).unwrap();
    assert!(!proposals.is_empty(), "need warm-start proposals");

    let mut expert =
        SimulatedExpert::new(vec![("train".to_string(), train_truth)], 1.0, 3);
    let points = FeedbackLoop { epochs: 40, ..Default::default() }
        .run(&mut expert, &train, &test, &test_truth, &proposals)
        .unwrap();
    assert!(!points.is_empty());
    let final_f1 = points.last().unwrap().f1;
    assert!(final_f1 > 0.5, "final F1 {final_f1}: {points:?}");
}

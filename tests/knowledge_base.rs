//! Integration tests for the persistent knowledge base across the whole
//! workflow: detection -> events -> annotations -> REST API -> restart.

use sintel_repro::sintel::api::{Request, Response, RestApi};
use sintel_repro::sintel::Sintel;
use sintel_repro::sintel_datasets::load_signal;
use sintel_repro::sintel_hil::event::{apply_action, persist_detected};
use sintel_repro::sintel_hil::{AnnotationAction, EventStatus};
use sintel_repro::sintel_store::{schema::collections, Doc, Filter, SintelDb};
use sintel_repro::sintel_timeseries::Interval;

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sintel-integration-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Detection events persist through the orchestrator, survive a process
/// "restart" (reopen from disk), and remain queryable via the REST API.
#[test]
fn detection_events_survive_restart_and_are_queryable() {
    let dir = tmpdir("restart");
    let data = load_signal("S-2").expect("demo signal");

    let detected = {
        let db = SintelDb::open(&dir).expect("open kb");
        let mut sintel = Sintel::new("arima").unwrap().with_db(db);
        sintel.fit(&data.signal).unwrap();
        let anomalies = sintel.detect(&data.signal).unwrap();
        sintel.db().unwrap().save().unwrap();
        anomalies.len()
    };
    assert!(detected > 0);

    // Restart: a fresh handle sees the same events.
    let api = RestApi::new(SintelDb::open(&dir).expect("reopen kb"));
    let Response::Ok(Doc::Arr(events)) = api.handle(&Request::get("/events")) else {
        panic!("expected event list")
    };
    assert_eq!(events.len(), detected);

    // And the typed query path agrees.
    assert_eq!(api.db().events_for_signal("S-2").len(), detected);
    std::fs::remove_dir_all(&dir).ok();
}

/// The full annotation lifecycle writes a coherent audit trail: every
/// action (confirm/modify/comment/tag) is traceable afterwards — the
/// paper's "trace back the decision-making process" requirement (§3.6).
#[test]
fn annotation_audit_trail_is_complete() {
    let db = SintelDb::in_memory();
    let alice = db.add_user("alice", "engineer");
    let bob = db.add_user("bob", "program manager");
    let run = db.add_signalrun(1, "CH-1", "done");

    let mut event =
        persist_detected(&db, run, "CH-1", Interval::new(1000, 2000).unwrap(), 0.9);
    apply_action(&db, &mut event, alice, &AnnotationAction::Confirm).unwrap();
    apply_action(
        &db,
        &mut event,
        alice,
        &AnnotationAction::Modify(Interval::new(900, 2100).unwrap()),
    )
    .unwrap();
    apply_action(&db, &mut event, bob, &AnnotationAction::Tag("thermal".into())).unwrap();
    apply_action(
        &db,
        &mut event,
        bob,
        &AnnotationAction::Comment("matches heater duty-cycle change".into()),
    )
    .unwrap();

    // Trace back: 3 annotations (confirm, modify, tag), 1 comment, final
    // state modified with widened bounds.
    assert_eq!(db.annotations_for_event(event.id).len(), 3);
    assert_eq!(db.comments_for_event(event.id).len(), 1);
    let stored = db.events_for_signal("CH-1").pop().unwrap();
    assert_eq!(stored.get("start_time").unwrap().as_i64(), Some(900));
    assert_eq!(stored.get("status").unwrap().as_str(), Some("modified"));
    assert_eq!(event.status, EventStatus::Modified);

    // Actions attribute to the right users.
    let annotations = db.annotations_for_event(event.id);
    let by_bob = annotations
        .iter()
        .filter(|a| a.get("user_id").unwrap().as_i64() == Some(bob as i64))
        .count();
    assert_eq!(by_bob, 1);
}

/// Knowledge reuse (§3.5): anomalies stored by one session annotate a new
/// signal without rerunning the model.
#[test]
fn stored_events_annotate_new_signals() {
    let db = SintelDb::in_memory();
    let run = db.add_signalrun(1, "CH-7", "done");
    db.add_event(run, "CH-7", 5_000, 6_000, 0.8);
    db.add_event(run, "CH-7", 9_000, 9_500, 0.6);

    // A later session pulls the known anomalies instead of re-detecting.
    let known: Vec<Interval> = db
        .events_for_signal("CH-7")
        .iter()
        .map(|doc| {
            Interval::new(
                doc.get("start_time").unwrap().as_i64().unwrap(),
                doc.get("stop_time").unwrap().as_i64().unwrap(),
            )
            .unwrap()
        })
        .collect();
    assert_eq!(known.len(), 2);
    assert_eq!(known[0], Interval::new(5_000, 6_000).unwrap());
}

/// Benchmark results persist as first-class experiments.
#[test]
fn benchmark_results_are_persisted_experiments() {
    use sintel_repro::sintel::benchmark::{
        benchmark, persist_benchmark, BenchmarkConfig, MetricKind,
    };
    use sintel_repro::sintel_datasets::{DatasetConfig, DatasetId};
    let cfg = BenchmarkConfig {
        pipelines: vec!["azure_anomaly_detection".into()],
        datasets: vec![DatasetId::Yahoo],
        data: DatasetConfig { seed: 1, signal_scale: 0.01, length_scale: 0.1 },
        metric: MetricKind::Overlap,
        rank: "f1",
        ..BenchmarkConfig::default()
    };
    let rows = benchmark(&cfg).unwrap();
    let db = SintelDb::in_memory();
    persist_benchmark(&db, &rows);
    let experiments = db.raw().find(collections::EXPERIMENTS, &Filter::All);
    assert_eq!(experiments.len(), rows.len());
    let results = db.raw().find("benchmark_results", &Filter::All);
    assert_eq!(results.len(), rows.len());
    assert!(results[0].get("f1").unwrap().as_f64().is_some());
}

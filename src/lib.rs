#![warn(missing_docs)]

//! # sintel-repro — facade crate
//!
//! Re-exports the whole Sintel reproduction workspace under one roof so
//! that the runnable examples (`examples/`) and cross-crate integration
//! tests (`tests/`) have a single import surface.
//!
//! The real functionality lives in the member crates:
//!
//! * [`sintel`] — the framework core (`Sintel` orchestrator, benchmark
//!   suite, feature registry).
//! * [`sintel_pipeline`] — templates, pipelines, and the pipeline hub.
//! * [`sintel_primitives`] — reusable pre/model/post primitives.
//! * [`sintel_metrics`] — anomaly-specific evaluation metrics.
//! * [`sintel_datasets`] — synthetic NAB / NASA / Yahoo S5 corpora.
//! * [`sintel_tuner`] — Gaussian-process AutoML tuner.
//! * [`sintel_store`] — embedded document database (knowledge base).
//! * [`sintel_hil`] — human-in-the-loop annotations and feedback.
//! * [`sintel_obs`] — structured logging, nested spans, and metrics.

pub use sintel;
pub use sintel_common;
pub use sintel_datasets;
pub use sintel_hil;
pub use sintel_linalg;
pub use sintel_metrics;
pub use sintel_nn;
pub use sintel_obs;
pub use sintel_pipeline;
pub use sintel_primitives;
pub use sintel_stats;
pub use sintel_store;
pub use sintel_timeseries;
pub use sintel_tuner;

//! The typed data context primitives read from and write to.

use std::collections::HashMap;

use sintel_linalg::Matrix;
use sintel_timeseries::{ScoredInterval, Signal};

use crate::{PrimitiveError, Result};

/// A value flowing between primitives.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A plain numeric series (errors, predictions, scores, targets…).
    Series(Vec<f64>),
    /// A timestamp vector aligned with some series.
    Timestamps(Vec<i64>),
    /// Sample indices (window origins, alignment offsets…).
    Indices(Vec<usize>),
    /// Flattened model windows: one matrix row per window
    /// (`window_size * channels` columns). A single arena, not a vec of
    /// vecs, so window batches flow through the pipeline with O(1)
    /// allocations (DESIGN.md §4j).
    Windows(Matrix),
    /// Detected (scored) anomalous intervals.
    Intervals(Vec<ScoredInterval>),
    /// A full signal.
    Signal(Signal),
    /// A scalar.
    Scalar(f64),
}

impl Value {
    fn type_name(&self) -> &'static str {
        match self {
            Value::Series(_) => "Series",
            Value::Timestamps(_) => "Timestamps",
            Value::Indices(_) => "Indices",
            Value::Windows(_) => "Windows",
            Value::Intervals(_) => "Intervals",
            Value::Signal(_) => "Signal",
            Value::Scalar(_) => "Scalar",
        }
    }
}

/// Named slots shared along a pipeline execution.
#[derive(Debug, Clone, Default)]
pub struct Context {
    slots: HashMap<String, Value>,
    /// Contract-sanitizer read log: every slot name a primitive looked
    /// up (any accessor, hit or miss) since the last drain. Interior
    /// mutability because primitives only hold `&Context`.
    #[cfg(feature = "sanitizer")]
    reads: std::cell::RefCell<Vec<String>>,
}

macro_rules! typed_getter {
    ($fn_name:ident, $variant:ident, $ty:ty, $expected:literal) => {
        /// Typed accessor; errors if the slot is absent or has another type.
        pub fn $fn_name(&self, slot: &str) -> Result<&$ty> {
            self.record_read(slot);
            match self.slots.get(slot) {
                Some(Value::$variant(v)) => Ok(v),
                other => Err(PrimitiveError::MissingInput {
                    slot: slot.to_string(),
                    expected: match other {
                        Some(v) => format!(concat!($expected, ", found {}"), v.type_name()),
                        None => $expected.to_string(),
                    },
                }),
            }
        }
    };
}

impl Context {
    /// Empty context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Context pre-seeded with a signal under the conventional
    /// `"signal"` slot.
    pub fn from_signal(signal: Signal) -> Self {
        let mut ctx = Self::new();
        ctx.set("signal", Value::Signal(signal));
        ctx
    }

    /// Insert/overwrite a slot.
    pub fn set(&mut self, slot: impl Into<String>, value: Value) {
        self.slots.insert(slot.into(), value);
    }

    /// Raw access.
    pub fn get(&self, slot: &str) -> Option<&Value> {
        self.record_read(slot);
        self.slots.get(slot)
    }

    /// Whether a slot exists.
    pub fn contains(&self, slot: &str) -> bool {
        self.record_read(slot);
        self.slots.contains_key(slot)
    }

    /// Append `slot` to the sanitizer read log (no-op without the
    /// `sanitizer` feature).
    #[inline]
    fn record_read(&self, slot: &str) {
        #[cfg(feature = "sanitizer")]
        self.reads.borrow_mut().push(slot.to_string());
        #[cfg(not(feature = "sanitizer"))]
        let _ = slot;
    }

    /// Drain the sanitizer read log: every slot name accessed through
    /// any getter since the last drain, in access order (duplicates
    /// preserved). The pipeline executor drains before and after each
    /// primitive phase to attribute accesses to the running step.
    #[cfg(feature = "sanitizer")]
    pub fn sanitizer_take_reads(&self) -> Vec<String> {
        std::mem::take(&mut *self.reads.borrow_mut())
    }

    /// Slot names currently populated (sorted, for stable debugging).
    pub fn slot_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.slots.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    typed_getter!(series, Series, Vec<f64>, "Series");
    typed_getter!(timestamps, Timestamps, Vec<i64>, "Timestamps");
    typed_getter!(indices, Indices, Vec<usize>, "Indices");
    typed_getter!(windows, Windows, Matrix, "Windows");
    typed_getter!(intervals, Intervals, Vec<ScoredInterval>, "Intervals");
    typed_getter!(signal, Signal, Signal, "Signal");

    /// Scalar accessor.
    pub fn scalar(&self, slot: &str) -> Result<f64> {
        match self.slots.get(slot) {
            Some(Value::Scalar(v)) => Ok(*v),
            _ => Err(PrimitiveError::MissingInput {
                slot: slot.to_string(),
                expected: "Scalar".to_string(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut ctx = Context::new();
        ctx.set("errors", Value::Series(vec![1.0, 2.0]));
        assert_eq!(ctx.series("errors").unwrap(), &vec![1.0, 2.0]);
        assert!(ctx.contains("errors"));
        assert!(!ctx.contains("nope"));
    }

    #[test]
    fn wrong_type_is_reported() {
        let mut ctx = Context::new();
        ctx.set("errors", Value::Timestamps(vec![1, 2]));
        let err = ctx.series("errors").unwrap_err();
        match err {
            PrimitiveError::MissingInput { slot, expected } => {
                assert_eq!(slot, "errors");
                assert!(expected.contains("Series") && expected.contains("Timestamps"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn missing_slot_is_reported() {
        let ctx = Context::new();
        assert!(ctx.timestamps("t").is_err());
        assert!(ctx.scalar("s").is_err());
    }

    #[test]
    fn from_signal_seeds_slot() {
        let s = Signal::from_values("x", vec![1.0, 2.0]);
        let ctx = Context::from_signal(s.clone());
        assert_eq!(ctx.signal("signal").unwrap(), &s);
    }

    #[test]
    fn slot_names_sorted() {
        let mut ctx = Context::new();
        ctx.set("b", Value::Scalar(1.0));
        ctx.set("a", Value::Scalar(2.0));
        assert_eq!(ctx.slot_names(), vec!["a", "b"]);
    }
}

#![warn(missing_docs)]

//! # sintel-primitives
//!
//! The *primitive* abstraction of the paper (§2.2) and Sintel's primitive
//! library.
//!
//! A primitive is a reusable software component with a single
//! responsibility: it reads named inputs from a [`Context`], performs one
//! operation, and writes named outputs back. Primitives carry metadata —
//! name, description, engine category ([`Engine::Preprocessing`],
//! [`Engine::Modeling`], [`Engine::Postprocessing`]) and declared,
//! range-annotated hyperparameters — which is what lets the AutoML tuner
//! (`sintel-tuner`) pull the joint hyperparameter space of a pipeline
//! automatically (§3.3) and lets contributors add primitives without
//! touching pipelines.
//!
//! The library covers the paper's Figure 2a stack end-to-end:
//!
//! * preprocessing — [`pre::TimeSegmentsAggregate`], [`pre::SimpleImputer`],
//!   [`pre::MinMaxScaler`], [`pre::StandardScaler`],
//!   [`pre::RollingWindowSequences`];
//! * modeling — [`model::LstmRegressorPrimitive`], [`model::ArimaPrimitive`],
//!   [`model::LstmAutoencoderPrimitive`], [`model::DenseAutoencoderPrimitive`],
//!   [`model::TadGanPrimitive`], [`model::AzureAnomalyService`]
//!   (spectral-residual stand-in for the MS Azure service);
//! * postprocessing — [`post::RegressionErrors`],
//!   [`post::ReconstructionErrors`], [`post::FindAnomalies`] (dynamic
//!   threshold), [`post::FixedThresholdPrimitive`] (ablation baseline).

pub mod context;
pub mod contract;
pub mod ext;
#[cfg(feature = "faulty")]
pub mod faulty;
pub mod hyper;
pub mod model;
pub mod post;
pub mod pre;
pub mod primitive;
pub mod registry;

pub use context::{Context, Value};
pub use contract::{Contract, SlotRead, SlotWrite, ValueKind};
pub use hyper::{HyperRange, HyperSpec, HyperValue};
pub use primitive::{Engine, Primitive, PrimitiveMeta};
pub use registry::{available_primitives, build_primitive, primitive_meta};

/// Errors produced by primitives.
#[derive(Debug, Clone, PartialEq)]
pub enum PrimitiveError {
    /// A required context slot is missing or has the wrong type.
    MissingInput {
        /// Context slot that was read.
        slot: String,
        /// Expected value type (and what was found, if anything).
        expected: String,
    },
    /// Unknown hyperparameter name or out-of-range/ill-typed value.
    BadHyperparameter(String),
    /// `produce` was called before a required `fit`.
    NotFitted(String),
    /// The wrapped algorithm failed.
    Algorithm(String),
}

impl std::fmt::Display for PrimitiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PrimitiveError::MissingInput { slot, expected } => {
                write!(f, "missing or ill-typed input '{slot}' (expected {expected})")
            }
            PrimitiveError::BadHyperparameter(m) => write!(f, "bad hyperparameter: {m}"),
            PrimitiveError::NotFitted(name) => write!(f, "primitive '{name}' is not fitted"),
            PrimitiveError::Algorithm(m) => write!(f, "algorithm failure: {m}"),
        }
    }
}

impl std::error::Error for PrimitiveError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, PrimitiveError>;

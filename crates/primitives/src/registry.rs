//! The primitive registry: build primitives by name.
//!
//! Pipelines are declared as lists of primitive names (paper §3.2); the
//! registry is how those names resolve to fresh instances. Contributors
//! extend Sintel by adding a primitive here without touching any
//! pipeline definition.

use crate::ext::{
    Detrend, HoltWintersPrimitive, MatrixProfilePrimitive, RemoveLevelShifts,
};
use crate::model::{
    ArimaPrimitive, AzureAnomalyService, DenseAutoencoderPrimitive, LstmAutoencoderPrimitive,
    LstmRegressorPrimitive, TadGanPrimitive,
};
use crate::post::{
    FindAnomalies, FixedThresholdPrimitive, ReconstructionErrors, RegressionErrors,
};
use crate::pre::{
    MinMaxScaler, RollingWindowSequences, SimpleImputer, StandardScaler, TimeSegmentsAggregate,
};
use crate::primitive::Primitive;
use crate::{PrimitiveError, Result};

/// All registered primitive names, grouped by pipeline order.
pub const PRIMITIVE_NAMES: &[&str] = &[
    // preprocessing
    "time_segments_aggregate",
    "SimpleImputer",
    "MinMaxScaler",
    "StandardScaler",
    "detrend",
    "remove_level_shifts",
    "rolling_window_sequences",
    // modeling
    "lstm_regressor",
    "arima",
    "holt_winters",
    "lstm_autoencoder",
    "dense_autoencoder",
    "tadgan",
    "azure_anomaly_service",
    "matrix_profile",
    // postprocessing
    "regression_errors",
    "reconstruction_errors",
    "find_anomalies",
    "fixed_threshold",
];

/// Fault-injection primitives available only with the `faulty` feature.
/// Deliberately excluded from [`PRIMITIVE_NAMES`] so production pipeline
/// listings never advertise them.
#[cfg(feature = "faulty")]
pub const FAULTY_PRIMITIVE_NAMES: &[&str] = &[
    "faulty_panic",
    "faulty_nan",
    "faulty_hang",
    "faulty_slow",
    "faulty_flaky",
    "faulty_contract_drift",
];

/// Construct a fresh primitive by registry name.
pub fn build_primitive(name: &str) -> Result<Box<dyn Primitive>> {
    let prim: Box<dyn Primitive> = match name {
        "time_segments_aggregate" => Box::new(TimeSegmentsAggregate::new()),
        "SimpleImputer" => Box::new(SimpleImputer::new()),
        "MinMaxScaler" => Box::new(MinMaxScaler::new()),
        "StandardScaler" => Box::new(StandardScaler::new()),
        "detrend" => Box::new(Detrend::new()),
        "remove_level_shifts" => Box::new(RemoveLevelShifts::new()),
        "rolling_window_sequences" => Box::new(RollingWindowSequences::new()),
        "lstm_regressor" => Box::new(LstmRegressorPrimitive::new()),
        "arima" => Box::new(ArimaPrimitive::new()),
        "holt_winters" => Box::new(HoltWintersPrimitive::new()),
        "lstm_autoencoder" => Box::new(LstmAutoencoderPrimitive::new()),
        "dense_autoencoder" => Box::new(DenseAutoencoderPrimitive::new()),
        "tadgan" => Box::new(TadGanPrimitive::new()),
        "azure_anomaly_service" => Box::new(AzureAnomalyService::new()),
        "matrix_profile" => Box::new(MatrixProfilePrimitive::new()),
        "regression_errors" => Box::new(RegressionErrors::new()),
        "reconstruction_errors" => Box::new(ReconstructionErrors::new()),
        "find_anomalies" => Box::new(FindAnomalies::new()),
        "fixed_threshold" => Box::new(FixedThresholdPrimitive::new()),
        #[cfg(feature = "faulty")]
        "faulty_panic" => Box::new(crate::faulty::FaultyPanic::new()),
        #[cfg(feature = "faulty")]
        "faulty_nan" => Box::new(crate::faulty::FaultyNan::new()),
        #[cfg(feature = "faulty")]
        "faulty_hang" => Box::new(crate::faulty::FaultyHang::new()),
        #[cfg(feature = "faulty")]
        "faulty_slow" => Box::new(crate::faulty::FaultySlow::new()),
        #[cfg(feature = "faulty")]
        "faulty_flaky" => Box::new(crate::faulty::FaultyFlaky::new()),
        #[cfg(feature = "faulty")]
        "faulty_contract_drift" => Box::new(crate::faulty::FaultyContractDrift::new()),
        other => {
            return Err(PrimitiveError::Algorithm(format!("unknown primitive '{other}'")))
        }
    };
    Ok(prim)
}

/// List the registered primitive names.
pub fn available_primitives() -> &'static [&'static str] {
    PRIMITIVE_NAMES
}

/// Resolve a primitive name to its metadata (contract, hyperparameter
/// domains…) without keeping the instance. This is what `sintel-analyze`
/// uses to check templates statically.
pub fn primitive_meta(name: &str) -> Result<crate::primitive::PrimitiveMeta> {
    Ok(build_primitive(name)?.meta().clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registered_name_builds() {
        for name in available_primitives() {
            let prim = build_primitive(name).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(&prim.meta().name, name, "meta name mismatch for {name}");
        }
    }

    #[test]
    fn unknown_name_errors() {
        assert!(build_primitive("flux_capacitor").is_err());
    }

    #[test]
    fn metadata_engine_ordering_is_consistent() {
        use crate::primitive::Engine;
        // Preprocessing primitives come first in the registry list, then
        // modeling, then postprocessing — mirrors pipeline order.
        let engines: Vec<Engine> = available_primitives()
            .iter()
            .map(|n| build_primitive(n).unwrap().meta().engine)
            .collect();
        let first_model = engines.iter().position(|e| *e == Engine::Modeling).unwrap();
        let first_post = engines.iter().position(|e| *e == Engine::Postprocessing).unwrap();
        assert!(engines[..first_model].iter().all(|e| *e == Engine::Preprocessing));
        assert!(first_model < first_post);
        assert!(engines[first_post..].iter().all(|e| *e == Engine::Postprocessing));
    }

    #[test]
    fn default_hyperparams_are_valid() {
        for name in available_primitives() {
            let prim = build_primitive(name).unwrap();
            for spec in &prim.meta().hyperparams {
                assert!(
                    spec.range.contains(&spec.default),
                    "{name}.{} default out of range",
                    spec.name
                );
            }
        }
    }
}

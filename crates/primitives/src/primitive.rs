//! The [`Primitive`] trait and its metadata.

use crate::context::{Context, Value};
use crate::contract::Contract;
use crate::hyper::{HyperSpec, HyperValue};
use crate::{PrimitiveError, Result};

/// Which engine of the framework a primitive belongs to (paper Table 1 /
/// §2.2): every pipeline is a preprocessing → modeling → postprocessing
/// chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Engine {
    /// Data transformation before modeling (aggregate, impute, scale…).
    Preprocessing,
    /// Signal prediction / reconstruction.
    Modeling,
    /// Error calculation and anomaly extraction.
    Postprocessing,
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Engine::Preprocessing => write!(f, "preprocessing"),
            Engine::Modeling => write!(f, "modeling"),
            Engine::Postprocessing => write!(f, "postprocessing"),
        }
    }
}

/// Primitive metadata: the annotations the paper attaches to every
/// primitive (name, documentation, engine category, declared
/// hyperparameters, and the context slots consumed/produced).
#[derive(Debug, Clone)]
pub struct PrimitiveMeta {
    /// Registry name (e.g. `"time_segments_aggregate"`).
    pub name: String,
    /// Engine category.
    pub engine: Engine,
    /// One-line documentation string.
    pub description: String,
    /// Context slots this primitive reads.
    pub inputs: Vec<String>,
    /// Context slots this primitive writes.
    pub outputs: Vec<String>,
    /// Declared hyperparameters.
    pub hyperparams: Vec<HyperSpec>,
    /// Static dataflow contract (per-phase reads/writes) consumed by
    /// `sintel-analyze`. Derived from `inputs`/`outputs`, refined via the
    /// builder methods where dataflow is conditional.
    pub contract: Contract,
}

impl PrimitiveMeta {
    /// Construct metadata.
    pub fn new(
        name: &str,
        engine: Engine,
        description: &str,
        inputs: &[&str],
        outputs: &[&str],
        hyperparams: Vec<HyperSpec>,
    ) -> Self {
        let inputs: Vec<String> = inputs.iter().map(|s| s.to_string()).collect();
        let outputs: Vec<String> = outputs.iter().map(|s| s.to_string()).collect();
        let contract = Contract::from_io(&inputs, &outputs);
        Self {
            name: name.to_string(),
            engine,
            description: description.to_string(),
            inputs,
            outputs,
            hyperparams,
            contract,
        }
    }

    /// Contract refinement: `slot` is read opportunistically, not required.
    pub fn optional_read(mut self, slot: &str) -> Self {
        self.contract = self.contract.optional_read(slot);
        self
    }

    /// Contract refinement: `slot` is read opportunistically during
    /// `fit`.
    pub fn optional_fit_read(mut self, slot: &str) -> Self {
        self.contract = self.contract.optional_fit_read(slot);
        self
    }

    /// Contract refinement: `slot` is consumed during `fit` only.
    pub fn fit_only_read(mut self, slot: &str) -> Self {
        self.contract = self.contract.fit_only_read(slot);
        self
    }

    /// Contract refinement: `slot` is an auxiliary (non-primary) output.
    pub fn auxiliary_write(mut self, slot: &str) -> Self {
        self.contract = self.contract.auxiliary_write(slot);
        self
    }

    /// Look up a hyperparameter spec by name.
    pub fn hyperparam(&self, name: &str) -> Option<&HyperSpec> {
        self.hyperparams.iter().find(|h| h.name == name)
    }

    /// Validate a value against the declared range.
    pub fn validate_hyperparam(&self, name: &str, value: &HyperValue) -> Result<()> {
        let spec = self.hyperparam(name).ok_or_else(|| {
            PrimitiveError::BadHyperparameter(format!(
                "'{}' has no hyperparameter '{name}'",
                self.name
            ))
        })?;
        if !spec.range.contains(value) {
            return Err(PrimitiveError::BadHyperparameter(format!(
                "value {value:?} out of range for '{}.{name}'",
                self.name
            )));
        }
        Ok(())
    }
}

/// A reusable pipeline building block (paper §2.2).
///
/// Lifecycle: construct via the [`crate::registry`], optionally override
/// hyperparameters, [`Primitive::fit`] on training context, then
/// [`Primitive::produce`] on (possibly different) detection context.
/// Stateless primitives implement only `produce`.
pub trait Primitive: Send {
    /// Metadata (name, engine, hyperparameters…).
    fn meta(&self) -> &PrimitiveMeta;

    /// Override one hyperparameter. Implementations must validate via
    /// [`PrimitiveMeta::validate_hyperparam`] (or stricter).
    fn set_hyperparam(&mut self, name: &str, value: HyperValue) -> Result<()>;

    /// Learn state from the training context (no-op by default).
    fn fit(&mut self, _ctx: &Context) -> Result<()> {
        Ok(())
    }

    /// Compute outputs from the context. Returns `(slot, value)` pairs
    /// that the executor writes back into the context.
    fn produce(&mut self, ctx: &Context) -> Result<Vec<(String, Value)>>;

    /// Incremental (streaming) production over a buffered chunk.
    ///
    /// The serving tier feeds a sliding-window context through this
    /// path instead of `produce`. The default implementation falls back
    /// to batch [`Primitive::produce`] over the buffered window, so
    /// every existing primitive works unchanged and batch `fit`/`detect`
    /// behaviour stays bitwise-identical (enforced by the streaming
    /// purity test). Primitives with genuinely incremental algorithms
    /// (rolling aggregates, online scalers, EWMA residuals) may
    /// override it to reuse state across chunks.
    fn update(&mut self, ctx: &Context) -> Result<Vec<(String, Value)>> {
        self.produce(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hyper::HyperSpec;

    #[test]
    fn engine_display() {
        assert_eq!(Engine::Preprocessing.to_string(), "preprocessing");
        assert_eq!(Engine::Modeling.to_string(), "modeling");
        assert_eq!(Engine::Postprocessing.to_string(), "postprocessing");
    }

    #[test]
    fn meta_hyperparam_lookup_and_validation() {
        let meta = PrimitiveMeta::new(
            "demo",
            Engine::Preprocessing,
            "a demo primitive",
            &["signal"],
            &["signal"],
            vec![HyperSpec::int("k", 1, 5, 2)],
        );
        assert!(meta.hyperparam("k").is_some());
        assert!(meta.hyperparam("missing").is_none());
        assert!(meta.validate_hyperparam("k", &HyperValue::Int(3)).is_ok());
        assert!(meta.validate_hyperparam("k", &HyperValue::Int(9)).is_err());
        assert!(meta.validate_hyperparam("zzz", &HyperValue::Int(1)).is_err());
    }
}

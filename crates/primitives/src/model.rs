//! Modeling primitives: wrappers exposing the `sintel-nn` and
//! `sintel-stats` models through the primitive interface.

use sintel_linalg::Matrix;
use sintel_nn::{DenseAutoencoder, LstmAutoencoder, LstmRegressor, TadGan, TrainConfig};
use sintel_stats::{spectral, Arima};

use crate::context::{Context, Value};
use crate::hyper::{HyperSpec, HyperValue};
use crate::primitive::{Engine, Primitive, PrimitiveMeta};
use crate::{PrimitiveError, Result};

fn algo(e: impl std::fmt::Display) -> PrimitiveError {
    PrimitiveError::Algorithm(e.to_string())
}

/// Infer `(window_size, channels)` from the window matrix + the signal.
fn window_shape(ctx: &Context, windows: &Matrix) -> Result<(usize, usize)> {
    if windows.rows() == 0 {
        return Err(PrimitiveError::Algorithm("no training windows".into()));
    }
    let channels = ctx.signal("signal").map(|s| s.num_channels()).unwrap_or(1);
    let flat = windows.cols();
    if !flat.is_multiple_of(channels) {
        return Err(PrimitiveError::Algorithm(format!(
            "window length {flat} not divisible by {channels} channels"
        )));
    }
    Ok((flat / channels, channels))
}

/// Shared training hyperparameters for the deep models.
fn train_specs(default_epochs: i64) -> Vec<HyperSpec> {
    vec![
        HyperSpec::int("hidden", 4, 64, 20),
        HyperSpec::int("epochs", 1, 200, default_epochs),
        HyperSpec::log_float("learning_rate", 1e-4, 1e-1, 8e-3),
        HyperSpec::int("batch_size", 8, 256, 64).fixed(),
        HyperSpec::int("seed", 0, 1_000_000, 0).fixed(),
    ]
}

#[derive(Debug, Clone, Copy)]
struct TrainHypers {
    hidden: usize,
    epochs: usize,
    learning_rate: f64,
    batch_size: usize,
    seed: u64,
}

impl TrainHypers {
    fn new(epochs: usize) -> Self {
        Self { hidden: 20, epochs, learning_rate: 8e-3, batch_size: 64, seed: 0 }
    }

    fn set(&mut self, name: &str, value: &HyperValue) -> Result<bool> {
        match name {
            "hidden" => self.hidden = value.as_int()? as usize,
            "epochs" => self.epochs = value.as_int()? as usize,
            "learning_rate" => self.learning_rate = value.as_float()?,
            "batch_size" => self.batch_size = value.as_int()? as usize,
            "seed" => self.seed = value.as_int()? as u64,
            _ => return Ok(false),
        }
        Ok(true)
    }

    fn config(&self) -> TrainConfig {
        TrainConfig {
            epochs: self.epochs,
            batch_size: self.batch_size,
            learning_rate: self.learning_rate,
            seed: self.seed,
        }
    }
}

// ---------------------------------------------------------------------
// LSTM regressor (LSTM DT modeling step)
// ---------------------------------------------------------------------

/// Double-stacked LSTM next-value predictor (`keras.Sequential` stand-in
/// of Figure 2a).
pub struct LstmRegressorPrimitive {
    meta: PrimitiveMeta,
    hypers: TrainHypers,
    model: Option<LstmRegressor>,
}

impl LstmRegressorPrimitive {
    /// Create with default hyperparameters.
    pub fn new() -> Self {
        Self {
            meta: PrimitiveMeta::new(
                "lstm_regressor",
                Engine::Modeling,
                "double-stacked LSTM predicting the next value of each window",
                &["windows", "targets"],
                &["predictions"],
                train_specs(8),
            )
            // targets are only consumed while training; produce runs on
            // windows alone.
            .fit_only_read("targets")
            // window_shape probes the signal for its channel count.
            .optional_fit_read("signal"),
            hypers: TrainHypers::new(8),
            model: None,
        }
    }
}

impl Default for LstmRegressorPrimitive {
    fn default() -> Self {
        Self::new()
    }
}

impl Primitive for LstmRegressorPrimitive {
    fn meta(&self) -> &PrimitiveMeta {
        &self.meta
    }

    fn set_hyperparam(&mut self, name: &str, value: HyperValue) -> Result<()> {
        self.meta.validate_hyperparam(name, &value)?;
        self.hypers.set(name, &value)?;
        Ok(())
    }

    fn fit(&mut self, ctx: &Context) -> Result<()> {
        let windows = ctx.windows("windows")?;
        let targets = ctx.series("targets")?;
        let (window, channels) = window_shape(ctx, windows)?;
        let mut model =
            LstmRegressor::new(window, channels, self.hypers.hidden, self.hypers.seed);
        model.fit(windows, targets, &self.hypers.config()).map_err(algo)?;
        self.model = Some(model);
        Ok(())
    }

    fn produce(&mut self, ctx: &Context) -> Result<Vec<(String, Value)>> {
        let model =
            self.model.as_ref().ok_or_else(|| PrimitiveError::NotFitted("lstm_regressor".into()))?;
        let windows = ctx.windows("windows")?;
        // Batched forward: validates shapes up front, fans out across
        // threads above the nn crate's size threshold, and returns
        // predictions in window order (bitwise-equal to a serial loop).
        let preds = model.predict_batch(windows).map_err(algo)?;
        Ok(vec![("predictions".into(), Value::Series(preds))])
    }
}

// ---------------------------------------------------------------------
// ARIMA
// ---------------------------------------------------------------------

/// ARIMA forecaster (operates on the preprocessed signal directly; emits
/// aligned predictions, targets and timestamps).
pub struct ArimaPrimitive {
    meta: PrimitiveMeta,
    p: usize,
    d: usize,
    q: usize,
    model: Option<Arima>,
}

impl ArimaPrimitive {
    /// Create with ARIMA(5, 0, 1) defaults.
    pub fn new() -> Self {
        Self {
            meta: PrimitiveMeta::new(
                "arima",
                Engine::Modeling,
                "ARIMA(p, d, q) one-step-ahead forecaster",
                &["signal"],
                &["predictions", "targets", "index_timestamps"],
                vec![
                    HyperSpec::int("p", 1, 12, 5),
                    HyperSpec::int("d", 0, 2, 0),
                    HyperSpec::int("q", 0, 6, 1),
                ],
            ),
            p: 5,
            d: 0,
            q: 1,
            model: None,
        }
    }
}

impl Default for ArimaPrimitive {
    fn default() -> Self {
        Self::new()
    }
}

impl Primitive for ArimaPrimitive {
    fn meta(&self) -> &PrimitiveMeta {
        &self.meta
    }

    fn set_hyperparam(&mut self, name: &str, value: HyperValue) -> Result<()> {
        self.meta.validate_hyperparam(name, &value)?;
        match name {
            "p" => self.p = value.as_int()? as usize,
            "d" => self.d = value.as_int()? as usize,
            "q" => self.q = value.as_int()? as usize,
            other => {
                return Err(crate::PrimitiveError::BadHyperparameter(format!(
                    "'arima' cannot apply hyperparameter '{other}'"
                )))
            }
        }
        Ok(())
    }

    fn fit(&mut self, ctx: &Context) -> Result<()> {
        let signal = ctx.signal("signal")?;
        let model = Arima::fit(signal.values(), self.p, self.d, self.q).map_err(algo)?;
        self.model = Some(model);
        Ok(())
    }

    fn produce(&mut self, ctx: &Context) -> Result<Vec<(String, Value)>> {
        let model = self.model.as_ref().ok_or_else(|| PrimitiveError::NotFitted("arima".into()))?;
        let signal = ctx.signal("signal")?;
        let (preds, offset) = model.predict_series(signal.values()).map_err(algo)?;
        let targets = signal.values()[offset..].to_vec();
        let ts = signal.timestamps()[offset..].to_vec();
        Ok(vec![
            ("predictions".into(), Value::Series(preds)),
            ("targets".into(), Value::Series(targets)),
            ("index_timestamps".into(), Value::Timestamps(ts)),
        ])
    }
}

// ---------------------------------------------------------------------
// Autoencoders
// ---------------------------------------------------------------------

macro_rules! autoencoder_primitive {
    ($name:ident, $model:ty, $reg_name:literal, $docstring:literal, $extra_latent:expr, $epochs:expr) => {
        #[doc = $docstring]
        pub struct $name {
            meta: PrimitiveMeta,
            hypers: TrainHypers,
            // Only autoencoders with an explicit bottleneck read this.
            #[allow(dead_code)]
            latent: usize,
            model: Option<$model>,
        }

        impl $name {
            /// Create with default hyperparameters.
            pub fn new() -> Self {
                let mut specs = train_specs($epochs);
                if $extra_latent {
                    specs.push(HyperSpec::int("latent", 2, 32, 5));
                }
                Self {
                    meta: PrimitiveMeta::new(
                        $reg_name,
                        Engine::Modeling,
                        $docstring,
                        &["windows"],
                        &["reconstructions"],
                        specs,
                    )
                    // window_shape probes the signal for its channel count.
                    .optional_fit_read("signal"),
                    hypers: TrainHypers::new($epochs as usize),
                    latent: 5,
                    model: None,
                }
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new()
            }
        }
    };
}

autoencoder_primitive!(
    LstmAutoencoderPrimitive,
    LstmAutoencoder,
    "lstm_autoencoder",
    "sequence-to-sequence LSTM autoencoder reconstructing each window",
    false,
    8
);

impl Primitive for LstmAutoencoderPrimitive {
    fn meta(&self) -> &PrimitiveMeta {
        &self.meta
    }

    fn set_hyperparam(&mut self, name: &str, value: HyperValue) -> Result<()> {
        self.meta.validate_hyperparam(name, &value)?;
        self.hypers.set(name, &value)?;
        Ok(())
    }

    fn fit(&mut self, ctx: &Context) -> Result<()> {
        let windows = ctx.windows("windows")?;
        let (window, channels) = window_shape(ctx, windows)?;
        let mut model =
            LstmAutoencoder::new(window, channels, self.hypers.hidden, self.hypers.seed);
        model.fit(windows, &self.hypers.config()).map_err(algo)?;
        self.model = Some(model);
        Ok(())
    }

    fn produce(&mut self, ctx: &Context) -> Result<Vec<(String, Value)>> {
        let model = self
            .model
            .as_ref()
            .ok_or_else(|| PrimitiveError::NotFitted("lstm_autoencoder".into()))?;
        let windows = ctx.windows("windows")?;
        // One flat arena for the whole batch: reconstructions have the
        // same shape as their inputs, so the output matrix is sized up
        // front and filled row by row (O(1) allocations modulo the
        // model's own scratch).
        let mut flat = Vec::with_capacity(windows.rows() * windows.cols());
        for w in windows.row_iter() {
            flat.extend_from_slice(&model.reconstruct(w).map_err(algo)?);
        }
        let recons = Matrix::from_vec(windows.rows(), windows.cols(), flat);
        Ok(vec![("reconstructions".into(), Value::Windows(recons))])
    }
}

autoencoder_primitive!(
    DenseAutoencoderPrimitive,
    DenseAutoencoder,
    "dense_autoencoder",
    "feed-forward autoencoder reconstructing each flattened window",
    true,
    12
);

impl Primitive for DenseAutoencoderPrimitive {
    fn meta(&self) -> &PrimitiveMeta {
        &self.meta
    }

    fn set_hyperparam(&mut self, name: &str, value: HyperValue) -> Result<()> {
        self.meta.validate_hyperparam(name, &value)?;
        if !self.hypers.set(name, &value)? && name == "latent" {
            self.latent = value.as_int()? as usize;
        }
        Ok(())
    }

    fn fit(&mut self, ctx: &Context) -> Result<()> {
        let windows = ctx.windows("windows")?;
        let (_, _) = window_shape(ctx, windows)?;
        let input_dim = windows.cols();
        let mut model =
            DenseAutoencoder::new(input_dim, self.hypers.hidden, self.latent, self.hypers.seed);
        model.fit(windows, &self.hypers.config()).map_err(algo)?;
        self.model = Some(model);
        Ok(())
    }

    fn produce(&mut self, ctx: &Context) -> Result<Vec<(String, Value)>> {
        let model = self
            .model
            .as_ref()
            .ok_or_else(|| PrimitiveError::NotFitted("dense_autoencoder".into()))?;
        let windows = ctx.windows("windows")?;
        // One flat arena for the whole batch: reconstructions have the
        // same shape as their inputs, so the output matrix is sized up
        // front and filled row by row (O(1) allocations modulo the
        // model's own scratch).
        let mut flat = Vec::with_capacity(windows.rows() * windows.cols());
        for w in windows.row_iter() {
            flat.extend_from_slice(&model.reconstruct(w).map_err(algo)?);
        }
        let recons = Matrix::from_vec(windows.rows(), windows.cols(), flat);
        Ok(vec![("reconstructions".into(), Value::Windows(recons))])
    }
}

// ---------------------------------------------------------------------
// TadGAN
// ---------------------------------------------------------------------

/// TadGAN adversarial reconstructor: emits reconstructions *and* critic
/// scores, blended downstream by `reconstruction_errors`.
pub struct TadGanPrimitive {
    meta: PrimitiveMeta,
    hypers: TrainHypers,
    latent: usize,
    model: Option<TadGan>,
}

impl TadGanPrimitive {
    /// Create with default hyperparameters.
    pub fn new() -> Self {
        let mut specs = train_specs(10);
        specs.push(HyperSpec::int("latent", 2, 32, 6));
        Self {
            meta: PrimitiveMeta::new(
                "tadgan",
                Engine::Modeling,
                "TadGAN: encoder/generator with Wasserstein critics",
                &["windows"],
                &["reconstructions", "critic_scores"],
                specs,
            )
            // window_shape probes the signal for its channel count.
            .optional_fit_read("signal"),
            hypers: TrainHypers::new(10),
            latent: 6,
            model: None,
        }
    }
}

impl Default for TadGanPrimitive {
    fn default() -> Self {
        Self::new()
    }
}

impl Primitive for TadGanPrimitive {
    fn meta(&self) -> &PrimitiveMeta {
        &self.meta
    }

    fn set_hyperparam(&mut self, name: &str, value: HyperValue) -> Result<()> {
        self.meta.validate_hyperparam(name, &value)?;
        if !self.hypers.set(name, &value)? && name == "latent" {
            self.latent = value.as_int()? as usize;
        }
        Ok(())
    }

    fn fit(&mut self, ctx: &Context) -> Result<()> {
        let windows = ctx.windows("windows")?;
        let (window, channels) = window_shape(ctx, windows)?;
        let mut model =
            TadGan::new(window, channels, self.hypers.hidden, self.latent, self.hypers.seed);
        model.fit(windows, &self.hypers.config()).map_err(algo)?;
        self.model = Some(model);
        Ok(())
    }

    fn produce(&mut self, ctx: &Context) -> Result<Vec<(String, Value)>> {
        let model =
            self.model.as_ref().ok_or_else(|| PrimitiveError::NotFitted("tadgan".into()))?;
        let windows = ctx.windows("windows")?;
        let mut flat = Vec::with_capacity(windows.rows() * windows.cols());
        let mut critics = Vec::with_capacity(windows.rows());
        for w in windows.row_iter() {
            flat.extend_from_slice(&model.reconstruct(w).map_err(algo)?);
            critics.push(model.critic_score(w).map_err(algo)?);
        }
        let recons = Matrix::from_vec(windows.rows(), windows.cols(), flat);
        Ok(vec![
            ("reconstructions".into(), Value::Windows(recons)),
            ("critic_scores".into(), Value::Series(critics)),
        ])
    }
}

// ---------------------------------------------------------------------
// MS Azure anomaly detection service (spectral residual stand-in)
// ---------------------------------------------------------------------

/// Local stand-in for the MS Azure Anomaly Detector pipeline: the
/// spectral-residual algorithm the service is built on (Ren et al., KDD
/// 2019). Consumes the signal, emits per-sample anomaly "errors" directly
/// (the service is a black box — no separate modeling/post stages).
pub struct AzureAnomalyService {
    meta: PrimitiveMeta,
    filter_window: usize,
    score_window: usize,
}

impl AzureAnomalyService {
    /// Create with the published defaults (q = 3, z = 21).
    pub fn new() -> Self {
        Self {
            meta: PrimitiveMeta::new(
                "azure_anomaly_service",
                Engine::Modeling,
                "spectral-residual saliency scoring (MS Azure AD stand-in)",
                &["signal"],
                &["errors", "error_timestamps"],
                vec![
                    HyperSpec::int("filter_window", 1, 16, 3),
                    HyperSpec::int("score_window", 4, 256, 21),
                ],
            ),
            filter_window: 3,
            score_window: 21,
        }
    }
}

impl Default for AzureAnomalyService {
    fn default() -> Self {
        Self::new()
    }
}

impl Primitive for AzureAnomalyService {
    fn meta(&self) -> &PrimitiveMeta {
        &self.meta
    }

    fn set_hyperparam(&mut self, name: &str, value: HyperValue) -> Result<()> {
        self.meta.validate_hyperparam(name, &value)?;
        match name {
            "filter_window" => self.filter_window = value.as_int()? as usize,
            "score_window" => self.score_window = value.as_int()? as usize,
            other => {
                return Err(crate::PrimitiveError::BadHyperparameter(format!(
                    "'azure_anomaly_service' cannot apply hyperparameter '{other}'"
                )))
            }
        }
        Ok(())
    }

    fn produce(&mut self, ctx: &Context) -> Result<Vec<(String, Value)>> {
        let signal = ctx.signal("signal")?;
        let scores = spectral::spectral_residual_scores(
            signal.values(),
            self.filter_window,
            self.score_window,
        );
        Ok(vec![
            ("errors".into(), Value::Series(scores)),
            ("error_timestamps".into(), Value::Timestamps(signal.timestamps().to_vec())),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sintel_timeseries::Signal;

    fn windowed_ctx(n: usize, window: usize, targets: bool) -> Context {
        let series: Vec<f64> =
            (0..n).map(|t| (std::f64::consts::TAU * t as f64 / 24.0).sin()).collect();
        let signal = Signal::from_values("s", series);
        let ws = sintel_timeseries::rolling_windows(&signal, window, 1, targets).unwrap();
        let mut ctx = Context::from_signal(signal);
        ctx.set("windows", Value::Windows(ws.windows));
        ctx.set("targets", Value::Series(ws.targets));
        ctx.set("index_timestamps", Value::Timestamps(ws.index_timestamps));
        ctx.set("first_index", Value::Indices(ws.first_index));
        ctx
    }

    #[test]
    fn lstm_regressor_fit_and_predict() {
        let ctx = windowed_ctx(150, 10, true);
        let mut prim = LstmRegressorPrimitive::new();
        prim.set_hyperparam("epochs", HyperValue::Int(3)).unwrap();
        prim.set_hyperparam("hidden", HyperValue::Int(8)).unwrap();
        prim.fit(&ctx).unwrap();
        let out = prim.produce(&ctx).unwrap();
        let Value::Series(preds) = &out[0].1 else { panic!() };
        assert_eq!(preds.len(), ctx.windows("windows").unwrap().rows());
        assert!(preds.iter().all(|p| p.is_finite()));
    }

    #[test]
    fn unfitted_model_errors() {
        let ctx = windowed_ctx(100, 8, true);
        let mut prim = LstmRegressorPrimitive::new();
        assert!(matches!(prim.produce(&ctx), Err(PrimitiveError::NotFitted(_))));
        let mut arima = ArimaPrimitive::new();
        assert!(matches!(arima.produce(&ctx), Err(PrimitiveError::NotFitted(_))));
    }

    #[test]
    fn arima_aligned_outputs() {
        let n = 400;
        let series: Vec<f64> =
            (0..n).map(|t| (std::f64::consts::TAU * t as f64 / 30.0).sin()).collect();
        let ctx = Context::from_signal(Signal::from_values("s", series));
        let mut prim = ArimaPrimitive::new();
        prim.fit(&ctx).unwrap();
        let out = prim.produce(&ctx).unwrap();
        let preds = out.iter().find(|(k, _)| k == "predictions").unwrap();
        let targets = out.iter().find(|(k, _)| k == "targets").unwrap();
        let ts = out.iter().find(|(k, _)| k == "index_timestamps").unwrap();
        let (Value::Series(p), Value::Series(t), Value::Timestamps(x)) =
            (&preds.1, &targets.1, &ts.1)
        else {
            panic!()
        };
        assert_eq!(p.len(), t.len());
        assert_eq!(p.len(), x.len());
        // ARIMA should track a clean sine closely.
        let mae: f64 =
            p.iter().zip(t).map(|(a, b)| (a - b).abs()).sum::<f64>() / p.len() as f64;
        assert!(mae < 0.05, "mae {mae}");
    }

    #[test]
    fn dense_autoencoder_reconstruction_shape() {
        let ctx = windowed_ctx(150, 12, false);
        let mut prim = DenseAutoencoderPrimitive::new();
        prim.set_hyperparam("epochs", HyperValue::Int(5)).unwrap();
        prim.fit(&ctx).unwrap();
        let out = prim.produce(&ctx).unwrap();
        let Value::Windows(recons) = &out[0].1 else { panic!() };
        assert_eq!(recons.rows(), ctx.windows("windows").unwrap().rows());
        assert_eq!(recons.cols(), 12);
    }

    #[test]
    fn lstm_autoencoder_runs() {
        let ctx = windowed_ctx(80, 8, false);
        let mut prim = LstmAutoencoderPrimitive::new();
        prim.set_hyperparam("epochs", HyperValue::Int(2)).unwrap();
        prim.set_hyperparam("hidden", HyperValue::Int(6)).unwrap();
        prim.fit(&ctx).unwrap();
        let out = prim.produce(&ctx).unwrap();
        let Value::Windows(recons) = &out[0].1 else { panic!() };
        assert_eq!(recons.cols(), 8);
    }

    #[test]
    fn tadgan_emits_critic_scores() {
        let ctx = windowed_ctx(80, 8, false);
        let mut prim = TadGanPrimitive::new();
        prim.set_hyperparam("epochs", HyperValue::Int(2)).unwrap();
        prim.set_hyperparam("hidden", HyperValue::Int(8)).unwrap();
        prim.fit(&ctx).unwrap();
        let out = prim.produce(&ctx).unwrap();
        assert!(out.iter().any(|(k, _)| k == "reconstructions"));
        let critics = out.iter().find(|(k, _)| k == "critic_scores").unwrap();
        let Value::Series(c) = &critics.1 else { panic!() };
        assert_eq!(c.len(), ctx.windows("windows").unwrap().rows());
    }

    #[test]
    fn azure_service_scores_signal() {
        let n = 300;
        let mut series: Vec<f64> =
            (0..n).map(|t| (std::f64::consts::TAU * t as f64 / 25.0).sin()).collect();
        series[200] += 10.0;
        let ctx = Context::from_signal(Signal::from_values("s", series));
        let mut prim = AzureAnomalyService::new();
        let out = prim.produce(&ctx).unwrap();
        let Value::Series(errors) = &out[0].1 else { panic!() };
        assert_eq!(errors.len(), n);
        let peak = sintel_common::argmax(errors).unwrap();
        assert!((peak as i64 - 200).abs() <= 3, "peak {peak}");
    }

    #[test]
    fn hyperparameter_validation() {
        let mut prim = LstmRegressorPrimitive::new();
        assert!(prim.set_hyperparam("hidden", HyperValue::Int(2)).is_err());
        assert!(prim.set_hyperparam("learning_rate", HyperValue::Float(0.5)).is_err());
        assert!(prim.set_hyperparam("learning_rate", HyperValue::Float(0.01)).is_ok());
    }
}

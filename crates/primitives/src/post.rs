//! Postprocessing primitives: error calculation and anomaly extraction.

use sintel_linalg::Matrix;
use sintel_common::{mean, stddev};
use sintel_stats::threshold::{dynamic_threshold, fixed_threshold, ThresholdParams};
use sintel_timeseries::window::overlap_average;
use sintel_timeseries::ScoredInterval;

use crate::context::{Context, Value};
use crate::hyper::{HyperSpec, HyperValue};
use crate::primitive::{Engine, Primitive, PrimitiveMeta};
use crate::{PrimitiveError, Result};

// ---------------------------------------------------------------------
// regression_errors
// ---------------------------------------------------------------------

/// Absolute point-wise difference `|x̂ - x|` between predictions and
/// targets (`regression_errors` of Figure 2a), optionally smoothed.
#[derive(Debug)]
pub struct RegressionErrors {
    meta: PrimitiveMeta,
    smooth: bool,
    smoothing_window: usize,
}

impl RegressionErrors {
    /// Create with smoothing on.
    pub fn new() -> Self {
        Self {
            meta: PrimitiveMeta::new(
                "regression_errors",
                Engine::Postprocessing,
                "absolute point-wise prediction error",
                &["predictions", "targets", "index_timestamps"],
                &["errors", "error_timestamps"],
                vec![
                    HyperSpec {
                        name: "smooth".into(),
                        range: crate::hyper::HyperRange::Flag,
                        default: HyperValue::Flag(true),
                        tunable: true,
                    },
                    HyperSpec::int("smoothing_window", 1, 200, 10),
                ],
            ),
            smooth: true,
            smoothing_window: 10,
        }
    }
}

impl Default for RegressionErrors {
    fn default() -> Self {
        Self::new()
    }
}

/// Centred moving average used for error smoothing.
fn smooth_series(xs: &[f64], window: usize) -> Vec<f64> {
    let n = xs.len();
    let w = window.max(1);
    let half = w / 2;
    (0..n)
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(n);
            mean(&xs[lo..hi])
        })
        .collect()
}

impl Primitive for RegressionErrors {
    fn meta(&self) -> &PrimitiveMeta {
        &self.meta
    }

    fn set_hyperparam(&mut self, name: &str, value: HyperValue) -> Result<()> {
        self.meta.validate_hyperparam(name, &value)?;
        match name {
            "smooth" => self.smooth = value.as_flag()?,
            "smoothing_window" => self.smoothing_window = value.as_int()? as usize,
            _ => unreachable!("validated above"),
        }
        Ok(())
    }

    fn produce(&mut self, ctx: &Context) -> Result<Vec<(String, Value)>> {
        let preds = ctx.series("predictions")?;
        let targets = ctx.series("targets")?;
        let ts = ctx.timestamps("index_timestamps")?;
        if preds.len() != targets.len() || preds.len() != ts.len() {
            return Err(PrimitiveError::Algorithm(format!(
                "misaligned predictions ({}) / targets ({}) / timestamps ({})",
                preds.len(),
                targets.len(),
                ts.len()
            )));
        }
        let mut errors: Vec<f64> =
            preds.iter().zip(targets).map(|(p, t)| (p - t).abs()).collect();
        if self.smooth {
            errors = smooth_series(&errors, self.smoothing_window);
        }
        Ok(vec![
            ("errors".into(), Value::Series(errors)),
            ("error_timestamps".into(), Value::Timestamps(ts.clone())),
        ])
    }
}

// ---------------------------------------------------------------------
// reconstruction_errors
// ---------------------------------------------------------------------

/// Per-sample reconstruction error: window reconstructions are unfolded
/// (overlap-averaged) back onto the signal, and `|x̂ - x|` computed. When
/// the modeling step also produced `critic_scores` (TadGAN), they are
/// blended in with weight `1 - alpha` after z-normalisation, mirroring
/// TadGAN's published scoring.
#[derive(Debug)]
pub struct ReconstructionErrors {
    meta: PrimitiveMeta,
    alpha: f64,
    smoothing_window: usize,
}

impl ReconstructionErrors {
    /// Create with `alpha = 0.7` (reconstruction-dominant blend).
    pub fn new() -> Self {
        Self {
            meta: PrimitiveMeta::new(
                "reconstruction_errors",
                Engine::Postprocessing,
                "overlap-averaged reconstruction error (critic-aware)",
                &["reconstructions", "first_index", "signal"],
                &["errors", "error_timestamps"],
                vec![
                    HyperSpec::float("alpha", 0.0, 1.0, 0.7),
                    HyperSpec::int("smoothing_window", 1, 200, 10),
                ],
            )
            // critic scores are blended in when a TadGAN-style model left
            // them in the context; plain autoencoders don't provide them.
            .optional_read("critic_scores"),
            alpha: 0.7,
            smoothing_window: 10,
        }
    }
}

impl Default for ReconstructionErrors {
    fn default() -> Self {
        Self::new()
    }
}

fn znorm(xs: &[f64]) -> Vec<f64> {
    let mu = mean(xs);
    let sigma = stddev(xs).max(1e-12);
    xs.iter().map(|x| (x - mu) / sigma).collect()
}

impl Primitive for ReconstructionErrors {
    fn meta(&self) -> &PrimitiveMeta {
        &self.meta
    }

    fn set_hyperparam(&mut self, name: &str, value: HyperValue) -> Result<()> {
        self.meta.validate_hyperparam(name, &value)?;
        match name {
            "alpha" => self.alpha = value.as_float()?,
            "smoothing_window" => self.smoothing_window = value.as_int()? as usize,
            _ => unreachable!("validated above"),
        }
        Ok(())
    }

    fn produce(&mut self, ctx: &Context) -> Result<Vec<(String, Value)>> {
        let recons = ctx.windows("reconstructions")?;
        let first_index = ctx.indices("first_index")?;
        let signal = ctx.signal("signal")?;
        if recons.rows() != first_index.len() {
            return Err(PrimitiveError::Algorithm(format!(
                "misaligned reconstructions ({}) / first_index ({})",
                recons.rows(),
                first_index.len()
            )));
        }
        if recons.rows() == 0 {
            return Ok(vec![
                ("errors".into(), Value::Series(Vec::new())),
                ("error_timestamps".into(), Value::Timestamps(Vec::new())),
            ]);
        }
        let channels = signal.num_channels();
        let window_size = recons.cols() / channels;
        // Unfold the first channel of the reconstructions into one flat
        // arena (rows x window_size) sized up front.
        let mut fc_flat = Vec::with_capacity(recons.rows() * window_size);
        for r in recons.row_iter() {
            fc_flat.extend(r.iter().step_by(channels).copied());
        }
        let first_channel = Matrix::from_vec(recons.rows(), window_size, fc_flat);
        let merged = overlap_average(&first_channel, first_index, signal.len());
        let mut errors: Vec<f64> = merged
            .iter()
            .zip(signal.values())
            .map(|(rec, actual)| if rec.is_nan() { 0.0 } else { (rec - actual).abs() })
            .collect();
        errors = smooth_series(&errors, self.smoothing_window);

        // Optional critic blend (TadGAN): spread each window's critic
        // score over its samples, z-normalise both parts, combine.
        if self.alpha < 1.0 {
            if let Ok(critics) = ctx.series("critic_scores") {
                if critics.len() == recons.rows() {
                    // Each window's critic score, spread over its samples.
                    let mut pw_flat = Vec::with_capacity(critics.len() * window_size);
                    for &c in critics {
                        pw_flat.extend(std::iter::repeat_n(c, window_size));
                    }
                    let per_window = Matrix::from_vec(critics.len(), window_size, pw_flat);
                    let critic_per_sample =
                        overlap_average(&per_window, first_index, signal.len());
                    let critic_filled: Vec<f64> = critic_per_sample
                        .iter()
                        .map(|c| if c.is_nan() { 0.0 } else { *c })
                        .collect();
                    // Critic outputs are high for "normal" windows; negate.
                    let critic_anom: Vec<f64> = znorm(&critic_filled).iter().map(|c| -c).collect();
                    let err_z = znorm(&errors);
                    errors = err_z
                        .iter()
                        .zip(&critic_anom)
                        .map(|(e, c)| self.alpha * e + (1.0 - self.alpha) * c)
                        .collect();
                    // Shift to non-negative for the thresholder.
                    let min = errors.iter().copied().fold(f64::INFINITY, f64::min);
                    errors.iter_mut().for_each(|e| *e -= min);
                }
            }
        }
        Ok(vec![
            ("errors".into(), Value::Series(errors)),
            ("error_timestamps".into(), Value::Timestamps(signal.timestamps().to_vec())),
        ])
    }
}

// ---------------------------------------------------------------------
// find_anomalies (dynamic threshold)
// ---------------------------------------------------------------------

/// Turn an error series into scored anomalous intervals using the
/// nonparametric dynamic threshold (`find_anomalies`, Hundman et al.).
#[derive(Debug)]
pub struct FindAnomalies {
    meta: PrimitiveMeta,
    params: ThresholdParams,
    window_fraction: f64,
    padding: usize,
}

impl FindAnomalies {
    /// Create with Hundman-style defaults (3 windows per signal, a small
    /// detection buffer around each sequence).
    pub fn new() -> Self {
        Self {
            meta: PrimitiveMeta::new(
                "find_anomalies",
                Engine::Postprocessing,
                "dynamic error threshold -> scored anomalous intervals",
                &["errors", "error_timestamps"],
                &["anomalies"],
                vec![
                    HyperSpec::float("smoothing_alpha", 0.01, 1.0, 0.2),
                    HyperSpec::float("z_min", 1.0, 6.0, 2.0),
                    HyperSpec::float("z_max", 6.0, 14.0, 10.0),
                    HyperSpec::float("min_percent_drop", 0.0, 0.5, 0.1),
                    HyperSpec::float("window_fraction", 0.1, 1.0, 0.34),
                    // Error smoothing and forecast models reacting at
                    // anomaly *boundaries* shift detections by a few
                    // samples; Hundman-style buffering compensates.
                    HyperSpec::int("padding", 0, 50, 8),
                ],
            ),
            params: ThresholdParams::default(),
            window_fraction: 0.34,
            padding: 8,
        }
    }
}

impl Default for FindAnomalies {
    fn default() -> Self {
        Self::new()
    }
}

impl Primitive for FindAnomalies {
    fn meta(&self) -> &PrimitiveMeta {
        &self.meta
    }

    fn set_hyperparam(&mut self, name: &str, value: HyperValue) -> Result<()> {
        self.meta.validate_hyperparam(name, &value)?;
        match name {
            "smoothing_alpha" => self.params.smoothing_alpha = value.as_float()?,
            "z_min" => self.params.z_min = value.as_float()?,
            "z_max" => self.params.z_max = value.as_float()?,
            "min_percent_drop" => self.params.min_percent_drop = value.as_float()?,
            "window_fraction" => self.window_fraction = value.as_float()?,
            "padding" => self.padding = value.as_int()? as usize,
            _ => unreachable!("validated above"),
        }
        Ok(())
    }

    fn produce(&mut self, ctx: &Context) -> Result<Vec<(String, Value)>> {
        let errors = ctx.series("errors")?;
        let ts = ctx.timestamps("error_timestamps")?;
        if errors.len() != ts.len() {
            return Err(PrimitiveError::Algorithm(format!(
                "misaligned errors ({}) / timestamps ({})",
                errors.len(),
                ts.len()
            )));
        }
        let mut params = self.params;
        params.window_size = ((errors.len() as f64 * self.window_fraction).ceil() as usize)
            .clamp(1, errors.len().max(1));
        let spans = dynamic_threshold(errors, &params)
            .map_err(|e| PrimitiveError::Algorithm(e.to_string()))?;
        let anomalies: Vec<ScoredInterval> = spans
            .iter()
            .map(|s| {
                let start = s.start.saturating_sub(self.padding);
                let end = (s.end + self.padding).min(ts.len() - 1);
                ScoredInterval::new(ts[start], ts[end], s.score)
                    .expect("spans are ordered")
            })
            .collect();
        // Padding can make neighbours touch; merge them.
        let anomalies = sintel_timeseries::interval::merge_scored(&anomalies, 0);
        Ok(vec![("anomalies".into(), Value::Intervals(anomalies))])
    }
}

// ---------------------------------------------------------------------
// fixed threshold (ablation baseline)
// ---------------------------------------------------------------------

/// Fixed `µ + k·σ` threshold over the error series — the ablation
/// baseline for `find_anomalies` and the thresholding stage of the Azure
/// pipeline.
#[derive(Debug)]
pub struct FixedThresholdPrimitive {
    meta: PrimitiveMeta,
    k: f64,
}

impl FixedThresholdPrimitive {
    /// Create with `k = 3`.
    pub fn new() -> Self {
        Self {
            meta: PrimitiveMeta::new(
                "fixed_threshold",
                Engine::Postprocessing,
                "fixed mean + k*std error threshold",
                &["errors", "error_timestamps"],
                &["anomalies"],
                vec![HyperSpec::float("k", 0.5, 10.0, 3.0)],
            ),
            k: 3.0,
        }
    }
}

impl Default for FixedThresholdPrimitive {
    fn default() -> Self {
        Self::new()
    }
}

impl Primitive for FixedThresholdPrimitive {
    fn meta(&self) -> &PrimitiveMeta {
        &self.meta
    }

    fn set_hyperparam(&mut self, name: &str, value: HyperValue) -> Result<()> {
        self.meta.validate_hyperparam(name, &value)?;
        self.k = value.as_float()?;
        Ok(())
    }

    fn produce(&mut self, ctx: &Context) -> Result<Vec<(String, Value)>> {
        let errors = ctx.series("errors")?;
        let ts = ctx.timestamps("error_timestamps")?;
        if errors.len() != ts.len() {
            return Err(PrimitiveError::Algorithm("misaligned errors/timestamps".into()));
        }
        let spans = fixed_threshold(errors, self.k)
            .map_err(|e| PrimitiveError::Algorithm(e.to_string()))?;
        let anomalies: Vec<ScoredInterval> = spans
            .iter()
            .map(|s| {
                ScoredInterval::new(ts[s.start], ts[s.end], s.score)
                    .expect("spans are ordered")
            })
            .collect();
        Ok(vec![("anomalies".into(), Value::Intervals(anomalies))])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sintel_timeseries::Signal;

    #[test]
    fn regression_errors_abs_diff() {
        let mut ctx = Context::new();
        ctx.set("predictions", Value::Series(vec![1.0, 2.0, 3.0]));
        ctx.set("targets", Value::Series(vec![1.5, 2.0, 1.0]));
        ctx.set("index_timestamps", Value::Timestamps(vec![10, 20, 30]));
        let mut prim = RegressionErrors::new();
        prim.set_hyperparam("smooth", HyperValue::Flag(false)).unwrap();
        let out = prim.produce(&ctx).unwrap();
        let Value::Series(errors) = &out[0].1 else { panic!() };
        assert_eq!(errors, &vec![0.5, 0.0, 2.0]);
    }

    #[test]
    fn regression_errors_smoothing_spreads_mass() {
        let mut ctx = Context::new();
        let mut preds = vec![0.0; 50];
        preds[25] = 10.0;
        ctx.set("predictions", Value::Series(preds));
        ctx.set("targets", Value::Series(vec![0.0; 50]));
        ctx.set("index_timestamps", Value::Timestamps((0..50).collect()));
        let mut prim = RegressionErrors::new();
        let out = prim.produce(&ctx).unwrap();
        let Value::Series(errors) = &out[0].1 else { panic!() };
        assert!(errors[25] < 10.0);
        assert!(errors[22] > 0.0);
    }

    #[test]
    fn regression_errors_misalignment_caught() {
        let mut ctx = Context::new();
        ctx.set("predictions", Value::Series(vec![1.0]));
        ctx.set("targets", Value::Series(vec![1.0, 2.0]));
        ctx.set("index_timestamps", Value::Timestamps(vec![1]));
        assert!(RegressionErrors::new().produce(&ctx).is_err());
    }

    #[test]
    fn reconstruction_errors_unfold() {
        // Signal 0..6, windows of 3, reconstruction == input -> zero error.
        let signal = Signal::from_values("s", (0..6).map(|i| i as f64).collect());
        let ws = sintel_timeseries::rolling_windows(&signal, 3, 1, false).unwrap();
        let mut ctx = Context::from_signal(signal);
        ctx.set("reconstructions", Value::Windows(ws.windows.clone()));
        ctx.set("first_index", Value::Indices(ws.first_index));
        let mut prim = ReconstructionErrors::new();
        prim.set_hyperparam("smoothing_window", HyperValue::Int(1)).unwrap();
        let out = prim.produce(&ctx).unwrap();
        let Value::Series(errors) = &out[0].1 else { panic!() };
        assert_eq!(errors.len(), 6);
        assert!(errors.iter().all(|&e| e.abs() < 1e-12));
    }

    #[test]
    fn reconstruction_errors_with_critic_blend() {
        let signal = Signal::from_values("s", (0..8).map(|i| i as f64).collect());
        let ws = sintel_timeseries::rolling_windows(&signal, 3, 1, false).unwrap();
        let n_windows = ws.windows.rows();
        let mut ctx = Context::from_signal(signal);
        ctx.set("reconstructions", Value::Windows(ws.windows.clone()));
        ctx.set("first_index", Value::Indices(ws.first_index));
        // Critic dislikes the last window.
        let mut critics = vec![1.0; n_windows];
        critics[n_windows - 1] = -5.0;
        ctx.set("critic_scores", Value::Series(critics));
        let mut prim = ReconstructionErrors::new();
        prim.set_hyperparam("alpha", HyperValue::Float(0.5)).unwrap();
        let out = prim.produce(&ctx).unwrap();
        let Value::Series(errors) = &out[0].1 else { panic!() };
        // The critic-flagged tail should carry the largest blended error.
        let peak = sintel_common::argmax(errors).unwrap();
        assert!(peak >= 5, "peak {peak}, errors {errors:?}");
        assert!(errors.iter().all(|&e| e >= 0.0));
    }

    #[test]
    fn find_anomalies_maps_to_timestamps() {
        let mut errors = vec![0.1; 300];
        // Mild noise so the threshold sweep has structure.
        for (i, e) in errors.iter_mut().enumerate() {
            *e += 0.01 * ((i % 7) as f64);
        }
        for e in &mut errors[100..110] {
            *e += 5.0;
        }
        let ts: Vec<i64> = (0..300).map(|i| 1000 + i * 10).collect();
        let mut ctx = Context::new();
        ctx.set("errors", Value::Series(errors));
        ctx.set("error_timestamps", Value::Timestamps(ts));
        let mut prim = FindAnomalies::new();
        let out = prim.produce(&ctx).unwrap();
        let Value::Intervals(anoms) = &out[0].1 else { panic!() };
        assert_eq!(anoms.len(), 1, "{anoms:?}");
        let iv = anoms[0].interval;
        assert!(iv.start >= 1900 && iv.start <= 2050, "{iv:?}");
        assert!(anoms[0].score > 0.0);
    }

    #[test]
    fn fixed_threshold_primitive() {
        let mut errors = vec![1.0; 100];
        errors[40] = 20.0;
        let mut ctx = Context::new();
        ctx.set("errors", Value::Series(errors));
        ctx.set("error_timestamps", Value::Timestamps((0..100).collect()));
        let mut prim = FixedThresholdPrimitive::new();
        let out = prim.produce(&ctx).unwrap();
        let Value::Intervals(anoms) = &out[0].1 else { panic!() };
        assert_eq!(anoms.len(), 1);
        assert_eq!(anoms[0].interval.start, 40);
    }

    #[test]
    fn empty_reconstructions_yield_empty_errors() {
        let signal = Signal::from_values("s", vec![1.0, 2.0]);
        let mut ctx = Context::from_signal(signal);
        ctx.set("reconstructions", Value::Windows(Matrix::zeros(0, 3)));
        ctx.set("first_index", Value::Indices(vec![]));
        let out = ReconstructionErrors::new().produce(&ctx).unwrap();
        let Value::Series(errors) = &out[0].1 else { panic!() };
        assert!(errors.is_empty());
    }
}

//! Extension primitives beyond the paper's core pipeline set.
//!
//! These implement what §5 of the paper prescribes or references:
//!
//! * [`Detrend`] — seasonal-trend decomposition preprocessing ("feature
//!   shift-elimination techniques such as decomposition");
//! * [`RemoveLevelShifts`] — change-point segmentation preprocessing
//!   ("segmenting signals using change point detection"), the antidote
//!   to the Yahoo A4 distribution shift;
//! * [`MatrixProfilePrimitive`] — a Stumpy-style discord detector;
//! * [`HoltWintersPrimitive`] — the HWDS forecaster of reference [37].
//!
//! Because primitives are modular, each drops into existing pipelines
//! without modifying them — the extensibility claim (C2) in action.

use sintel_stats::{change_points, decompose, estimate_period, matrix_profile, HoltWinters};
use sintel_timeseries::Signal;

use crate::context::{Context, Value};
use crate::hyper::{HyperSpec, HyperValue};
use crate::primitive::{Engine, Primitive, PrimitiveMeta};
use crate::{PrimitiveError, Result};

fn algo(e: impl std::fmt::Display) -> PrimitiveError {
    PrimitiveError::Algorithm(e.to_string())
}

// ---------------------------------------------------------------------
// detrend (decomposition preprocessing)
// ---------------------------------------------------------------------

/// Remove trend + seasonality from the signal, leaving residual + level.
///
/// `period = 0` auto-estimates the dominant seasonality from the
/// training signal's autocorrelation at fit time; if nothing periodic is
/// found, the primitive passes the signal through unchanged.
#[derive(Debug)]
pub struct Detrend {
    meta: PrimitiveMeta,
    period: usize,
    fitted_period: Option<usize>,
}

impl Detrend {
    /// Create with automatic period estimation.
    pub fn new() -> Self {
        Self {
            meta: PrimitiveMeta::new(
                "detrend",
                Engine::Preprocessing,
                "subtract an STL-style trend + seasonal component",
                &["signal"],
                &["signal"],
                vec![HyperSpec::int("period", 0, 10_000, 0).fixed()],
            ),
            period: 0,
            fitted_period: None,
        }
    }
}

impl Default for Detrend {
    fn default() -> Self {
        Self::new()
    }
}

impl Primitive for Detrend {
    fn meta(&self) -> &PrimitiveMeta {
        &self.meta
    }

    fn set_hyperparam(&mut self, name: &str, value: HyperValue) -> Result<()> {
        self.meta.validate_hyperparam(name, &value)?;
        self.period = value.as_int()? as usize;
        Ok(())
    }

    fn fit(&mut self, ctx: &Context) -> Result<()> {
        let signal = ctx.signal("signal")?;
        self.fitted_period = if self.period >= 2 {
            Some(self.period)
        } else {
            estimate_period(signal.values(), 4, signal.len() / 3)
        };
        Ok(())
    }

    fn produce(&mut self, ctx: &Context) -> Result<Vec<(String, Value)>> {
        let signal = ctx.signal("signal")?;
        let Some(period) = self.fitted_period else {
            // Nothing periodic: pass through.
            return Ok(vec![("signal".into(), Value::Signal(signal.clone()))]);
        };
        if signal.len() < 2 * period {
            return Ok(vec![("signal".into(), Value::Signal(signal.clone()))]);
        }
        let mut out = signal.clone();
        for c in 0..out.num_channels() {
            let level = sintel_common::mean(out.channel(c));
            let d = decompose(out.channel(c), period).map_err(algo)?;
            for (v, r) in out.channel_mut(c).iter_mut().zip(&d.residual) {
                *v = level + r;
            }
        }
        Ok(vec![("signal".into(), Value::Signal(out))])
    }
}

// ---------------------------------------------------------------------
// remove_level_shifts (change-point segmentation preprocessing)
// ---------------------------------------------------------------------

/// Detect change points and subtract each segment's mean, eliminating
/// permanent distribution shifts (Yahoo A4's failure mode, §5) while
/// leaving transient anomalies intact.
#[derive(Debug)]
pub struct RemoveLevelShifts {
    meta: PrimitiveMeta,
    penalty: f64,
    max_points: usize,
    min_segment: usize,
}

impl RemoveLevelShifts {
    /// Create with a conservative penalty (only strong shifts removed).
    pub fn new() -> Self {
        Self {
            meta: PrimitiveMeta::new(
                "remove_level_shifts",
                Engine::Preprocessing,
                "change-point segmentation + per-segment mean removal",
                &["signal"],
                &["signal"],
                vec![
                    HyperSpec::float("penalty", 0.001, 1.0, 0.08),
                    HyperSpec::int("max_points", 1, 16, 4),
                    // Segments shorter than this are transient anomalies,
                    // not distribution shifts — leave them intact.
                    HyperSpec::int("min_segment", 8, 1000, 60),
                ],
            ),
            penalty: 0.08,
            max_points: 4,
            min_segment: 60,
        }
    }
}

impl Default for RemoveLevelShifts {
    fn default() -> Self {
        Self::new()
    }
}

impl Primitive for RemoveLevelShifts {
    fn meta(&self) -> &PrimitiveMeta {
        &self.meta
    }

    fn set_hyperparam(&mut self, name: &str, value: HyperValue) -> Result<()> {
        self.meta.validate_hyperparam(name, &value)?;
        match name {
            "penalty" => self.penalty = value.as_float()?,
            "max_points" => self.max_points = value.as_int()? as usize,
            "min_segment" => self.min_segment = value.as_int()? as usize,
            _ => unreachable!("validated above"),
        }
        Ok(())
    }

    fn produce(&mut self, ctx: &Context) -> Result<Vec<(String, Value)>> {
        let signal = ctx.signal("signal")?;
        let mut out = signal.clone();
        for c in 0..out.num_channels() {
            let global_mean = sintel_common::mean(out.channel(c));
            let cps = change_points(out.channel(c), self.penalty, self.max_points);
            // Keep only change points that leave both neighbouring
            // segments long: short segments are transient anomalies the
            // detector must still see, not distribution shifts.
            let mut bounds = vec![0usize];
            for &cp in &cps {
                if cp >= bounds.last().expect("non-empty") + self.min_segment
                    && cp + self.min_segment <= out.len()
                {
                    bounds.push(cp);
                }
            }
            bounds.push(out.len());
            let values = out.channel_mut(c);
            for w in bounds.windows(2) {
                let seg_mean = sintel_common::mean(&values[w[0]..w[1]]);
                for v in &mut values[w[0]..w[1]] {
                    *v = *v - seg_mean + global_mean;
                }
            }
        }
        Ok(vec![("signal".into(), Value::Signal(out))])
    }
}

// ---------------------------------------------------------------------
// matrix profile (modeling)
// ---------------------------------------------------------------------

/// Stumpy-style discord detection: the matrix profile *is* the error
/// series (distance to nearest neighbour), fed straight into the
/// thresholding postprocessing.
#[derive(Debug)]
pub struct MatrixProfilePrimitive {
    meta: PrimitiveMeta,
    window: usize,
}

impl MatrixProfilePrimitive {
    /// Create with a 32-sample subsequence length.
    pub fn new() -> Self {
        Self {
            meta: PrimitiveMeta::new(
                "matrix_profile",
                Engine::Modeling,
                "nearest-neighbour subsequence distances (discord mining)",
                &["signal"],
                &["errors", "error_timestamps"],
                vec![HyperSpec::int("window", 8, 256, 32)],
            ),
            window: 32,
        }
    }
}

impl Default for MatrixProfilePrimitive {
    fn default() -> Self {
        Self::new()
    }
}

impl Primitive for MatrixProfilePrimitive {
    fn meta(&self) -> &PrimitiveMeta {
        &self.meta
    }

    fn set_hyperparam(&mut self, name: &str, value: HyperValue) -> Result<()> {
        self.meta.validate_hyperparam(name, &value)?;
        self.window = value.as_int()? as usize;
        Ok(())
    }

    fn produce(&mut self, ctx: &Context) -> Result<Vec<(String, Value)>> {
        let signal = ctx.signal("signal")?;
        let mp = matrix_profile(signal.values(), self.window).map_err(algo)?;
        let ts = signal.timestamps()[..mp.profile.len()].to_vec();
        Ok(vec![
            ("errors".into(), Value::Series(mp.profile)),
            ("error_timestamps".into(), Value::Timestamps(ts)),
        ])
    }
}

// ---------------------------------------------------------------------
// Holt–Winters (modeling)
// ---------------------------------------------------------------------

/// Additive Holt–Winters one-step forecaster (HWDS of reference [37]).
/// `period = 0` auto-estimates the seasonality at fit time.
#[derive(Debug)]
pub struct HoltWintersPrimitive {
    meta: PrimitiveMeta,
    alpha: f64,
    beta: f64,
    gamma: f64,
    period: usize,
    fitted: Option<HoltWinters>,
}

impl HoltWintersPrimitive {
    /// Create with conventional smoothing defaults and auto period.
    pub fn new() -> Self {
        Self {
            meta: PrimitiveMeta::new(
                "holt_winters",
                Engine::Modeling,
                "additive Holt-Winters one-step forecaster",
                &["signal"],
                &["predictions", "targets", "index_timestamps"],
                vec![
                    HyperSpec::float("alpha", 0.01, 1.0, 0.3),
                    HyperSpec::float("beta", 0.0, 1.0, 0.05),
                    HyperSpec::float("gamma", 0.0, 1.0, 0.2),
                    HyperSpec::int("period", 0, 10_000, 0).fixed(),
                ],
            ),
            alpha: 0.3,
            beta: 0.05,
            gamma: 0.2,
            period: 0,
            fitted: None,
        }
    }
}

impl Default for HoltWintersPrimitive {
    fn default() -> Self {
        Self::new()
    }
}

impl Primitive for HoltWintersPrimitive {
    fn meta(&self) -> &PrimitiveMeta {
        &self.meta
    }

    fn set_hyperparam(&mut self, name: &str, value: HyperValue) -> Result<()> {
        self.meta.validate_hyperparam(name, &value)?;
        match name {
            "alpha" => self.alpha = value.as_float()?,
            "beta" => self.beta = value.as_float()?,
            "gamma" => self.gamma = value.as_float()?,
            "period" => self.period = value.as_int()? as usize,
            _ => unreachable!("validated above"),
        }
        Ok(())
    }

    fn fit(&mut self, ctx: &Context) -> Result<()> {
        let signal = ctx.signal("signal")?;
        let period = if self.period >= 2 {
            self.period
        } else {
            estimate_period(signal.values(), 4, signal.len() / 3).unwrap_or(24)
        };
        self.fitted = Some(
            HoltWinters::new(self.alpha, self.beta, self.gamma, period).map_err(algo)?,
        );
        Ok(())
    }

    fn produce(&mut self, ctx: &Context) -> Result<Vec<(String, Value)>> {
        let model =
            self.fitted.as_ref().ok_or_else(|| PrimitiveError::NotFitted("holt_winters".into()))?;
        let signal: &Signal = ctx.signal("signal")?;
        let (preds, offset) = model.predict_series(signal.values()).map_err(algo)?;
        Ok(vec![
            ("predictions".into(), Value::Series(preds)),
            ("targets".into(), Value::Series(signal.values()[offset..].to_vec())),
            (
                "index_timestamps".into(),
                Value::Timestamps(signal.timestamps()[offset..].to_vec()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sintel_common::SintelRng;

    fn seasonal_with_shift() -> Signal {
        let mut rng = SintelRng::seed_from_u64(4);
        let mut values: Vec<f64> = (0..600)
            .map(|t| {
                (std::f64::consts::TAU * t as f64 / 24.0).sin() + rng.normal(0.0, 0.05)
            })
            .collect();
        for v in &mut values[400..] {
            *v += 5.0; // permanent level shift (A4-style change point)
        }
        Signal::from_values("shifty", values)
    }

    #[test]
    fn detrend_flattens_seasonality() {
        let signal = Signal::from_values(
            "s",
            (0..480)
                .map(|t| 10.0 + 3.0 * (std::f64::consts::TAU * t as f64 / 24.0).sin())
                .collect(),
        );
        let ctx = Context::from_signal(signal.clone());
        let mut prim = Detrend::new();
        prim.fit(&ctx).unwrap();
        let out = prim.produce(&ctx).unwrap();
        let Value::Signal(flat) = &out[0].1 else { panic!() };
        assert!(
            sintel_common::stddev(flat.values()) < 0.3 * sintel_common::stddev(signal.values()),
            "seasonality not removed"
        );
    }

    #[test]
    fn detrend_passes_through_aperiodic_data() {
        let mut rng = SintelRng::seed_from_u64(8);
        let signal =
            Signal::from_values("noise", (0..300).map(|_| rng.normal(0.0, 1.0)).collect());
        let ctx = Context::from_signal(signal.clone());
        let mut prim = Detrend::new();
        prim.fit(&ctx).unwrap();
        let out = prim.produce(&ctx).unwrap();
        let Value::Signal(same) = &out[0].1 else { panic!() };
        assert_eq!(same.values(), signal.values());
    }

    #[test]
    fn remove_level_shifts_eliminates_change_point() {
        let signal = seasonal_with_shift();
        let ctx = Context::from_signal(signal.clone());
        let mut prim = RemoveLevelShifts::new();
        let out = prim.produce(&ctx).unwrap();
        let Value::Signal(fixed) = &out[0].1 else { panic!() };
        // After removal the two halves have comparable means.
        let before = sintel_common::mean(&fixed.values()[..350]);
        let after = sintel_common::mean(&fixed.values()[450..]);
        assert!(
            (before - after).abs() < 0.5,
            "shift not removed: {before} vs {after}"
        );
        // The untreated signal's halves differ by ~5.
        let raw_diff = sintel_common::mean(&signal.values()[450..])
            - sintel_common::mean(&signal.values()[..350]);
        assert!(raw_diff > 4.0);
    }

    #[test]
    fn matrix_profile_primitive_flags_discord() {
        let mut values: Vec<f64> =
            (0..500).map(|t| (std::f64::consts::TAU * t as f64 / 25.0).sin()).collect();
        for v in &mut values[250..270] {
            *v = 2.0;
        }
        let ctx = Context::from_signal(Signal::from_values("s", values));
        let mut prim = MatrixProfilePrimitive::new();
        prim.set_hyperparam("window", HyperValue::Int(25)).unwrap();
        let out = prim.produce(&ctx).unwrap();
        let Value::Series(errors) = &out[0].1 else { panic!() };
        let peak = sintel_common::argmax(errors).unwrap();
        assert!((225..=275).contains(&peak), "peak at {peak}");
    }

    #[test]
    fn holt_winters_primitive_fit_produce() {
        let signal = Signal::from_values(
            "s",
            (0..400)
                .map(|t| 5.0 + 2.0 * (std::f64::consts::TAU * t as f64 / 20.0).sin())
                .collect(),
        );
        let ctx = Context::from_signal(signal);
        let mut prim = HoltWintersPrimitive::new();
        assert!(matches!(prim.produce(&ctx), Err(PrimitiveError::NotFitted(_))));
        prim.fit(&ctx).unwrap();
        let out = prim.produce(&ctx).unwrap();
        let (Value::Series(preds), Value::Series(targets)) = (&out[0].1, &out[1].1) else {
            panic!()
        };
        assert_eq!(preds.len(), targets.len());
        let mae: f64 = preds
            .iter()
            .zip(targets)
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            / preds.len() as f64;
        assert!(mae < 0.3, "mae {mae}");
    }
}

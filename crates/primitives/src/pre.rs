//! Preprocessing primitives (Figure 2a, left of the LSTM block).

use sintel_common::mean;
use sintel_timeseries::{resample, rolling_windows, Aggregation};

use crate::context::{Context, Value};
use crate::hyper::{HyperSpec, HyperValue};
use crate::primitive::{Engine, Primitive, PrimitiveMeta};
use crate::{PrimitiveError, Result};

fn algo(e: impl std::fmt::Display) -> PrimitiveError {
    PrimitiveError::Algorithm(e.to_string())
}

// ---------------------------------------------------------------------
// time_segments_aggregate
// ---------------------------------------------------------------------

/// Aggregate a raw signal into equi-spaced bins (`time_segments_aggregate`).
///
/// The `interval` hyperparameter of 0 means "auto": use the signal's
/// median sampling step, i.e. keep the native resolution while still
/// materialising gaps as NaN bins for the imputer.
#[derive(Debug)]
pub struct TimeSegmentsAggregate {
    meta: PrimitiveMeta,
    interval: i64,
    agg: Aggregation,
}

impl TimeSegmentsAggregate {
    /// Create with defaults (`interval = auto`, mean aggregation).
    pub fn new() -> Self {
        Self {
            meta: PrimitiveMeta::new(
                "time_segments_aggregate",
                Engine::Preprocessing,
                "aggregate a signal into equi-spaced time bins",
                &["signal"],
                &["signal"],
                vec![
                    HyperSpec::int("interval", 0, 1_000_000, 0).fixed(),
                    HyperSpec::choice("method", &["mean", "median", "max", "min", "last"], "mean"),
                ],
            ),
            interval: 0,
            agg: Aggregation::Mean,
        }
    }
}

impl Default for TimeSegmentsAggregate {
    fn default() -> Self {
        Self::new()
    }
}

impl Primitive for TimeSegmentsAggregate {
    fn meta(&self) -> &PrimitiveMeta {
        &self.meta
    }

    fn set_hyperparam(&mut self, name: &str, value: HyperValue) -> Result<()> {
        self.meta.validate_hyperparam(name, &value)?;
        match name {
            "interval" => self.interval = value.as_int()?,
            "method" => {
                self.agg = Aggregation::parse(value.as_text()?).map_err(algo)?;
            }
            other => {
                return Err(crate::PrimitiveError::BadHyperparameter(format!(
                    "'time_segments_aggregate' cannot apply hyperparameter '{other}'"
                )))
            }
        }
        Ok(())
    }

    fn produce(&mut self, ctx: &Context) -> Result<Vec<(String, Value)>> {
        let signal = ctx.signal("signal")?;
        let interval = if self.interval == 0 {
            signal.median_step().max(1)
        } else {
            self.interval
        };
        let out = resample::time_segments_aggregate(signal, interval, self.agg).map_err(algo)?;
        Ok(vec![("signal".into(), Value::Signal(out))])
    }
}

// ---------------------------------------------------------------------
// SimpleImputer
// ---------------------------------------------------------------------

/// Fill missing (`NaN`) values (`SimpleImputer`). Strategies: `mean`
/// (signal mean, the paper's default), `interpolate` (linear), `zero`.
#[derive(Debug)]
pub struct SimpleImputer {
    meta: PrimitiveMeta,
    strategy: String,
}

impl SimpleImputer {
    /// Create with the mean strategy.
    pub fn new() -> Self {
        Self {
            meta: PrimitiveMeta::new(
                "SimpleImputer",
                Engine::Preprocessing,
                "impute missing values",
                &["signal"],
                &["signal"],
                vec![HyperSpec::choice("strategy", &["mean", "interpolate", "zero"], "mean")],
            ),
            strategy: "mean".into(),
        }
    }
}

impl Default for SimpleImputer {
    fn default() -> Self {
        Self::new()
    }
}

impl Primitive for SimpleImputer {
    fn meta(&self) -> &PrimitiveMeta {
        &self.meta
    }

    fn set_hyperparam(&mut self, name: &str, value: HyperValue) -> Result<()> {
        self.meta.validate_hyperparam(name, &value)?;
        self.strategy = value.as_text()?.to_string();
        Ok(())
    }

    fn produce(&mut self, ctx: &Context) -> Result<Vec<(String, Value)>> {
        let mut signal = ctx.signal("signal")?.clone();
        for c in 0..signal.num_channels() {
            match self.strategy.as_str() {
                "interpolate" => resample::interpolate_nans(signal.channel_mut(c)),
                "zero" => {
                    for v in signal.channel_mut(c) {
                        if v.is_nan() {
                            *v = 0.0;
                        }
                    }
                }
                _ => {
                    let finite: Vec<f64> =
                        signal.channel(c).iter().copied().filter(|v| v.is_finite()).collect();
                    let m = mean(&finite);
                    for v in signal.channel_mut(c) {
                        if v.is_nan() {
                            *v = m;
                        }
                    }
                }
            }
        }
        Ok(vec![("signal".into(), Value::Signal(signal))])
    }
}

// ---------------------------------------------------------------------
// MinMaxScaler / StandardScaler
// ---------------------------------------------------------------------

/// Scale each channel into `[-1, 1]` using ranges learned at fit time.
#[derive(Debug)]
pub struct MinMaxScaler {
    meta: PrimitiveMeta,
    /// Per-channel `(min, max)` learned at fit time.
    ranges: Option<Vec<(f64, f64)>>,
}

impl MinMaxScaler {
    /// Create an unfitted scaler.
    pub fn new() -> Self {
        Self {
            meta: PrimitiveMeta::new(
                "MinMaxScaler",
                Engine::Preprocessing,
                "scale each channel into [-1, 1]",
                &["signal"],
                &["signal"],
                vec![],
            ),
            ranges: None,
        }
    }
}

impl Default for MinMaxScaler {
    fn default() -> Self {
        Self::new()
    }
}

impl Primitive for MinMaxScaler {
    fn meta(&self) -> &PrimitiveMeta {
        &self.meta
    }

    fn set_hyperparam(&mut self, name: &str, value: HyperValue) -> Result<()> {
        self.meta.validate_hyperparam(name, &value)
    }

    fn fit(&mut self, ctx: &Context) -> Result<()> {
        let signal = ctx.signal("signal")?;
        let mut ranges = Vec::with_capacity(signal.num_channels());
        for c in 0..signal.num_channels() {
            let finite: Vec<f64> =
                signal.channel(c).iter().copied().filter(|v| v.is_finite()).collect();
            let lo = finite.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            if !lo.is_finite() || !hi.is_finite() {
                return Err(PrimitiveError::Algorithm(
                    "cannot fit MinMaxScaler on all-NaN channel".into(),
                ));
            }
            ranges.push((lo, hi));
        }
        self.ranges = Some(ranges);
        Ok(())
    }

    fn produce(&mut self, ctx: &Context) -> Result<Vec<(String, Value)>> {
        let ranges = self
            .ranges
            .as_ref()
            .ok_or_else(|| PrimitiveError::NotFitted("MinMaxScaler".into()))?;
        let mut signal = ctx.signal("signal")?.clone();
        for (c, &(lo, hi)) in ranges.iter().enumerate().take(signal.num_channels()) {
            let span = (hi - lo).max(1e-12);
            for v in signal.channel_mut(c) {
                *v = 2.0 * (*v - lo) / span - 1.0;
            }
        }
        Ok(vec![("signal".into(), Value::Signal(signal))])
    }
}

/// Z-score standardisation per channel (`StandardScaler`) — the drop-in
/// replacement the paper uses to illustrate pipeline customisation.
#[derive(Debug)]
pub struct StandardScaler {
    meta: PrimitiveMeta,
    stats: Option<Vec<(f64, f64)>>,
}

impl StandardScaler {
    /// Create an unfitted scaler.
    pub fn new() -> Self {
        Self {
            meta: PrimitiveMeta::new(
                "StandardScaler",
                Engine::Preprocessing,
                "z-score normalisation per channel",
                &["signal"],
                &["signal"],
                vec![],
            ),
            stats: None,
        }
    }
}

impl Default for StandardScaler {
    fn default() -> Self {
        Self::new()
    }
}

impl Primitive for StandardScaler {
    fn meta(&self) -> &PrimitiveMeta {
        &self.meta
    }

    fn set_hyperparam(&mut self, name: &str, value: HyperValue) -> Result<()> {
        self.meta.validate_hyperparam(name, &value)
    }

    fn fit(&mut self, ctx: &Context) -> Result<()> {
        let signal = ctx.signal("signal")?;
        let mut stats = Vec::with_capacity(signal.num_channels());
        for c in 0..signal.num_channels() {
            let finite: Vec<f64> =
                signal.channel(c).iter().copied().filter(|v| v.is_finite()).collect();
            stats.push((mean(&finite), sintel_common::stddev(&finite).max(1e-12)));
        }
        self.stats = Some(stats);
        Ok(())
    }

    fn produce(&mut self, ctx: &Context) -> Result<Vec<(String, Value)>> {
        let stats = self
            .stats
            .as_ref()
            .ok_or_else(|| PrimitiveError::NotFitted("StandardScaler".into()))?;
        let mut signal = ctx.signal("signal")?.clone();
        for (c, &(mu, sigma)) in stats.iter().enumerate().take(signal.num_channels()) {
            for v in signal.channel_mut(c) {
                *v = (*v - mu) / sigma;
            }
        }
        Ok(vec![("signal".into(), Value::Signal(signal))])
    }
}

// ---------------------------------------------------------------------
// rolling_window_sequences
// ---------------------------------------------------------------------

/// Cut the signal into rolling windows (`rolling_window_sequences`).
///
/// With `targets = true` (prediction pipelines) each window is paired
/// with the next value; with `false` (reconstruction pipelines) the
/// windows stand alone.
#[derive(Debug)]
pub struct RollingWindowSequences {
    meta: PrimitiveMeta,
    window_size: usize,
    step: usize,
    targets: bool,
}

impl RollingWindowSequences {
    /// Create with a 50-sample window, unit step and prediction targets.
    pub fn new() -> Self {
        Self {
            meta: PrimitiveMeta::new(
                "rolling_window_sequences",
                Engine::Preprocessing,
                "extract rolling windows (and optional next-value targets)",
                &["signal"],
                &["windows", "targets", "index_timestamps", "first_index"],
                vec![
                    HyperSpec::int("window_size", 4, 500, 50),
                    HyperSpec::int("step", 1, 50, 1).fixed(),
                    HyperSpec {
                        name: "targets".into(),
                        range: crate::hyper::HyperRange::Flag,
                        default: HyperValue::Flag(true),
                        tunable: false,
                    },
                ],
            )
            // `windows` is the main product; the other three slots are
            // alignment bookkeeping that only some downstream chains read.
            .auxiliary_write("targets")
            .auxiliary_write("index_timestamps")
            .auxiliary_write("first_index"),
            window_size: 50,
            step: 1,
            targets: true,
        }
    }
}

impl Default for RollingWindowSequences {
    fn default() -> Self {
        Self::new()
    }
}

impl Primitive for RollingWindowSequences {
    fn meta(&self) -> &PrimitiveMeta {
        &self.meta
    }

    fn set_hyperparam(&mut self, name: &str, value: HyperValue) -> Result<()> {
        self.meta.validate_hyperparam(name, &value)?;
        match name {
            "window_size" => self.window_size = value.as_int()? as usize,
            "step" => self.step = value.as_int()? as usize,
            "targets" => self.targets = value.as_flag()?,
            other => {
                return Err(crate::PrimitiveError::BadHyperparameter(format!(
                    "'rolling_window_sequences' cannot apply hyperparameter '{other}'"
                )))
            }
        }
        Ok(())
    }

    fn produce(&mut self, ctx: &Context) -> Result<Vec<(String, Value)>> {
        let signal = ctx.signal("signal")?;
        let ws = rolling_windows(signal, self.window_size, self.step, self.targets)
            .map_err(algo)?;
        Ok(vec![
            ("windows".into(), Value::Windows(ws.windows)),
            ("targets".into(), Value::Series(ws.targets)),
            ("index_timestamps".into(), Value::Timestamps(ws.index_timestamps)),
            ("first_index".into(), Value::Indices(ws.first_index)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sintel_timeseries::Signal;

    fn signal_with_gap() -> Signal {
        Signal::univariate(
            "s",
            vec![0, 10, 20, 50, 60],
            vec![1.0, 2.0, 3.0, 6.0, 7.0],
        )
        .unwrap()
    }

    #[test]
    fn tsa_auto_interval_materialises_gaps() {
        let mut tsa = TimeSegmentsAggregate::new();
        let ctx = Context::from_signal(signal_with_gap());
        let out = tsa.produce(&ctx).unwrap();
        let Value::Signal(sig) = &out[0].1 else { panic!("expected signal") };
        assert_eq!(sig.median_step(), 10);
        assert!(sig.values().iter().any(|v| v.is_nan()), "gap should be NaN");
    }

    #[test]
    fn tsa_rejects_bad_method() {
        let mut tsa = TimeSegmentsAggregate::new();
        assert!(tsa.set_hyperparam("method", HyperValue::Text("median".into())).is_ok());
        assert!(tsa.set_hyperparam("method", HyperValue::Text("bogus".into())).is_err());
        assert!(tsa.set_hyperparam("nope", HyperValue::Int(1)).is_err());
    }

    #[test]
    fn imputer_mean_fills_nans() {
        let mut imp = SimpleImputer::new();
        let sig =
            Signal::univariate("s", vec![0, 1, 2], vec![1.0, f64::NAN, 3.0]).unwrap();
        let out = imp.produce(&Context::from_signal(sig)).unwrap();
        let Value::Signal(sig) = &out[0].1 else { panic!() };
        assert_eq!(sig.values(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn imputer_strategies() {
        let sig =
            Signal::univariate("s", vec![0, 1, 2, 3], vec![1.0, f64::NAN, f64::NAN, 4.0])
                .unwrap();
        let mut interp = SimpleImputer::new();
        interp.set_hyperparam("strategy", HyperValue::Text("interpolate".into())).unwrap();
        let out = interp.produce(&Context::from_signal(sig.clone())).unwrap();
        let Value::Signal(s) = &out[0].1 else { panic!() };
        assert_eq!(s.values(), &[1.0, 2.0, 3.0, 4.0]);

        let mut zero = SimpleImputer::new();
        zero.set_hyperparam("strategy", HyperValue::Text("zero".into())).unwrap();
        let out = zero.produce(&Context::from_signal(sig)).unwrap();
        let Value::Signal(s) = &out[0].1 else { panic!() };
        assert_eq!(s.values(), &[1.0, 0.0, 0.0, 4.0]);
    }

    #[test]
    fn minmax_scales_train_range_to_unit() {
        let mut sc = MinMaxScaler::new();
        let sig = Signal::from_values("s", vec![0.0, 5.0, 10.0]);
        let ctx = Context::from_signal(sig);
        sc.fit(&ctx).unwrap();
        let out = sc.produce(&ctx).unwrap();
        let Value::Signal(s) = &out[0].1 else { panic!() };
        assert_eq!(s.values(), &[-1.0, 0.0, 1.0]);
    }

    #[test]
    fn minmax_requires_fit() {
        let mut sc = MinMaxScaler::new();
        let ctx = Context::from_signal(Signal::from_values("s", vec![1.0]));
        assert!(matches!(sc.produce(&ctx), Err(PrimitiveError::NotFitted(_))));
    }

    #[test]
    fn minmax_applies_train_stats_to_new_data() {
        let mut sc = MinMaxScaler::new();
        let train = Context::from_signal(Signal::from_values("s", vec![0.0, 10.0]));
        sc.fit(&train).unwrap();
        let test = Context::from_signal(Signal::from_values("s", vec![20.0]));
        let out = sc.produce(&test).unwrap();
        let Value::Signal(s) = &out[0].1 else { panic!() };
        assert_eq!(s.values(), &[3.0]); // extrapolates beyond [-1, 1]
    }

    #[test]
    fn standard_scaler_zero_mean_unit_std() {
        let mut sc = StandardScaler::new();
        let sig = Signal::from_values("s", vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        let ctx = Context::from_signal(sig);
        sc.fit(&ctx).unwrap();
        let out = sc.produce(&ctx).unwrap();
        let Value::Signal(s) = &out[0].1 else { panic!() };
        assert!(mean(s.values()).abs() < 1e-12);
        assert!((sintel_common::stddev(s.values()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rolling_windows_prediction_mode() {
        let mut rw = RollingWindowSequences::new();
        rw.set_hyperparam("window_size", HyperValue::Int(4)).unwrap();
        let ctx = Context::from_signal(Signal::from_values(
            "s",
            (0..10).map(|i| i as f64).collect(),
        ));
        let out = rw.produce(&ctx).unwrap();
        let ctx2 = {
            let mut c = ctx.clone();
            for (k, v) in out {
                c.set(k, v);
            }
            c
        };
        assert_eq!(ctx2.windows("windows").unwrap().rows(), 6);
        assert_eq!(ctx2.series("targets").unwrap(), &vec![4.0, 5.0, 6.0, 7.0, 8.0, 9.0]);
    }

    #[test]
    fn rolling_windows_reconstruction_mode() {
        let mut rw = RollingWindowSequences::new();
        rw.set_hyperparam("window_size", HyperValue::Int(4)).unwrap();
        rw.set_hyperparam("targets", HyperValue::Flag(false)).unwrap();
        let ctx = Context::from_signal(Signal::from_values(
            "s",
            (0..10).map(|i| i as f64).collect(),
        ));
        let out = rw.produce(&ctx).unwrap();
        let windows = out.iter().find(|(k, _)| k == "windows").unwrap();
        let Value::Windows(w) = &windows.1 else { panic!() };
        assert_eq!(w.rows(), 7);
    }

    #[test]
    fn window_size_range_enforced() {
        let mut rw = RollingWindowSequences::new();
        assert!(rw.set_hyperparam("window_size", HyperValue::Int(2)).is_err());
        assert!(rw.set_hyperparam("window_size", HyperValue::Int(1000)).is_err());
    }
}

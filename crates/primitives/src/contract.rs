//! Static dataflow contracts.
//!
//! Every primitive declares which context slots it consumes and produces
//! per lifecycle phase (`fit` / `produce`) and what kind of value each
//! slot carries. The declarations are derived from the metadata's
//! `inputs` / `outputs` lists and refined where a primitive's dataflow is
//! conditional (optional reads, fit-only reads, auxiliary outputs).
//!
//! `sintel-analyze` walks these contracts over a template's step list to
//! reject mis-wired pipelines *before* execution — see the `SA0xx`
//! diagnostic codes documented there and in DESIGN.md §4d.

/// The kind of value a context slot carries, inferred from the slot
/// naming convention shared by all primitives (see `context::Value`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueKind {
    /// A full (multi-channel) signal with timestamps.
    Signal,
    /// A plain `f64` series (predictions, targets, errors, scores).
    Series,
    /// Timestamps aligned with a series.
    Timestamps,
    /// Sample indices (window start positions).
    Indices,
    /// Flattened rolling windows.
    Windows,
    /// Scored anomalous intervals.
    Intervals,
    /// Anything else (scalars, opaque payloads).
    Scalar,
}

impl ValueKind {
    /// Infer the kind of a slot from its conventional name.
    pub fn infer(slot: &str) -> ValueKind {
        match slot {
            "signal" => ValueKind::Signal,
            "windows" | "reconstructions" => ValueKind::Windows,
            "predictions" | "targets" | "critic_scores" | "errors" => ValueKind::Series,
            "index_timestamps" | "error_timestamps" => ValueKind::Timestamps,
            "first_index" => ValueKind::Indices,
            "anomalies" => ValueKind::Intervals,
            _ => ValueKind::Scalar,
        }
    }

    /// Stable lowercase label (used in diagnostics).
    pub fn label(&self) -> &'static str {
        match self {
            ValueKind::Signal => "signal",
            ValueKind::Series => "series",
            ValueKind::Timestamps => "timestamps",
            ValueKind::Indices => "indices",
            ValueKind::Windows => "windows",
            ValueKind::Intervals => "intervals",
            ValueKind::Scalar => "scalar",
        }
    }
}

impl std::fmt::Display for ValueKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A declared context read.
#[derive(Debug, Clone)]
pub struct SlotRead {
    /// Context slot name.
    pub slot: String,
    /// Value kind carried by the slot.
    pub kind: ValueKind,
    /// Whether the primitive fails without it (`false` = optional
    /// enrichment, e.g. `reconstruction_errors` blending critic scores).
    pub required: bool,
    /// Read during `fit`.
    pub fit: bool,
    /// Read during `produce`.
    pub produce: bool,
}

/// A declared context write.
#[derive(Debug, Clone)]
pub struct SlotWrite {
    /// Context slot name.
    pub slot: String,
    /// Value kind carried by the slot.
    pub kind: ValueKind,
    /// Whether the output is the primitive's main product. Auxiliary
    /// outputs (bookkeeping series nobody may consume) are exempt from
    /// the analyzer's unused-output warning.
    pub primary: bool,
}

/// The per-phase dataflow contract of one primitive.
#[derive(Debug, Clone, Default)]
pub struct Contract {
    /// Declared context reads (with phase flags).
    pub reads: Vec<SlotRead>,
    /// Declared context writes.
    pub writes: Vec<SlotWrite>,
}

impl Contract {
    /// Derive the default contract from metadata `inputs` / `outputs`:
    /// every input is a required read in both phases, every output a
    /// primary write.
    pub fn from_io(inputs: &[String], outputs: &[String]) -> Self {
        Self {
            reads: inputs
                .iter()
                .map(|slot| SlotRead {
                    slot: slot.clone(),
                    kind: ValueKind::infer(slot),
                    required: true,
                    fit: true,
                    produce: true,
                })
                .collect(),
            writes: outputs
                .iter()
                .map(|slot| SlotWrite {
                    slot: slot.clone(),
                    kind: ValueKind::infer(slot),
                    primary: true,
                })
                .collect(),
        }
    }

    /// Refinement: mark (or add) `slot` as an optional read.
    pub fn optional_read(mut self, slot: &str) -> Self {
        if let Some(read) = self.reads.iter_mut().find(|r| r.slot == slot) {
            read.required = false;
        } else {
            self.reads.push(SlotRead {
                slot: slot.to_string(),
                kind: ValueKind::infer(slot),
                required: false,
                fit: false,
                produce: true,
            });
        }
        self
    }

    /// Refinement: mark (or add) `slot` as an *optional* read during
    /// `fit` (e.g. the deep models opportunistically inferring channel
    /// count from the raw signal while training).
    pub fn optional_fit_read(mut self, slot: &str) -> Self {
        if let Some(read) = self.reads.iter_mut().find(|r| r.slot == slot) {
            read.required = false;
            read.fit = true;
        } else {
            self.reads.push(SlotRead {
                slot: slot.to_string(),
                kind: ValueKind::infer(slot),
                required: false,
                fit: true,
                produce: false,
            });
        }
        self
    }

    /// Refinement: `slot` is consumed during `fit` only (e.g. training
    /// targets of a forecaster).
    pub fn fit_only_read(mut self, slot: &str) -> Self {
        if let Some(read) = self.reads.iter_mut().find(|r| r.slot == slot) {
            read.produce = false;
            read.fit = true;
        }
        self
    }

    /// Refinement: demote `slot` to an auxiliary (non-primary) output.
    pub fn auxiliary_write(mut self, slot: &str) -> Self {
        if let Some(write) = self.writes.iter_mut().find(|w| w.slot == slot) {
            write.primary = false;
        }
        self
    }

    /// Reads the primitive cannot run without, in either phase.
    pub fn required_reads(&self) -> impl Iterator<Item = &SlotRead> {
        self.reads.iter().filter(|r| r.required)
    }

    /// Whether the primitive declares a required read of `slot`.
    pub fn requires(&self, slot: &str) -> bool {
        self.reads.iter().any(|r| r.required && r.slot == slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(xs: &[&str]) -> Vec<String> {
        xs.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn kind_inference_follows_slot_convention() {
        assert_eq!(ValueKind::infer("signal"), ValueKind::Signal);
        assert_eq!(ValueKind::infer("windows"), ValueKind::Windows);
        assert_eq!(ValueKind::infer("reconstructions"), ValueKind::Windows);
        assert_eq!(ValueKind::infer("errors"), ValueKind::Series);
        assert_eq!(ValueKind::infer("error_timestamps"), ValueKind::Timestamps);
        assert_eq!(ValueKind::infer("first_index"), ValueKind::Indices);
        assert_eq!(ValueKind::infer("anomalies"), ValueKind::Intervals);
        assert_eq!(ValueKind::infer("mystery"), ValueKind::Scalar);
        assert_eq!(ValueKind::Signal.to_string(), "signal");
    }

    #[test]
    fn from_io_defaults_required_and_primary() {
        let c = Contract::from_io(&strings(&["signal"]), &strings(&["errors"]));
        assert_eq!(c.reads.len(), 1);
        assert!(c.reads[0].required && c.reads[0].fit && c.reads[0].produce);
        assert!(c.writes[0].primary);
        assert!(c.requires("signal"));
        assert!(!c.requires("errors"));
    }

    #[test]
    fn refinements_adjust_flags() {
        let c = Contract::from_io(
            &strings(&["windows", "targets"]),
            &strings(&["windows", "targets"]),
        )
        .fit_only_read("targets")
        .optional_read("critic_scores")
        .auxiliary_write("targets");
        let targets = c.reads.iter().find(|r| r.slot == "targets").unwrap();
        assert!(targets.fit && !targets.produce && targets.required);
        let critic = c.reads.iter().find(|r| r.slot == "critic_scores").unwrap();
        assert!(!critic.required);
        assert_eq!(c.required_reads().count(), 2);
        assert!(!c.writes.iter().find(|w| w.slot == "targets").unwrap().primary);
        assert!(c.writes.iter().find(|w| w.slot == "windows").unwrap().primary);
    }
}

//! Fault-injection primitives (cargo feature `faulty`).
//!
//! Test-only building blocks that misbehave in the three ways the
//! fault-isolation layer must contain:
//!
//! * [`FaultyPanic`] — panics inside `fit`;
//! * [`FaultyNan`] — emits a NaN error series from `produce`;
//! * [`FaultyHang`] — sleeps past any reasonable run budget in `fit`
//!   (cancel-aware: the sleep is sliced and polls
//!   `sintel_common::cancelled`, so a timed-out watchdog worker winds
//!   down instead of leaking);
//! * [`FaultySlow`] — sleeps `ms_per_row` per signal sample in
//!   `produce`, for latency-based degradation/shedding tests;
//! * [`FaultyFlaky`] — fails the first `fail_first_n` runs of its
//!   process-wide `key`, then succeeds, for circuit-breaker half-open
//!   recovery tests (fresh instances share the counter, so per-pass
//!   pipeline rebuilds still observe the recovery);
//! * [`FaultyContractDrift`] — reads or writes context slots its
//!   declared contract omits, for contract-sanitizer (SA009) tests.
//!
//! They are modeling-engine primitives so the executor's non-finite
//! output guard applies to them, and they are only registered when the
//! `faulty` feature is enabled — production registries never see them.

use crate::context::{Context, Value};
use crate::hyper::{HyperSpec, HyperValue};
use crate::primitive::{Engine, Primitive, PrimitiveMeta};
use crate::{PrimitiveError, Result};

/// Panics during `fit` — exercises `catch_unwind` containment.
pub struct FaultyPanic {
    meta: PrimitiveMeta,
}

impl FaultyPanic {
    /// Construct with default (empty) hyperparameters.
    pub fn new() -> Self {
        Self {
            meta: PrimitiveMeta::new(
                "faulty_panic",
                Engine::Modeling,
                "fault injection: panics on fit",
                &["signal"],
                &[],
                vec![],
            ),
        }
    }
}

impl Default for FaultyPanic {
    fn default() -> Self {
        Self::new()
    }
}

impl Primitive for FaultyPanic {
    fn meta(&self) -> &PrimitiveMeta {
        &self.meta
    }

    fn set_hyperparam(&mut self, name: &str, _value: HyperValue) -> Result<()> {
        Err(PrimitiveError::BadHyperparameter(format!(
            "'faulty_panic' has no hyperparameter '{name}'"
        )))
    }

    fn fit(&mut self, _ctx: &Context) -> Result<()> {
        panic!("injected panic from faulty_panic");
    }

    fn produce(&mut self, _ctx: &Context) -> Result<Vec<(String, Value)>> {
        Ok(vec![])
    }
}

/// Emits a NaN-poisoned error series — exercises the non-finite guard.
pub struct FaultyNan {
    meta: PrimitiveMeta,
}

impl FaultyNan {
    /// Construct with default (empty) hyperparameters.
    pub fn new() -> Self {
        Self {
            meta: PrimitiveMeta::new(
                "faulty_nan",
                Engine::Modeling,
                "fault injection: produces NaN errors",
                &["signal"],
                &["errors", "error_timestamps"],
                vec![],
            ),
        }
    }
}

impl Default for FaultyNan {
    fn default() -> Self {
        Self::new()
    }
}

impl Primitive for FaultyNan {
    fn meta(&self) -> &PrimitiveMeta {
        &self.meta
    }

    fn set_hyperparam(&mut self, name: &str, _value: HyperValue) -> Result<()> {
        Err(PrimitiveError::BadHyperparameter(format!(
            "'faulty_nan' has no hyperparameter '{name}'"
        )))
    }

    fn produce(&mut self, _ctx: &Context) -> Result<Vec<(String, Value)>> {
        Ok(vec![
            ("errors".to_string(), Value::Series(vec![f64::NAN; 16])),
            ("error_timestamps".to_string(), Value::Timestamps((0..16).collect())),
        ])
    }
}

/// Sleeps past the run budget in `fit` — exercises the watchdog timeout.
pub struct FaultyHang {
    meta: PrimitiveMeta,
    sleep_ms: i64,
}

impl FaultyHang {
    /// Construct with the default 30 s sleep.
    pub fn new() -> Self {
        Self {
            meta: PrimitiveMeta::new(
                "faulty_hang",
                Engine::Modeling,
                "fault injection: sleeps past the run budget on fit",
                &["signal"],
                &[],
                vec![HyperSpec::int("sleep_ms", 1, 3_600_000, 30_000)],
            ),
            sleep_ms: 30_000,
        }
    }
}

impl Default for FaultyHang {
    fn default() -> Self {
        Self::new()
    }
}

impl Primitive for FaultyHang {
    fn meta(&self) -> &PrimitiveMeta {
        &self.meta
    }

    fn set_hyperparam(&mut self, name: &str, value: HyperValue) -> Result<()> {
        self.meta.validate_hyperparam(name, &value)?;
        match (name, value) {
            ("sleep_ms", HyperValue::Int(ms)) => {
                self.sleep_ms = ms;
                Ok(())
            }
            _ => Err(PrimitiveError::BadHyperparameter(format!(
                "'faulty_hang' cannot apply hyperparameter '{name}'"
            ))),
        }
    }

    fn fit(&mut self, _ctx: &Context) -> Result<()> {
        sliced_sleep(self.sleep_ms as u64)
    }

    fn produce(&mut self, _ctx: &Context) -> Result<Vec<(String, Value)>> {
        Ok(vec![])
    }
}

/// Sleep `total_ms` in short slices, polling the thread's cancel token
/// between slices so a watchdogged hang actually terminates after its
/// budget expires instead of leaking the worker thread.
fn sliced_sleep(total_ms: u64) -> Result<()> {
    const SLICE_MS: u64 = 5;
    let mut remaining = total_ms;
    while remaining > 0 {
        if sintel_common::cancelled() {
            return Err(PrimitiveError::Algorithm("cancelled by run budget".into()));
        }
        let chunk = remaining.min(SLICE_MS);
        std::thread::sleep(std::time::Duration::from_millis(chunk));
        remaining -= chunk;
    }
    Ok(())
}

/// Sleeps `ms_per_row` per signal sample in `produce` — a slow consumer
/// whose per-pass latency scales with the window, for latency-based
/// degradation and shedding tests. Emits a benign zero error series so
/// downstream thresholding keeps working.
pub struct FaultySlow {
    meta: PrimitiveMeta,
    ms_per_row: i64,
}

impl FaultySlow {
    /// Construct with the default 1 ms/row delay.
    pub fn new() -> Self {
        Self {
            meta: PrimitiveMeta::new(
                "faulty_slow",
                Engine::Modeling,
                "fault injection: sleeps ms_per_row per sample on produce",
                &["signal"],
                &["errors", "error_timestamps"],
                vec![HyperSpec::int("ms_per_row", 0, 10_000, 1)],
            ),
            ms_per_row: 1,
        }
    }
}

impl Default for FaultySlow {
    fn default() -> Self {
        Self::new()
    }
}

impl Primitive for FaultySlow {
    fn meta(&self) -> &PrimitiveMeta {
        &self.meta
    }

    fn set_hyperparam(&mut self, name: &str, value: HyperValue) -> Result<()> {
        self.meta.validate_hyperparam(name, &value)?;
        match (name, value) {
            ("ms_per_row", HyperValue::Int(ms)) => {
                self.ms_per_row = ms;
                Ok(())
            }
            _ => Err(PrimitiveError::BadHyperparameter(format!(
                "'faulty_slow' cannot apply hyperparameter '{name}'"
            ))),
        }
    }

    fn produce(&mut self, ctx: &Context) -> Result<Vec<(String, Value)>> {
        let signal = ctx.signal("signal")?;
        let rows = signal.len() as u64;
        sliced_sleep(rows.saturating_mul(self.ms_per_row.max(0) as u64))?;
        Ok(vec![
            ("errors".to_string(), Value::Series(vec![0.0; signal.len()])),
            (
                "error_timestamps".to_string(),
                Value::Timestamps(signal.timestamps().to_vec()),
            ),
        ])
    }
}

/// A primitive whose *declared* contract has drifted from what its code
/// actually does — the defect class the contract-conformance sanitizer
/// (pipeline `sanitizer` feature, SA009) exists to catch. Depending on
/// `mode` it either writes an undeclared `drift_scores` slot or reads
/// the undeclared `windows` slot during `produce`. Without the sanitizer
/// both drifts execute silently; static analysis cannot see them because
/// the declared contract is perfectly consistent.
pub struct FaultyContractDrift {
    meta: PrimitiveMeta,
    mode: String,
}

impl FaultyContractDrift {
    /// Construct with the default `write` drift mode.
    pub fn new() -> Self {
        Self {
            meta: PrimitiveMeta::new(
                "faulty_contract_drift",
                Engine::Modeling,
                "fault injection: accesses context slots its contract does not declare",
                &["signal"],
                &["errors", "error_timestamps"],
                vec![HyperSpec::choice("mode", &["write", "read"], "write")],
            ),
            mode: "write".to_string(),
        }
    }
}

impl Default for FaultyContractDrift {
    fn default() -> Self {
        Self::new()
    }
}

impl Primitive for FaultyContractDrift {
    fn meta(&self) -> &PrimitiveMeta {
        &self.meta
    }

    fn set_hyperparam(&mut self, name: &str, value: HyperValue) -> Result<()> {
        self.meta.validate_hyperparam(name, &value)?;
        match (name, value) {
            ("mode", HyperValue::Text(m)) => {
                self.mode = m;
                Ok(())
            }
            _ => Err(PrimitiveError::BadHyperparameter(format!(
                "'faulty_contract_drift' cannot apply hyperparameter '{name}'"
            ))),
        }
    }

    fn produce(&mut self, ctx: &Context) -> Result<Vec<(String, Value)>> {
        if self.mode == "read" {
            // Undeclared read: probes a slot absent from the contract.
            let _ = ctx.contains("windows");
        }
        let signal = ctx.signal("signal")?;
        let mut outputs = vec![
            ("errors".to_string(), Value::Series(vec![0.0; signal.len()])),
            (
                "error_timestamps".to_string(),
                Value::Timestamps(signal.timestamps().to_vec()),
            ),
        ];
        if self.mode == "write" {
            // Undeclared write: a slot the contract never mentions.
            outputs.push(("drift_scores".to_string(), Value::Series(vec![0.0; signal.len()])));
        }
        Ok(outputs)
    }
}

/// Process-wide attempt counters for [`FaultyFlaky`], keyed by the
/// primitive's `key` hyperparameter. The counter must survive pipeline
/// rebuilds (the serving tier constructs a fresh pipeline per detection
/// pass), otherwise "fail the first n runs, then recover" would reset
/// on every pass and the circuit breaker could never observe recovery.
mod flaky_counters {
    use std::collections::HashMap;
    use std::sync::Mutex;

    static COUNTERS: Mutex<Option<HashMap<String, u64>>> = Mutex::new(None);

    /// Increment and return the attempt number (1-based) for `key`.
    pub fn next_attempt(key: &str) -> u64 {
        let mut guard = COUNTERS.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let map = guard.get_or_insert_with(HashMap::new);
        let n = map.entry(key.to_string()).or_insert(0);
        *n += 1;
        *n
    }

    /// Reset the counter for `key` (test isolation).
    pub fn reset(key: &str) {
        let mut guard = COUNTERS.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(map) = guard.as_mut() {
            map.remove(key);
        }
    }
}

/// Reset the process-wide flaky counter for `key` so tests sharing a
/// process do not interfere.
pub fn reset_flaky_counter(key: &str) {
    flaky_counters::reset(key);
}

/// Fails the first `fail_first_n` runs sharing its `key`, then behaves —
/// the transient-failure profile circuit-breaker half-open probes must
/// recover from. Emits a benign zero error series once healthy.
pub struct FaultyFlaky {
    meta: PrimitiveMeta,
    fail_first_n: i64,
    key: String,
}

impl FaultyFlaky {
    /// Construct with defaults (`fail_first_n = 3`, key `"default"`).
    pub fn new() -> Self {
        Self {
            meta: PrimitiveMeta::new(
                "faulty_flaky",
                Engine::Modeling,
                "fault injection: fails the first n runs of its key, then succeeds",
                &["signal"],
                &["errors", "error_timestamps"],
                vec![
                    HyperSpec::int("fail_first_n", 0, 1_000_000, 3),
                    HyperSpec::choice("key", &["default"], "default"),
                ],
            ),
            fail_first_n: 3,
            key: "default".to_string(),
        }
    }
}

impl Default for FaultyFlaky {
    fn default() -> Self {
        Self::new()
    }
}

impl Primitive for FaultyFlaky {
    fn meta(&self) -> &PrimitiveMeta {
        &self.meta
    }

    fn set_hyperparam(&mut self, name: &str, value: HyperValue) -> Result<()> {
        match (name, value) {
            ("fail_first_n", HyperValue::Int(n)) => {
                self.meta.validate_hyperparam(name, &HyperValue::Int(n))?;
                self.fail_first_n = n;
                Ok(())
            }
            // The key is an open namespace (any test may pick a fresh
            // one), so it deliberately skips the enumerated-text range
            // check that `validate_hyperparam` would apply.
            ("key", HyperValue::Text(k)) => {
                self.key = k;
                Ok(())
            }
            (_, value) => {
                self.meta.validate_hyperparam(name, &value)?;
                Err(PrimitiveError::BadHyperparameter(format!(
                    "'faulty_flaky' cannot apply hyperparameter '{name}'"
                )))
            }
        }
    }

    fn produce(&mut self, ctx: &Context) -> Result<Vec<(String, Value)>> {
        let attempt = flaky_counters::next_attempt(&self.key);
        if attempt <= self.fail_first_n.max(0) as u64 {
            return Err(PrimitiveError::Algorithm(format!(
                "injected flaky failure {attempt}/{} (key '{}')",
                self.fail_first_n, self.key
            )));
        }
        let signal = ctx.signal("signal")?;
        Ok(vec![
            ("errors".to_string(), Value::Series(vec![0.0; signal.len()])),
            (
                "error_timestamps".to_string(),
                Value::Timestamps(signal.timestamps().to_vec()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faulty_panic_panics_on_fit() {
        let mut prim = FaultyPanic::new();
        let ctx = Context::new();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| prim.fit(&ctx)));
        assert!(caught.is_err());
    }

    #[test]
    fn faulty_nan_output_is_poisoned() {
        let mut prim = FaultyNan::new();
        let out = prim.produce(&Context::new()).unwrap();
        let series = out.iter().find(|(slot, _)| slot == "errors").unwrap();
        match &series.1 {
            Value::Series(v) => assert!(v.iter().all(|x| x.is_nan())),
            other => panic!("unexpected value {other:?}"),
        }
    }

    fn signal_ctx(n: usize) -> Context {
        Context::from_signal(sintel_timeseries::Signal::from_values(
            "s",
            (0..n).map(|i| i as f64).collect(),
        ))
    }

    #[test]
    fn faulty_slow_delays_proportionally_to_rows() {
        let mut prim = FaultySlow::new();
        prim.set_hyperparam("ms_per_row", HyperValue::Int(2)).unwrap();
        let t0 = std::time::Instant::now();
        let out = prim.produce(&signal_ctx(20)).unwrap();
        assert!(t0.elapsed() >= std::time::Duration::from_millis(30));
        assert!(matches!(&out[0].1, Value::Series(v) if v.len() == 20));
        assert!(prim.set_hyperparam("ms_per_row", HyperValue::Int(-1)).is_err());
    }

    #[test]
    fn faulty_slow_stops_when_cancelled() {
        let mut prim = FaultySlow::new();
        prim.set_hyperparam("ms_per_row", HyperValue::Int(10_000)).unwrap();
        let token = sintel_common::CancelToken::new();
        token.cancel();
        let t0 = std::time::Instant::now();
        let result =
            sintel_common::with_cancel_token(token, || prim.produce(&signal_ctx(100)));
        assert!(result.is_err());
        assert!(t0.elapsed() < std::time::Duration::from_secs(2));
    }

    #[test]
    fn faulty_hang_stops_when_cancelled() {
        let mut prim = FaultyHang::new();
        prim.set_hyperparam("sleep_ms", HyperValue::Int(600_000)).unwrap();
        let token = sintel_common::CancelToken::new();
        token.cancel();
        let t0 = std::time::Instant::now();
        let result = sintel_common::with_cancel_token(token, || prim.fit(&Context::new()));
        assert!(result.is_err());
        assert!(t0.elapsed() < std::time::Duration::from_secs(2));
    }

    #[test]
    fn faulty_flaky_recovers_after_n_failures_across_instances() {
        reset_flaky_counter("test-recover");
        let run = || {
            let mut prim = FaultyFlaky::new();
            prim.set_hyperparam("fail_first_n", HyperValue::Int(2)).unwrap();
            prim.set_hyperparam("key", HyperValue::Text("test-recover".into())).unwrap();
            prim.produce(&signal_ctx(8))
        };
        // The counter survives instance rebuilds: two fresh instances
        // fail, the third succeeds.
        assert!(run().is_err());
        assert!(run().is_err());
        assert!(run().is_ok());
        assert!(run().is_ok());
        reset_flaky_counter("test-recover");
    }

    #[test]
    fn faulty_hang_sleep_is_configurable() {
        let mut prim = FaultyHang::new();
        prim.set_hyperparam("sleep_ms", HyperValue::Int(1)).unwrap();
        let t0 = std::time::Instant::now();
        prim.fit(&Context::new()).unwrap();
        assert!(t0.elapsed() < std::time::Duration::from_secs(5));
        assert!(prim.set_hyperparam("nope", HyperValue::Int(1)).is_err());
    }
}

//! Fault-injection primitives (cargo feature `faulty`).
//!
//! Test-only building blocks that misbehave in the three ways the
//! fault-isolation layer must contain:
//!
//! * [`FaultyPanic`] — panics inside `fit`;
//! * [`FaultyNan`] — emits a NaN error series from `produce`;
//! * [`FaultyHang`] — sleeps past any reasonable run budget in `fit`.
//!
//! They are modeling-engine primitives so the executor's non-finite
//! output guard applies to them, and they are only registered when the
//! `faulty` feature is enabled — production registries never see them.

use crate::context::{Context, Value};
use crate::hyper::{HyperSpec, HyperValue};
use crate::primitive::{Engine, Primitive, PrimitiveMeta};
use crate::{PrimitiveError, Result};

/// Panics during `fit` — exercises `catch_unwind` containment.
pub struct FaultyPanic {
    meta: PrimitiveMeta,
}

impl FaultyPanic {
    /// Construct with default (empty) hyperparameters.
    pub fn new() -> Self {
        Self {
            meta: PrimitiveMeta::new(
                "faulty_panic",
                Engine::Modeling,
                "fault injection: panics on fit",
                &["signal"],
                &[],
                vec![],
            ),
        }
    }
}

impl Default for FaultyPanic {
    fn default() -> Self {
        Self::new()
    }
}

impl Primitive for FaultyPanic {
    fn meta(&self) -> &PrimitiveMeta {
        &self.meta
    }

    fn set_hyperparam(&mut self, name: &str, _value: HyperValue) -> Result<()> {
        Err(PrimitiveError::BadHyperparameter(format!(
            "'faulty_panic' has no hyperparameter '{name}'"
        )))
    }

    fn fit(&mut self, _ctx: &Context) -> Result<()> {
        panic!("injected panic from faulty_panic");
    }

    fn produce(&mut self, _ctx: &Context) -> Result<Vec<(String, Value)>> {
        Ok(vec![])
    }
}

/// Emits a NaN-poisoned error series — exercises the non-finite guard.
pub struct FaultyNan {
    meta: PrimitiveMeta,
}

impl FaultyNan {
    /// Construct with default (empty) hyperparameters.
    pub fn new() -> Self {
        Self {
            meta: PrimitiveMeta::new(
                "faulty_nan",
                Engine::Modeling,
                "fault injection: produces NaN errors",
                &["signal"],
                &["errors", "error_timestamps"],
                vec![],
            ),
        }
    }
}

impl Default for FaultyNan {
    fn default() -> Self {
        Self::new()
    }
}

impl Primitive for FaultyNan {
    fn meta(&self) -> &PrimitiveMeta {
        &self.meta
    }

    fn set_hyperparam(&mut self, name: &str, _value: HyperValue) -> Result<()> {
        Err(PrimitiveError::BadHyperparameter(format!(
            "'faulty_nan' has no hyperparameter '{name}'"
        )))
    }

    fn produce(&mut self, _ctx: &Context) -> Result<Vec<(String, Value)>> {
        Ok(vec![
            ("errors".to_string(), Value::Series(vec![f64::NAN; 16])),
            ("error_timestamps".to_string(), Value::Timestamps((0..16).collect())),
        ])
    }
}

/// Sleeps past the run budget in `fit` — exercises the watchdog timeout.
pub struct FaultyHang {
    meta: PrimitiveMeta,
    sleep_ms: i64,
}

impl FaultyHang {
    /// Construct with the default 30 s sleep.
    pub fn new() -> Self {
        Self {
            meta: PrimitiveMeta::new(
                "faulty_hang",
                Engine::Modeling,
                "fault injection: sleeps past the run budget on fit",
                &["signal"],
                &[],
                vec![HyperSpec::int("sleep_ms", 1, 3_600_000, 30_000)],
            ),
            sleep_ms: 30_000,
        }
    }
}

impl Default for FaultyHang {
    fn default() -> Self {
        Self::new()
    }
}

impl Primitive for FaultyHang {
    fn meta(&self) -> &PrimitiveMeta {
        &self.meta
    }

    fn set_hyperparam(&mut self, name: &str, value: HyperValue) -> Result<()> {
        self.meta.validate_hyperparam(name, &value)?;
        match (name, value) {
            ("sleep_ms", HyperValue::Int(ms)) => {
                self.sleep_ms = ms;
                Ok(())
            }
            _ => Err(PrimitiveError::BadHyperparameter(format!(
                "'faulty_hang' cannot apply hyperparameter '{name}'"
            ))),
        }
    }

    fn fit(&mut self, _ctx: &Context) -> Result<()> {
        std::thread::sleep(std::time::Duration::from_millis(self.sleep_ms as u64));
        Ok(())
    }

    fn produce(&mut self, _ctx: &Context) -> Result<Vec<(String, Value)>> {
        Ok(vec![])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faulty_panic_panics_on_fit() {
        let mut prim = FaultyPanic::new();
        let ctx = Context::new();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| prim.fit(&ctx)));
        assert!(caught.is_err());
    }

    #[test]
    fn faulty_nan_output_is_poisoned() {
        let mut prim = FaultyNan::new();
        let out = prim.produce(&Context::new()).unwrap();
        let series = out.iter().find(|(slot, _)| slot == "errors").unwrap();
        match &series.1 {
            Value::Series(v) => assert!(v.iter().all(|x| x.is_nan())),
            other => panic!("unexpected value {other:?}"),
        }
    }

    #[test]
    fn faulty_hang_sleep_is_configurable() {
        let mut prim = FaultyHang::new();
        prim.set_hyperparam("sleep_ms", HyperValue::Int(1)).unwrap();
        let t0 = std::time::Instant::now();
        prim.fit(&Context::new()).unwrap();
        assert!(t0.elapsed() < std::time::Duration::from_secs(5));
        assert!(prim.set_hyperparam("nope", HyperValue::Int(1)).is_err());
    }
}

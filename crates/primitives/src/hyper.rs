//! Hyperparameter values, ranges and specs.
//!
//! Every primitive *declares* its tunable hyperparameters with a range
//! annotation. The pipeline template collects these declarations into the
//! joint space Λ (paper §3.2), which the AutoML tuner searches (§3.3).

use crate::{PrimitiveError, Result};

/// A concrete hyperparameter value.
#[derive(Debug, Clone, PartialEq)]
pub enum HyperValue {
    /// Integer-valued hyperparameter.
    Int(i64),
    /// Real-valued hyperparameter.
    Float(f64),
    /// Categorical hyperparameter.
    Text(String),
    /// Boolean hyperparameter.
    Flag(bool),
}

impl HyperValue {
    /// Coerce to i64 (accepting floats with integral values).
    pub fn as_int(&self) -> Result<i64> {
        match self {
            HyperValue::Int(v) => Ok(*v),
            HyperValue::Float(v) if v.fract() == 0.0 => Ok(*v as i64),
            other => Err(PrimitiveError::BadHyperparameter(format!("expected int, got {other:?}"))),
        }
    }

    /// Coerce to f64 (accepting ints).
    pub fn as_float(&self) -> Result<f64> {
        match self {
            HyperValue::Float(v) => Ok(*v),
            HyperValue::Int(v) => Ok(*v as f64),
            other => {
                Err(PrimitiveError::BadHyperparameter(format!("expected float, got {other:?}")))
            }
        }
    }

    /// Coerce to str.
    pub fn as_text(&self) -> Result<&str> {
        match self {
            HyperValue::Text(v) => Ok(v),
            other => {
                Err(PrimitiveError::BadHyperparameter(format!("expected text, got {other:?}")))
            }
        }
    }

    /// Coerce to bool.
    pub fn as_flag(&self) -> Result<bool> {
        match self {
            HyperValue::Flag(v) => Ok(*v),
            other => {
                Err(PrimitiveError::BadHyperparameter(format!("expected flag, got {other:?}")))
            }
        }
    }
}

/// The declared search range of a hyperparameter.
#[derive(Debug, Clone, PartialEq)]
pub enum HyperRange {
    /// Integers in `[lo, hi]` inclusive.
    Int {
        /// Lower bound (inclusive).
        lo: i64,
        /// Upper bound (inclusive).
        hi: i64,
    },
    /// Reals in `[lo, hi]`; `log` requests log-uniform sampling.
    Float {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
        /// Sample log-uniformly when true.
        log: bool,
    },
    /// One of a fixed set of strings.
    Choice(Vec<String>),
    /// Boolean.
    Flag,
}

impl HyperRange {
    /// Whether `value` lies within this range.
    pub fn contains(&self, value: &HyperValue) -> bool {
        match (self, value) {
            (HyperRange::Int { lo, hi }, HyperValue::Int(v)) => lo <= v && v <= hi,
            (HyperRange::Float { lo, hi, .. }, HyperValue::Float(v)) => {
                *lo <= *v && *v <= *hi
            }
            (HyperRange::Float { lo, hi, .. }, HyperValue::Int(v)) => {
                *lo <= *v as f64 && (*v as f64) <= *hi
            }
            (HyperRange::Choice(opts), HyperValue::Text(v)) => opts.iter().any(|o| o == v),
            (HyperRange::Flag, HyperValue::Flag(_)) => true,
            _ => false,
        }
    }
}

/// A declared hyperparameter: name, range and default.
#[derive(Debug, Clone, PartialEq)]
pub struct HyperSpec {
    /// Hyperparameter name (unique within a primitive).
    pub name: String,
    /// Search range.
    pub range: HyperRange,
    /// Default value (must lie within `range`).
    pub default: HyperValue,
    /// Whether the AutoML tuner should search over it.
    pub tunable: bool,
}

impl HyperSpec {
    /// Integer spec helper.
    pub fn int(name: &str, lo: i64, hi: i64, default: i64) -> Self {
        Self {
            name: name.to_string(),
            range: HyperRange::Int { lo, hi },
            default: HyperValue::Int(default),
            tunable: true,
        }
    }

    /// Float spec helper.
    pub fn float(name: &str, lo: f64, hi: f64, default: f64) -> Self {
        Self {
            name: name.to_string(),
            range: HyperRange::Float { lo, hi, log: false },
            default: HyperValue::Float(default),
            tunable: true,
        }
    }

    /// Log-scale float spec helper (learning rates etc.).
    pub fn log_float(name: &str, lo: f64, hi: f64, default: f64) -> Self {
        Self {
            name: name.to_string(),
            range: HyperRange::Float { lo, hi, log: true },
            default: HyperValue::Float(default),
            tunable: true,
        }
    }

    /// Categorical spec helper.
    pub fn choice(name: &str, options: &[&str], default: &str) -> Self {
        Self {
            name: name.to_string(),
            range: HyperRange::Choice(options.iter().map(|s| s.to_string()).collect()),
            default: HyperValue::Text(default.to_string()),
            tunable: true,
        }
    }

    /// Mark the spec as fixed (not searched by the tuner).
    pub fn fixed(mut self) -> Self {
        self.tunable = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coercions() {
        assert_eq!(HyperValue::Int(3).as_int().unwrap(), 3);
        assert_eq!(HyperValue::Float(3.0).as_int().unwrap(), 3);
        assert!(HyperValue::Float(3.5).as_int().is_err());
        assert_eq!(HyperValue::Int(2).as_float().unwrap(), 2.0);
        assert_eq!(HyperValue::Text("a".into()).as_text().unwrap(), "a");
        assert!(HyperValue::Flag(true).as_flag().unwrap());
        assert!(HyperValue::Text("x".into()).as_flag().is_err());
    }

    #[test]
    fn range_contains() {
        let r = HyperRange::Int { lo: 1, hi: 10 };
        assert!(r.contains(&HyperValue::Int(5)));
        assert!(!r.contains(&HyperValue::Int(11)));
        assert!(!r.contains(&HyperValue::Float(5.0))); // strict typing for ints

        let f = HyperRange::Float { lo: 0.0, hi: 1.0, log: false };
        assert!(f.contains(&HyperValue::Float(0.5)));
        assert!(f.contains(&HyperValue::Int(1))); // ints allowed in float ranges
        assert!(!f.contains(&HyperValue::Float(1.5)));

        let c = HyperRange::Choice(vec!["mean".into(), "median".into()]);
        assert!(c.contains(&HyperValue::Text("mean".into())));
        assert!(!c.contains(&HyperValue::Text("max".into())));

        assert!(HyperRange::Flag.contains(&HyperValue::Flag(false)));
    }

    #[test]
    fn spec_helpers_defaults_in_range() {
        for spec in [
            HyperSpec::int("n", 1, 10, 5),
            HyperSpec::float("x", 0.0, 1.0, 0.3),
            HyperSpec::log_float("lr", 1e-5, 1e-1, 1e-3),
            HyperSpec::choice("agg", &["mean", "max"], "mean"),
        ] {
            assert!(spec.range.contains(&spec.default), "{}", spec.name);
            assert!(spec.tunable);
        }
        assert!(!HyperSpec::int("k", 0, 1, 0).fixed().tunable);
    }
}

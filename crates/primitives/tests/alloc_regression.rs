//! Allocation-regression suite for the hot data path (DESIGN.md §4j).
//!
//! The arena refactor's contract is that the per-window cost of the
//! pipeline's two hottest loops is *pure compute*: window extraction
//! fills one presized flat matrix, and batched inference streams every
//! window through one reused scratch. Both must perform O(1) heap
//! allocations per call — a count that does not grow with the number of
//! windows. A counting global allocator pins that: if someone
//! reintroduces a per-window `Vec` clone, these tests fail with the
//! exact allocation delta.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use sintel_linalg::Matrix;
use sintel_nn::LstmRegressor;
use sintel_timeseries::{rolling_windows, Signal};

/// Global allocator that counts allocation events on the current
/// thread. Only `alloc` / `alloc_zeroed` / `realloc` count — frees are
/// not interesting for the O(1)-allocations property, and reallocs
/// *must* count (a growing `Vec` shows up as reallocs, not allocs).
struct CountingAlloc;

thread_local! {
    // `const` init: creating the counter itself must not allocate, or
    // the allocator would recurse before the TLS slot exists.
    static ALLOC_EVENTS: Cell<u64> = const { Cell::new(0) };
}

/// `try_with`, not `with`: allocations during thread teardown (after
/// TLS destruction) must pass through uncounted rather than abort.
fn bump() {
    let _ = ALLOC_EVENTS.try_with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// Allocation events on this thread while running `f`.
fn alloc_events<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOC_EVENTS.with(Cell::get);
    let out = f();
    (ALLOC_EVENTS.with(Cell::get) - before, out)
}

fn ramp_signal(n: usize) -> Signal {
    Signal::from_values("s", (0..n).map(|i| (i as f64 * 0.1).sin()).collect())
}

/// `rolling_windows` performs the same number of allocations no matter
/// how many windows it extracts: every buffer is sized up front from
/// the window-count formula.
#[test]
fn rolling_windows_allocations_do_not_grow_with_window_count() {
    let window = 16;
    let small_sig = ramp_signal(200 + window + 1);
    let large_sig = ramp_signal(2000 + window + 1);

    // Warm-up pass so one-time lazy state doesn't pollute the counts.
    rolling_windows(&small_sig, window, 1, true).unwrap();

    let (small, ws_small) = alloc_events(|| rolling_windows(&small_sig, window, 1, true).unwrap());
    let (large, ws_large) = alloc_events(|| rolling_windows(&large_sig, window, 1, true).unwrap());
    assert_eq!(ws_small.len(), 201);
    assert_eq!(ws_large.len(), 2001);

    assert_eq!(
        small, large,
        "rolling_windows allocation count grew with the window count \
         ({small} events for 201 windows vs {large} for 2001)"
    );
    // Belt and braces: the absolute count stays a small constant
    // (windows arena + targets + first_index + timestamps + slack).
    assert!(small <= 16, "rolling_windows made {small} allocations per call");
}

/// `LstmRegressor::predict_batch` reuses one scratch per batch on the
/// serial path: allocations per call are constant, not O(windows).
#[test]
fn predict_batch_allocations_do_not_grow_with_window_count() {
    // Pin the serial path: the parallel path's workers allocate on
    // *their* threads, which this thread-local counter cannot (and
    // should not) observe.
    sintel_common::par::set_threads(Some(1));
    let window = 8;
    let model = LstmRegressor::new(window, 1, 4, 7);
    let mk_windows = |n: usize| {
        let flat: Vec<f64> = (0..n * window).map(|i| (i as f64 * 0.01).sin()).collect();
        Matrix::from_vec(n, window, flat)
    };
    let small_in = mk_windows(200);
    let large_in = mk_windows(2000);

    model.predict_batch(&small_in).unwrap(); // warm-up

    let (small, preds_small) = alloc_events(|| model.predict_batch(&small_in).unwrap());
    let (large, preds_large) = alloc_events(|| model.predict_batch(&large_in).unwrap());
    assert_eq!(preds_small.len(), 200);
    assert_eq!(preds_large.len(), 2000);

    assert_eq!(
        small, large,
        "predict_batch allocation count grew with the batch size \
         ({small} events for 200 windows vs {large} for 2000)"
    );
    // One scratch (two LSTM states + inter-layer buffer + head output)
    // plus the output vector, with slack for Result plumbing.
    assert!(small <= 16, "predict_batch made {small} allocations per call");
}

//! Confusion-matrix accumulation and derived scores.

/// A (possibly duration-weighted) confusion matrix.
///
/// For the overlapping-segment method the entries are event counts; for
/// the weighted-segment method they are durations, which is why the fields
/// are `f64`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Confusion {
    /// True positives (anomaly correctly flagged).
    pub tp: f64,
    /// False positives (normal time flagged anomalous).
    pub fp: f64,
    /// False negatives (anomaly missed).
    pub fn_: f64,
    /// True negatives (normal time correctly unflagged). Not defined for
    /// the overlapping-segment method, which leaves it at zero.
    pub tn: f64,
}

impl Confusion {
    /// Precision `tp / (tp + fp)`; 0 when undefined.
    pub fn precision(&self) -> f64 {
        let denom = self.tp + self.fp;
        if denom == 0.0 {
            0.0
        } else {
            self.tp / denom
        }
    }

    /// Recall `tp / (tp + fn)`; 0 when undefined.
    pub fn recall(&self) -> f64 {
        let denom = self.tp + self.fn_;
        if denom == 0.0 {
            0.0
        } else {
            self.tp / denom
        }
    }

    /// F1 — harmonic mean of precision and recall; 0 when undefined.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Accuracy `(tp + tn) / total`; 0 when undefined.
    pub fn accuracy(&self) -> f64 {
        let total = self.tp + self.fp + self.fn_ + self.tn;
        if total == 0.0 {
            0.0
        } else {
            (self.tp + self.tn) / total
        }
    }

    /// Bundle the derived scores.
    pub fn scores(&self) -> Scores {
        Scores {
            precision: self.precision(),
            recall: self.recall(),
            f1: self.f1(),
            accuracy: self.accuracy(),
        }
    }

    /// Element-wise sum (for aggregating over signals).
    pub fn merge(&self, other: &Confusion) -> Confusion {
        Confusion {
            tp: self.tp + other.tp,
            fp: self.fp + other.fp,
            fn_: self.fn_ + other.fn_,
            tn: self.tn + other.tn,
        }
    }
}

/// Derived classification scores.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Scores {
    /// Fraction of flagged time/events that were truly anomalous.
    pub precision: f64,
    /// Fraction of true anomalies that were flagged.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
    /// Fraction of time/events classified correctly.
    pub accuracy: f64,
}

impl Scores {
    /// A perfect score set (used when both truth and predictions are
    /// empty: there was nothing to find, and nothing was flagged).
    pub fn perfect() -> Self {
        Scores { precision: 1.0, recall: 1.0, f1: 1.0, accuracy: 1.0 }
    }

    /// Mean of a slice of score sets (component-wise); zeros when empty.
    pub fn mean(all: &[Scores]) -> Scores {
        if all.is_empty() {
            return Scores::default();
        }
        let n = all.len() as f64;
        Scores {
            precision: all.iter().map(|s| s.precision).sum::<f64>() / n,
            recall: all.iter().map(|s| s.recall).sum::<f64>() / n,
            f1: all.iter().map(|s| s.f1).sum::<f64>() / n,
            accuracy: all.iter().map(|s| s.accuracy).sum::<f64>() / n,
        }
    }

    /// Component-wise standard deviation of a slice of score sets.
    pub fn std(all: &[Scores]) -> Scores {
        if all.len() < 2 {
            return Scores::default();
        }
        let m = Scores::mean(all);
        let n = all.len() as f64 - 1.0;
        let var = |f: fn(&Scores) -> f64, mu: f64| {
            (all.iter().map(|s| (f(s) - mu) * (f(s) - mu)).sum::<f64>() / n).sqrt()
        };
        Scores {
            precision: var(|s| s.precision, m.precision),
            recall: var(|s| s.recall, m.recall),
            f1: var(|s| s.f1, m.f1),
            accuracy: var(|s| s.accuracy, m.accuracy),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sintel_common::SintelRng;

    #[test]
    fn derived_scores_known_values() {
        let c = Confusion { tp: 8.0, fp: 2.0, fn_: 2.0, tn: 8.0 };
        assert_eq!(c.precision(), 0.8);
        assert_eq!(c.recall(), 0.8);
        assert!((c.f1() - 0.8).abs() < 1e-12);
        assert_eq!(c.accuracy(), 0.8);
    }

    #[test]
    fn zero_denominators_are_zero_not_nan() {
        let c = Confusion::default();
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.f1(), 0.0);
        assert_eq!(c.accuracy(), 0.0);
    }

    #[test]
    fn merge_adds_fields() {
        let a = Confusion { tp: 1.0, fp: 2.0, fn_: 3.0, tn: 4.0 };
        let b = Confusion { tp: 10.0, fp: 20.0, fn_: 30.0, tn: 40.0 };
        let m = a.merge(&b);
        assert_eq!(m, Confusion { tp: 11.0, fp: 22.0, fn_: 33.0, tn: 44.0 });
    }

    #[test]
    fn mean_and_std_of_scores() {
        let s1 = Scores { precision: 1.0, recall: 0.0, f1: 0.5, accuracy: 0.5 };
        let s2 = Scores { precision: 0.0, recall: 1.0, f1: 0.5, accuracy: 0.5 };
        let m = Scores::mean(&[s1, s2]);
        assert_eq!(m.precision, 0.5);
        assert_eq!(m.recall, 0.5);
        let sd = Scores::std(&[s1, s2]);
        assert!((sd.precision - (0.5f64.powi(2) * 2.0).sqrt()).abs() < 1e-12);
        assert_eq!(sd.f1, 0.0);
        assert_eq!(Scores::std(&[s1]).precision, 0.0);
        assert_eq!(Scores::mean(&[]).f1, 0.0);
    }

    #[test]
    fn prop_scores_bounded() {
        let mut rng = SintelRng::seed_from_u64(0x3111);
        for _ in 0..256 {
            let c = Confusion {
                tp: rng.uniform_range(0.0, 1e6),
                fp: rng.uniform_range(0.0, 1e6),
                fn_: rng.uniform_range(0.0, 1e6),
                tn: rng.uniform_range(0.0, 1e6),
            };
            let s = c.scores();
            for v in [s.precision, s.recall, s.f1, s.accuracy] {
                assert!((0.0..=1.0).contains(&v), "{v}");
            }
        }
    }

    #[test]
    fn prop_f1_between_p_and_r() {
        let mut rng = SintelRng::seed_from_u64(0x3112);
        for _ in 0..256 {
            let c = Confusion {
                tp: rng.uniform_range(0.1, 1e3),
                fp: rng.uniform_range(0.0, 1e3),
                fn_: rng.uniform_range(0.0, 1e3),
                tn: 0.0,
            };
            let (p, r, f1) = (c.precision(), c.recall(), c.f1());
            assert!(f1 <= p.max(r) + 1e-12);
            assert!(f1 >= p.min(r) - 1e-12);
        }
    }
}

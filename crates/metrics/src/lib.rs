#![warn(missing_docs)]
// Scores feed ranking and regression tests; accidental `==` on computed
// floats is almost always a bug here. Exact-zero guards on values that
// are *assigned* zero (never computed) carry documented allows.
#![deny(clippy::float_cmp)]

//! # sintel-metrics
//!
//! Pipeline evaluation metrics specialised for time-series anomaly
//! detection (paper §2.3).
//!
//! Classic sample-based precision/recall are misleading when data is
//! irregularly sampled and anomalies have variable lengths. Sintel defines
//! two segment-based evaluation methods, both implemented here:
//!
//! * **Weighted segment** ([`weighted_segment`], Algorithm 1) — partitions
//!   the time axis by the edges of ground-truth and predicted intervals
//!   and weights each partition's confusion-matrix contribution by its
//!   duration. Strict; equivalent to sample-based scoring on regularly
//!   sampled data.
//! * **Overlapping segment** ([`overlapping_segment`], Algorithm 2) —
//!   lenient, event-level scoring that rewards detecting *any part* of a
//!   ground-truth anomaly, reflecting how monitoring teams actually triage
//!   alarms (Hundman et al.).
//!
//! Plus the point-wise regression metrics ([`regression`]) used as
//! unsupervised AutoML objectives (MAE, MSE, MAPE, …).

pub mod confusion;
pub mod regression;
pub mod segment;

pub use confusion::{Confusion, Scores};
pub use regression::{mae, mape, mse, rmse, smape};
pub use segment::{overlapping_segment, weighted_segment, weighted_segment_in_span};

//! Point-wise regression metrics.
//!
//! In the *unsupervised* AutoML setting (§3.3, Figure 5) the tuner
//! optimises how well the modeling sub-pipeline reproduces the signal,
//! scored with one of these metrics; they are also used by tests to check
//! model convergence.

fn check(a: &[f64], b: &[f64]) {
    assert_eq!(a.len(), b.len(), "metric inputs must have equal length");
    assert!(!a.is_empty(), "metric inputs must be non-empty");
}

/// Mean squared error.
pub fn mse(truth: &[f64], pred: &[f64]) -> f64 {
    check(truth, pred);
    truth.iter().zip(pred).map(|(t, p)| (t - p) * (t - p)).sum::<f64>() / truth.len() as f64
}

/// Root mean squared error.
pub fn rmse(truth: &[f64], pred: &[f64]) -> f64 {
    mse(truth, pred).sqrt()
}

/// Mean absolute error.
pub fn mae(truth: &[f64], pred: &[f64]) -> f64 {
    check(truth, pred);
    truth.iter().zip(pred).map(|(t, p)| (t - p).abs()).sum::<f64>() / truth.len() as f64
}

/// Mean absolute percentage error. Zero-valued truth samples are skipped
/// (the conventional guard); returns 0 when every sample is zero.
pub fn mape(truth: &[f64], pred: &[f64]) -> f64 {
    check(truth, pred);
    let mut sum = 0.0;
    let mut n = 0usize;
    for (t, p) in truth.iter().zip(pred) {
        if *t != 0.0 {
            sum += ((t - p) / t).abs();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Symmetric mean absolute percentage error in `[0, 2]`; both-zero pairs
/// contribute zero error.
pub fn smape(truth: &[f64], pred: &[f64]) -> f64 {
    check(truth, pred);
    let total: f64 = truth
        .iter()
        .zip(pred)
        .map(|(t, p)| {
            let denom = t.abs() + p.abs();
            if denom == 0.0 {
                0.0
            } else {
                2.0 * (t - p).abs() / denom
            }
        })
        .sum();
    total / truth.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use sintel_common::SintelRng;

    #[test]
    fn known_values() {
        let t = [1.0, 2.0, 3.0];
        let p = [1.0, 2.0, 5.0];
        assert!((mse(&t, &p) - 4.0 / 3.0).abs() < 1e-12);
        assert!((rmse(&t, &p) - (4.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert!((mae(&t, &p) - 2.0 / 3.0).abs() < 1e-12);
        assert!((mape(&t, &p) - (2.0 / 3.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_prediction_is_zero_error() {
        let t = [1.5, -2.0, 3.25];
        assert_eq!(mse(&t, &t), 0.0);
        assert_eq!(mae(&t, &t), 0.0);
        assert_eq!(mape(&t, &t), 0.0);
        assert_eq!(smape(&t, &t), 0.0);
    }

    #[test]
    fn mape_skips_zero_truth() {
        assert_eq!(mape(&[0.0, 2.0], &[5.0, 2.0]), 0.0);
        assert_eq!(mape(&[0.0, 0.0], &[5.0, 5.0]), 0.0);
    }

    #[test]
    fn smape_bounded_by_two() {
        assert_eq!(smape(&[1.0], &[-1.0]), 2.0);
        assert_eq!(smape(&[0.0], &[0.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn length_mismatch_panics() {
        mse(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_inputs_panic() {
        mae(&[], &[]);
    }

    /// Random (truth, prediction) pair of equal length in `[-1e3, 1e3)`.
    fn random_pair(rng: &mut SintelRng) -> (Vec<f64>, Vec<f64>) {
        let len = 1 + rng.index(99);
        let t = (0..len).map(|_| rng.uniform_range(-1e3, 1e3)).collect();
        let p = (0..len).map(|_| rng.uniform_range(-1e3, 1e3)).collect();
        (t, p)
    }

    #[test]
    fn prop_errors_nonnegative() {
        let mut rng = SintelRng::seed_from_u64(0x3211);
        for _ in 0..256 {
            let (t, p) = random_pair(&mut rng);
            assert!(mse(&t, &p) >= 0.0);
            assert!(mae(&t, &p) >= 0.0);
            assert!(mape(&t, &p) >= 0.0);
            let s = smape(&t, &p);
            assert!((0.0..=2.0 + 1e-12).contains(&s));
        }
    }

    #[test]
    fn prop_rmse_ge_mae_relation() {
        let mut rng = SintelRng::seed_from_u64(0x3212);
        for _ in 0..256 {
            // RMSE >= MAE for any data (Jensen).
            let (t, p) = random_pair(&mut rng);
            assert!(rmse(&t, &p) >= mae(&t, &p) - 1e-9);
        }
    }
}

//! The paper's two segment-based evaluation methods (§2.3).

use sintel_timeseries::Interval;

use crate::confusion::Confusion;

/// **Algorithm 1 — Weighted Segment Evaluation.**
///
/// The union of ground-truth (`truth`) and predicted (`pred`) interval
/// edges partitions time into segments. Each segment contributes its
/// duration to exactly one confusion-matrix cell depending on whether it
/// lies inside the truth set, the predicted set, both, or neither.
///
/// The evaluated span defaults to the hull of all edges; see
/// [`weighted_segment_in_span`] to supply the full signal span so that
/// normal time outside every interval is credited as true negatives.
pub fn weighted_segment(truth: &[Interval], pred: &[Interval]) -> Confusion {
    let mut edges: Vec<i64> = Vec::with_capacity(2 * (truth.len() + pred.len()));
    collect_edges(truth, &mut edges);
    collect_edges(pred, &mut edges);
    if edges.is_empty() {
        return Confusion::default();
    }
    edges.sort_unstable();
    edges.dedup();
    weighted_over_edges(&edges, truth, pred)
}

/// [`weighted_segment`] evaluated over an explicit signal span
/// `[span_start, span_end]`, so time outside every interval counts as
/// true negative (needed for meaningful accuracy).
pub fn weighted_segment_in_span(
    truth: &[Interval],
    pred: &[Interval],
    span_start: i64,
    span_end: i64,
) -> Confusion {
    let mut edges: Vec<i64> = Vec::with_capacity(2 * (truth.len() + pred.len()) + 2);
    edges.push(span_start);
    edges.push(span_end);
    collect_edges(truth, &mut edges);
    collect_edges(pred, &mut edges);
    edges.sort_unstable();
    edges.dedup();
    edges.retain(|&e| e >= span_start && e <= span_end);
    weighted_over_edges(&edges, truth, pred)
}

fn collect_edges(intervals: &[Interval], edges: &mut Vec<i64>) {
    for iv in intervals {
        edges.push(iv.start);
        edges.push(iv.end);
    }
}

fn weighted_over_edges(edges: &[i64], truth: &[Interval], pred: &[Interval]) -> Confusion {
    let mut cm = Confusion::default();
    // Walk consecutive edge pairs: each is one segment of the partition.
    for w in edges.windows(2) {
        let (s, e) = (w[0], w[1]);
        let weight = (e - s) as f64;
        if weight == 0.0 {
            continue;
        }
        // A segment lies entirely inside or outside each interval because
        // its endpoints are consecutive edges; test full containment.
        let in_truth = truth.iter().any(|t| t.start <= s && e <= t.end);
        let in_pred = pred.iter().any(|p| p.start <= s && e <= p.end);
        match (in_truth, in_pred) {
            (true, true) => cm.tp += weight,
            (false, true) => cm.fp += weight,
            (true, false) => cm.fn_ += weight,
            (false, false) => cm.tn += weight,
        }
    }
    cm
}

/// **Algorithm 2 — Overlapping Segment Evaluation.**
///
/// Event-level scoring: every ground-truth anomaly that overlaps at least
/// one predicted interval is a true positive; unmatched ground-truth
/// anomalies are false negatives; predicted intervals that overlap no
/// ground-truth anomaly are false positives. True negatives are undefined
/// at the event level and left at zero.
pub fn overlapping_segment(truth: &[Interval], pred: &[Interval]) -> Confusion {
    let mut cm = Confusion::default();
    for t in truth {
        if pred.iter().any(|p| p.overlaps(t)) {
            cm.tp += 1.0;
        } else {
            cm.fn_ += 1.0;
        }
    }
    for p in pred {
        if !truth.iter().any(|t| t.overlaps(p)) {
            cm.fp += 1.0;
        }
    }
    cm
}

#[cfg(test)]
mod tests {
    use super::*;
    use sintel_common::SintelRng;

    fn iv(s: i64, e: i64) -> Interval {
        Interval::new(s, e).unwrap()
    }

    // ---- overlapping segment (Algorithm 2) ----

    #[test]
    fn overlap_exact_match() {
        let cm = overlapping_segment(&[iv(10, 20)], &[iv(10, 20)]);
        assert_eq!((cm.tp, cm.fp, cm.fn_), (1.0, 0.0, 0.0));
        assert_eq!(cm.scores().f1, 1.0);
    }

    #[test]
    fn overlap_partial_detection_counts() {
        // Detecting any subset of the anomaly is rewarded.
        let cm = overlapping_segment(&[iv(10, 100)], &[iv(95, 120)]);
        assert_eq!((cm.tp, cm.fp, cm.fn_), (1.0, 0.0, 0.0));
    }

    #[test]
    fn overlap_false_positive_and_negative() {
        let cm = overlapping_segment(&[iv(0, 10), iv(50, 60)], &[iv(5, 8), iv(100, 110)]);
        assert_eq!((cm.tp, cm.fp, cm.fn_), (1.0, 1.0, 1.0));
        assert_eq!(cm.precision(), 0.5);
        assert_eq!(cm.recall(), 0.5);
    }

    #[test]
    fn overlap_one_prediction_covers_two_truths() {
        // A single broad alarm that covers two distinct anomalies yields
        // two true positives and no false positive.
        let cm = overlapping_segment(&[iv(0, 10), iv(20, 30)], &[iv(0, 30)]);
        assert_eq!((cm.tp, cm.fp, cm.fn_), (2.0, 0.0, 0.0));
    }

    #[test]
    fn overlap_empty_sets() {
        let cm = overlapping_segment(&[], &[]);
        assert_eq!((cm.tp, cm.fp, cm.fn_), (0.0, 0.0, 0.0));
        let cm = overlapping_segment(&[iv(0, 5)], &[]);
        assert_eq!((cm.tp, cm.fp, cm.fn_), (0.0, 0.0, 1.0));
        let cm = overlapping_segment(&[], &[iv(0, 5)]);
        assert_eq!((cm.tp, cm.fp, cm.fn_), (0.0, 1.0, 0.0));
    }

    // ---- weighted segment (Algorithm 1) ----

    #[test]
    fn weighted_exact_match() {
        let cm = weighted_segment(&[iv(0, 10)], &[iv(0, 10)]);
        assert_eq!((cm.tp, cm.fp, cm.fn_, cm.tn), (10.0, 0.0, 0.0, 0.0));
    }

    #[test]
    fn weighted_partial_overlap_durations() {
        // truth [0,10], pred [5,15]:
        // [0,5) fn, [5,10) tp, [10,15) fp — durations 5 each.
        let cm = weighted_segment(&[iv(0, 10)], &[iv(5, 15)]);
        assert_eq!((cm.tp, cm.fp, cm.fn_, cm.tn), (5.0, 5.0, 5.0, 0.0));
        assert!((cm.f1() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn weighted_gap_between_events_is_tn() {
        // truth [0,10], pred [20,30]: gap [10,20] is a true negative.
        let cm = weighted_segment(&[iv(0, 10)], &[iv(20, 30)]);
        assert_eq!((cm.tp, cm.fp, cm.fn_, cm.tn), (0.0, 10.0, 10.0, 10.0));
    }

    #[test]
    fn weighted_span_extends_tn() {
        let cm = weighted_segment_in_span(&[iv(10, 20)], &[iv(10, 20)], 0, 100);
        assert_eq!((cm.tp, cm.fp, cm.fn_, cm.tn), (10.0, 0.0, 0.0, 90.0));
        assert_eq!(cm.accuracy(), 1.0);
    }

    #[test]
    fn weighted_span_clips_outside_edges() {
        // Prediction partially outside the evaluated span is clipped.
        let cm = weighted_segment_in_span(&[], &[iv(-10, 10)], 0, 20);
        assert_eq!((cm.tp, cm.fp, cm.fn_, cm.tn), (0.0, 10.0, 0.0, 10.0));
    }

    #[test]
    fn weighted_point_anomaly_contributes_nothing() {
        // Zero-duration interval has no weight in this strict method.
        let cm = weighted_segment(&[iv(5, 5)], &[iv(5, 5)]);
        assert_eq!((cm.tp, cm.fp, cm.fn_, cm.tn), (0.0, 0.0, 0.0, 0.0));
    }

    #[test]
    fn weighted_empty_sets() {
        let cm = weighted_segment(&[], &[]);
        assert_eq!(cm, Confusion::default());
    }

    #[test]
    fn weighted_matches_sample_based_on_regular_grid() {
        // On a unit grid, weighted segment == counting samples.
        let truth = [iv(0, 4)]; // covers samples 0..4 (4 unit segments)
        let pred = [iv(2, 6)];
        let cm = weighted_segment_in_span(&truth, &pred, 0, 10);
        // Sample-based with half-open unit cells: tp = |[2,4)| = 2,
        // fn = |[0,2)| = 2, fp = |[4,6)| = 2, tn = |[6,10)| = 4.
        assert_eq!((cm.tp, cm.fp, cm.fn_, cm.tn), (2.0, 2.0, 2.0, 4.0));
    }

    /// Up to 11 random intervals with starts in `[0, 500)`, durations in `[1, 50)`.
    fn random_intervals(rng: &mut SintelRng) -> Vec<Interval> {
        let n = rng.index(12);
        (0..n)
            .map(|_| {
                let s = rng.int_range(0, 500);
                let d = rng.int_range(1, 50);
                iv(s, s + d)
            })
            .collect()
    }

    #[test]
    fn prop_weighted_durations_partition_span() {
        let mut rng = SintelRng::seed_from_u64(0x3311);
        for _ in 0..256 {
            let truth = random_intervals(&mut rng);
            let pred = random_intervals(&mut rng);
            let cm = weighted_segment_in_span(&truth, &pred, 0, 600);
            let total = cm.tp + cm.fp + cm.fn_ + cm.tn;
            assert!((total - 600.0).abs() < 1e-9, "total {total}");
        }
    }

    #[test]
    fn prop_overlap_counts_bounded() {
        let mut rng = SintelRng::seed_from_u64(0x3312);
        for _ in 0..256 {
            let truth = random_intervals(&mut rng);
            let pred = random_intervals(&mut rng);
            let cm = overlapping_segment(&truth, &pred);
            assert_eq!(cm.tp + cm.fn_, truth.len() as f64);
            assert!(cm.fp <= pred.len() as f64);
        }
    }

    #[test]
    fn prop_perfect_prediction_is_perfect() {
        let mut rng = SintelRng::seed_from_u64(0x3313);
        for _ in 0..256 {
            let truth = random_intervals(&mut rng);
            if truth.is_empty() {
                continue;
            }
            let cm = overlapping_segment(&truth, &truth);
            assert_eq!(cm.scores().f1, 1.0);
            let cmw = weighted_segment(&truth, &truth);
            assert_eq!(cmw.fp, 0.0);
            assert_eq!(cmw.fn_, 0.0);
        }
    }

    #[test]
    fn prop_more_predictions_never_reduce_recall() {
        let mut rng = SintelRng::seed_from_u64(0x3314);
        for _ in 0..256 {
            let truth = random_intervals(&mut rng);
            let pred = random_intervals(&mut rng);
            let extra = random_intervals(&mut rng);
            let r1 = overlapping_segment(&truth, &pred).recall();
            let mut bigger = pred.clone();
            bigger.extend(extra);
            let r2 = overlapping_segment(&truth, &bigger).recall();
            assert!(r2 >= r1 - 1e-12);
        }
    }
}

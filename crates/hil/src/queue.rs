//! The review queue: which event should the expert look at next?
//!
//! The paper's related work (§6) surveys active anomaly discovery —
//! Pelleg & Moore surface detected anomalies for classification, Das et
//! al. surface *the most outlying* points for expert review. This module
//! provides both orderings plus FIFO, pluggable into the feedback loop:
//! a monitoring UI pops from exactly such a queue.

use sintel_timeseries::ScoredInterval;

/// How the queue orders pending events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReviewStrategy {
    /// Most severe first — triage order; what operators see by default.
    #[default]
    SeverityFirst,
    /// Closest to the median severity first — the *uncertain* middle of
    /// the distribution, where one label moves the decision boundary
    /// most (active learning).
    UncertaintyFirst,
    /// Detection order.
    Fifo,
}

/// A queue of events awaiting expert review.
#[derive(Debug, Clone)]
pub struct ReviewQueue {
    /// Remaining events, ordered so that `pop()` from the *back* yields
    /// the next event to review.
    events: Vec<ScoredInterval>,
    strategy: ReviewStrategy,
}

impl ReviewQueue {
    /// Build a queue from proposals under a strategy.
    pub fn new(proposals: &[ScoredInterval], strategy: ReviewStrategy) -> Self {
        let mut events = proposals.to_vec();
        match strategy {
            ReviewStrategy::SeverityFirst => {
                // Ascending, so pop() returns the most severe.
                events.sort_by(|a, b| a.score.total_cmp(&b.score));
            }
            ReviewStrategy::UncertaintyFirst => {
                let median =
                    sintel_common::median(&events.iter().map(|e| e.score).collect::<Vec<_>>());
                // Farthest-from-median at the front of the Vec, so pop()
                // returns the most uncertain (closest to the median).
                events.sort_by(|a, b| {
                    (b.score - median).abs().total_cmp(&(a.score - median).abs())
                });
            }
            ReviewStrategy::Fifo => {
                events.reverse(); // pop() returns the earliest detection
            }
        }
        Self { events, strategy }
    }

    /// Strategy in force.
    pub fn strategy(&self) -> ReviewStrategy {
        self.strategy
    }

    /// Next event to review, if any.
    pub fn pop(&mut self) -> Option<ScoredInterval> {
        self.events.pop()
    }

    /// Events still pending.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn proposals() -> Vec<ScoredInterval> {
        [(0, 0.2), (10, 0.9), (20, 0.5), (30, 0.1), (40, 0.7)]
            .iter()
            .map(|&(s, score)| ScoredInterval::new(s, s + 5, score).unwrap())
            .collect()
    }

    #[test]
    fn severity_first_pops_descending() {
        let mut q = ReviewQueue::new(&proposals(), ReviewStrategy::SeverityFirst);
        let order: Vec<f64> = std::iter::from_fn(|| q.pop()).map(|e| e.score).collect();
        assert_eq!(order, vec![0.9, 0.7, 0.5, 0.2, 0.1]);
    }

    #[test]
    fn uncertainty_first_pops_median_outwards() {
        let mut q = ReviewQueue::new(&proposals(), ReviewStrategy::UncertaintyFirst);
        // Median severity is 0.5 -> 0.5 first, extremes last.
        let order: Vec<f64> = std::iter::from_fn(|| q.pop()).map(|e| e.score).collect();
        assert_eq!(order[0], 0.5);
        let last = order[4];
        assert!(last == 0.9 || last == 0.1, "{order:?}");
    }

    #[test]
    fn fifo_preserves_detection_order() {
        let mut q = ReviewQueue::new(&proposals(), ReviewStrategy::Fifo);
        let starts: Vec<i64> =
            std::iter::from_fn(|| q.pop()).map(|e| e.interval.start).collect();
        assert_eq!(starts, vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q = ReviewQueue::new(&[], ReviewStrategy::SeverityFirst);
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert!(q.pop().is_none());
        assert_eq!(q.strategy(), ReviewStrategy::SeverityFirst);
    }
}

#![warn(missing_docs)]

//! # sintel-hil
//!
//! The human-in-the-loop subsystem (paper §2.4, §3.6, Figure 1):
//!
//! * [`event`] — the event lifecycle: detected anomalies become
//!   reviewable [`event::Event`]s that experts *confirm*, *modify*,
//!   *remove*, *create*, *tag* and *discuss*; every action is persisted
//!   to the knowledge base (`sintel-store`).
//! * [`annotator`] — the [`annotator::Annotator`] interface plus
//!   [`annotator::SimulatedExpert`], the scripted ground-truth-aware
//!   expert used by the feedback and study experiments (the paper's own
//!   evaluation also simulates human actions, §4).
//! * [`semi`] — the semi-/supervised detection pipeline of Figure 2b: a
//!   feature-based window classifier trained on annotated (anomalous /
//!   normal) sequences.
//! * [`queue`] — review-queue orderings (severity-first triage,
//!   uncertainty-first active learning, FIFO).
//! * [`feedback`] — the annotation-driven retraining loop of Figure 8a:
//!   warm-start from an unsupervised pipeline, annotate k events per
//!   iteration, retrain, track test F1.
//! * [`study`] — the real-world use-case simulation behind Figure 8b
//!   (16 satellite signals, 6 experts, 110 tagged events).
//! * [`viz`] — an ASCII multi-aggregation signal viewer standing in for
//!   the MTV web application (DESIGN.md §2).

pub mod annotator;
pub mod event;
pub mod feedback;
pub mod queue;
pub mod semi;
pub mod study;
pub mod viz;

pub use annotator::{Annotator, SimulatedExpert};
pub use event::{AnnotationAction, Event, EventStatus};
pub use feedback::{FeedbackLoop, FeedbackPoint, RetrainPolicy};
pub use queue::{ReviewQueue, ReviewStrategy};
pub use semi::SemiSupervisedDetector;

/// Errors produced by the HIL subsystem.
#[derive(Debug, Clone, PartialEq)]
pub enum HilError {
    /// Underlying pipeline failure.
    Pipeline(String),
    /// Underlying store failure.
    Store(String),
    /// Invalid configuration for a loop / study.
    Invalid(String),
}

impl std::fmt::Display for HilError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HilError::Pipeline(m) => write!(f, "pipeline failure: {m}"),
            HilError::Store(m) => write!(f, "store failure: {m}"),
            HilError::Invalid(m) => write!(f, "invalid configuration: {m}"),
        }
    }
}

impl std::error::Error for HilError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, HilError>;

//! The annotation-driven feedback loop (paper Figure 8a).
//!
//! The experiment mirrors the paper's setup: a semi-supervised pipeline
//! is warm-started from an unsupervised pipeline's detections, an expert
//! annotates `k = 2` events per iteration (confirming true anomalies,
//! removing false alarms, occasionally reporting a missed event), the
//! model retrains on the verified sequences, and test-set F1 is recorded
//! after every iteration. The simulation stops when no events are left
//! to annotate.

use sintel_metrics::overlapping_segment;
use sintel_timeseries::{Interval, ScoredInterval, Signal};

use crate::annotator::Annotator;
use crate::event::{AnnotationAction, Event, EventStatus};
use crate::queue::{ReviewQueue, ReviewStrategy};
use crate::semi::SemiSupervisedDetector;
use crate::{HilError, Result};

/// One measurement of the loop: cumulative annotations vs test F1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeedbackPoint {
    /// Total events annotated so far.
    pub annotations: usize,
    /// Overlapping-segment F1 of the semi-supervised pipeline on the
    /// held-out test events.
    pub f1: f64,
    /// Whether this iteration actually retrained (see [`RetrainPolicy`]).
    pub retrained: bool,
}

/// When the semi-supervised pipeline retrains (paper §5: "it would be
/// valuable to decide when to retrain the pipeline by estimating the
/// benefit gain ahead of time, so as not to incur unnecessary costs").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RetrainPolicy {
    /// Retrain after every annotation batch (the paper's baseline, and
    /// the source of Figure 8a's flat segments).
    #[default]
    EveryIteration,
    /// Retrain only when the batch contributed at least one *confirmed
    /// anomaly* — rejected false alarms rarely shift the decision
    /// boundary, so skipping them saves retraining cost.
    OnNewAnomaly,
}

/// Configuration of the feedback loop.
#[derive(Debug, Clone, Copy)]
pub struct FeedbackLoop {
    /// Events the expert annotates per iteration (paper: k = 2).
    pub k: usize,
    /// Window length of the semi-supervised detector.
    pub window: usize,
    /// Detection stride.
    pub step: usize,
    /// Retraining epochs per iteration.
    pub epochs: usize,
    /// Background (verified-normal) windows sampled once at the start.
    pub background: usize,
    /// When to pay for retraining.
    pub retrain: RetrainPolicy,
    /// How the review queue orders pending events.
    pub strategy: ReviewStrategy,
    /// Seed.
    pub seed: u64,
}

impl Default for FeedbackLoop {
    fn default() -> Self {
        Self {
            k: 2,
            window: 24,
            step: 6,
            epochs: 40,
            background: 30,
            retrain: RetrainPolicy::EveryIteration,
            strategy: ReviewStrategy::SeverityFirst,
            seed: 0,
        }
    }
}

impl FeedbackLoop {
    /// Run the loop.
    ///
    /// * `train` / `train_truth` — the annotation split (70% in the
    ///   paper) and its ground truth, which the simulated `annotator`
    ///   knows;
    /// * `test` / `test_truth` — the held-out evaluation split;
    /// * `warm_start` — event proposals from an unsupervised pipeline on
    ///   the training split (a different unsupervised pipeline per curve
    ///   in Figure 8a).
    pub fn run(
        &self,
        annotator: &mut dyn Annotator,
        train: &Signal,
        test: &Signal,
        test_truth: &[Interval],
        warm_start: &[ScoredInterval],
    ) -> Result<Vec<FeedbackPoint>> {
        if self.k == 0 {
            return Err(HilError::Invalid("k must be positive".into()));
        }
        let mut detector = SemiSupervisedDetector::new(self.window, self.step, self.seed);

        let mut queue = ReviewQueue::new(warm_start, self.strategy);
        let mut reviewed: Vec<Interval> = Vec::new();
        let mut confirmed: Vec<Interval> = Vec::new();

        let mut points = Vec::new();
        let mut annotations = 0usize;

        // One-off pool of expert-verified normal background, so the
        // classifier has negatives even when every proposal is real.
        detector.add_background(
            train,
            &warm_start.iter().map(|s| s.interval).collect::<Vec<_>>(),
            self.background,
        );

        let mut last_f1 = 0.0;
        loop {
            let mut progressed = false;
            let mut batch_confirmed = false;
            for _ in 0..self.k {
                if let Some(proposal) = queue.pop() {
                    let mut event = Event {
                        id: 0,
                        signal: train.name().to_string(),
                        interval: proposal.interval,
                        severity: proposal.score,
                        status: EventStatus::Unreviewed,
                    };
                    let action = annotator.review(&event);
                    let anomalous = matches!(action, AnnotationAction::Confirm);
                    if anomalous {
                        event.status = EventStatus::Confirmed;
                        confirmed.push(event.interval);
                        batch_confirmed = true;
                    }
                    detector.add_labeled_region(train, event.interval, anomalous);
                    reviewed.push(event.interval);
                    annotations += 1;
                    progressed = true;
                } else if let Some(missed) =
                    annotator.report_missed(train.name(), &reviewed)
                {
                    // The expert creates an event the ML missed.
                    detector.add_labeled_region(train, missed, true);
                    reviewed.push(missed);
                    confirmed.push(missed);
                    batch_confirmed = true;
                    annotations += 1;
                    progressed = true;
                }
            }
            if !progressed {
                break; // no events left: the simulation stops
            }
            let retrain_now = match self.retrain {
                RetrainPolicy::EveryIteration => true,
                // Always train the very first batch so a model exists.
                RetrainPolicy::OnNewAnomaly => batch_confirmed || points.is_empty(),
            };
            if retrain_now {
                detector.retrain(self.epochs)?;
                let detections = detector.detect(test);
                let pred: Vec<Interval> = detections.iter().map(|d| d.interval).collect();
                last_f1 = overlapping_segment(test_truth, &pred).scores().f1;
            }
            points.push(FeedbackPoint { annotations, f1: last_f1, retrained: retrain_now });
        }
        Ok(points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotator::SimulatedExpert;

    /// Build a train/test pair with the same anomaly family (level
    /// shifts on a sine) so feedback on train transfers to test.
    fn scenario() -> (Signal, Vec<Interval>, Signal, Vec<Interval>) {
        let make = |seed: u64, shifts: &[(usize, usize)]| {
            let n = 900;
            let mut vals: Vec<f64> = (0..n)
                .map(|t| {
                    (std::f64::consts::TAU * (t as f64 + seed as f64 * 13.0) / 48.0).sin()
                })
                .collect();
            let mut truth = Vec::new();
            for &(s, e) in shifts {
                for v in &mut vals[s..=e] {
                    *v += 3.5;
                }
                truth.push(Interval::new(s as i64, e as i64).unwrap());
            }
            (Signal::from_values("train", vals), truth)
        };
        let (train, train_truth) = make(0, &[(150, 190), (500, 540), (700, 730)]);
        let (test, test_truth) = make(1, &[(200, 240), (600, 650)]);
        (train, train_truth, test.with_name("test"), test_truth)
    }

    #[test]
    fn feedback_improves_f1_with_annotations() {
        let (train, train_truth, test, test_truth) = scenario();
        // Warm start: two true proposals, two false alarms.
        let warm: Vec<ScoredInterval> = vec![
            ScoredInterval::new(150, 190, 0.9).unwrap(),
            ScoredInterval::new(320, 340, 0.7).unwrap(), // false alarm
            ScoredInterval::new(500, 540, 0.8).unwrap(),
            ScoredInterval::new(60, 80, 0.5).unwrap(), // false alarm
        ];
        let mut expert = SimulatedExpert::new(
            vec![("train".to_string(), train_truth.clone())],
            1.0,
            5,
        );
        let cfg = FeedbackLoop { epochs: 50, ..Default::default() };
        let points =
            cfg.run(&mut expert, &train, &test, &test_truth, &warm).unwrap();
        assert!(!points.is_empty());
        // Annotation counter grows by at most k per iteration, strictly
        // monotonically.
        for w in points.windows(2) {
            assert!(w[1].annotations > w[0].annotations);
            assert!(w[1].annotations - w[0].annotations <= cfg.k);
        }
        // With all events annotated, the pipeline should detect the test
        // anomalies well.
        let final_f1 = points.last().unwrap().f1;
        assert!(final_f1 > 0.6, "final F1 {final_f1}, points {points:?}");
        // The expert eventually annotated every training anomaly (the
        // missed one is reported and added).
        assert_eq!(points.last().unwrap().annotations, warm.len() + 1);
    }

    #[test]
    fn on_new_anomaly_policy_skips_retrains() {
        let (train, train_truth, test, test_truth) = scenario();
        // Warm start with mostly false alarms: OnNewAnomaly should skip
        // retraining on the all-rejected batches.
        let warm: Vec<ScoredInterval> = vec![
            ScoredInterval::new(50, 70, 0.9).unwrap(),
            ScoredInterval::new(320, 340, 0.8).unwrap(),
            ScoredInterval::new(400, 420, 0.7).unwrap(),
            ScoredInterval::new(600, 620, 0.6).unwrap(), // overlaps no truth? (truth 500..540) -> false
            ScoredInterval::new(150, 190, 0.5).unwrap(), // true anomaly
            ScoredInterval::new(60, 80, 0.4).unwrap(),
        ];
        let mk_expert = || {
            SimulatedExpert::new(vec![("train".to_string(), train_truth.clone())], 1.0, 5)
        };
        let every = FeedbackLoop { epochs: 30, ..Default::default() };
        let lazy = FeedbackLoop {
            epochs: 30,
            retrain: RetrainPolicy::OnNewAnomaly,
            ..Default::default()
        };
        let p_every = every.run(&mut mk_expert(), &train, &test, &test_truth, &warm).unwrap();
        let p_lazy = lazy.run(&mut mk_expert(), &train, &test, &test_truth, &warm).unwrap();
        let retrains_every = p_every.iter().filter(|p| p.retrained).count();
        let retrains_lazy = p_lazy.iter().filter(|p| p.retrained).count();
        assert_eq!(retrains_every, p_every.len());
        assert!(retrains_lazy < retrains_every, "{retrains_lazy} vs {retrains_every}");
        // Same annotation trajectory either way.
        assert_eq!(
            p_every.last().unwrap().annotations,
            p_lazy.last().unwrap().annotations
        );
        // And the lazy policy still ends up with a working model.
        assert!(p_lazy.last().unwrap().f1 > 0.3, "{p_lazy:?}");
    }

    #[test]
    fn zero_k_rejected() {
        let (train, _t, test, test_truth) = scenario();
        let cfg = FeedbackLoop { k: 0, ..Default::default() };
        let mut expert = SimulatedExpert::new(vec![], 1.0, 0);
        assert!(cfg.run(&mut expert, &train, &test, &test_truth, &[]).is_err());
    }

    #[test]
    fn loop_terminates_with_no_events() {
        let (train, _t, test, test_truth) = scenario();
        // No warm start and an expert who knows no anomalies: nothing to
        // annotate, simulation ends immediately.
        let mut expert = SimulatedExpert::new(vec![], 1.0, 0);
        let cfg = FeedbackLoop::default();
        let points = cfg.run(&mut expert, &train, &test, &test_truth, &[]).unwrap();
        assert!(points.is_empty());
    }
}

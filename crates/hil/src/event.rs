//! The reviewable event lifecycle.

use sintel_store::{Doc, SintelDb};
use sintel_timeseries::Interval;

use crate::{HilError, Result};

/// Review status of a detected (or expert-created) event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventStatus {
    /// Freshly detected, awaiting review.
    Unreviewed,
    /// Expert confirmed it is a real anomaly.
    Confirmed,
    /// Expert marked it as normal behaviour (false alarm).
    Rejected,
    /// Expert adjusted the boundaries.
    Modified,
    /// Expert created it manually (the ML missed it).
    Created,
    /// Flagged for further investigation.
    Investigate,
}

impl EventStatus {
    /// Stable string used in the knowledge base.
    pub fn as_str(&self) -> &'static str {
        match self {
            EventStatus::Unreviewed => "unreviewed",
            EventStatus::Confirmed => "confirmed",
            EventStatus::Rejected => "rejected",
            EventStatus::Modified => "modified",
            EventStatus::Created => "created",
            EventStatus::Investigate => "investigate",
        }
    }

    /// Parse from the knowledge-base string.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "unreviewed" => Some(Self::Unreviewed),
            "confirmed" => Some(Self::Confirmed),
            "rejected" => Some(Self::Rejected),
            "modified" => Some(Self::Modified),
            "created" => Some(Self::Created),
            "investigate" => Some(Self::Investigate),
            _ => None,
        }
    }
}

/// An anomalous event under review.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Knowledge-base id (0 before persistence).
    pub id: u64,
    /// Signal the event belongs to.
    pub signal: String,
    /// The anomalous span.
    pub interval: Interval,
    /// Detector severity score.
    pub severity: f64,
    /// Review status.
    pub status: EventStatus,
}

/// An expert's annotation action on an event (§2.4: confirming,
/// modifying, removing, searching and discussing events).
#[derive(Debug, Clone, PartialEq)]
pub enum AnnotationAction {
    /// Confirm the event as a true anomaly.
    Confirm,
    /// Remove / reject the event as normal behaviour.
    Remove,
    /// Adjust the event boundaries.
    Modify(Interval),
    /// Create a new event the detector missed.
    Create(Interval),
    /// Attach a free-form tag.
    Tag(String),
    /// Add a discussion comment.
    Comment(String),
}

impl AnnotationAction {
    /// Stable action name used in the knowledge base.
    pub fn name(&self) -> &'static str {
        match self {
            AnnotationAction::Confirm => "confirm",
            AnnotationAction::Remove => "remove",
            AnnotationAction::Modify(_) => "modify",
            AnnotationAction::Create(_) => "create",
            AnnotationAction::Tag(_) => "tag",
            AnnotationAction::Comment(_) => "comment",
        }
    }
}

/// Apply an annotation action to an event, persisting both the action
/// and the resulting state into the knowledge base.
pub fn apply_action(
    db: &SintelDb,
    event: &mut Event,
    user_id: u64,
    action: &AnnotationAction,
) -> Result<()> {
    let store_err = |e: sintel_store::StoreError| HilError::Store(e.to_string());
    match action {
        AnnotationAction::Confirm => {
            event.status = EventStatus::Confirmed;
            db.set_event_status(event.id, event.status.as_str()).map_err(store_err)?;
        }
        AnnotationAction::Remove => {
            event.status = EventStatus::Rejected;
            db.set_event_status(event.id, event.status.as_str()).map_err(store_err)?;
        }
        AnnotationAction::Modify(new_interval) => {
            event.interval = *new_interval;
            event.status = EventStatus::Modified;
            db.raw()
                .patch(
                    sintel_store::schema::collections::EVENTS,
                    event.id,
                    &[
                        ("start_time", Doc::from(new_interval.start)),
                        ("stop_time", Doc::from(new_interval.end)),
                        ("status", Doc::from(event.status.as_str())),
                    ],
                )
                .map_err(store_err)?;
        }
        AnnotationAction::Create(_) => {
            event.status = EventStatus::Created;
            db.set_event_status(event.id, event.status.as_str()).map_err(store_err)?;
        }
        AnnotationAction::Tag(_) | AnnotationAction::Comment(_) => {}
    }
    match action {
        AnnotationAction::Comment(text) => {
            db.add_comment(event.id, user_id, text);
        }
        AnnotationAction::Tag(tag) => {
            db.add_annotation(event.id, user_id, action.name(), tag);
        }
        other => {
            db.add_annotation(event.id, user_id, other.name(), "");
        }
    }
    Ok(())
}

/// Persist a freshly detected event and return the in-memory view.
pub fn persist_detected(
    db: &SintelDb,
    signalrun_id: u64,
    signal: &str,
    interval: Interval,
    severity: f64,
) -> Event {
    let id = db.add_event(signalrun_id, signal, interval.start, interval.end, severity);
    Event { id, signal: signal.to_string(), interval, severity, status: EventStatus::Unreviewed }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_string_roundtrip() {
        for s in [
            EventStatus::Unreviewed,
            EventStatus::Confirmed,
            EventStatus::Rejected,
            EventStatus::Modified,
            EventStatus::Created,
            EventStatus::Investigate,
        ] {
            assert_eq!(EventStatus::parse(s.as_str()), Some(s));
        }
        assert_eq!(EventStatus::parse("bogus"), None);
    }

    #[test]
    fn actions_persist_to_knowledge_base() {
        let db = SintelDb::in_memory();
        let user = db.add_user("bob", "engineer");
        let run = db.add_signalrun(1, "S-1", "done");
        let mut event =
            persist_detected(&db, run, "S-1", Interval::new(100, 200).unwrap(), 0.8);
        assert_eq!(event.status, EventStatus::Unreviewed);

        apply_action(&db, &mut event, user, &AnnotationAction::Confirm).unwrap();
        assert_eq!(event.status, EventStatus::Confirmed);
        let doc = db.events_for_signal("S-1").pop().unwrap();
        assert_eq!(doc.get("status").unwrap().as_str(), Some("confirmed"));
        assert_eq!(db.annotations_for_event(event.id).len(), 1);

        apply_action(
            &db,
            &mut event,
            user,
            &AnnotationAction::Modify(Interval::new(90, 210).unwrap()),
        )
        .unwrap();
        let doc = db.events_for_signal("S-1").pop().unwrap();
        assert_eq!(doc.get("start_time").unwrap().as_i64(), Some(90));
        assert_eq!(event.interval.end, 210);

        apply_action(&db, &mut event, user, &AnnotationAction::Comment("maneuver".into()))
            .unwrap();
        assert_eq!(db.comments_for_event(event.id).len(), 1);

        apply_action(&db, &mut event, user, &AnnotationAction::Tag("eclipse".into())).unwrap();
        let annotations = db.annotations_for_event(event.id);
        assert!(annotations.iter().any(|a| a.get("tag").unwrap().as_str() == Some("eclipse")));
    }

    #[test]
    fn remove_marks_rejected() {
        let db = SintelDb::in_memory();
        let user = db.add_user("eve", "engineer");
        let mut event = persist_detected(&db, 1, "S-1", Interval::new(0, 5).unwrap(), 0.1);
        apply_action(&db, &mut event, user, &AnnotationAction::Remove).unwrap();
        assert_eq!(event.status, EventStatus::Rejected);
    }
}

//! ASCII signal visualisation — the terminal stand-in for the MTV
//! visual-analytics web application (paper §3.6).
//!
//! Supports the operations the paper calls out: rendering a signal with
//! its flagged anomalies, and a *multi-aggregation view* that shows the
//! same signal at several aggregation levels so reviewers can see why an
//! interval was flagged.

use sintel_timeseries::{time_segments_aggregate, Aggregation, Interval, Signal};

/// Render a signal as an ASCII chart of `width x height` characters,
/// marking samples inside `anomalies` with `#` columns underneath.
pub fn render(signal: &Signal, anomalies: &[Interval], width: usize, height: usize) -> String {
    let width = width.clamp(8, 400);
    let height = height.clamp(3, 60);
    if signal.is_empty() {
        return "(empty signal)\n".to_string();
    }
    // Downsample to one value per column.
    let step = ((signal.end().expect("non-empty") - signal.start().expect("non-empty"))
        / width as i64)
        .max(1);
    let ds = time_segments_aggregate(signal, step, Aggregation::Mean)
        .expect("positive interval");
    let cols = ds.len().min(width);
    let values = &ds.values()[..cols];
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    let lo = finite.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-12);

    let mut grid = vec![vec![' '; cols]; height];
    for (c, &v) in values.iter().enumerate() {
        if !v.is_finite() {
            continue;
        }
        let row = ((1.0 - (v - lo) / span) * (height as f64 - 1.0)).round() as usize;
        grid[row.min(height - 1)][c] = '*';
    }
    // Anomaly strip.
    let mut strip = vec![' '; cols];
    for (c, &t) in ds.timestamps().iter().take(cols).enumerate() {
        let bin = Interval { start: t, end: t + step - 1 };
        if anomalies.iter().any(|a| a.overlaps(&bin)) {
            strip[c] = '#';
        }
    }

    let mut out = String::with_capacity((cols + 10) * (height + 2));
    out.push_str(&format!("{} [{:.3}, {:.3}]\n", signal.name(), lo, hi));
    for row in grid {
        out.push('|');
        out.extend(row);
        out.push('\n');
    }
    out.push('+');
    out.extend(strip);
    out.push('\n');
    out
}

/// Multi-aggregation view: the signal rendered at several aggregation
/// levels (each level coarsens the time bins by the given factor).
pub fn multi_aggregation_view(
    signal: &Signal,
    anomalies: &[Interval],
    levels: &[i64],
    width: usize,
    height: usize,
) -> String {
    let mut out = String::new();
    let base = signal.median_step().max(1);
    for &level in levels {
        let interval = base * level.max(1);
        let agg = time_segments_aggregate(signal, interval, Aggregation::Mean)
            .expect("positive interval");
        out.push_str(&format!("-- aggregation x{level} (bin = {interval}) --\n"));
        out.push_str(&render(&agg, anomalies, width, height));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_signal() -> Signal {
        let vals: Vec<f64> =
            (0..400).map(|t| (std::f64::consts::TAU * t as f64 / 50.0).sin()).collect();
        Signal::from_values("demo", vals)
    }

    #[test]
    fn render_has_expected_dimensions() {
        let s = demo_signal();
        let out = render(&s, &[], 80, 10);
        let lines: Vec<&str> = out.lines().collect();
        // header + height rows + anomaly strip
        assert_eq!(lines.len(), 12);
        assert!(lines[0].starts_with("demo"));
        assert!(lines[1].starts_with('|'));
        assert!(lines[11].starts_with('+'));
        assert!(out.contains('*'));
    }

    #[test]
    fn anomaly_strip_marks_intervals() {
        let s = demo_signal();
        let anoms = [Interval::new(100, 150).unwrap()];
        let out = render(&s, &anoms, 80, 8);
        let strip = out.lines().last().unwrap();
        assert!(strip.contains('#'));
        // Roughly a quarter of the strip, not the whole thing.
        let marked = strip.chars().filter(|&c| c == '#').count();
        assert!(marked < 40, "{marked}");
    }

    #[test]
    fn empty_signal_renders_placeholder() {
        let s = Signal::univariate("empty", vec![], vec![]).unwrap();
        assert_eq!(render(&s, &[], 40, 5), "(empty signal)\n");
    }

    #[test]
    fn multi_view_contains_each_level() {
        let s = demo_signal();
        let out = multi_aggregation_view(&s, &[], &[1, 4, 16], 60, 6);
        assert!(out.contains("aggregation x1"));
        assert!(out.contains("aggregation x4"));
        assert!(out.contains("aggregation x16"));
    }
}

//! The semi-/supervised detection pipeline of Figure 2b: a window
//! classifier trained on expert-verified anomalous / normal sequences.
//!
//! The model is deliberately feature-based (statistical descriptors of
//! each window feeding a small MLP with a sigmoid head): with only a
//! handful of annotated events, raw-sequence deep models would overfit
//! instantly, while descriptor features let a few labels generalise —
//! which is exactly the regime of Figure 8a.

use sintel_common::{mean, stddev, SintelRng};
use sintel_nn::{Activation, Dense};
use sintel_timeseries::{merge_overlapping, Interval, ScoredInterval, Signal};

use crate::{HilError, Result};

/// Number of descriptor features per window.
const N_FEATURES: usize = 8;

/// Descriptor features of one window, designed to separate spikes, level
/// shifts, flatlines and amplitude changes from normal behaviour.
fn features(window: &[f64], global_mean: f64, global_std: f64) -> [f64; N_FEATURES] {
    let gs = global_std.max(1e-9);
    let m = mean(window);
    let s = stddev(window);
    let max = window.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let min = window.iter().copied().fold(f64::INFINITY, f64::min);
    let diffs: Vec<f64> = window.windows(2).map(|w| w[1] - w[0]).collect();
    let max_jump = diffs.iter().copied().map(f64::abs).fold(0.0, f64::max);
    let diff_energy = diffs.iter().map(|d| d * d).sum::<f64>() / diffs.len().max(1) as f64;
    [
        (m - global_mean) / gs,                   // level offset
        s / gs,                                   // local volatility
        (max - global_mean) / gs,                 // peak height
        (min - global_mean) / gs,                 // trough depth
        (max - min) / gs,                         // range
        max_jump / gs,                            // sharpest step
        diff_energy.sqrt() / gs,                  // roughness
        (window.last().unwrap_or(&m) - window.first().unwrap_or(&m)) / gs, // drift
    ]
}

/// A labelled training example (features + label).
#[derive(Debug, Clone)]
struct Example {
    x: [f64; N_FEATURES],
    y: f64,
}

/// The semi-supervised window classifier.
pub struct SemiSupervisedDetector {
    window: usize,
    step: usize,
    l1: Dense,
    l2: Dense,
    examples: Vec<Example>,
    /// Global normalisation learned from the first signal seen.
    norm: Option<(f64, f64)>,
    seed: u64,
}

impl SemiSupervisedDetector {
    /// Create with the given window length and stride.
    pub fn new(window: usize, step: usize, seed: u64) -> Self {
        let mut rng = SintelRng::seed_from_u64(seed);
        Self {
            window,
            step: step.max(1),
            l1: Dense::new(N_FEATURES, 16, Activation::Tanh, &mut rng),
            l2: Dense::new(16, 1, Activation::Sigmoid, &mut rng),
            examples: Vec::new(),
            norm: None,
            seed,
        }
    }

    /// Number of labelled examples accumulated so far.
    pub fn num_examples(&self) -> usize {
        self.examples.len()
    }

    fn norm_of(&mut self, signal: &Signal) -> (f64, f64) {
        *self
            .norm
            .get_or_insert_with(|| (mean(signal.values()), stddev(signal.values()).max(1e-9)))
    }

    /// Ingest one annotated region: windows overlapping `interval` become
    /// examples with the given label (`true` = anomalous).
    pub fn add_labeled_region(&mut self, signal: &Signal, interval: Interval, anomalous: bool) {
        let (gm, gs) = self.norm_of(signal);
        let lo = signal.index_at(interval.start).saturating_sub(self.window / 2);
        let hi = (signal.index_at(interval.end) + self.window / 2).min(signal.len());
        let values = signal.values();
        let mut start = lo;
        let mut added = false;
        while start + self.window <= hi {
            self.examples.push(Example {
                x: features(&values[start..start + self.window], gm, gs),
                y: if anomalous { 1.0 } else { 0.0 },
            });
            start += self.step.min(self.window / 2).max(1);
            added = true;
        }
        if !added && signal.len() >= self.window {
            // Short region: take the single window centred on it.
            let centre = signal.index_at((interval.start + interval.end) / 2);
            let start = centre.saturating_sub(self.window / 2).min(signal.len() - self.window);
            self.examples.push(Example {
                x: features(&values[start..start + self.window], gm, gs),
                y: if anomalous { 1.0 } else { 0.0 },
            });
        }
    }

    /// Sample `count` background (assumed-normal) windows that do not
    /// overlap the given intervals — the "verified normal" sequences the
    /// pipeline trains on alongside confirmed anomalies.
    pub fn add_background(&mut self, signal: &Signal, avoid: &[Interval], count: usize) {
        let (gm, gs) = self.norm_of(signal);
        if signal.len() < self.window {
            return;
        }
        let mut rng = SintelRng::seed_from_u64(self.seed ^ 0xBAC6);
        let values = signal.values();
        let ts = signal.timestamps();
        let mut added = 0usize;
        let mut attempts = 0usize;
        while added < count && attempts < count * 20 {
            attempts += 1;
            let start = rng.index(signal.len() - self.window + 1);
            let span = Interval::new(ts[start], ts[start + self.window - 1])
                .expect("ordered timestamps");
            if avoid.iter().any(|a| a.overlaps(&span)) {
                continue;
            }
            self.examples.push(Example {
                x: features(&values[start..start + self.window], gm, gs),
                y: 0.0,
            });
            added += 1;
        }
    }

    /// Retrain from scratch on the accumulated examples (class-balanced
    /// via oversampling). Returns the final training loss.
    pub fn retrain(&mut self, epochs: usize) -> Result<f64> {
        if self.examples.is_empty() {
            return Err(HilError::Invalid("no labelled examples to train on".into()));
        }
        let mut rng = SintelRng::seed_from_u64(self.seed ^ 0x7EA1);
        // Reset weights so stale annotations do not linger.
        self.l1 = Dense::new(N_FEATURES, 16, Activation::Tanh, &mut rng);
        self.l2 = Dense::new(16, 1, Activation::Sigmoid, &mut rng);

        // Oversample the minority class into a balanced index list.
        let pos: Vec<usize> =
            (0..self.examples.len()).filter(|&i| self.examples[i].y > 0.5).collect();
        let neg: Vec<usize> =
            (0..self.examples.len()).filter(|&i| self.examples[i].y <= 0.5).collect();
        let mut order: Vec<usize> = Vec::new();
        let target = pos.len().max(neg.len()).max(1);
        for class in [&pos, &neg] {
            if class.is_empty() {
                continue;
            }
            for k in 0..target {
                order.push(class[k % class.len()]);
            }
        }

        let mut last_loss = 0.0;
        for _ in 0..epochs {
            rng.shuffle(&mut order);
            last_loss = 0.0;
            for chunk in order.chunks(16) {
                for &idx in chunk {
                    let ex = &self.examples[idx];
                    let h = self.l1.forward(&ex.x);
                    let y = self.l2.forward(&h);
                    let p = y[0].clamp(1e-7, 1.0 - 1e-7);
                    last_loss += -(ex.y * p.ln() + (1.0 - ex.y) * (1.0 - p).ln());
                    // d(BCE)/d(sigmoid output) — the Dense layer applies
                    // the sigmoid derivative itself.
                    let dy = (p - ex.y) / (p * (1.0 - p));
                    let dh = self.l2.backward(&h, &y, &[dy]);
                    self.l1.backward(&ex.x, &h, &dh);
                }
                self.l1.step(0.02, chunk.len());
                self.l2.step(0.02, chunk.len());
            }
            last_loss /= order.len() as f64;
        }
        Ok(last_loss)
    }

    /// Score one window in `[0, 1]` (probability of being anomalous).
    pub fn score_window(&mut self, signal: &Signal, start: usize) -> f64 {
        let (gm, gs) = self.norm_of(signal);
        let x = features(&signal.values()[start..start + self.window], gm, gs);
        let h = self.l1.forward(&x);
        self.l2.forward(&h)[0]
    }

    /// Detect anomalous intervals: slide windows, threshold scores at
    /// 0.5, merge flagged windows into events.
    pub fn detect(&mut self, signal: &Signal) -> Vec<ScoredInterval> {
        if signal.len() < self.window {
            return Vec::new();
        }
        let ts = signal.timestamps().to_vec();
        let mut flagged: Vec<(Interval, f64)> = Vec::new();
        let mut start = 0usize;
        while start + self.window <= signal.len() {
            let p = self.score_window(signal, start);
            if p > 0.5 {
                let iv = Interval::new(ts[start], ts[start + self.window - 1])
                    .expect("ordered timestamps");
                flagged.push((iv, p));
            }
            start += self.step;
        }
        if flagged.is_empty() {
            return Vec::new();
        }
        let merged = merge_overlapping(
            &flagged.iter().map(|(iv, _)| *iv).collect::<Vec<_>>(),
            0,
        );
        merged
            .into_iter()
            .map(|iv| {
                let score = flagged
                    .iter()
                    .filter(|(f, _)| f.overlaps(&iv))
                    .map(|(_, p)| *p)
                    .fold(0.0, f64::max);
                ScoredInterval { interval: iv, score }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A sine with two level-shift anomalies.
    fn labelled_signal() -> (Signal, Vec<Interval>) {
        let n = 1200;
        let mut vals: Vec<f64> =
            (0..n).map(|t| (std::f64::consts::TAU * t as f64 / 48.0).sin()).collect();
        for v in &mut vals[300..340] {
            *v += 4.0;
        }
        // Same anomaly family as the first: a classifier trained on one
        // positive level shift is only expected to generalise to others
        // of the same shape class.
        for v in &mut vals[800..850] {
            *v += 4.0;
        }
        let truth = vec![Interval::new(300, 339).unwrap(), Interval::new(800, 849).unwrap()];
        (Signal::from_values("sig", vals), truth)
    }

    #[test]
    fn learns_from_annotations_and_detects() {
        let (signal, truth) = labelled_signal();
        let mut det = SemiSupervisedDetector::new(24, 6, 1);
        det.add_labeled_region(&signal, truth[0], true);
        det.add_background(&signal, &truth, 60);
        assert!(det.num_examples() > 20);
        det.retrain(60).unwrap();
        let detections = det.detect(&signal);
        // Both anomalies share the same shape class: training on the
        // first should find the second too.
        assert!(
            detections.iter().any(|d| d.interval.overlaps(&truth[0])),
            "{detections:?}"
        );
        assert!(
            detections.iter().any(|d| d.interval.overlaps(&truth[1])),
            "second anomaly missed: {detections:?}"
        );
        // And not flood the signal with false alarms.
        assert!(detections.len() <= 6, "{detections:?}");
    }

    #[test]
    fn untrained_detector_errors_on_retrain() {
        let mut det = SemiSupervisedDetector::new(16, 4, 0);
        assert!(det.retrain(5).is_err());
    }

    #[test]
    fn short_signal_yields_no_detections() {
        let mut det = SemiSupervisedDetector::new(32, 4, 0);
        let s = Signal::from_values("tiny", vec![0.0; 10]);
        assert!(det.detect(&s).is_empty());
    }

    #[test]
    fn background_avoids_anomalies() {
        let (signal, truth) = labelled_signal();
        let mut det = SemiSupervisedDetector::new(24, 6, 2);
        det.add_background(&signal, &truth, 40);
        // All background examples are labelled normal.
        assert!(det.num_examples() > 0);
        det.add_labeled_region(&signal, truth[0], true);
        let pos = det.examples.iter().filter(|e| e.y > 0.5).count();
        assert!(pos > 0);
    }

    #[test]
    fn features_are_finite_and_scale_free() {
        let w: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let f = features(&w, 7.5, 4.6);
        assert!(f.iter().all(|v| v.is_finite()));
        // Scaling the data and the stats together leaves features fixed.
        let w2: Vec<f64> = w.iter().map(|v| v * 10.0).collect();
        let f2 = features(&w2, 75.0, 46.0);
        for (a, b) in f.iter().zip(&f2) {
            assert!((a - b).abs() < 1e-9);
        }
    }
}

//! Annotators: the interface experts (or their simulations) implement.

use sintel_common::SintelRng;
use sintel_timeseries::Interval;

use crate::event::{AnnotationAction, Event};

/// Something that can review events — a UI-bound human in production, a
/// scripted expert in the evaluation experiments.
pub trait Annotator {
    /// Review one proposed event and decide an action.
    fn review(&mut self, event: &Event) -> AnnotationAction;

    /// Optionally point out one anomaly the detector missed (given the
    /// current set of known event intervals on the signal).
    fn report_missed(&mut self, signal: &str, known: &[Interval]) -> Option<Interval>;
}

/// A scripted expert that knows the ground truth, with configurable
/// reliability — the paper's own feedback experiment simulates human
/// actions the same way (§4, "simulating human actions").
#[derive(Debug, Clone)]
pub struct SimulatedExpert {
    /// Ground-truth anomalies per signal: `(signal name, intervals)`.
    truth: Vec<(String, Vec<Interval>)>,
    /// Probability of answering correctly (1.0 = oracle).
    reliability: f64,
    rng: SintelRng,
}

impl SimulatedExpert {
    /// Create an expert with ground truth and a reliability in `[0, 1]`.
    pub fn new(truth: Vec<(String, Vec<Interval>)>, reliability: f64, seed: u64) -> Self {
        Self { truth, reliability: reliability.clamp(0.0, 1.0), rng: SintelRng::seed_from_u64(seed) }
    }

    fn truth_for(&self, signal: &str) -> &[Interval] {
        self.truth
            .iter()
            .find(|(name, _)| name == signal)
            .map(|(_, ivs)| ivs.as_slice())
            .unwrap_or(&[])
    }
}

impl Annotator for SimulatedExpert {
    fn review(&mut self, event: &Event) -> AnnotationAction {
        let is_true_anomaly =
            self.truth_for(&event.signal).iter().any(|t| t.overlaps(&event.interval));
        let answer_correctly = self.rng.chance(self.reliability);
        let verdict = is_true_anomaly == answer_correctly;
        if verdict {
            AnnotationAction::Confirm
        } else {
            AnnotationAction::Remove
        }
    }

    fn report_missed(&mut self, signal: &str, known: &[Interval]) -> Option<Interval> {
        if !self.rng.chance(self.reliability) {
            return None; // the expert does not always spot misses
        }
        let truth: Vec<Interval> = self.truth_for(signal).to_vec();
        truth.into_iter().find(|t| !known.iter().any(|k| k.overlaps(t)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventStatus;

    fn event(signal: &str, start: i64, end: i64) -> Event {
        Event {
            id: 0,
            signal: signal.to_string(),
            interval: Interval::new(start, end).unwrap(),
            severity: 0.5,
            status: EventStatus::Unreviewed,
        }
    }

    fn oracle() -> SimulatedExpert {
        SimulatedExpert::new(
            vec![("S-1".into(), vec![Interval::new(100, 200).unwrap()])],
            1.0,
            1,
        )
    }

    #[test]
    fn oracle_confirms_true_anomalies() {
        let mut expert = oracle();
        assert_eq!(expert.review(&event("S-1", 150, 160)), AnnotationAction::Confirm);
        assert_eq!(expert.review(&event("S-1", 500, 600)), AnnotationAction::Remove);
        // Unknown signal: nothing there is anomalous.
        assert_eq!(expert.review(&event("S-9", 150, 160)), AnnotationAction::Remove);
    }

    #[test]
    fn oracle_reports_missed_anomalies_once_known() {
        let mut expert = oracle();
        let missed = expert.report_missed("S-1", &[]).unwrap();
        assert_eq!(missed, Interval::new(100, 200).unwrap());
        // Already-known anomalies are not re-reported.
        assert!(expert.report_missed("S-1", &[missed]).is_none());
        assert!(expert.report_missed("S-2", &[]).is_none());
    }

    #[test]
    fn unreliable_expert_makes_mistakes() {
        let truth = vec![("S-1".to_string(), vec![Interval::new(0, 10).unwrap()])];
        let mut expert = SimulatedExpert::new(truth, 0.5, 3);
        let ev = event("S-1", 0, 10);
        let confirms = (0..200)
            .filter(|_| expert.review(&ev) == AnnotationAction::Confirm)
            .count();
        // A coin-flip expert confirms a true anomaly about half the time.
        assert!((60..140).contains(&confirms), "{confirms}");
    }

    #[test]
    fn zero_reliability_expert_is_always_wrong() {
        let truth = vec![("S-1".to_string(), vec![Interval::new(0, 10).unwrap()])];
        let mut expert = SimulatedExpert::new(truth, 0.0, 7);
        assert_eq!(expert.review(&event("S-1", 0, 10)), AnnotationAction::Remove);
        assert_eq!(expert.review(&event("S-1", 50, 60)), AnnotationAction::Confirm);
        assert!(expert.report_missed("S-1", &[]).is_none());
    }
}

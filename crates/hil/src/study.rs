//! The real-world use-case simulation behind Figure 8b.
//!
//! The paper's study: 16 telemetry signals spanning 5+ years from the
//! collaborating satellite operator, 6 senior experts, and a posteriori
//! tracing of 110 human-tagged events — 52.7% deemed normal, 11
//! confirmed anomalies, 6 manually added events, the rest marked for
//! further investigation; 27 of the 110 events had been missed by the ML
//! model (§4, §5: lunar eclipses look normal but matter; maneuvers look
//! anomalous but are routine).
//!
//! Real operator telemetry is proprietary, so this module reconstructs
//! the *process*: synthetic telemetry channels with known anomalies plus
//! routine-but-odd maneuvers and eclipse-like reference events, a
//! detector pass, and six scripted expert personas that tag the combined
//! event set. All activity is persisted to the knowledge base.

use sintel_common::SintelRng;
use sintel_store::SintelDb;
use sintel_timeseries::Interval;

use crate::event::EventStatus;

/// Tag taxonomy of the study (Figure 8b rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StudyTag {
    /// Event traced back and deemed normal behaviour.
    Normal,
    /// Confirmed anomaly.
    ConfirmedAnomaly,
    /// New event created by an expert (the ML missed it).
    NewEvent,
    /// Needs further investigation before a verdict.
    FurtherInvestigation,
}

/// Aggregated tag counts for one column of Figure 8b.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TagCounts {
    /// Deemed normal.
    pub normal: usize,
    /// Confirmed anomalies.
    pub confirmed: usize,
    /// Expert-created events.
    pub added: usize,
    /// Flagged for further investigation.
    pub investigate: usize,
}

impl TagCounts {
    /// Total events in the column.
    pub fn total(&self) -> usize {
        self.normal + self.confirmed + self.added + self.investigate
    }
}

/// Outcome of the study simulation (the two columns of Figure 8b).
#[derive(Debug, Clone)]
pub struct StudyOutcome {
    /// Events the ML identified and presented to the experts.
    pub ml_presented: TagCounts,
    /// Events the ML missed but experts marked.
    pub ml_missed: TagCounts,
    /// Number of signals in the study.
    pub signals: usize,
    /// Number of participating experts.
    pub experts: usize,
}

impl StudyOutcome {
    /// Total tagged events.
    pub fn total_events(&self) -> usize {
        self.ml_presented.total() + self.ml_missed.total()
    }

    /// Fraction of events deemed normal (paper: 52.7%).
    pub fn normal_fraction(&self) -> f64 {
        (self.ml_presented.normal + self.ml_missed.normal) as f64
            / self.total_events().max(1) as f64
    }
}

/// Configuration of the study simulation.
#[derive(Debug, Clone, Copy)]
pub struct StudyConfig {
    /// Telemetry channels reviewed (paper: 16).
    pub signals: usize,
    /// Expert personas (paper: 6).
    pub experts: usize,
    /// Target number of tagged events (paper: 110).
    pub events: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for StudyConfig {
    fn default() -> Self {
        Self { signals: 16, experts: 6, events: 110, seed: 42 }
    }
}

/// The character of one event in the simulated operations timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventNature {
    /// Genuine fault (thermal excursion, power dip…).
    TrueAnomaly,
    /// Routine maneuver: looks odd, is normal (paper §5).
    Maneuver,
    /// Eclipse-like reference event: looks normal, worth recording.
    Eclipse,
    /// Detector noise: nothing there.
    Spurious,
}

/// Run the simulated study, persisting everything to `db`.
pub fn run_study(cfg: &StudyConfig, db: &SintelDb) -> StudyOutcome {
    let mut rng = SintelRng::seed_from_u64(cfg.seed);

    // Register the cast.
    let expert_ids: Vec<u64> = (0..cfg.experts)
        .map(|i| db.add_user(&format!("expert-{i}"), "senior satellite engineer"))
        .collect();
    db.add_dataset("SATOPS", "satellite telemetry");
    let signal_names: Vec<String> = (0..cfg.signals)
        .map(|i| {
            let name = format!("SATOPS/CH-{i:02}");
            db.add_signal(&name, "SATOPS", 0, 5 * 365 * 86_400);
            name
        })
        .collect();
    let exp = db.add_experiment("satellite-study", "SATOPS", "lstm_dynamic_threshold");

    // Build the event population. Detection characteristics mirror the
    // paper's observations: the ML surfaces true anomalies *and* odd-
    // looking routine behaviour (maneuvers); it misses normal-shaped
    // reference events (eclipses) and a share of subtle anomalies.
    let mut presented = TagCounts::default();
    let mut missed = TagCounts::default();

    for k in 0..cfg.events {
        let signal = &signal_names[rng.index(signal_names.len())];
        let run = db.add_signalrun(exp, signal, "done");
        let start = rng.int_range(0, 5 * 365 * 86_400 - 7_200);
        let interval = Interval::new(start, start + rng.int_range(600, 7_200))
            .expect("positive duration");

        // Population mix chosen to land near the published proportions.
        let nature = match rng.uniform() {
            u if u < 0.133 => EventNature::TrueAnomaly,
            u if u < 0.433 => EventNature::Maneuver,
            u if u < 0.653 => EventNature::Eclipse,
            _ => EventNature::Spurious,
        };
        // Detection odds per nature: odd shapes get caught, normal
        // shapes slip through.
        let detected = match nature {
            EventNature::TrueAnomaly => rng.chance(0.70),
            EventNature::Maneuver => rng.chance(0.92),
            EventNature::Spurious => true, // spurious = detector output
            EventNature::Eclipse => rng.chance(0.20),
        };

        // The reviewing expert (events can be discussed by several; the
        // first reviewer's verdict is recorded as the tag).
        let reviewer = expert_ids[rng.index(expert_ids.len())];
        let tag = match nature {
            EventNature::TrueAnomaly => {
                if rng.chance(0.80) {
                    StudyTag::ConfirmedAnomaly
                } else {
                    StudyTag::FurtherInvestigation
                }
            }
            EventNature::Maneuver => {
                // Routine once traced back, though a chunk stays open.
                if rng.chance(0.65) {
                    StudyTag::Normal
                } else {
                    StudyTag::FurtherInvestigation
                }
            }
            EventNature::Eclipse => {
                if detected {
                    // Presented by the ML: traced back to normal.
                    StudyTag::Normal
                } else if rng.chance(0.33) {
                    // Worth recording for future reference.
                    StudyTag::NewEvent
                } else if rng.chance(0.6) {
                    StudyTag::Normal
                } else {
                    StudyTag::FurtherInvestigation
                }
            }
            EventNature::Spurious => {
                if rng.chance(0.65) {
                    StudyTag::Normal
                } else {
                    StudyTag::FurtherInvestigation
                }
            }
        };

        // Persist: event, annotation, and the occasional discussion.
        let event_id = db.add_event(run, signal, interval.start, interval.end, rng.uniform());
        let status = match tag {
            StudyTag::Normal => EventStatus::Rejected,
            StudyTag::ConfirmedAnomaly => EventStatus::Confirmed,
            StudyTag::NewEvent => EventStatus::Created,
            StudyTag::FurtherInvestigation => EventStatus::Investigate,
        };
        db.set_event_status(event_id, status.as_str()).expect("event exists");
        let tag_name = match tag {
            StudyTag::Normal => "normal",
            StudyTag::ConfirmedAnomaly => "anomaly",
            StudyTag::NewEvent => "new event",
            StudyTag::FurtherInvestigation => "investigate",
        };
        db.add_annotation(event_id, reviewer, "tag", tag_name);
        if rng.chance(0.3) {
            let second = expert_ids[rng.index(expert_ids.len())];
            db.add_comment(event_id, second, "discussed in weekly ops review");
        }
        let _ = k;

        let column = if detected { &mut presented } else { &mut missed };
        match tag {
            StudyTag::Normal => column.normal += 1,
            StudyTag::ConfirmedAnomaly => column.confirmed += 1,
            StudyTag::NewEvent => column.added += 1,
            StudyTag::FurtherInvestigation => column.investigate += 1,
        }
    }

    StudyOutcome { ml_presented: presented, ml_missed: missed, signals: cfg.signals, experts: cfg.experts }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn study_shape_matches_paper() {
        let db = SintelDb::in_memory();
        let outcome = run_study(&StudyConfig::default(), &db);
        assert_eq!(outcome.total_events(), 110);
        assert_eq!(outcome.signals, 16);
        assert_eq!(outcome.experts, 6);
        // Paper: 52.7% normal, 11 confirmed, 6 added, 27/110 missed.
        let normal_frac = outcome.normal_fraction();
        assert!((0.40..0.65).contains(&normal_frac), "normal {normal_frac}");
        let confirmed = outcome.ml_presented.confirmed + outcome.ml_missed.confirmed;
        assert!((5..=20).contains(&confirmed), "confirmed {confirmed}");
        let added = outcome.ml_presented.added + outcome.ml_missed.added;
        assert!((1..=15).contains(&added), "added {added}");
        let missed = outcome.ml_missed.total();
        assert!((15..=45).contains(&missed), "missed {missed}");
        // Added events only arise in the missed column.
        assert_eq!(outcome.ml_presented.added, 0);
    }

    #[test]
    fn study_persists_to_knowledge_base() {
        let db = SintelDb::in_memory();
        let outcome = run_study(&StudyConfig { events: 40, ..Default::default() }, &db);
        use sintel_store::{schema::collections, Filter};
        assert_eq!(db.raw().count(collections::EVENTS, &Filter::All), 40);
        assert_eq!(db.raw().count(collections::ANNOTATIONS, &Filter::All), 40);
        assert_eq!(db.raw().count(collections::USERS, &Filter::All), 6);
        assert_eq!(db.raw().count(collections::SIGNALS, &Filter::All), 16);
        assert_eq!(outcome.total_events(), 40);
        // Some discussion happened.
        assert!(db.raw().count(collections::COMMENTS, &Filter::All) > 0);
    }

    #[test]
    fn study_is_deterministic() {
        let a = run_study(&StudyConfig::default(), &SintelDb::in_memory());
        let b = run_study(&StudyConfig::default(), &SintelDb::in_memory());
        assert_eq!(a.ml_presented, b.ml_presented);
        assert_eq!(a.ml_missed, b.ml_missed);
    }
}

//! Synthetic Numenta Anomaly Benchmark (NAB)-style corpus.
//!
//! NAB is a collection of 45 mostly real-world streaming signals (AWS
//! server metrics, ad-exchange rates, traffic sensors, tweet volumes…)
//! with 94 labelled anomalies, sampled every 5 minutes, average length
//! 6088. The generator reproduces that structure with one signal family
//! per published subset.

use sintel_common::SintelRng;

use crate::corpus::{
    budget_anomalies, budget_lengths, scaled_count, Dataset, DatasetConfig, Subset,
};
use crate::synth::{inject, labeled_signal, plan_windows, AnomalyKind, BaseSignal};

const STEP: i64 = 300; // 5-minute sampling
const AVG_LEN: usize = 6088;
const DAY: f64 = 288.0; // steps per day at 5-minute sampling

/// `(subset name, #signals, #anomalies)` — counts sum to 45 / 94.
const SUBSETS: &[(&str, usize, usize)] = &[
    ("artificialWithAnomaly", 6, 12),
    ("realAWSCloudwatch", 10, 21),
    ("realAdExchange", 5, 10),
    ("realKnownCause", 7, 15),
    ("realTraffic", 7, 15),
    ("realTweets", 10, 21),
];

fn style(subset: &str, rng: &mut SintelRng) -> BaseSignal {
    match subset {
        "artificialWithAnomaly" => BaseSignal {
            level: rng.uniform_range(20.0, 80.0),
            seasonal: vec![(rng.uniform_range(5.0, 15.0), DAY, rng.uniform_range(0.0, 6.0))],
            noise: rng.uniform_range(0.2, 0.8),
            ..Default::default()
        },
        "realAWSCloudwatch" => BaseSignal {
            level: rng.uniform_range(30.0, 70.0),
            seasonal: vec![
                (rng.uniform_range(3.0, 10.0), DAY, rng.uniform_range(0.0, 6.0)),
                (rng.uniform_range(1.0, 3.0), DAY / 4.0, rng.uniform_range(0.0, 6.0)),
            ],
            noise: rng.uniform_range(1.0, 3.0),
            walk: rng.uniform_range(0.0, 0.05),
            ..Default::default()
        },
        "realAdExchange" => BaseSignal {
            level: rng.uniform_range(0.5, 2.0),
            seasonal: vec![(rng.uniform_range(0.1, 0.4), DAY, rng.uniform_range(0.0, 6.0))],
            noise: rng.uniform_range(0.1, 0.3),
            ..Default::default()
        },
        "realKnownCause" => BaseSignal {
            level: rng.uniform_range(10.0, 50.0),
            seasonal: vec![(rng.uniform_range(2.0, 8.0), DAY, rng.uniform_range(0.0, 6.0))],
            noise: rng.uniform_range(0.5, 2.0),
            steps: Some((DAY * 2.0, rng.uniform_range(1.0, 4.0))),
            ..Default::default()
        },
        "realTraffic" => BaseSignal {
            level: rng.uniform_range(40.0, 80.0),
            seasonal: vec![
                (rng.uniform_range(10.0, 25.0), DAY, rng.uniform_range(0.0, 6.0)),
                (rng.uniform_range(3.0, 8.0), DAY * 7.0, rng.uniform_range(0.0, 6.0)),
            ],
            noise: rng.uniform_range(2.0, 5.0),
            ..Default::default()
        },
        // realTweets: bursty, positive count-like series.
        _ => BaseSignal {
            level: rng.uniform_range(5.0, 30.0),
            seasonal: vec![(rng.uniform_range(2.0, 6.0), DAY, rng.uniform_range(0.0, 6.0))],
            noise: rng.uniform_range(1.5, 4.0),
            walk: rng.uniform_range(0.0, 0.03),
            ..Default::default()
        },
    }
}

const KINDS: &[AnomalyKind] = &[
    AnomalyKind::Spike,
    AnomalyKind::Dip,
    AnomalyKind::LevelShift,
    AnomalyKind::Flatline,
    AnomalyKind::AmplitudeChange,
];

/// Generate the NAB-style corpus.
pub fn generate(config: &DatasetConfig) -> Dataset {
    let mut rng = SintelRng::seed_from_u64(config.seed ^ 0x004E_4142); // "NAB"
    let avg_len = ((AVG_LEN as f64 * config.length_scale).round() as usize).max(64);

    let mut subsets = Vec::with_capacity(SUBSETS.len());
    for &(name, n_signals, n_anoms) in SUBSETS {
        let count = scaled_count(n_signals, config.signal_scale);
        let total_anoms = scaled_count(n_anoms, config.signal_scale);
        let lengths = budget_lengths(count, avg_len, &mut rng);
        let anoms = budget_anomalies(count, total_anoms, &mut rng);

        let mut signals = Vec::with_capacity(count);
        for i in 0..count {
            let mut srng = rng.fork(i as u64);
            let base = style(name, &mut srng);
            let mut values = base.render(lengths[i], &mut srng);
            let windows = plan_windows(
                lengths[i],
                anoms[i],
                (10, 120),
                lengths[i] / 20,
                50,
                &mut srng,
            );
            for &(s, e) in &windows {
                let kind = *srng.choice(KINDS);
                let mag = srng.uniform_range(4.0, 8.0);
                inject(&mut values, s, e, kind, mag, &mut srng);
            }
            let sig_name = format!("NAB/{name}/{name}_{i}");
            signals.push(labeled_signal(&sig_name, values, 1_400_000_000, STEP, &windows));
        }
        subsets.push(Subset { name: name.to_string(), signals });
    }
    Dataset { name: "NAB".to_string(), subsets }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_counts() {
        let ds = generate(&DatasetConfig::default());
        assert_eq!(ds.num_signals(), 45);
        assert_eq!(ds.num_anomalies(), 94);
        assert_eq!(ds.avg_signal_length(), 6088);
        assert_eq!(ds.subsets.len(), 6);
    }

    #[test]
    fn five_minute_sampling() {
        let ds = generate(&DatasetConfig::small());
        let s = &ds.subsets[0].signals[0].signal;
        assert_eq!(s.median_step(), 300);
    }

    #[test]
    fn anomalies_are_disjoint_per_signal() {
        let ds = generate(&DatasetConfig::small());
        for ls in ds.iter_signals() {
            for w in ls.anomalies.windows(2) {
                assert!(w[0].end < w[1].start);
            }
        }
    }
}

//! Named demo signals mirroring the paper's quickstart (Figure 4a),
//! where the user calls `load_signal('S-1-train')` / `load_signal('S-1-new')`.
//!
//! `S-1` is a SMAP-flavoured telemetry channel with two labelled
//! anomalies in its evaluation half; `S-2` is a NAB-flavoured server
//! metric. The `-train` suffix returns the anomaly-free first half and
//! `-new` the second half containing the labelled events.

use sintel_common::SintelRng;
use sintel_timeseries::Interval;

use crate::synth::{inject, labeled_signal, AnomalyKind, BaseSignal, LabeledSignal};

fn build(name: &str) -> Option<LabeledSignal> {
    match name {
        "S-1" => {
            let mut rng = SintelRng::seed_from_u64(0x51);
            let base = BaseSignal {
                level: 0.2,
                seasonal: vec![(0.8, 96.0, 0.3), (0.15, 960.0, 1.1)],
                noise: 0.04,
                ..Default::default()
            };
            let n = 4000;
            let mut values = base.render(n, &mut rng);
            // Two anomalies in the second half: a contextual amplitude
            // change and a stuck sensor.
            let windows = [(2600usize, 2680usize), (3400, 3460)];
            inject(&mut values, 2600, 2680, AnomalyKind::AmplitudeChange, 4.0, &mut rng);
            inject(&mut values, 3400, 3460, AnomalyKind::Flatline, 1.0, &mut rng);
            Some(labeled_signal("S-1", values, 1_222_819_200, 60, &windows))
        }
        "S-2" => {
            let mut rng = SintelRng::seed_from_u64(0x52);
            let base = BaseSignal {
                level: 55.0,
                seasonal: vec![(12.0, 288.0, 0.0)],
                noise: 1.5,
                walk: 0.02,
                ..Default::default()
            };
            let n = 4000;
            let mut values = base.render(n, &mut rng);
            let windows = [(2200usize, 2230usize), (3100, 3102), (3700, 3780)];
            inject(&mut values, 2200, 2230, AnomalyKind::LevelShift, 6.0, &mut rng);
            inject(&mut values, 3100, 3102, AnomalyKind::Spike, 9.0, &mut rng);
            inject(&mut values, 3700, 3780, AnomalyKind::Dip, 5.0, &mut rng);
            Some(labeled_signal("S-2", values, 1_400_000_000, 300, &windows))
        }
        _ => None,
    }
}

/// Load a named demo signal, mirroring `sintel.data.load_signal`.
///
/// Supported names: `S-1`, `S-2`, plus `-train` (first, anomaly-free
/// half) and `-new` (second half, containing the labelled anomalies)
/// suffixes. Returns the signal together with its ground-truth labels
/// (empty for `-train` slices).
pub fn load_signal(name: &str) -> Option<LabeledSignal> {
    if let Some(base_name) = name.strip_suffix("-train") {
        let full = build(base_name)?;
        let (train, _) = full.signal.split(0.5).expect("fraction in range");
        return Some(LabeledSignal { signal: train, anomalies: Vec::new() });
    }
    if let Some(base_name) = name.strip_suffix("-new") {
        let full = build(base_name)?;
        let (_, new) = full.signal.split(0.5).expect("fraction in range");
        let cut = new.start().expect("non-empty");
        let anomalies: Vec<Interval> =
            full.anomalies.into_iter().filter(|a| a.start >= cut).collect();
        return Some(LabeledSignal { signal: new, anomalies });
    }
    build(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s1_loads_with_two_anomalies() {
        let ls = load_signal("S-1").unwrap();
        assert_eq!(ls.anomalies.len(), 2);
        assert_eq!(ls.signal.len(), 4000);
    }

    #[test]
    fn train_new_split_partitions_signal() {
        let full = load_signal("S-1").unwrap();
        let train = load_signal("S-1-train").unwrap();
        let new = load_signal("S-1-new").unwrap();
        assert_eq!(train.signal.len() + new.signal.len(), full.signal.len());
        assert!(train.anomalies.is_empty());
        assert_eq!(new.anomalies.len(), 2);
    }

    #[test]
    fn s2_has_three_anomalies() {
        let ls = load_signal("S-2").unwrap();
        assert_eq!(ls.anomalies.len(), 3);
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(load_signal("S-404").is_none());
        assert!(load_signal("S-404-train").is_none());
    }

    #[test]
    fn demo_signals_deterministic() {
        let a = load_signal("S-1").unwrap();
        let b = load_signal("S-1").unwrap();
        assert_eq!(a.signal, b.signal);
    }
}

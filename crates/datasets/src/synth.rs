//! Synthetic signal construction and anomaly injection.
//!
//! The paper's corpora (NASA MSL/SMAP, Yahoo S5, NAB) are download- or
//! license-gated, so the reproduction generates signals with the same
//! *statistical character* (see DESIGN.md §2). This module provides the
//! shared building blocks: composable base-signal components (trend,
//! seasonality, noise, telemetry steps) and labelled anomaly injectors
//! (spikes, dips, level shifts, amplitude/frequency changes, flatlines),
//! plus unlabelled change-point injection used to reproduce the Yahoo A4
//! distribution-shift discussion (§5).

use sintel_common::SintelRng;
use sintel_timeseries::{Interval, Signal};

/// A signal together with its ground-truth anomaly labels.
#[derive(Debug, Clone)]
pub struct LabeledSignal {
    /// The generated signal.
    pub signal: Signal,
    /// Ground-truth anomalous intervals in timestamp units.
    pub anomalies: Vec<Interval>,
}

/// Declarative base-signal recipe evaluated sample by sample.
#[derive(Debug, Clone)]
pub struct BaseSignal {
    /// Constant offset.
    pub level: f64,
    /// Linear trend per step.
    pub trend: f64,
    /// Sinusoidal components: `(amplitude, period_steps, phase)`.
    pub seasonal: Vec<(f64, f64, f64)>,
    /// Gaussian noise standard deviation.
    pub noise: f64,
    /// Random-walk component scale (0 disables).
    pub walk: f64,
    /// Quantization step for telemetry-like discrete signals (0 disables).
    pub quantize: f64,
    /// Piecewise-constant command states: `(mean_dwell_steps, jump_scale)`;
    /// `None` disables.
    pub steps: Option<(f64, f64)>,
}

impl Default for BaseSignal {
    fn default() -> Self {
        Self {
            level: 0.0,
            trend: 0.0,
            seasonal: Vec::new(),
            noise: 0.1,
            walk: 0.0,
            quantize: 0.0,
            steps: None,
        }
    }
}

impl BaseSignal {
    /// Render `n` samples of the recipe.
    pub fn render(&self, n: usize, rng: &mut SintelRng) -> Vec<f64> {
        let mut out = Vec::with_capacity(n);
        let mut walk_acc = 0.0;
        let mut step_level = 0.0;
        let mut dwell_left = 0usize;
        for t in 0..n {
            if let Some((mean_dwell, jump)) = self.steps {
                if dwell_left == 0 {
                    // Exponential-ish dwell: uniform in [0.5, 1.5] x mean.
                    dwell_left = (mean_dwell * rng.uniform_range(0.5, 1.5)).max(1.0) as usize;
                    step_level = rng.normal(0.0, jump);
                }
                dwell_left -= 1;
            }
            walk_acc += rng.normal(0.0, self.walk);
            let mut v = self.level + self.trend * t as f64 + walk_acc + step_level;
            for &(amp, period, phase) in &self.seasonal {
                v += amp * (std::f64::consts::TAU * (t as f64 / period) + phase).sin();
            }
            v += rng.normal(0.0, self.noise);
            if self.quantize > 0.0 {
                v = (v / self.quantize).round() * self.quantize;
            }
            out.push(v);
        }
        out
    }
}

/// The kinds of anomaly the injectors can create.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnomalyKind {
    /// Short positive excursion far outside the local range.
    Spike,
    /// Short negative excursion.
    Dip,
    /// The mean jumps for the duration of the interval.
    LevelShift,
    /// Oscillation amplitude inflates (contextual anomaly).
    AmplitudeChange,
    /// The signal freezes at a constant value (sensor stuck).
    Flatline,
    /// Oscillation speeds up (contextual anomaly).
    FrequencyShift,
}

/// Plan `count` non-overlapping anomaly windows inside `[margin, n - margin)`.
///
/// `dur_range` bounds each anomaly's duration in steps. Returns start/end
/// *sample indices*; the caller converts to timestamps. Windows are kept
/// at least `gap` steps apart. If the signal is too crowded, fewer windows
/// than requested may be returned.
pub fn plan_windows(
    n: usize,
    count: usize,
    dur_range: (usize, usize),
    margin: usize,
    gap: usize,
    rng: &mut SintelRng,
) -> Vec<(usize, usize)> {
    let mut placed: Vec<(usize, usize)> = Vec::with_capacity(count);
    let (dmin, dmax) = dur_range;
    assert!(dmin >= 1 && dmax >= dmin, "bad duration range");
    if n <= 2 * margin + dmin {
        return placed;
    }
    let mut attempts = 0usize;
    while placed.len() < count && attempts < count * 50 {
        attempts += 1;
        let dur = if dmax > dmin { dmin + rng.index(dmax - dmin + 1) } else { dmin };
        let hi = n.saturating_sub(margin + dur);
        if hi <= margin {
            continue;
        }
        let start = margin + rng.index(hi - margin);
        let end = start + dur - 1;
        let clashes = placed
            .iter()
            .any(|&(s, e)| start <= e + gap && s <= end + gap);
        if !clashes {
            placed.push((start, end));
        }
    }
    placed.sort_unstable();
    placed
}

/// Apply one anomaly of `kind` to `values[start..=end]`.
///
/// `magnitude` scales the disturbance relative to the signal's standard
/// deviation, which the function estimates itself.
pub fn inject(
    values: &mut [f64],
    start: usize,
    end: usize,
    kind: AnomalyKind,
    magnitude: f64,
    rng: &mut SintelRng,
) {
    debug_assert!(start <= end && end < values.len());
    let std = sintel_common::stddev(values).max(1e-6);
    let local_mean = sintel_common::mean(&values[start..=end]);
    match kind {
        AnomalyKind::Spike => {
            for v in &mut values[start..=end] {
                *v += magnitude * std * rng.uniform_range(0.8, 1.2);
            }
        }
        AnomalyKind::Dip => {
            for v in &mut values[start..=end] {
                *v -= magnitude * std * rng.uniform_range(0.8, 1.2);
            }
        }
        AnomalyKind::LevelShift => {
            let shift = magnitude * std * if rng.chance(0.5) { 1.0 } else { -1.0 };
            for v in &mut values[start..=end] {
                *v += shift;
            }
        }
        AnomalyKind::AmplitudeChange => {
            for v in &mut values[start..=end] {
                *v = local_mean + (*v - local_mean) * (1.0 + magnitude);
            }
        }
        AnomalyKind::Flatline => {
            let frozen = values[start];
            for v in &mut values[start..=end] {
                *v = frozen;
            }
        }
        AnomalyKind::FrequencyShift => {
            // Re-synthesize the window with a faster oscillation around
            // the local mean.
            let span = (end - start + 1) as f64;
            for (off, v) in values[start..=end].iter_mut().enumerate() {
                let phase = std::f64::consts::TAU * (off as f64 / span) * (3.0 + magnitude);
                *v = local_mean + std * phase.sin();
            }
        }
    }
}

/// Inject an *unlabelled* change point at `at`: a permanent level and
/// variance change of the remainder of the series. Used by the Yahoo A4
/// generator (86% of A4 signals contain a change point; §5).
pub fn inject_change_point(values: &mut [f64], at: usize, rng: &mut SintelRng) {
    let std = sintel_common::stddev(values).max(1e-6);
    // Strong persistent shift and a variance inflation: both survive
    // min-max scaling and disturb error calibration downstream.
    let shift = rng.normal(0.0, 4.0 * std) + 3.0 * std * if rng.chance(0.5) { 1.0 } else { -1.0 };
    let scale = rng.uniform_range(1.4, 2.6);
    let mean_after = sintel_common::mean(&values[at..]);
    for v in &mut values[at..] {
        *v = mean_after + (*v - mean_after) * scale + shift;
    }
}

/// Assemble a [`LabeledSignal`] from rendered values, a start timestamp,
/// a step, and planned anomaly windows (sample indices).
pub fn labeled_signal(
    name: &str,
    values: Vec<f64>,
    t0: i64,
    step: i64,
    windows: &[(usize, usize)],
) -> LabeledSignal {
    let timestamps: Vec<i64> = (0..values.len() as i64).map(|i| t0 + i * step).collect();
    let anomalies = windows
        .iter()
        .map(|&(s, e)| {
            Interval::new(t0 + s as i64 * step, t0 + e as i64 * step)
                .expect("windows are ordered")
        })
        .collect();
    let signal =
        Signal::univariate(name, timestamps, values).expect("generated signals are valid");
    LabeledSignal { signal, anomalies }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_signal_render_length_and_determinism() {
        let base = BaseSignal {
            level: 5.0,
            seasonal: vec![(1.0, 24.0, 0.0)],
            noise: 0.05,
            ..Default::default()
        };
        let a = base.render(100, &mut SintelRng::seed_from_u64(1));
        let b = base.render(100, &mut SintelRng::seed_from_u64(1));
        assert_eq!(a.len(), 100);
        assert_eq!(a, b);
        assert!(a.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn base_signal_level_and_trend() {
        let base = BaseSignal { level: 10.0, trend: 1.0, noise: 0.0, ..Default::default() };
        let v = base.render(5, &mut SintelRng::seed_from_u64(2));
        assert_eq!(v, vec![10.0, 11.0, 12.0, 13.0, 14.0]);
    }

    #[test]
    fn quantization_rounds_to_grid() {
        let base = BaseSignal { level: 1.3, noise: 0.0, quantize: 0.5, ..Default::default() };
        let v = base.render(3, &mut SintelRng::seed_from_u64(3));
        assert!(v.iter().all(|x| (x / 0.5).fract().abs() < 1e-12));
    }

    #[test]
    fn plan_windows_disjoint_and_within_bounds() {
        let mut rng = SintelRng::seed_from_u64(4);
        let ws = plan_windows(1000, 5, (5, 20), 50, 10, &mut rng);
        assert_eq!(ws.len(), 5);
        for &(s, e) in &ws {
            assert!(s >= 50 && e < 950 && s <= e);
        }
        for pair in ws.windows(2) {
            assert!(pair[0].1 + 10 < pair[1].0);
        }
    }

    #[test]
    fn plan_windows_too_small_signal() {
        let mut rng = SintelRng::seed_from_u64(5);
        assert!(plan_windows(10, 3, (5, 5), 10, 0, &mut rng).is_empty());
    }

    #[test]
    fn spike_raises_values() {
        let mut rng = SintelRng::seed_from_u64(6);
        let mut v: Vec<f64> =
            (0..200).map(|i| (i as f64 * 0.3).sin()).collect();
        let before = v[100];
        inject(&mut v, 100, 102, AnomalyKind::Spike, 8.0, &mut rng);
        assert!(v[100] > before + 3.0);
    }

    #[test]
    fn flatline_freezes() {
        let mut rng = SintelRng::seed_from_u64(7);
        let mut v: Vec<f64> = (0..100).map(|i| i as f64).collect();
        inject(&mut v, 10, 20, AnomalyKind::Flatline, 1.0, &mut rng);
        assert!(v[10..=20].iter().all(|&x| x == v[10]));
    }

    #[test]
    fn level_shift_moves_mean() {
        let mut rng = SintelRng::seed_from_u64(8);
        let mut v: Vec<f64> = (0..300).map(|i| (i as f64 * 0.2).sin()).collect();
        let before = sintel_common::mean(&v[100..200]);
        inject(&mut v, 100, 199, AnomalyKind::LevelShift, 6.0, &mut rng);
        let after = sintel_common::mean(&v[100..200]);
        assert!((after - before).abs() > 1.0);
    }

    #[test]
    fn change_point_alters_tail_statistics() {
        let mut rng = SintelRng::seed_from_u64(9);
        let base = BaseSignal { seasonal: vec![(1.0, 50.0, 0.0)], noise: 0.1, ..Default::default() };
        let mut v = base.render(400, &mut rng);
        let before_mean = sintel_common::mean(&v[200..]);
        inject_change_point(&mut v, 200, &mut rng);
        let after_mean = sintel_common::mean(&v[200..]);
        assert!((after_mean - before_mean).abs() > 0.05);
        // Head untouched.
        let head = base.render(400, &mut SintelRng::seed_from_u64(9));
        assert_eq!(&v[..200], &head[..200]);
    }

    #[test]
    fn labeled_signal_maps_indices_to_timestamps() {
        let ls = labeled_signal("x", vec![0.0; 100], 1000, 60, &[(10, 19)]);
        assert_eq!(ls.anomalies.len(), 1);
        assert_eq!(ls.anomalies[0], Interval::new(1600, 2140).unwrap());
        assert_eq!(ls.signal.timestamps()[1] - ls.signal.timestamps()[0], 60);
    }
}

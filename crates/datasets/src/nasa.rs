//! Synthetic NASA spacecraft-telemetry corpus (MSL + SMAP).
//!
//! The Hundman et al. telemetry dataset contains 80 anonymised channels
//! (27 from the Mars Science Laboratory, 53 from the SMAP satellite) with
//! 103 expert-labelled anomalies, average length 8686. Channels are
//! typically quantized, piecewise-constant command/state values mixed
//! with slow orbital periodicities — anomalies are often *contextual*
//! (unusual-but-in-range patterns), which is exactly the challenge (C2)
//! the paper's collaborators raised.

use sintel_common::SintelRng;

use crate::corpus::{
    budget_anomalies, budget_lengths, scaled_count, Dataset, DatasetConfig, Subset,
};
use crate::synth::{inject, labeled_signal, plan_windows, AnomalyKind, BaseSignal};

const STEP: i64 = 60; // 1-minute telemetry
const AVG_LEN: usize = 8686;
const ORBIT: f64 = 96.0; // ~96-minute low-orbit period in steps

/// `(subset, #signals, #anomalies)` — MSL 27/36, SMAP 53/67.
const SUBSETS: &[(&str, usize, usize)] = &[("MSL", 27, 36), ("SMAP", 53, 67)];

fn style(rng: &mut SintelRng) -> BaseSignal {
    // Three telemetry archetypes: command/state channels, orbital
    // periodic channels, and slow continuous sensors.
    match rng.index(3) {
        0 => BaseSignal {
            level: rng.uniform_range(-1.0, 1.0),
            noise: rng.uniform_range(0.005, 0.03),
            quantize: rng.uniform_range(0.05, 0.2),
            steps: Some((ORBIT * rng.uniform_range(2.0, 8.0), rng.uniform_range(0.5, 1.5))),
            ..Default::default()
        },
        1 => BaseSignal {
            level: rng.uniform_range(-0.5, 0.5),
            seasonal: vec![
                (rng.uniform_range(0.3, 1.0), ORBIT, rng.uniform_range(0.0, 6.0)),
                (rng.uniform_range(0.05, 0.2), ORBIT * 15.0, rng.uniform_range(0.0, 6.0)),
            ],
            noise: rng.uniform_range(0.01, 0.05),
            ..Default::default()
        },
        _ => BaseSignal {
            level: rng.uniform_range(-0.2, 0.2),
            trend: rng.uniform_range(-1e-5, 1e-5),
            seasonal: vec![(rng.uniform_range(0.1, 0.4), ORBIT * 4.0, rng.uniform_range(0.0, 6.0))],
            noise: rng.uniform_range(0.02, 0.08),
            walk: rng.uniform_range(0.0, 0.002),
            ..Default::default()
        },
    }
}

/// Telemetry anomalies skew contextual: pattern changes, stuck sensors,
/// unusual excursions that stay near the normal range.
const KINDS: &[AnomalyKind] = &[
    AnomalyKind::AmplitudeChange,
    AnomalyKind::FrequencyShift,
    AnomalyKind::Flatline,
    AnomalyKind::LevelShift,
    AnomalyKind::Spike,
    AnomalyKind::Dip,
];

/// Generate the NASA-style corpus.
pub fn generate(config: &DatasetConfig) -> Dataset {
    let mut rng = SintelRng::seed_from_u64(config.seed ^ 0x4E41_5341); // "NASA"
    let avg_len = ((AVG_LEN as f64 * config.length_scale).round() as usize).max(64);

    let mut subsets = Vec::with_capacity(SUBSETS.len());
    for &(name, n_signals, n_anoms) in SUBSETS {
        let count = scaled_count(n_signals, config.signal_scale);
        let total_anoms = scaled_count(n_anoms, config.signal_scale);
        let lengths = budget_lengths(count, avg_len, &mut rng);
        let anoms = budget_anomalies(count, total_anoms, &mut rng);

        let mut signals = Vec::with_capacity(count);
        for i in 0..count {
            let mut srng = rng.fork(i as u64);
            let base = style(&mut srng);
            let mut values = base.render(lengths[i], &mut srng);
            // Spacecraft anomalies last minutes to hours: longer windows.
            let max_dur = (lengths[i] / 12).clamp(40, 500);
            let windows = plan_windows(
                lengths[i],
                anoms[i],
                (30.min(max_dur), max_dur),
                lengths[i] / 20,
                100,
                &mut srng,
            );
            for &(s, e) in &windows {
                let kind = *srng.choice(KINDS);
                // Contextual anomalies are subtler than NAB spikes.
                let mag = srng.uniform_range(2.5, 6.0);
                inject(&mut values, s, e, kind, mag, &mut srng);
            }
            let sig_name = format!("NASA/{name}/{}-{}", if name == "MSL" { "M" } else { "S" }, i);
            signals.push(labeled_signal(&sig_name, values, 1_300_000_000, STEP, &windows));
        }
        subsets.push(Subset { name: name.to_string(), signals });
    }
    Dataset { name: "NASA".to_string(), subsets }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_counts() {
        let ds = generate(&DatasetConfig::default());
        assert_eq!(ds.num_signals(), 80);
        assert_eq!(ds.num_anomalies(), 103);
        assert_eq!(ds.avg_signal_length(), 8686);
        assert_eq!(ds.subsets[0].name, "MSL");
        assert_eq!(ds.subsets[0].signals.len(), 27);
        assert_eq!(ds.subsets[1].name, "SMAP");
        assert_eq!(ds.subsets[1].signals.len(), 53);
    }

    #[test]
    fn one_minute_sampling() {
        let ds = generate(&DatasetConfig::small());
        assert_eq!(ds.subsets[0].signals[0].signal.median_step(), 60);
    }

    #[test]
    fn anomaly_windows_are_long_contextual_events() {
        let ds = generate(&DatasetConfig::default());
        // At full scale windows span at least 30 samples (30 minutes).
        for ls in ds.iter_signals() {
            for a in &ls.anomalies {
                assert!(a.duration() >= 29 * 60, "{:?}", a);
            }
        }
    }
}

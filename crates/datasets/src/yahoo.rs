//! Synthetic Yahoo S5 ("Webscope") corpus.
//!
//! Yahoo S5 has four benchmarks: A1 is real production-traffic telemetry
//! (67 signals), A2–A4 are synthetic (100 signals each) with increasingly
//! adversarial structure — A3/A4 are dominated by point outliers, and A4
//! additionally contains *change points* (86% of its signals, per the
//! paper's §5 investigation) that are not labelled as anomalies but shift
//! the data distribution and depress unsupervised F1. Totals: 367
//! signals, 2152 anomalies, hourly sampling, average length 1561.

use sintel_common::SintelRng;

use crate::corpus::{
    budget_anomalies, budget_lengths, scaled_count, Dataset, DatasetConfig, Subset,
};
use crate::synth::{
    inject, inject_change_point, labeled_signal, plan_windows, AnomalyKind, BaseSignal,
};

const STEP: i64 = 3600; // hourly
const AVG_LEN: usize = 1561;
const DAY: f64 = 24.0;

/// `(subset, #signals, #anomalies)` — sums to 367 / 2152.
const SUBSETS: &[(&str, usize, usize)] = &[
    ("A1", 67, 179),
    ("A2", 100, 200),
    ("A3", 100, 939),
    ("A4", 100, 834),
];

/// Fraction of A4 signals carrying an unlabelled change point (§5: 86%).
pub const A4_CHANGE_POINT_FRACTION: f64 = 0.86;

fn style(subset: &str, rng: &mut SintelRng) -> BaseSignal {
    match subset {
        // Real production traffic: strong daily cycle, weekly modulation,
        // mild trend and heteroscedastic-looking noise.
        "A1" => BaseSignal {
            level: rng.uniform_range(100.0, 1000.0),
            trend: rng.uniform_range(-0.05, 0.05),
            seasonal: vec![
                (rng.uniform_range(20.0, 200.0), DAY, rng.uniform_range(0.0, 6.0)),
                (rng.uniform_range(5.0, 50.0), DAY * 7.0, rng.uniform_range(0.0, 6.0)),
            ],
            noise: rng.uniform_range(5.0, 30.0),
            walk: rng.uniform_range(0.0, 1.0),
            ..Default::default()
        },
        // A2: clean synthetic seasonality + trend.
        "A2" => BaseSignal {
            level: rng.uniform_range(-10.0, 10.0),
            trend: rng.uniform_range(-0.02, 0.02),
            seasonal: vec![(rng.uniform_range(2.0, 10.0), DAY, rng.uniform_range(0.0, 6.0))],
            noise: rng.uniform_range(0.2, 1.0),
            ..Default::default()
        },
        // A3/A4: synthetic with multiple seasonalities.
        _ => BaseSignal {
            level: rng.uniform_range(-5.0, 5.0),
            trend: rng.uniform_range(-0.01, 0.01),
            seasonal: vec![
                (rng.uniform_range(1.0, 6.0), DAY, rng.uniform_range(0.0, 6.0)),
                (rng.uniform_range(0.5, 2.0), DAY / 2.0, rng.uniform_range(0.0, 6.0)),
            ],
            noise: rng.uniform_range(0.2, 0.8),
            ..Default::default()
        },
    }
}

fn kinds_for(subset: &str) -> &'static [AnomalyKind] {
    match subset {
        "A1" => &[
            AnomalyKind::Spike,
            AnomalyKind::Dip,
            AnomalyKind::LevelShift,
            AnomalyKind::AmplitudeChange,
        ],
        "A2" => &[AnomalyKind::Spike, AnomalyKind::Dip],
        // A3/A4 are dominated by point outliers.
        _ => &[AnomalyKind::Spike, AnomalyKind::Dip],
    }
}

fn duration_range(subset: &str) -> (usize, usize) {
    match subset {
        "A1" => (1, 16),
        "A2" => (1, 6),
        _ => (1, 3), // near-point outliers
    }
}

/// Generate the Yahoo S5-style corpus.
pub fn generate(config: &DatasetConfig) -> Dataset {
    let mut rng = SintelRng::seed_from_u64(config.seed ^ 0x59_4148_4F4F); // "YAHOO"
    let avg_len = ((AVG_LEN as f64 * config.length_scale).round() as usize).max(64);

    let mut subsets = Vec::with_capacity(SUBSETS.len());
    for &(name, n_signals, n_anoms) in SUBSETS {
        let count = scaled_count(n_signals, config.signal_scale);
        let total_anoms = scaled_count(n_anoms, config.signal_scale);
        let lengths = budget_lengths(count, avg_len, &mut rng);
        let anoms = budget_anomalies(count, total_anoms, &mut rng);

        let mut signals = Vec::with_capacity(count);
        for i in 0..count {
            let mut srng = rng.fork(i as u64);
            let base = style(name, &mut srng);
            let mut values = base.render(lengths[i], &mut srng);
            let windows = plan_windows(
                lengths[i],
                anoms[i],
                duration_range(name),
                8,
                3,
                &mut srng,
            );
            for &(s, e) in &windows {
                let kind = *srng.choice(kinds_for(name));
                let mag = srng.uniform_range(5.0, 10.0);
                inject(&mut values, s, e, kind, mag, &mut srng);
            }
            // Unlabelled distribution shift for most A4 signals.
            if name == "A4" && srng.chance(A4_CHANGE_POINT_FRACTION) {
                let at = lengths[i] / 4 + srng.index(lengths[i] / 2);
                inject_change_point(&mut values, at, &mut srng);
            }
            let sig_name = format!("YAHOO/{name}/{name}_{}", i + 1);
            signals.push(labeled_signal(&sig_name, values, 1_420_000_000, STEP, &windows));
        }
        subsets.push(Subset { name: name.to_string(), signals });
    }
    Dataset { name: "YAHOO".to_string(), subsets }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_counts() {
        let ds = generate(&DatasetConfig::default());
        assert_eq!(ds.num_signals(), 367);
        assert_eq!(ds.num_anomalies(), 2152);
        assert_eq!(ds.avg_signal_length(), 1561);
        let names: Vec<&str> = ds.subsets.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["A1", "A2", "A3", "A4"]);
    }

    #[test]
    fn a3_anomalies_are_short() {
        let ds = generate(&DatasetConfig::default());
        let a3 = &ds.subsets[2];
        for ls in &a3.signals {
            for a in &ls.anomalies {
                assert!(a.duration() <= 2 * STEP, "{a:?}");
            }
        }
    }

    #[test]
    fn hourly_sampling() {
        let ds = generate(&DatasetConfig::small());
        assert_eq!(ds.subsets[0].signals[0].signal.median_step(), 3600);
    }

    #[test]
    fn a4_has_more_anomalies_per_signal_than_a1() {
        let ds = generate(&DatasetConfig::default());
        let per = |s: &crate::corpus::Subset| {
            s.signals.iter().map(|l| l.anomalies.len()).sum::<usize>() as f64
                / s.signals.len() as f64
        };
        assert!(per(&ds.subsets[3]) > per(&ds.subsets[0]));
    }
}

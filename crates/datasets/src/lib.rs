#![warn(missing_docs)]

//! # sintel-datasets
//!
//! Deterministic synthetic reproductions of the three public corpora the
//! paper evaluates on (Table 2):
//!
//! | Dataset | # Signals | # Anomalies | Avg. signal length |
//! |---------|-----------|-------------|--------------------|
//! | NAB     | 45        | 94          | 6088               |
//! | NASA    | 80        | 103         | 8686               |
//! | YAHOO   | 367       | 2152        | 1561               |
//!
//! The real corpora are download/license-gated; these generators produce
//! seeded signals with the same structure (counts, lengths, sampling
//! steps, per-family signal character and anomaly types) so that every
//! code path the real data would exercise is exercised. See DESIGN.md §2
//! for the substitution rationale.
//!
//! All generation is reproducible from [`DatasetConfig::seed`], and can be
//! scaled down for CI with [`DatasetConfig::signal_scale`] /
//! [`DatasetConfig::length_scale`].

pub mod corpus;
pub mod demo;
pub mod io;
pub mod nab;
pub mod nasa;
pub mod synth;
pub mod yahoo;

pub use corpus::{Dataset, DatasetConfig, DatasetId, Subset};
pub use demo::load_signal;
pub use io::{load_from_dir, save_to_dir};
pub use synth::LabeledSignal;

/// Load one corpus by id.
pub fn load(id: DatasetId, config: &DatasetConfig) -> Dataset {
    match id {
        DatasetId::Nab => nab::generate(config),
        DatasetId::Nasa => nasa::generate(config),
        DatasetId::Yahoo => yahoo::generate(config),
    }
}

/// Load all three corpora (NAB, NASA, YAHOO — the paper's order).
pub fn load_all(config: &DatasetConfig) -> Vec<Dataset> {
    vec![
        load(DatasetId::Nab, config),
        load(DatasetId::Nasa, config),
        load(DatasetId::Yahoo, config),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_statistics_match_paper_at_full_scale() {
        let cfg = DatasetConfig::default();
        let all = load_all(&cfg);
        let stats: Vec<(String, usize, usize, usize)> = all
            .iter()
            .map(|d| (d.name.clone(), d.num_signals(), d.num_anomalies(), d.avg_signal_length()))
            .collect();
        assert_eq!(stats[0], ("NAB".to_string(), 45, 94, 6088));
        assert_eq!(stats[1], ("NASA".to_string(), 80, 103, 8686));
        assert_eq!(stats[2], ("YAHOO".to_string(), 367, 2152, 1561));
        // Paper totals: 492 signals, 2349 anomalies.
        assert_eq!(all.iter().map(Dataset::num_signals).sum::<usize>(), 492);
        assert_eq!(all.iter().map(Dataset::num_anomalies).sum::<usize>(), 2349);
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = DatasetConfig { seed: 7, ..DatasetConfig::small() };
        let a = load(DatasetId::Nab, &cfg);
        let b = load(DatasetId::Nab, &cfg);
        for (sa, sb) in a.iter_signals().zip(b.iter_signals()) {
            assert_eq!(sa.signal, sb.signal);
            assert_eq!(sa.anomalies, sb.anomalies);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = load(DatasetId::Nab, &DatasetConfig { seed: 1, ..DatasetConfig::small() });
        let b = load(DatasetId::Nab, &DatasetConfig { seed: 2, ..DatasetConfig::small() });
        let va = a.iter_signals().next().unwrap().signal.values();
        let vb = b.iter_signals().next().unwrap().signal.values();
        assert_ne!(va, vb);
    }

    #[test]
    fn anomalies_lie_within_signal_span() {
        let cfg = DatasetConfig::small();
        for ds in load_all(&cfg) {
            for ls in ds.iter_signals() {
                let start = ls.signal.start().unwrap();
                let end = ls.signal.end().unwrap();
                for a in &ls.anomalies {
                    assert!(a.start >= start && a.end <= end, "{} {:?}", ls.signal.name(), a);
                }
            }
        }
    }

    #[test]
    fn signals_are_finite_everywhere() {
        let cfg = DatasetConfig::small();
        for ds in load_all(&cfg) {
            for ls in ds.iter_signals() {
                assert!(
                    ls.signal.values().iter().all(|v| v.is_finite()),
                    "{} has non-finite values",
                    ls.signal.name()
                );
            }
        }
    }
}

//! Corpus disk I/O: save a generated corpus as `signal.csv` +
//! `signal.labels.csv` pairs, and load any directory of such pairs as a
//! dataset.
//!
//! This is the bridge to *real* data: the public corpora ship exactly in
//! this shape (`timestamp,value` CSVs plus anomaly label files), so a
//! user who has downloaded NASA/NAB — or exported their own telemetry —
//! points [`load_from_dir`] at the directory and benchmarks against it
//! with no code changes.

use std::path::Path;

use sintel_timeseries::csvio;

use crate::corpus::{Dataset, Subset};
use crate::synth::LabeledSignal;

fn io_err(e: impl std::fmt::Display) -> sintel_timeseries::TimeSeriesError {
    sintel_timeseries::TimeSeriesError::Io(e.to_string())
}

/// File-system-safe name for a signal (slashes become dashes).
fn file_stem(signal_name: &str) -> String {
    signal_name.replace(['/', '\\'], "-")
}

/// Save a dataset: one sub-directory per subset, one CSV pair per signal.
pub fn save_to_dir(dataset: &Dataset, dir: &Path) -> sintel_timeseries::Result<()> {
    for subset in &dataset.subsets {
        let sub_dir = dir.join(&dataset.name).join(&subset.name);
        std::fs::create_dir_all(&sub_dir).map_err(io_err)?;
        for labeled in &subset.signals {
            let stem = file_stem(labeled.signal.name());
            csvio::write_signal_csv(&labeled.signal, &sub_dir.join(format!("{stem}.csv")))?;
            csvio::write_labels_csv(
                &labeled.anomalies,
                &sub_dir.join(format!("{stem}.labels.csv")),
            )?;
        }
    }
    Ok(())
}

/// Load a dataset saved by [`save_to_dir`] (or hand-assembled in the
/// same layout): `dir/<name>/<subset>/<signal>.csv` with optional
/// `<signal>.labels.csv` next to each (missing label files mean "no
/// known anomalies").
pub fn load_from_dir(dir: &Path, name: &str) -> sintel_timeseries::Result<Dataset> {
    let root = dir.join(name);
    let mut subsets = Vec::new();
    let mut subset_dirs: Vec<_> = std::fs::read_dir(&root)
        .map_err(io_err)?
        .filter_map(|e| e.ok())
        .filter(|e| e.path().is_dir())
        .collect();
    subset_dirs.sort_by_key(|e| e.file_name());
    for entry in subset_dirs {
        let subset_name = entry.file_name().to_string_lossy().to_string();
        let mut signals = Vec::new();
        let mut files: Vec<_> = std::fs::read_dir(entry.path())
            .map_err(io_err)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.extension().and_then(|e| e.to_str()) == Some("csv")
                    && !p.to_string_lossy().ends_with(".labels.csv")
            })
            .collect();
        files.sort();
        for csv_path in files {
            let stem = csv_path
                .file_stem()
                .and_then(|s| s.to_str())
                .ok_or_else(|| io_err(format!("bad file name {csv_path:?}")))?
                .to_string();
            let signal = csvio::read_signal_csv(&stem, &csv_path)?;
            let labels_path = csv_path.with_file_name(format!("{stem}.labels.csv"));
            let anomalies = if labels_path.exists() {
                csvio::read_labels_csv(&labels_path)?
            } else {
                Vec::new()
            };
            signals.push(LabeledSignal { signal, anomalies });
        }
        subsets.push(Subset { name: subset_name, signals });
    }
    Ok(Dataset { name: name.to_string(), subsets })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{DatasetConfig, DatasetId};

    #[test]
    fn save_load_roundtrip_preserves_everything() {
        let dir = std::env::temp_dir()
            .join(format!("sintel-dataset-io-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = DatasetConfig { seed: 9, signal_scale: 0.02, length_scale: 0.05 };
        let original = crate::load(DatasetId::Nab, &cfg);
        save_to_dir(&original, &dir).unwrap();
        let loaded = load_from_dir(&dir, "NAB").unwrap();

        assert_eq!(loaded.num_signals(), original.num_signals());
        assert_eq!(loaded.num_anomalies(), original.num_anomalies());
        assert_eq!(loaded.subsets.len(), original.subsets.len());
        // Values and labels round-trip per signal (names become file
        // stems, so match on content).
        let orig_total: f64 = original
            .iter_signals()
            .flat_map(|l| l.signal.values().iter())
            .sum();
        let loaded_total: f64 =
            loaded.iter_signals().flat_map(|l| l.signal.values().iter()).sum();
        assert!((orig_total - loaded_total).abs() < 1e-6 * orig_total.abs().max(1.0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_labels_file_means_unlabelled() {
        let dir = std::env::temp_dir()
            .join(format!("sintel-dataset-io-nolabel-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let sub = dir.join("CUSTOM").join("prod");
        std::fs::create_dir_all(&sub).unwrap();
        let signal = sintel_timeseries::Signal::from_values("m1", vec![1.0, 2.0, 3.0]);
        csvio::write_signal_csv(&signal, &sub.join("m1.csv")).unwrap();
        let ds = load_from_dir(&dir, "CUSTOM").unwrap();
        assert_eq!(ds.num_signals(), 1);
        assert_eq!(ds.num_anomalies(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_missing_dir_errors() {
        assert!(load_from_dir(Path::new("/nonexistent"), "X").is_err());
    }
}

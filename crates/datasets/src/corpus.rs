//! Corpus-level machinery shared by the three dataset generators:
//! configuration/scaling, exact length and anomaly budgeting, and the
//! [`Dataset`]/[`Subset`] containers.

use sintel_common::SintelRng;

use crate::synth::LabeledSignal;

/// Identifies one of the paper's three corpora.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetId {
    /// Numenta Anomaly Benchmark (45 signals / 94 anomalies).
    Nab,
    /// NASA MSL + SMAP spacecraft telemetry (80 / 103).
    Nasa,
    /// Yahoo S5 webscope production traffic (367 / 2152).
    Yahoo,
}

impl DatasetId {
    /// Parse from the names used in the benchmark API (Figure 4c).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_uppercase().as_str() {
            "NAB" => Some(Self::Nab),
            "NASA" => Some(Self::Nasa),
            "YAHOO" | "YAHOO S5" | "YAHOOS5" => Some(Self::Yahoo),
            _ => None,
        }
    }

    /// Canonical display name.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Nab => "NAB",
            Self::Nasa => "NASA",
            Self::Yahoo => "YAHOO",
        }
    }
}

/// Generation configuration: seed plus CI-friendly scaling knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetConfig {
    /// Root seed; every signal derives a forked stream from it.
    pub seed: u64,
    /// Fraction of the published signal count to generate (0 < s <= 1).
    pub signal_scale: f64,
    /// Fraction of the published signal length to generate (0 < s <= 1).
    pub length_scale: f64,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        Self { seed: 42, signal_scale: 1.0, length_scale: 1.0 }
    }
}

impl DatasetConfig {
    /// A configuration small enough for unit tests and CI smoke runs.
    pub fn small() -> Self {
        Self { seed: 42, signal_scale: 0.1, length_scale: 0.1 }
    }

    /// Read scaling from the `SINTEL_SCALE` environment variable
    /// (applied to both signal count and length), defaulting to `default_scale`.
    pub fn from_env(default_scale: f64) -> Self {
        let scale = std::env::var("SINTEL_SCALE")
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .unwrap_or(default_scale)
            .clamp(0.001, 1.0);
        Self { seed: 42, signal_scale: scale, length_scale: scale }
    }
}

/// A named group of signals within a corpus (e.g. Yahoo `A4`, NAB
/// `realTraffic`, NASA `MSL`).
#[derive(Debug, Clone)]
pub struct Subset {
    /// Subset name.
    pub name: String,
    /// Labelled signals in the subset.
    pub signals: Vec<LabeledSignal>,
}

/// A full corpus: a named list of subsets.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Corpus name (`NAB`, `NASA`, `YAHOO`).
    pub name: String,
    /// Member subsets.
    pub subsets: Vec<Subset>,
}

impl Dataset {
    /// Iterate all signals across subsets.
    pub fn iter_signals(&self) -> impl Iterator<Item = &LabeledSignal> {
        self.subsets.iter().flat_map(|s| s.signals.iter())
    }

    /// Total number of signals.
    pub fn num_signals(&self) -> usize {
        self.subsets.iter().map(|s| s.signals.len()).sum()
    }

    /// Total number of labelled anomalies.
    pub fn num_anomalies(&self) -> usize {
        self.iter_signals().map(|ls| ls.anomalies.len()).sum()
    }

    /// Average signal length (rounded), as reported in Table 2.
    pub fn avg_signal_length(&self) -> usize {
        let n = self.num_signals();
        if n == 0 {
            return 0;
        }
        let total: usize = self.iter_signals().map(|ls| ls.signal.len()).sum();
        (total as f64 / n as f64).round() as usize
    }
}

/// Scale a published count by `scale`, keeping at least 1.
pub fn scaled_count(published: usize, scale: f64) -> usize {
    ((published as f64 * scale).round() as usize).max(1)
}

/// Produce `count` signal lengths with mean exactly `avg` (after scaling),
/// jittered ±25% around the mean. The exact-mean property is what lets the
/// Table 2 binary print the paper's numbers verbatim at scale 1.
pub fn budget_lengths(count: usize, avg: usize, rng: &mut SintelRng) -> Vec<usize> {
    assert!(count > 0 && avg > 0);
    let target_total = count * avg;
    let mut lengths: Vec<i64> =
        (0..count).map(|_| (avg as f64 * rng.uniform_range(0.75, 1.25)).round() as i64).collect();
    let mut drift = target_total as i64 - lengths.iter().sum::<i64>();
    // Spread the rounding/jitter drift one step at a time.
    let mut i = 0usize;
    while drift != 0 {
        let delta = drift.signum();
        let cand = lengths[i % count] + delta;
        if cand >= (avg as i64 / 2).max(16) {
            lengths[i % count] = cand;
            drift -= delta;
        }
        i += 1;
    }
    lengths.into_iter().map(|l| l as usize).collect()
}

/// Distribute `total` anomalies over `count` signals: an even floor plus
/// randomly assigned remainders, so per-signal counts differ but the sum
/// is exact.
pub fn budget_anomalies(count: usize, total: usize, rng: &mut SintelRng) -> Vec<usize> {
    assert!(count > 0);
    let base = total / count;
    let mut counts = vec![base; count];
    let extras = total - base * count;
    for idx in rng.sample_indices(count, extras) {
        counts[idx] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_id_parse() {
        assert_eq!(DatasetId::parse("nab"), Some(DatasetId::Nab));
        assert_eq!(DatasetId::parse("NASA"), Some(DatasetId::Nasa));
        assert_eq!(DatasetId::parse("yahoo"), Some(DatasetId::Yahoo));
        assert_eq!(DatasetId::parse("???"), None);
        assert_eq!(DatasetId::Yahoo.name(), "YAHOO");
    }

    #[test]
    fn budget_lengths_exact_mean() {
        let mut rng = SintelRng::seed_from_u64(1);
        for (count, avg) in [(45usize, 6088usize), (80, 8686), (367, 1561), (3, 100)] {
            let lens = budget_lengths(count, avg, &mut rng);
            assert_eq!(lens.len(), count);
            assert_eq!(lens.iter().sum::<usize>(), count * avg);
            assert!(lens.iter().all(|&l| l >= 16));
        }
    }

    #[test]
    fn budget_anomalies_exact_total() {
        let mut rng = SintelRng::seed_from_u64(2);
        for (count, total) in [(45usize, 94usize), (80, 103), (367, 2152), (10, 3)] {
            let counts = budget_anomalies(count, total, &mut rng);
            assert_eq!(counts.iter().sum::<usize>(), total);
        }
    }

    #[test]
    fn scaled_count_floor_one() {
        assert_eq!(scaled_count(45, 1.0), 45);
        assert_eq!(scaled_count(45, 0.1), 5);
        assert_eq!(scaled_count(3, 0.01), 1);
    }

    #[test]
    fn config_from_env_clamps() {
        // No env var set in tests -> default.
        std::env::remove_var("SINTEL_SCALE");
        let cfg = DatasetConfig::from_env(0.25);
        assert_eq!(cfg.signal_scale, 0.25);
    }
}

//! The analyzer walk: contracts × step list → diagnostics.

use std::collections::{BTreeMap, BTreeSet};

use sintel_primitives::registry::primitive_meta;
use sintel_primitives::{Engine, HyperValue, PrimitiveMeta};

use crate::diagnostics::{Code, Diagnostic, Report};

/// Slots that legitimately remain unread at the end of a pipeline: the
/// detection verdict itself plus the error series kept for downstream
/// visualisation (paper Fig. 2c).
const TERMINAL_SLOTS: &[&str] = &["anomalies", "errors", "error_timestamps"];

/// One template step as seen by the analyzer: a primitive name plus the
/// *explicit* hyperparameter assignments (template overrides merged with
/// a tuner candidate λ, if any).
#[derive(Debug, Clone)]
pub struct StepConfig {
    /// Registry name of the primitive.
    pub primitive: String,
    /// Explicit hyperparameter assignments for this step.
    pub hypers: Vec<(String, HyperValue)>,
}

impl StepConfig {
    /// A step with no explicit hyperparameters.
    pub fn plain(primitive: &str) -> Self {
        Self { primitive: primitive.to_string(), hypers: Vec::new() }
    }

    /// A step with explicit hyperparameter assignments.
    pub fn with(primitive: &str, hypers: Vec<(String, HyperValue)>) -> Self {
        Self { primitive: primitive.to_string(), hypers }
    }
}

/// Statically analyse a pipeline's step list against the primitives'
/// declared contracts. Pure: resolves metadata only, never builds
/// runtime state, so it cannot perturb detection results.
pub fn analyze_pipeline(pipeline: &str, steps: &[StepConfig]) -> Report {
    analyze_pipeline_for_len(pipeline, steps, None)
}

/// [`analyze_pipeline`] with a known bound on the input length (a serve
/// window, a dataset's sample count, a tuner's signal): additionally
/// emits SA007 when some step's output is statically empty for every
/// feasible input.
pub fn analyze_pipeline_for_len(
    pipeline: &str,
    steps: &[StepConfig],
    input_len: Option<usize>,
) -> Report {
    let mut report = Report::new(pipeline);

    // Resolve every step to its metadata. Unknown names are fatal for
    // the walk (no contract to check against), so SA000 aborts here.
    let mut metas: Vec<PrimitiveMeta> = Vec::with_capacity(steps.len());
    for (i, step) in steps.iter().enumerate() {
        match primitive_meta(&step.primitive) {
            Ok(meta) => metas.push(meta),
            Err(_) => report.push(Diagnostic::error(
                Code::UnknownPrimitive,
                i,
                &step.primitive,
                format!("unknown primitive '{}'", step.primitive),
                "check available_primitives() for registered names",
            )),
        }
    }
    if metas.len() != steps.len() {
        return report;
    }

    check_hyperparams(steps, &metas, &mut report);
    check_phase_order(steps, &metas, &mut report);
    check_dataflow(&metas, &mut report);
    crate::shape::check_shapes(steps, &metas, input_len, &mut report);

    report.diagnostics.sort_by_key(|d| (d.step, d.code));
    report
}

/// SA003: every explicit hyperparameter must exist and lie in its
/// declared domain. Reuses `PrimitiveMeta::validate_hyperparam`, so the
/// static check and the runtime `set_hyperparam` guard can never drift.
fn check_hyperparams(steps: &[StepConfig], metas: &[PrimitiveMeta], report: &mut Report) {
    for (i, (step, meta)) in steps.iter().zip(metas).enumerate() {
        for (name, value) in &step.hypers {
            if let Err(e) = meta.validate_hyperparam(name, value) {
                let hint = match meta.hyperparam(name) {
                    Some(spec) => format!("declared domain: {:?}", spec.range),
                    None if meta.hyperparams.is_empty() => {
                        "this primitive declares no hyperparameters".to_string()
                    }
                    None => format!(
                        "declared hyperparameters: {}",
                        meta.hyperparams
                            .iter()
                            .map(|h| h.name.as_str())
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                };
                report.push(Diagnostic::error(
                    Code::HyperOutOfDomain,
                    i,
                    &step.primitive,
                    e.to_string(),
                    hint,
                ));
            }
        }
    }
}

fn engine_rank(engine: Engine) -> u8 {
    match engine {
        Engine::Preprocessing => 0,
        Engine::Modeling => 1,
        Engine::Postprocessing => 2,
    }
}

/// SA004: engine category must be non-decreasing along the step list
/// (preprocessing → modeling → postprocessing, paper Fig. 2a).
fn check_phase_order(steps: &[StepConfig], metas: &[PrimitiveMeta], report: &mut Report) {
    let mut max_engine = Engine::Preprocessing;
    for (i, (step, meta)) in steps.iter().zip(metas).enumerate() {
        if engine_rank(meta.engine) < engine_rank(max_engine) {
            report.push(Diagnostic::error(
                Code::PhaseOrdering,
                i,
                &step.primitive,
                format!(
                    "{} step after a {} step violates engine ordering",
                    meta.engine, max_engine
                ),
                "reorder steps: preprocessing \u{2192} modeling \u{2192} postprocessing",
            ));
        } else {
            max_engine = meta.engine;
        }
    }
}

/// SA001/SA002: walk the implicit context dataflow. `available` mirrors
/// the slots a `Context` would hold at each step (seeded with "signal",
/// exactly like `Context::from_signal`); `pending` tracks primary writes
/// not yet consumed by any later read.
fn check_dataflow(metas: &[PrimitiveMeta], report: &mut Report) {
    let mut available: BTreeSet<&str> = BTreeSet::new();
    available.insert("signal");
    // slot -> (producing step, producing primitive)
    let mut pending: BTreeMap<&str, (usize, &str)> = BTreeMap::new();

    for (i, meta) in metas.iter().enumerate() {
        for read in &meta.contract.reads {
            if read.required && !available.contains(read.slot.as_str()) {
                report.push(Diagnostic::error(
                    Code::DanglingRead,
                    i,
                    &meta.name,
                    format!(
                        "required input '{}' ({}) is never produced by an upstream step",
                        read.slot, read.kind
                    ),
                    format!("add an upstream primitive that writes '{}'", read.slot),
                ));
            }
        }
        // All declared reads (required or optional) consume pending
        // outputs — an optional reader still counts as a consumer.
        for read in &meta.contract.reads {
            pending.remove(read.slot.as_str());
        }
        for write in &meta.contract.writes {
            if let Some((j, producer)) = pending.remove(write.slot.as_str()) {
                report.push(Diagnostic::warn(
                    Code::ShadowedOutput,
                    i,
                    &meta.name,
                    format!(
                        "output '{}' of step {j} ({producer}) is overwritten before being read",
                        write.slot
                    ),
                    format!("remove the earlier writer or consume '{}' in between", write.slot),
                ));
            }
            available.insert(&write.slot);
            if write.primary {
                pending.insert(&write.slot, (i, &meta.name));
            }
        }
    }

    for (slot, (j, producer)) in pending {
        if !TERMINAL_SLOTS.contains(&slot) {
            report.push(Diagnostic::warn(
                Code::ShadowedOutput,
                j,
                producer,
                format!("primary output '{slot}' of step {j} ({producer}) is never consumed"),
                format!("remove the step or add a downstream consumer of '{slot}'"),
            ));
        }
    }
}

/// Effective value of an integer hyperparameter: the explicit assignment
/// when present *and valid*, else the declared default. Invalid explicit
/// values fall back to the default — SA003 already reports them.
pub(crate) fn effective_int(step: &StepConfig, meta: &PrimitiveMeta, name: &str) -> Option<i64> {
    let spec = meta.hyperparam(name)?;
    if let Some((_, value)) = step.hypers.iter().find(|(n, _)| n == name) {
        if spec.range.contains(value) {
            if let Ok(v) = value.as_int() {
                return Some(v);
            }
        }
    }
    spec.default.as_int().ok()
}

/// Effective value of a flag hyperparameter (same fallback rule).
pub(crate) fn effective_flag(step: &StepConfig, meta: &PrimitiveMeta, name: &str) -> Option<bool> {
    let spec = meta.hyperparam(name)?;
    if let Some((_, value)) = step.hypers.iter().find(|(n, _)| n == name) {
        if let Ok(v) = value.as_flag() {
            return Some(v);
        }
    }
    spec.default.as_flag().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostics::Severity;

    fn preprocessing() -> Vec<StepConfig> {
        vec![
            StepConfig::with(
                "time_segments_aggregate",
                vec![("interval".into(), HyperValue::Int(0))],
            ),
            StepConfig::plain("SimpleImputer"),
            StepConfig::plain("MinMaxScaler"),
        ]
    }

    #[test]
    fn forecaster_chain_is_clean() {
        let mut steps = preprocessing();
        steps.extend([
            StepConfig::with(
                "rolling_window_sequences",
                vec![
                    ("window_size".into(), HyperValue::Int(50)),
                    ("targets".into(), HyperValue::Flag(true)),
                ],
            ),
            StepConfig::plain("lstm_regressor"),
            StepConfig::plain("regression_errors"),
            StepConfig::plain("find_anomalies"),
        ]);
        let report = analyze_pipeline("lstm_dynamic_threshold", &steps);
        assert!(report.is_clean(), "unexpected diagnostics:\n{}", report.render());
    }

    #[test]
    fn autoencoder_chain_is_clean_without_critic_scores() {
        let mut steps = preprocessing();
        steps.extend([
            StepConfig::with(
                "rolling_window_sequences",
                vec![
                    ("window_size".into(), HyperValue::Int(40)),
                    ("step".into(), HyperValue::Int(2)),
                    ("targets".into(), HyperValue::Flag(false)),
                ],
            ),
            StepConfig::plain("lstm_autoencoder"),
            StepConfig::plain("reconstruction_errors"),
            StepConfig::plain("find_anomalies"),
        ]);
        let report = analyze_pipeline("lstm_autoencoder", &steps);
        assert!(report.is_clean(), "unexpected diagnostics:\n{}", report.render());
    }

    #[test]
    fn tadgan_critic_scores_count_as_consumed() {
        let mut steps = preprocessing();
        steps.extend([
            StepConfig::with(
                "rolling_window_sequences",
                vec![("targets".into(), HyperValue::Flag(false))],
            ),
            StepConfig::plain("tadgan"),
            StepConfig::plain("reconstruction_errors"),
            StepConfig::plain("find_anomalies"),
        ]);
        let report = analyze_pipeline("tadgan", &steps);
        assert!(report.is_clean(), "unexpected diagnostics:\n{}", report.render());
    }

    #[test]
    fn sa000_unknown_primitive_aborts_walk() {
        let steps =
            vec![StepConfig::plain("flux_capacitor"), StepConfig::plain("regression_errors")];
        let report = analyze_pipeline("demo", &steps);
        assert_eq!(report.diagnostics.len(), 1, "walk should abort after SA000");
        let d = &report.diagnostics[0];
        assert_eq!(d.code, Code::UnknownPrimitive);
        assert_eq!(d.step, 0);
        assert_eq!(d.message, "unknown primitive 'flux_capacitor'");
    }

    #[test]
    fn sa001_dangling_read() {
        let mut steps = preprocessing();
        // no rolling_window_sequences: lstm_regressor has nothing to eat
        steps.push(StepConfig::plain("lstm_regressor"));
        steps.push(StepConfig::plain("regression_errors"));
        steps.push(StepConfig::plain("find_anomalies"));
        let report = analyze_pipeline("demo", &steps);
        let errors: Vec<_> = report.errors().collect();
        assert!(errors.iter().all(|d| d.code == Code::DanglingRead));
        assert!(errors
            .iter()
            .any(|d| d.step == 3 && d.message.contains("required input 'windows' (windows)")));
    }

    #[test]
    fn sa002_shadowed_output_is_warn() {
        let mut steps = preprocessing();
        steps.extend([
            StepConfig::plain("arima"),
            StepConfig::plain("holt_winters"), // shadows arima's outputs
            StepConfig::plain("regression_errors"),
            StepConfig::plain("find_anomalies"),
        ]);
        let report = analyze_pipeline("demo", &steps);
        assert!(!report.has_errors());
        let shadowed: Vec<_> =
            report.warnings().filter(|d| d.code == Code::ShadowedOutput).collect();
        assert_eq!(shadowed.len(), 3, "predictions, targets, index_timestamps");
        assert!(shadowed.iter().all(|d| d.step == 4 && d.severity == Severity::Warn));
    }

    #[test]
    fn sa003_out_of_domain_hyper() {
        let mut steps = preprocessing();
        steps[0] = StepConfig::with(
            "time_segments_aggregate",
            vec![("interval".into(), HyperValue::Int(-5))],
        );
        steps.push(StepConfig::plain("arima"));
        steps.push(StepConfig::plain("regression_errors"));
        steps.push(StepConfig::plain("find_anomalies"));
        let report = analyze_pipeline("demo", &steps);
        let errors: Vec<_> = report.errors().collect();
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].code, Code::HyperOutOfDomain);
        assert_eq!(errors[0].step, 0);
        assert!(errors[0].message.contains("out of range"));
        assert!(errors[0].hint.contains("declared domain"));
    }

    #[test]
    fn sa003_unknown_hyper_lists_alternatives() {
        let steps = vec![StepConfig::with(
            "SimpleImputer",
            vec![("strategee".into(), HyperValue::Text("mean".into()))],
        )];
        let report = analyze_pipeline("demo", &steps);
        let errors: Vec<_> = report.errors().collect();
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].code, Code::HyperOutOfDomain);
        assert!(errors[0].hint.contains("strategy"));
    }

    #[test]
    fn sa004_phase_ordering() {
        let steps = vec![
            StepConfig::plain("time_segments_aggregate"),
            StepConfig::plain("arima"),
            StepConfig::plain("SimpleImputer"), // preprocessing after modeling
            StepConfig::plain("regression_errors"),
            StepConfig::plain("find_anomalies"),
        ];
        let report = analyze_pipeline("demo", &steps);
        let errors: Vec<_> = report.errors().collect();
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].code, Code::PhaseOrdering);
        assert_eq!(errors[0].step, 2);
        assert_eq!(
            errors[0].message,
            "preprocessing step after a modeling step violates engine ordering"
        );
    }

    #[test]
    fn sa005_targets_off_before_forecaster() {
        let mut steps = preprocessing();
        steps.extend([
            StepConfig::with(
                "rolling_window_sequences",
                vec![("targets".into(), HyperValue::Flag(false))],
            ),
            StepConfig::plain("lstm_regressor"),
            StepConfig::plain("regression_errors"),
            StepConfig::plain("find_anomalies"),
        ]);
        let report = analyze_pipeline("demo", &steps);
        let errors: Vec<_> = report.errors().collect();
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].code, Code::WindowInconsistency);
        assert_eq!(errors[0].step, 3);
        assert!(errors[0].message.contains("targets=false"));
        assert!(errors[0].message.contains("step 4 (lstm_regressor)"));
    }

    #[test]
    fn sa005_step_larger_than_window() {
        let mut steps = preprocessing();
        steps.extend([
            StepConfig::with(
                "rolling_window_sequences",
                vec![
                    ("window_size".into(), HyperValue::Int(10)),
                    ("step".into(), HyperValue::Int(50)),
                    ("targets".into(), HyperValue::Flag(false)),
                ],
            ),
            StepConfig::plain("lstm_autoencoder"),
            StepConfig::plain("reconstruction_errors"),
            StepConfig::plain("find_anomalies"),
        ]);
        let report = analyze_pipeline("demo", &steps);
        let errors: Vec<_> = report.errors().collect();
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].code, Code::WindowInconsistency);
        assert!(errors[0].message.contains("step 50 exceeds window_size 10"));
    }

    #[test]
    fn sa006_mixed_producers_mismatch() {
        // A forecaster mix-up: ARIMA's point-aligned targets (n-5) fed to
        // an LSTM whose predictions are per-window (n-50).
        let mut steps = preprocessing();
        steps.extend([
            StepConfig::with(
                "rolling_window_sequences",
                vec![
                    ("window_size".into(), HyperValue::Int(50)),
                    ("targets".into(), HyperValue::Flag(true)),
                ],
            ),
            StepConfig::plain("arima"),
            StepConfig::plain("lstm_regressor"),
            StepConfig::plain("regression_errors"),
            StepConfig::plain("find_anomalies"),
        ]);
        let report = analyze_pipeline("demo", &steps);
        let mismatches: Vec<_> =
            report.errors().filter(|d| d.code == Code::ShapeMismatch).collect();
        assert!(!mismatches.is_empty(), "{}", report.render());
        assert!(
            mismatches.iter().any(|d| d.step == 5 && d.primitive == "lstm_regressor"),
            "{}",
            report.render()
        );
        assert!(mismatches[0].message.contains("mismatched static lengths"));
    }

    #[test]
    fn sa007_needs_an_input_bound() {
        let mut steps = preprocessing();
        steps.extend([
            StepConfig::with(
                "rolling_window_sequences",
                vec![
                    ("window_size".into(), HyperValue::Int(50)),
                    ("targets".into(), HyperValue::Flag(true)),
                ],
            ),
            StepConfig::plain("lstm_regressor"),
            StepConfig::plain("regression_errors"),
            StepConfig::plain("find_anomalies"),
        ]);
        // Unbounded input: clean.
        assert!(analyze_pipeline("demo", &steps).is_clean());
        // 40 samples cannot fill a 50-sample window + 1 target.
        let report = analyze_pipeline_for_len("demo", &steps, Some(40));
        let errors: Vec<_> = report.errors().collect();
        assert_eq!(errors.len(), 1, "{}", report.render());
        assert_eq!(errors[0].code, Code::EmptyOutput);
        assert_eq!(errors[0].step, 3);
        assert!(errors[0].message.contains("requires at least 51 input samples"));
        assert!(errors[0].message.contains("at most 40 are available"));
        // 51 samples squeeze out exactly one window: clean again.
        assert!(analyze_pipeline_for_len("demo", &steps, Some(51)).is_clean());
    }

    #[test]
    fn fault_injection_primitives_are_contract_clean() {
        // The dev-dependency enables sintel-primitives' `faulty` feature,
        // registering the fault-injection primitives for this test build.
        // Runtime faults (panic/NaN/hang) are not wiring bugs: the
        // analyzer must keep these templates buildable so the
        // fault-isolation layer can exercise them.
        let mut steps = preprocessing();
        steps.push(StepConfig::plain("faulty_panic"));
        let report = analyze_pipeline("faulty", &steps);
        assert!(!report.has_errors(), "{}", report.render());
    }
}

#![warn(missing_docs)]

//! # sintel-analyze
//!
//! Static dataflow/contract checker for pipeline templates.
//!
//! The paper's template abstraction ⟨V, E, Λ⟩ (§2.2, Fig. 4a) wires
//! primitives through an *implicit* context dataflow: each step reads
//! named slots left behind by earlier steps and writes its own. A
//! mis-wired template — a step consuming a slot nobody produced, an
//! out-of-domain hyperparameter, engines out of order — historically only
//! surfaced as a runtime failure deep inside `fit`, wasting whole
//! benchmark rows and tuner trials.
//!
//! This crate rejects such pipelines *before* execution. Every primitive
//! declares a static [`Contract`](sintel_primitives::Contract) (context
//! slots consumed/produced per phase, value kinds, hyperparameter
//! domains); [`analyze_pipeline`] walks a step list against those
//! contracts and emits coded diagnostics:
//!
//! | code  | severity | meaning |
//! |-------|----------|---------|
//! | SA000 | Error    | unknown primitive name (aborts the walk) |
//! | SA001 | Error    | dangling context read — required input never produced |
//! | SA002 | Warn     | shadowed or unused primary output |
//! | SA003 | Error    | hyperparameter unknown or out of declared domain |
//! | SA004 | Error    | phase-ordering violation (engine rank decreases) |
//! | SA005 | Error    | window/aggregation inconsistency |
//! | SA006 | Error    | static shape mismatch between aligned inputs |
//! | SA007 | Error    | statically-empty output under the input-length bound |
//! | SA008 | Warn/Error | fallback template not strictly cheaper than primary |
//! | SA009 | Error    | runtime contract violation (sanitizer finding) |
//! | SA010 | Error    | serve configuration field outside its domain |
//! | SA011 | Error    | reserved or duplicate tenant name |
//! | SA012 | Error    | fallback incompatible with the serve window |
//! | SA013 | Warn/Error | load shedding can never / must always fire |
//! | SA014 | Error    | an open circuit breaker can never close |
//!
//! SA000–SA007 come from the per-template walk ([`analyze_pipeline`],
//! with SA007 requiring the input-length bound of
//! [`analyze_pipeline_for_len`]); the [`shape`] pass propagates symbolic
//! sequence lengths through per-primitive transfer functions, and the
//! [`cost`] model rolls up per-step flop/byte estimates. SA008 and
//! SA010–SA014 are deployment-level diagnostics emitted by
//! `sintel_serve::analyze_deployment` through the same [`Report`] path;
//! SA009 is produced at runtime by `sintel-pipeline`'s contract sanitizer
//! (a debug/test feature), closing the loop between declared contracts
//! and actual slot access.
//!
//! Severity policy: **Error** diagnostics refuse to build (enforced by
//! `sintel-pipeline`'s hub and `sintel-serve`'s engine), **Warn**
//! diagnostics are logged through `sintel-obs` and reported but never
//! block. Analysis is pure — it never constructs runtime state beyond
//! primitive metadata, so enabling it cannot change detection results on
//! valid pipelines.

mod checks;
mod cost;
mod diagnostics;
mod shape;

pub use checks::{analyze_pipeline, analyze_pipeline_for_len, StepConfig};
pub use cost::{estimate_steps, CostEstimate, NOMINAL_INPUT_LEN};
pub use diagnostics::{Code, Diagnostic, Report, Severity};
pub use shape::{required_input_len, LenExpr};

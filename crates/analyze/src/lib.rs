#![warn(missing_docs)]

//! # sintel-analyze
//!
//! Static dataflow/contract checker for pipeline templates.
//!
//! The paper's template abstraction ⟨V, E, Λ⟩ (§2.2, Fig. 4a) wires
//! primitives through an *implicit* context dataflow: each step reads
//! named slots left behind by earlier steps and writes its own. A
//! mis-wired template — a step consuming a slot nobody produced, an
//! out-of-domain hyperparameter, engines out of order — historically only
//! surfaced as a runtime failure deep inside `fit`, wasting whole
//! benchmark rows and tuner trials.
//!
//! This crate rejects such pipelines *before* execution. Every primitive
//! declares a static [`Contract`](sintel_primitives::Contract) (context
//! slots consumed/produced per phase, value kinds, hyperparameter
//! domains); [`analyze_pipeline`] walks a step list against those
//! contracts and emits coded diagnostics:
//!
//! | code  | severity | meaning |
//! |-------|----------|---------|
//! | SA000 | Error    | unknown primitive name (aborts the walk) |
//! | SA001 | Error    | dangling context read — required input never produced |
//! | SA002 | Warn     | shadowed or unused primary output |
//! | SA003 | Error    | hyperparameter unknown or out of declared domain |
//! | SA004 | Error    | phase-ordering violation (engine rank decreases) |
//! | SA005 | Error    | window/aggregation inconsistency |
//!
//! Severity policy: **Error** diagnostics refuse to build (enforced by
//! `sintel-pipeline`'s hub), **Warn** diagnostics are logged through
//! `sintel-obs` and reported but never block. Analysis is pure — it never
//! constructs runtime state beyond primitive metadata, so enabling it
//! cannot change detection results on valid pipelines.

mod checks;
mod diagnostics;

pub use checks::{analyze_pipeline, StepConfig};
pub use diagnostics::{Code, Diagnostic, Report, Severity};

//! Diagnostic codes, severities and the rustc-style report.

/// Stable diagnostic codes (see the crate docs for the full table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// SA000: unknown primitive name.
    UnknownPrimitive,
    /// SA001: dangling context read — a required input is never produced.
    DanglingRead,
    /// SA002: shadowed or unused primary output.
    ShadowedOutput,
    /// SA003: hyperparameter unknown or out of its declared domain.
    HyperOutOfDomain,
    /// SA004: phase-ordering violation (engine rank decreases).
    PhaseOrdering,
    /// SA005: window/aggregation inconsistency.
    WindowInconsistency,
    /// SA006: static shape mismatch between index-aligned sequence inputs.
    ShapeMismatch,
    /// SA007: statically-empty output under the known input-length bound.
    EmptyOutput,
    /// SA008: fallback template not strictly cheaper than the primary.
    FallbackCost,
    /// SA009: runtime contract-conformance violation (sanitizer finding).
    ContractViolation,
    /// SA010: serve configuration field outside its valid domain.
    ServeConfigInvalid,
    /// SA011: reserved or duplicate tenant name in a deployment.
    TenantCollision,
    /// SA012: fallback template incompatible with the serve window.
    FallbackIncompatible,
    /// SA013: load shedding can never fire or must always fire.
    SheddingConfig,
    /// SA014: an open circuit breaker can never close again.
    BreakerConfig,
}

impl Code {
    /// The stable `SAxxx` code string.
    pub fn as_str(&self) -> &'static str {
        match self {
            Code::UnknownPrimitive => "SA000",
            Code::DanglingRead => "SA001",
            Code::ShadowedOutput => "SA002",
            Code::HyperOutOfDomain => "SA003",
            Code::PhaseOrdering => "SA004",
            Code::WindowInconsistency => "SA005",
            Code::ShapeMismatch => "SA006",
            Code::EmptyOutput => "SA007",
            Code::FallbackCost => "SA008",
            Code::ContractViolation => "SA009",
            Code::ServeConfigInvalid => "SA010",
            Code::TenantCollision => "SA011",
            Code::FallbackIncompatible => "SA012",
            Code::SheddingConfig => "SA013",
            Code::BreakerConfig => "SA014",
        }
    }
}

impl std::fmt::Display for Code {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Diagnostic severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Logged and reported, never blocks a build.
    Warn,
    /// Refuses to build the pipeline.
    Error,
}

impl Severity {
    /// Lowercase label (`"error"` / `"warning"`).
    pub fn label(&self) -> &'static str {
        match self {
            Severity::Warn => "warning",
            Severity::Error => "error",
        }
    }
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One coded finding, anchored to a template step.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Stable diagnostic code.
    pub code: Code,
    /// Error refuses to build; Warn is logged.
    pub severity: Severity,
    /// Zero-based step index the finding anchors to.
    pub step: usize,
    /// Primitive name at that step (as written in the template).
    pub primitive: String,
    /// Human-readable statement of the defect.
    pub message: String,
    /// Suggested fix.
    pub hint: String,
}

impl Diagnostic {
    /// Construct an Error-severity diagnostic.
    pub fn error(
        code: Code,
        step: usize,
        primitive: &str,
        message: impl Into<String>,
        hint: impl Into<String>,
    ) -> Self {
        Self {
            code,
            severity: Severity::Error,
            step,
            primitive: primitive.to_string(),
            message: message.into(),
            hint: hint.into(),
        }
    }

    /// Construct a Warn-severity diagnostic.
    pub fn warn(
        code: Code,
        step: usize,
        primitive: &str,
        message: impl Into<String>,
        hint: impl Into<String>,
    ) -> Self {
        Self {
            code,
            severity: Severity::Warn,
            step,
            primitive: primitive.to_string(),
            message: message.into(),
            hint: hint.into(),
        }
    }
}

/// The result of analysing one template: all diagnostics, ordered by step
/// index then code.
#[derive(Debug, Clone)]
pub struct Report {
    /// Name of the analysed pipeline/template.
    pub pipeline: String,
    /// Ordered diagnostics.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Empty report for `pipeline`.
    pub fn new(pipeline: &str) -> Self {
        Self { pipeline: pipeline.to_string(), diagnostics: Vec::new() }
    }

    /// Append a diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Error-severity diagnostics only.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Error)
    }

    /// Warn-severity diagnostics only.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Warn)
    }

    /// Whether any Error-severity diagnostic is present.
    pub fn has_errors(&self) -> bool {
        self.errors().next().is_some()
    }

    /// Whether the report is completely clean (no diagnostics at all).
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Compact one-token-per-code summary (`"clean"` or e.g.
    /// `"SA001\u{d7}2 SA002\u{d7}1"`) — the benchmark's diagnostics
    /// column and the store's persisted form.
    pub fn summary(&self) -> String {
        if self.diagnostics.is_empty() {
            return "clean".to_string();
        }
        let mut counts: std::collections::BTreeMap<Code, usize> = std::collections::BTreeMap::new();
        for d in &self.diagnostics {
            *counts.entry(d.code).or_insert(0) += 1;
        }
        counts
            .iter()
            .map(|(code, n)| format!("{code}\u{d7}{n}"))
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Render a rustc-style multi-line report:
    ///
    /// ```text
    /// error[SA001]: required input 'windows' (windows) is never produced by an upstream step
    ///   --> lstm_dynamic_threshold, step 3 (lstm_regressor)
    ///    = help: add an upstream primitive that writes 'windows'
    ///
    /// lstm_dynamic_threshold: 1 error, 0 warnings
    /// ```
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!("{}[{}]: {}\n", d.severity, d.code, d.message));
            out.push_str(&format!(
                "  --> {}, step {} ({})\n",
                self.pipeline, d.step, d.primitive
            ));
            out.push_str(&format!("   = help: {}\n\n", d.hint));
        }
        let errors = self.errors().count();
        let warnings = self.warnings().count();
        if errors == 0 && warnings == 0 {
            out.push_str(&format!("{}: OK\n", self.pipeline));
        } else {
            out.push_str(&format!(
                "{}: {} error{}, {} warning{}\n",
                self.pipeline,
                errors,
                if errors == 1 { "" } else { "s" },
                warnings,
                if warnings == 1 { "" } else { "s" },
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_and_severity_labels() {
        assert_eq!(Code::UnknownPrimitive.to_string(), "SA000");
        assert_eq!(Code::WindowInconsistency.to_string(), "SA005");
        assert_eq!(Code::ShapeMismatch.to_string(), "SA006");
        assert_eq!(Code::EmptyOutput.to_string(), "SA007");
        assert_eq!(Code::FallbackCost.to_string(), "SA008");
        assert_eq!(Code::ContractViolation.to_string(), "SA009");
        assert_eq!(Code::ServeConfigInvalid.to_string(), "SA010");
        assert_eq!(Code::TenantCollision.to_string(), "SA011");
        assert_eq!(Code::FallbackIncompatible.to_string(), "SA012");
        assert_eq!(Code::SheddingConfig.to_string(), "SA013");
        assert_eq!(Code::BreakerConfig.to_string(), "SA014");
        assert_eq!(Severity::Error.to_string(), "error");
        assert_eq!(Severity::Warn.to_string(), "warning");
        assert!(Severity::Warn < Severity::Error);
    }

    #[test]
    fn report_summary_counts_per_code() {
        let mut r = Report::new("demo");
        assert!(r.is_clean());
        assert_eq!(r.summary(), "clean");
        r.push(Diagnostic::error(Code::DanglingRead, 1, "x", "m", "h"));
        r.push(Diagnostic::error(Code::DanglingRead, 2, "y", "m", "h"));
        r.push(Diagnostic::warn(Code::ShadowedOutput, 3, "z", "m", "h"));
        assert_eq!(r.summary(), "SA001\u{d7}2 SA002\u{d7}1");
        assert!(r.has_errors());
        assert_eq!(r.errors().count(), 2);
        assert_eq!(r.warnings().count(), 1);
    }

    #[test]
    fn render_is_rustc_style() {
        let mut r = Report::new("demo");
        r.push(Diagnostic::error(Code::DanglingRead, 3, "lstm_regressor", "boom", "fix it"));
        let text = r.render();
        assert!(text.contains("error[SA001]: boom"));
        assert!(text.contains("  --> demo, step 3 (lstm_regressor)"));
        assert!(text.contains("   = help: fix it"));
        assert!(text.contains("demo: 1 error, 0 warnings"));
        assert!(Report::new("demo").render().contains("demo: OK"));
    }
}

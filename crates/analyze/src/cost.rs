//! Static per-step cost model: flop/byte estimates from contracts +
//! effective hyperparameters.
//!
//! The estimates are *order-of-magnitude upper bounds*, not cycle counts:
//! they exist so the tuner can reject cost-explosive candidates without
//! executing them and so the serve tier can statically verify the
//! degradation invariant (the fallback template must be cheaper than the
//! primary — SA008). Two deliberate modelling choices follow from those
//! uses:
//!
//! 1. **Monotonicity over tightness.** Window counts are bounded by
//!    `n/step + 1` (independent of `window_size`) instead of the exact
//!    `(n − w)/step + 1`: the exact count *shrinks* as windows grow, which
//!    would make total cost non-monotone in `window_size` and let a
//!    pathological candidate hide an explosion behind a shrinking window
//!    count. The bound keeps every estimate monotone in `n`, `window_size`,
//!    `hidden`, `epochs` — property-tested in `tests/cost_props.rs`.
//! 2. **Relative, not absolute.** Consumers only ever compare two
//!    estimates (candidate vs default, fallback vs primary), so constant
//!    factors cancel; what matters is that the model ranks configurations
//!    the way the runtime does.

use sintel_primitives::registry::primitive_meta;
use sintel_primitives::PrimitiveMeta;

use crate::checks::{effective_int, StepConfig};

/// Nominal input length used when a caller has no concrete bound.
pub const NOMINAL_INPUT_LEN: usize = 4096;

/// Estimated cost of a step or template: floating-point operations and
/// bytes moved through the major buffers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostEstimate {
    /// Estimated floating-point operations.
    pub flops: f64,
    /// Estimated bytes touched in the major buffers.
    pub bytes: f64,
}

impl CostEstimate {
    /// The zero estimate.
    pub fn zero() -> Self {
        Self { flops: 0.0, bytes: 0.0 }
    }

    fn add(&mut self, other: CostEstimate) {
        self.flops += other.flops;
        self.bytes += other.bytes;
    }
}

/// Roll up the whole step list at input length `n`. `None` when a
/// primitive is unknown (SA000 reports that separately) or is a
/// `faulty_*` fault-injection stub — their runtime cost is an injected
/// behaviour (sleeps, panics), not a function of the data, so a static
/// estimate would be meaningless and SA008 comparisons against them are
/// skipped.
pub fn estimate_steps(steps: &[StepConfig], input_len: usize) -> Option<CostEstimate> {
    let mut metas: Vec<PrimitiveMeta> = Vec::with_capacity(steps.len());
    for step in steps {
        if step.primitive.starts_with("faulty_") {
            return None;
        }
        metas.push(primitive_meta(&step.primitive).ok()?);
    }
    let n = (input_len.max(1)) as f64;
    let mut total = CostEstimate::zero();
    // The last window pass's (window_size, step) — deep models consume
    // windows, so their per-window cost depends on the producer's shape.
    let mut window: f64 = 50.0;
    let mut stride: f64 = 1.0;
    for (step, meta) in steps.iter().zip(&metas) {
        if meta.name == "rolling_window_sequences" {
            window = effective_int(step, meta, "window_size").unwrap_or(50) as f64;
            stride = effective_int(step, meta, "step").unwrap_or(1).max(1) as f64;
        }
        total.add(estimate_step(step, meta, n, window, stride));
    }
    Some(total)
}

/// Monotone upper bound on the number of windows a pass emits.
fn windows_bound(n: f64, stride: f64) -> f64 {
    n / stride.max(1.0) + 1.0
}

fn estimate_step(
    step: &StepConfig,
    meta: &PrimitiveMeta,
    n: f64,
    window: f64,
    stride: f64,
) -> CostEstimate {
    let int = |name: &str, default: i64| effective_int(step, meta, name).unwrap_or(default) as f64;
    let cnt = windows_bound(n, stride);
    // One LSTM cell forward pass over a length-`window` sequence with
    // `hidden` units (4 gates, input dim 1).
    let lstm_fwd = |hidden: f64| window * 8.0 * hidden * (hidden + 2.0);
    // Training ≈ epochs × (forward + backward + update) per window; the
    // factor 3 covers backward + update.
    let train = |per_window: f64, epochs: f64| (3.0 * epochs + 1.0) * cnt * per_window;

    let flops = match meta.name.as_str() {
        "time_segments_aggregate" | "SimpleImputer" | "MinMaxScaler" | "StandardScaler" => 2.0 * n,
        "detrend" | "holt_winters" => 10.0 * n,
        "remove_level_shifts" => 32.0 * n,
        "rolling_window_sequences" => cnt * window,
        "lstm_regressor" => train(lstm_fwd(int("hidden", 20)), int("epochs", 8)),
        "lstm_autoencoder" => train(2.0 * lstm_fwd(int("hidden", 20)), int("epochs", 8)),
        "dense_autoencoder" => {
            let hidden = int("hidden", 20);
            let latent = int("latent", 5);
            train(2.0 * (window * hidden + hidden * latent), int("epochs", 12))
        }
        "tadgan" => train(5.0 * lstm_fwd(int("hidden", 20)), int("epochs", 8)),
        "arima" => {
            let p = int("p", 5);
            let d = int("d", 0);
            let q = int("q", 1);
            4.0 * n * (p + q + 1.0) * (p + q + 1.0) + 2.0 * n * (p.max(q) + d + 2.0)
        }
        "azure_anomaly_service" => {
            5.0 * n * n.max(2.0).log2() + n * (int("filter_window", 3) + int("score_window", 21))
        }
        "matrix_profile" => 4.0 * n * int("window", 32),
        "regression_errors" => n * int("smoothing_window", 10),
        "reconstruction_errors" => cnt * window + 4.0 * n,
        "find_anomalies" => 16.0 * n,
        "fixed_threshold" => 4.0 * n,
        // Future primitives: one pass over the signal. (Fault-injection
        // stubs never reach here — `estimate_steps` refuses them.)
        _ => n,
    };
    let bytes = match meta.name.as_str() {
        "rolling_window_sequences" => 8.0 * (n + cnt * window),
        "lstm_regressor" | "lstm_autoencoder" | "dense_autoencoder" | "tadgan" => {
            8.0 * cnt * window
        }
        _ => 16.0 * n,
    };
    CostEstimate { flops, bytes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sintel_primitives::HyperValue;

    fn lstm_chain(window_size: i64, epochs: i64, hidden: i64) -> Vec<StepConfig> {
        vec![
            StepConfig::plain("SimpleImputer"),
            StepConfig::with(
                "rolling_window_sequences",
                vec![("window_size".into(), HyperValue::Int(window_size))],
            ),
            StepConfig::with(
                "lstm_regressor",
                vec![
                    ("epochs".into(), HyperValue::Int(epochs)),
                    ("hidden".into(), HyperValue::Int(hidden)),
                ],
            ),
            StepConfig::plain("regression_errors"),
            StepConfig::plain("find_anomalies"),
        ]
    }

    #[test]
    fn unknown_primitive_yields_none() {
        assert!(estimate_steps(&[StepConfig::plain("flux_capacitor")], 1_000).is_none());
    }

    #[test]
    fn training_hypers_scale_the_estimate() {
        let n = NOMINAL_INPUT_LEN;
        let base = estimate_steps(&lstm_chain(50, 8, 20), n).expect("known chain");
        let heavy = estimate_steps(&lstm_chain(500, 200, 64), n).expect("known chain");
        assert!(heavy.flops > 100.0 * base.flops, "{} vs {}", heavy.flops, base.flops);
    }

    #[test]
    fn azure_fallback_is_cheaper_than_full_deep_chain() {
        let n = 512;
        let fallback = estimate_steps(
            &[StepConfig::plain("azure_anomaly_service"), StepConfig::plain("fixed_threshold")],
            n,
        )
        .expect("fallback");
        let primary = estimate_steps(&lstm_chain(50, 8, 20), n).expect("primary");
        assert!(fallback.flops < primary.flops);
    }

    #[test]
    fn estimates_grow_with_input_length() {
        let small = estimate_steps(&lstm_chain(50, 8, 20), 512).expect("known");
        let large = estimate_steps(&lstm_chain(50, 8, 20), 4096).expect("known");
        assert!(large.flops > small.flops);
        assert!(large.bytes > small.bytes);
    }
}

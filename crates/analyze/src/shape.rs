//! Symbolic shape inference: per-slot sequence lengths as expressions of
//! the input signal length.
//!
//! The analyzer's original window pass (SA005) pattern-matched two known
//! bad configurations around `rolling_window_sequences`. This module
//! replaces that with real inference: every step's output length is
//! computed as a symbolic expression of the input length `n` via
//! per-primitive transfer functions (the same algebra the runtime
//! implements — window counts, forecaster warm-up offsets, matrix-profile
//! trims), and the checks fall out of the propagated shapes:
//!
//! * **SA005** — the two legacy window rules, now derived from the walk:
//!   a statically-empty `targets` slot (`targets=false`) reaching a
//!   consumer that requires it, and gapped windows (`step > window_size`)
//!   reaching a `first_index` reconstructor. Messages are byte-identical
//!   to the original pass.
//! * **SA006** — index-aligned inputs of one consumer (e.g.
//!   `regression_errors`' `predictions`/`targets`/`index_timestamps`)
//!   whose inferred lengths provably differ.
//! * **SA007** — when an input-length bound is known (the serve window, a
//!   dataset length, a tuner's signal), an output whose symbolic length is
//!   empty for every feasible `n`: the pipeline can never emit.
//!
//! The symbolic frame is the **post-preprocessing** sample count: signal →
//! signal preprocessing steps (imputation, scaling, aggregation) are
//! modelled as length-preserving, since an aggregation interval's effect
//! on the sample count is data-dependent (timestamp spacing) and the
//! downstream window requirements are all relative to the aggregated
//! series anyway.

use std::collections::BTreeMap;

use sintel_primitives::PrimitiveMeta;

use crate::checks::{effective_flag, effective_int, StepConfig};
use crate::diagnostics::{Code, Diagnostic, Report};

/// Symbolic length of a sequence slot as a function of the input signal
/// length `n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LenExpr {
    /// Statically unknown (data-dependent, e.g. an auto-fitted period).
    Unknown,
    /// Statically empty regardless of `n` (e.g. `targets` under
    /// `targets=false`).
    Empty,
    /// Exactly `n + c` elements.
    Offset(i64),
    /// `floor((n - sub) / step) + 1` windows (empty when `n < sub`).
    Windowed {
        /// Samples consumed before the first window completes.
        sub: i64,
        /// Stride between window starts (`>= 2`; stride 1 normalizes to
        /// [`LenExpr::Offset`]).
        step: i64,
    },
}

impl LenExpr {
    /// Window-count expression, normalized: stride 1 collapses to the
    /// affine form `n - sub + 1` so structural equality is meaningful.
    pub fn windowed(sub: i64, step: i64) -> Self {
        if step <= 1 {
            LenExpr::Offset(1 - sub)
        } else {
            LenExpr::Windowed { sub, step }
        }
    }

    /// Smallest input length `n` for which this expression is non-empty
    /// (`None` when unknown or never non-empty).
    pub fn min_input_len(&self) -> Option<i64> {
        match self {
            LenExpr::Unknown | LenExpr::Empty => None,
            LenExpr::Offset(c) => Some((1 - c).max(1)),
            LenExpr::Windowed { sub, .. } => Some((*sub).max(1)),
        }
    }

    /// Evaluate at a concrete input length (`None` when unknown).
    pub fn eval(&self, n: i64) -> Option<i64> {
        match self {
            LenExpr::Unknown => None,
            LenExpr::Empty => Some(0),
            LenExpr::Offset(c) => Some((n + c).max(0)),
            LenExpr::Windowed { sub, step } => {
                if n < *sub {
                    Some(0)
                } else {
                    Some((n - sub) / step.max(&1) + 1)
                }
            }
        }
    }
}

impl std::fmt::Display for LenExpr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LenExpr::Unknown => f.write_str("?"),
            LenExpr::Empty => f.write_str("0"),
            LenExpr::Offset(0) => f.write_str("n"),
            LenExpr::Offset(c) if *c > 0 => write!(f, "n+{c}"),
            LenExpr::Offset(c) => write!(f, "n-{}", -c),
            LenExpr::Windowed { sub, step } => write!(f, "(n-{sub})/{step}+1"),
        }
    }
}

/// Everything the walk knows about one context slot.
#[derive(Debug, Clone)]
struct SlotShape {
    expr: LenExpr,
    /// Producing step index + primitive name (for SA005/SA006 anchors).
    step: usize,
    primitive: String,
    /// Set on `first_index` when the producing window pass left gaps
    /// (`step > window_size`): `(step, window_size)`.
    gapped: Option<(i64, i64)>,
    /// Set on `targets` when it is empty because `targets=false` (the
    /// legacy SA005 rule 1; suppresses SA006 on the same slot).
    empty_targets: bool,
}

impl SlotShape {
    fn new(expr: LenExpr, step: usize, primitive: &str) -> Self {
        Self { expr, step, primitive: primitive.to_string(), gapped: None, empty_targets: false }
    }
}

/// Index-aligned input groups per consumer: slots the runtime zips
/// element-by-element, so their static lengths must agree.
fn alignment_groups(primitive: &str) -> &'static [&'static [&'static str]] {
    match primitive {
        "lstm_regressor" => &[&["windows", "targets"]],
        "regression_errors" => &[&["predictions", "targets", "index_timestamps"]],
        "reconstruction_errors" => &[&["reconstructions", "first_index"]],
        "fixed_threshold" | "find_anomalies" => &[&["errors", "error_timestamps"]],
        _ => &[],
    }
}

/// The shape walk: propagate symbolic lengths through every step,
/// emitting SA005/SA006 (and SA007 when `input_len` bounds `n`).
pub(crate) fn check_shapes(
    steps: &[StepConfig],
    metas: &[PrimitiveMeta],
    input_len: Option<usize>,
    report: &mut Report,
) {
    let mut shapes: BTreeMap<String, SlotShape> = BTreeMap::new();
    shapes.insert("signal".into(), SlotShape::new(LenExpr::Offset(0), 0, "input"));
    // (step, primitive, slot, min required n) — for SA007.
    let mut requirements: Vec<(usize, String, String, i64)> = Vec::new();

    for (i, (step, meta)) in steps.iter().zip(metas).enumerate() {
        check_consumed_shapes(i, meta, &mut shapes, report);
        let outputs = transfer(i, step, meta, &shapes);
        for (slot, shape) in outputs {
            if let Some(min_n) = shape.expr.min_input_len() {
                requirements.push((i, meta.name.clone(), slot.clone(), min_n));
            }
            shapes.insert(slot, shape);
        }
    }

    // SA007: some step's output is empty for every feasible input length.
    // Report only the single worst offender — the rest are downstream
    // consequences of the same window requirement.
    if let Some(bound) = input_len {
        let bound = bound as i64;
        // Keep the *first* step reaching the maximum: later steps merely
        // inherit the root cause's requirement.
        if let Some((i, primitive, slot, min_n)) = requirements
            .into_iter()
            .reduce(|best, cur| if cur.3 > best.3 { cur } else { best })
        {
            if min_n > bound {
                report.push(Diagnostic::error(
                    Code::EmptyOutput,
                    i,
                    &primitive,
                    format!(
                        "output '{slot}' is statically empty: requires at least {min_n} input \
                         samples but at most {bound} are available"
                    ),
                    format!(
                        "raise the input window above {min_n} samples or shrink this step's \
                         window requirements"
                    ),
                ));
            }
        }
    }
}

/// Checks applied at a consumer, before its own writes land: the two
/// legacy SA005 rules (via the `Empty`/gapped markers) and SA006 length
/// agreement over the consumer's aligned input groups.
fn check_consumed_shapes(
    i: usize,
    meta: &PrimitiveMeta,
    shapes: &mut BTreeMap<String, SlotShape>,
    report: &mut Report,
) {
    // SA005 rule 1: a required read of the statically-empty `targets`.
    if meta.contract.requires("targets") {
        if let Some(shape) = shapes.get_mut("targets") {
            if shape.empty_targets {
                report.push(Diagnostic::error(
                    Code::WindowInconsistency,
                    shape.step,
                    &shape.primitive.clone(),
                    format!(
                        "rolling_window_sequences has targets=false but step {i} ({}) \
                         requires 'targets'",
                        meta.name
                    ),
                    "set targets=true or switch to a reconstruction-style consumer",
                ));
                // Report once (the original pass stopped at the first
                // consumer); downstream checks treat the slot as opaque.
                shape.empty_targets = false;
                shape.expr = LenExpr::Unknown;
            }
        }
    }

    // SA005 rule 2: reconstructing from `first_index` over gapped windows.
    if meta.contract.reads.iter().any(|r| r.slot == "first_index") {
        if let Some(shape) = shapes.get_mut("first_index") {
            if let Some((step_size, window_size)) = shape.gapped.take() {
                report.push(Diagnostic::error(
                    Code::WindowInconsistency,
                    shape.step,
                    &shape.primitive.clone(),
                    format!(
                        "step {step_size} exceeds window_size {window_size}; step {i} ({}) \
                         reconstructs from 'first_index' over gapped windows",
                        meta.name
                    ),
                    "reduce step to at most window_size",
                ));
            }
        }
    }

    // SA006: aligned inputs must have provably-equal static lengths.
    for group in alignment_groups(&meta.name) {
        let known: Vec<(&str, &SlotShape)> = group
            .iter()
            .filter_map(|slot| shapes.get(*slot).map(|s| (*slot, s)))
            .filter(|(_, s)| matches!(s.expr, LenExpr::Offset(_) | LenExpr::Windowed { .. }))
            .collect();
        if let Some(((a, sa), (b, sb))) = known
            .split_first()
            .and_then(|(first, rest)| rest.iter().find(|(_, s)| s.expr != first.1.expr).map(|m| (*first, *m)))
        {
            report.push(Diagnostic::error(
                Code::ShapeMismatch,
                i,
                &meta.name,
                format!(
                    "aligned inputs '{a}' ({}) and '{b}' ({}) have mismatched static lengths",
                    sa.expr, sb.expr
                ),
                format!(
                    "'{a}' comes from step {} ({}), '{b}' from step {} ({}); align their \
                     producers",
                    sa.step, sa.primitive, sb.step, sb.primitive
                ),
            ));
        }
    }
}

/// Per-primitive transfer function: the symbolic lengths a step's writes
/// leave in the context. Mirrors the runtime algebra:
///
/// * `rolling_window_sequences`: `floor((n − window_size − targets) /
///   step) + 1` windows;
/// * `arima`: warm-up `max(p, q) + d` trimmed off the front;
/// * `holt_winters`: warm-up `period + 1` (auto period ⇒ unknown);
/// * `matrix_profile`: profile length `n − window + 1`;
/// * forecaster/reconstructor models: one output per window;
/// * `reconstruction_errors`: overlap-average back to the signal length.
fn transfer(
    i: usize,
    step: &StepConfig,
    meta: &PrimitiveMeta,
    shapes: &BTreeMap<String, SlotShape>,
) -> Vec<(String, SlotShape)> {
    let expr_of = |slot: &str| shapes.get(slot).map(|s| s.expr).unwrap_or(LenExpr::Unknown);
    let signal = expr_of("signal");
    let name = meta.name.as_str();

    // Compose an offset-style trim with the current signal frame.
    let trimmed = |off: i64| match signal {
        LenExpr::Offset(c) => LenExpr::Offset(c - off),
        _ => LenExpr::Unknown,
    };

    match name {
        "time_segments_aggregate" | "SimpleImputer" | "MinMaxScaler" | "StandardScaler"
        | "detrend" | "remove_level_shifts" => {
            vec![("signal".into(), SlotShape::new(signal, i, name))]
        }
        "rolling_window_sequences" => {
            let w = effective_int(step, meta, "window_size").unwrap_or(50);
            let s = effective_int(step, meta, "step").unwrap_or(1).max(1);
            let targets_on = effective_flag(step, meta, "targets").unwrap_or(true);
            let t = i64::from(targets_on);
            let count = match signal {
                LenExpr::Offset(c) => LenExpr::windowed(w + t - c, s),
                _ => LenExpr::Unknown,
            };
            let mut first_index = SlotShape::new(count, i, name);
            if s > w {
                first_index.gapped = Some((s, w));
            }
            let mut targets = SlotShape::new(count, i, name);
            if !targets_on {
                targets.expr = LenExpr::Empty;
                targets.empty_targets = true;
            }
            vec![
                ("windows".into(), SlotShape::new(count, i, name)),
                ("targets".into(), targets),
                ("index_timestamps".into(), SlotShape::new(count, i, name)),
                ("first_index".into(), first_index),
            ]
        }
        "arima" => {
            let p = effective_int(step, meta, "p").unwrap_or(5);
            let d = effective_int(step, meta, "d").unwrap_or(0);
            let q = effective_int(step, meta, "q").unwrap_or(1);
            let out = trimmed(p.max(q) + d);
            vec![
                ("predictions".into(), SlotShape::new(out, i, name)),
                ("targets".into(), SlotShape::new(out, i, name)),
                ("index_timestamps".into(), SlotShape::new(out, i, name)),
            ]
        }
        "holt_winters" => {
            let period = effective_int(step, meta, "period").unwrap_or(0);
            // period = 0 auto-estimates seasonality at fit time: the
            // warm-up offset is data-dependent, hence unknown.
            let out = if period > 0 { trimmed(period + 1) } else { LenExpr::Unknown };
            vec![
                ("predictions".into(), SlotShape::new(out, i, name)),
                ("targets".into(), SlotShape::new(out, i, name)),
                ("index_timestamps".into(), SlotShape::new(out, i, name)),
            ]
        }
        "matrix_profile" => {
            let w = effective_int(step, meta, "window").unwrap_or(32);
            let out = trimmed(w - 1);
            vec![
                ("errors".into(), SlotShape::new(out, i, name)),
                ("error_timestamps".into(), SlotShape::new(out, i, name)),
            ]
        }
        "azure_anomaly_service" => vec![
            ("errors".into(), SlotShape::new(signal, i, name)),
            ("error_timestamps".into(), SlotShape::new(signal, i, name)),
        ],
        "lstm_regressor" => {
            vec![("predictions".into(), SlotShape::new(expr_of("windows"), i, name))]
        }
        "lstm_autoencoder" | "dense_autoencoder" => {
            vec![("reconstructions".into(), SlotShape::new(expr_of("windows"), i, name))]
        }
        "tadgan" => {
            let windows = expr_of("windows");
            vec![
                ("reconstructions".into(), SlotShape::new(windows, i, name)),
                ("critic_scores".into(), SlotShape::new(windows, i, name)),
            ]
        }
        "regression_errors" => vec![
            ("errors".into(), SlotShape::new(expr_of("predictions"), i, name)),
            ("error_timestamps".into(), SlotShape::new(expr_of("index_timestamps"), i, name)),
        ],
        "reconstruction_errors" => vec![
            ("errors".into(), SlotShape::new(signal, i, name)),
            ("error_timestamps".into(), SlotShape::new(signal, i, name)),
        ],
        // Unknown-to-the-model primitives (thresholders, fault-injection
        // stubs, future additions): writes exist but lengths are opaque.
        _ => meta
            .contract
            .writes
            .iter()
            .map(|w| (w.slot.clone(), SlotShape::new(LenExpr::Unknown, i, name)))
            .collect(),
    }
}

/// Minimum input length (post-preprocessing samples) for which every step
/// of the pipeline produces non-empty output — `None` when a primitive is
/// unknown or no finite requirement can be derived.
pub fn required_input_len(steps: &[StepConfig]) -> Option<usize> {
    let mut metas: Vec<PrimitiveMeta> = Vec::with_capacity(steps.len());
    for step in steps {
        metas.push(sintel_primitives::registry::primitive_meta(&step.primitive).ok()?);
    }
    let mut shapes: BTreeMap<String, SlotShape> = BTreeMap::new();
    shapes.insert("signal".into(), SlotShape::new(LenExpr::Offset(0), 0, "input"));
    let mut required: i64 = 1;
    for (i, (step, meta)) in steps.iter().zip(&metas).enumerate() {
        for (slot, shape) in transfer(i, step, meta, &shapes) {
            if let Some(min_n) = shape.expr.min_input_len() {
                required = required.max(min_n);
            }
            shapes.insert(slot, shape);
        }
    }
    usize::try_from(required).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windowed_normalizes_stride_one() {
        assert_eq!(LenExpr::windowed(51, 1), LenExpr::Offset(-50));
        assert_eq!(LenExpr::windowed(42, 2), LenExpr::Windowed { sub: 42, step: 2 });
    }

    #[test]
    fn min_input_len_matches_eval() {
        for expr in [
            LenExpr::Offset(-50),
            LenExpr::Offset(0),
            LenExpr::Windowed { sub: 42, step: 2 },
        ] {
            let min_n = expr.min_input_len().expect("known expr");
            assert_eq!(expr.eval(min_n - 1), Some(0), "{expr} empty below min");
            assert!(expr.eval(min_n).expect("eval") >= 1, "{expr} non-empty at min");
        }
        assert_eq!(LenExpr::Unknown.min_input_len(), None);
        assert_eq!(LenExpr::Empty.eval(1_000), Some(0));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(LenExpr::Offset(0).to_string(), "n");
        assert_eq!(LenExpr::Offset(-5).to_string(), "n-5");
        assert_eq!(LenExpr::Windowed { sub: 41, step: 2 }.to_string(), "(n-41)/2+1");
    }

    #[test]
    fn required_input_len_for_known_chains() {
        let forecaster = vec![
            StepConfig::plain("SimpleImputer"),
            StepConfig::with(
                "rolling_window_sequences",
                vec![("window_size".into(), sintel_primitives::HyperValue::Int(50))],
            ),
            StepConfig::plain("lstm_regressor"),
            StepConfig::plain("regression_errors"),
            StepConfig::plain("find_anomalies"),
        ];
        // 50 samples of window + 1 target.
        assert_eq!(required_input_len(&forecaster), Some(51));

        let azure = vec![
            StepConfig::plain("azure_anomaly_service"),
            StepConfig::plain("fixed_threshold"),
        ];
        assert_eq!(required_input_len(&azure), Some(1));

        assert_eq!(required_input_len(&[StepConfig::plain("flux_capacitor")]), None);
    }
}

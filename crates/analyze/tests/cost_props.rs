//! Property suite for the static cost model: monotonicity. The model's
//! one structural promise (see `cost.rs`) is that estimates never
//! *shrink* when a configuration gets bigger — otherwise a tuner
//! candidate could hide a cost explosion behind, say, a growing window
//! shrinking the window count. Checked here over random LSTM-chain
//! configurations rather than hand-picked pairs.
//!
//! All generated values stay inside the primitives' declared hyper
//! domains (window_size 4..=500, step 1..=50, epochs 1..=200, hidden
//! 4..=64): `effective_int` falls back to the declared default for
//! out-of-domain values — exactly the configurations SA003 rejects
//! before the cost model is ever consulted — so monotonicity is only
//! promised, and only meaningful, inside the domain.

use sintel_analyze::{estimate_steps, StepConfig};
use sintel_common::check::{forall, shrinks, Config};
use sintel_primitives::HyperValue;

/// Random in-domain LSTM chain dimensions.
#[derive(Debug, Clone)]
struct Dims {
    input_len: usize,
    window_size: i64,
    step: i64,
    epochs: i64,
    hidden: i64,
}

fn chain(d: &Dims) -> Vec<StepConfig> {
    vec![
        StepConfig::plain("time_segments_aggregate"),
        StepConfig::plain("SimpleImputer"),
        StepConfig::plain("MinMaxScaler"),
        StepConfig::with(
            "rolling_window_sequences",
            vec![
                ("window_size".into(), HyperValue::Int(d.window_size)),
                ("step".into(), HyperValue::Int(d.step)),
            ],
        ),
        StepConfig::with(
            "lstm_regressor",
            vec![
                ("epochs".into(), HyperValue::Int(d.epochs)),
                ("hidden".into(), HyperValue::Int(d.hidden)),
            ],
        ),
        StepConfig::plain("regression_errors"),
        StepConfig::plain("find_anomalies"),
    ]
}

fn flops(d: &Dims) -> f64 {
    estimate_steps(&chain(d), d.input_len).expect("known primitives").flops
}

fn gen_dims(rng: &mut sintel_common::SintelRng) -> Dims {
    Dims {
        input_len: rng.int_range(1, 10_000) as usize,
        window_size: rng.int_range(4, 500),
        step: rng.int_range(1, 50),
        epochs: rng.int_range(1, 200),
        hidden: rng.int_range(4, 64),
    }
}

/// Each scalar knob, grown to a larger in-domain value, must never
/// lower the estimate.
#[test]
fn cost_is_monotone_in_every_knob() {
    forall(
        "flops(d) <= flops(d with one knob grown)",
        &Config::default(),
        |rng| {
            let d = gen_dims(rng);
            let grown = Dims {
                input_len: rng.int_range(d.input_len as i64, 20_000) as usize,
                window_size: rng.int_range(d.window_size, 500),
                epochs: rng.int_range(d.epochs, 200),
                hidden: rng.int_range(d.hidden, 64),
                step: d.step,
            };
            (d, grown)
        },
        shrinks::none,
        |(d, grown)| {
            let base = flops(d);
            let knobs: Vec<(&str, Dims)> = vec![
                ("input_len", Dims { input_len: grown.input_len, ..d.clone() }),
                ("window_size", Dims { window_size: grown.window_size, ..d.clone() }),
                ("epochs", Dims { epochs: grown.epochs, ..d.clone() }),
                ("hidden", Dims { hidden: grown.hidden, ..d.clone() }),
            ];
            for (knob, bigger) in knobs {
                let b = flops(&bigger);
                if b < base {
                    return Err(format!(
                        "growing {knob} shrank the estimate: {base} -> {b} ({bigger:?})"
                    ));
                }
            }
            Ok(())
        },
    );
}

/// A coarser stride means fewer windows: cost must not *increase* when
/// `step` grows (the dual of the knob monotonicity above).
#[test]
fn cost_never_increases_with_stride() {
    forall(
        "flops(d) >= flops(d with coarser stride)",
        &Config::default(),
        |rng| {
            let d = gen_dims(rng);
            let coarser = rng.int_range(d.step, 50);
            (d, coarser)
        },
        shrinks::none,
        |(d, coarser)| {
            let base = flops(d);
            let coarse = flops(&Dims { step: *coarser, ..d.clone() });
            if coarse <= base {
                Ok(())
            } else {
                Err(format!("coarser stride raised the estimate: {base} -> {coarse}"))
            }
        },
    );
}

/// Bytes obey the same window-size monotonicity as flops: the deep
/// models' buffer traffic is `8 * cnt * window`, and `cnt` is bounded
/// independently of `window` exactly so this holds.
#[test]
fn bytes_are_monotone_in_window_size() {
    forall(
        "bytes(d) <= bytes(d with larger window)",
        &Config::default(),
        gen_dims,
        shrinks::none,
        |d| {
            let base = estimate_steps(&chain(d), d.input_len).expect("known").bytes;
            let wider = Dims { window_size: (d.window_size + 64).min(500), ..d.clone() };
            let grown = estimate_steps(&chain(&wider), wider.input_len).expect("known").bytes;
            if grown >= base {
                Ok(())
            } else {
                Err(format!("wider window shrank bytes: {base} -> {grown}"))
            }
        },
    );
}

//! In-tree property-based testing harness.
//!
//! Rebuilds the capability the workspace lost when `proptest` was
//! removed: [`forall`] draws random cases from a [`SintelRng`]
//! generator, checks a property on each, and on failure **shrinks**
//! the counterexample (caller-supplied candidates, greedily accepted
//! while the property still fails) before panicking with the case
//! seed, so any failure replays exactly with [`replay`].
//!
//! ```text
//! forall("matmul associative", &Config::default(),
//!        |rng| gen_three_matrices(rng),
//!        |t| shrinks: smaller variants of t,
//!        |t| property: Ok(()) or Err(why))
//! ```
//!
//! Determinism: the root seed is fixed per suite (override with the
//! `SINTEL_CHECK_SEED` environment variable to replay a whole run),
//! and each case's seed is derived from `(root, case index)` only, so
//! a printed case seed identifies one exact input forever.

use crate::rng::SintelRng;

/// Environment variable overriding the root seed of every suite.
pub const CHECK_SEED_ENV: &str = "SINTEL_CHECK_SEED";

/// Knobs for one [`forall`] run.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of random cases to draw.
    pub cases: usize,
    /// Root seed; each case's seed is derived from it by index.
    pub seed: u64,
    /// Upper bound on accepted shrink steps for one counterexample.
    pub max_shrinks: usize,
}

impl Default for Config {
    fn default() -> Self {
        let seed = std::env::var(CHECK_SEED_ENV)
            .ok()
            .and_then(|raw| raw.trim().parse::<u64>().ok())
            .unwrap_or(0x5EED_CAFE);
        Self { cases: 128, seed, max_shrinks: 256 }
    }
}

impl Config {
    /// Override the number of cases.
    pub fn cases(mut self, n: usize) -> Self {
        self.cases = n;
        self
    }

    /// Override the root seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }
}

/// Seed for case `i` of a run rooted at `root`. Pure in `(root, i)`
/// so a reported case seed can be replayed without rerunning the suite.
pub fn case_seed(root: u64, i: usize) -> u64 {
    // SplitMix64 finalizer over the (root, index) pair: decorrelates
    // neighbouring case indices into unrelated generator streams.
    let mut z = root ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Outcome of checking a property on one value: `Ok(())` or a message
/// saying what was violated.
pub type PropResult = Result<(), String>;

fn check_one<T, P>(prop: &P, value: &T) -> PropResult
where
    P: Fn(&T) -> PropResult,
{
    // A property that panics (e.g. an assert! or an index out of
    // bounds in the code under test) is a failure like any other, and
    // must not abort shrinking.
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| prop(value))) {
        Ok(r) => r,
        Err(payload) => {
            let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "property panicked with an opaque payload".to_string()
            };
            Err(format!("property panicked: {msg}"))
        }
    }
}

/// Check `prop` on `cfg.cases` values drawn by `gen`; on failure,
/// greedily shrink via `shrink` and panic with a replayable report.
///
/// `shrink(&t)` returns candidate *simpler* values to try; the first
/// candidate that still fails becomes the new counterexample (repeat,
/// bounded by `cfg.max_shrinks`). Return an empty vec (or use
/// [`shrinks::none`]) to skip shrinking.
pub fn forall<T, G, S, P>(name: &str, cfg: &Config, gen: G, shrink: S, prop: P)
where
    T: std::fmt::Debug,
    G: Fn(&mut SintelRng) -> T,
    S: Fn(&T) -> Vec<T>,
    P: Fn(&T) -> PropResult,
{
    for i in 0..cfg.cases {
        let seed = case_seed(cfg.seed, i);
        let mut rng = SintelRng::seed_from_u64(seed);
        let value = gen(&mut rng);
        let Err(first_failure) = check_one(&prop, &value) else {
            continue;
        };

        // Greedy shrink: walk to ever-simpler failing values.
        let mut witness = value;
        let mut failure = first_failure;
        let mut steps = 0usize;
        'outer: while steps < cfg.max_shrinks {
            for candidate in shrink(&witness) {
                if let Err(msg) = check_one(&prop, &candidate) {
                    witness = candidate;
                    failure = msg;
                    steps += 1;
                    continue 'outer;
                }
            }
            break;
        }

        let total = cfg.cases;
        let root = cfg.seed;
        panic!(
            "property `{name}` failed (case {i}/{total}, root seed {root}, case seed {seed})\n\
             after {steps} shrink step(s)\n\
             counterexample: {witness:?}\n\
             failure: {failure}\n\
             replay: sintel_common::check::replay({seed}, gen, prop)\n\
             or rerun the suite with {CHECK_SEED_ENV}={root}"
        );
    }
}

/// Re-check a single case from the seed printed by a [`forall`]
/// failure. Returns the generated value alongside the property result
/// so the caller can inspect it.
pub fn replay<T, G, P>(seed: u64, gen: G, prop: P) -> (T, PropResult)
where
    G: Fn(&mut SintelRng) -> T,
    P: Fn(&T) -> PropResult,
{
    let mut rng = SintelRng::seed_from_u64(seed);
    let value = gen(&mut rng);
    let result = check_one(&prop, &value);
    (value, result)
}

/// Stock shrinking strategies to compose in `shrink` closures.
pub mod shrinks {
    /// No shrinking: report the raw counterexample.
    pub fn none<T>(_: &T) -> Vec<T> {
        Vec::new()
    }

    /// Candidates for one `f64`: zero, then progressively halved
    /// magnitudes (also try the truncated integer part first, which
    /// often reads better in a report).
    pub fn halve_f64(x: f64) -> Vec<f64> {
        if x == 0.0 || !x.is_finite() {
            return Vec::new();
        }
        let mut out = vec![0.0];
        if x.fract() != 0.0 && x.trunc() != x {
            out.push(x.trunc());
        }
        out.push(x / 2.0);
        out
    }

    /// Candidates for a vector: empty, first half, all-but-last —
    /// shorter inputs make minimal counterexamples readable.
    pub fn truncate_vec<T: Clone>(v: &[T]) -> Vec<Vec<T>> {
        let mut out = Vec::new();
        if v.is_empty() {
            return out;
        }
        out.push(Vec::new());
        if v.len() > 1 {
            out.push(v[..v.len() / 2].to_vec());
            out.push(v[..v.len() - 1].to_vec());
        }
        out
    }

    /// Candidates for a `usize` size parameter: 0/1 and halves.
    pub fn halve_usize(n: usize) -> Vec<usize> {
        match n {
            0 => Vec::new(),
            1 => vec![0],
            _ => vec![1, n / 2, n - 1],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        forall(
            "uniform in unit interval",
            &Config::default().cases(64).seed(1),
            |rng| rng.uniform(),
            |&x| shrinks::halve_f64(x),
            |&x| {
                if (0.0..1.0).contains(&x) {
                    Ok(())
                } else {
                    Err(format!("{x} outside [0,1)"))
                }
            },
        );
        let seen = std::cell::Cell::new(0usize);
        forall(
            "counter",
            &Config::default().cases(64).seed(1),
            |_| (),
            shrinks::none,
            |()| {
                seen.set(seen.get() + 1);
                Ok(())
            },
        );
        assert_eq!(seen.get(), 64, "every case must be checked");
    }

    #[test]
    fn failing_property_panics_with_replayable_seed() {
        let caught = std::panic::catch_unwind(|| {
            forall(
                "all samples below 0.5 (false)",
                &Config::default().cases(64).seed(7),
                |rng| rng.uniform(),
                |&x| shrinks::halve_f64(x),
                |&x| if x < 0.5 { Ok(()) } else { Err(format!("{x} >= 0.5")) },
            );
        });
        let payload = caught.expect_err("property must fail");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .expect("panic payload should be the report string");
        assert!(msg.contains("case seed"), "{msg}");
        // Extract the case seed and prove the replay reproduces a failure.
        let seed: u64 = msg
            .split("case seed ")
            .nth(1)
            .and_then(|rest| rest.split(')').next())
            .and_then(|s| s.trim().parse().ok())
            .expect("report should contain a parseable case seed");
        let (value, result) = replay(seed, |rng| rng.uniform(), |&x: &f64| {
            if x < 0.5 {
                Ok(())
            } else {
                Err(format!("{x} >= 0.5"))
            }
        });
        assert!(value >= 0.5, "replayed case should reproduce the failure, got {value}");
        assert!(result.is_err());
    }

    #[test]
    fn shrinking_reaches_a_minimal_counterexample() {
        // Property "all values < 10" fails for large inputs; halving
        // should walk the witness down toward 10.
        let caught = std::panic::catch_unwind(|| {
            forall(
                "values below ten (false for big ones)",
                &Config::default().cases(32).seed(3),
                |rng| rng.uniform_range(100.0, 1000.0),
                |&x| shrinks::halve_f64(x),
                |&x| if x < 10.0 { Ok(()) } else { Err("too big".into()) },
            );
        });
        let msg = caught
            .expect_err("must fail")
            .downcast_ref::<String>()
            .cloned()
            .expect("string payload");
        let witness: f64 = msg
            .split("counterexample: ")
            .nth(1)
            .and_then(|rest| rest.lines().next())
            .and_then(|s| s.trim().parse().ok())
            .expect("report should contain the counterexample");
        assert!(
            (10.0..20.0).contains(&witness),
            "greedy halving should stop just above the threshold, got {witness}"
        );
    }

    #[test]
    fn panicking_property_is_caught_and_shrunk() {
        let caught = std::panic::catch_unwind(|| {
            forall(
                "indexing past the end panics",
                &Config::default().cases(16).seed(5),
                |rng| {
                    let n = 1 + rng.index(8);
                    (0..n).map(|_| rng.uniform()).collect::<Vec<f64>>()
                },
                |v| shrinks::truncate_vec(v),
                |v| {
                    // Deliberate out-of-bounds when v is non-empty.
                    if v.is_empty() {
                        Ok(())
                    } else {
                        let _ = v[v.len()];
                        Ok(())
                    }
                },
            );
        });
        let msg = caught
            .expect_err("must fail")
            .downcast_ref::<String>()
            .cloned()
            .expect("string payload");
        assert!(msg.contains("property panicked"), "{msg}");
        // truncate_vec shrinks toward the smallest failing vector: one element.
        assert!(msg.contains("counterexample: ["), "{msg}");
    }

    #[test]
    fn case_seed_is_pure_and_decorrelated() {
        assert_eq!(case_seed(42, 7), case_seed(42, 7));
        assert_ne!(case_seed(42, 7), case_seed(42, 8));
        assert_ne!(case_seed(42, 7), case_seed(43, 7));
    }

    #[test]
    fn stock_shrinkers_behave() {
        assert!(shrinks::halve_f64(0.0).is_empty());
        assert!(shrinks::halve_f64(f64::NAN).is_empty());
        assert!(shrinks::halve_f64(8.0).contains(&4.0));
        assert!(shrinks::halve_f64(8.0).contains(&0.0));
        assert!(shrinks::truncate_vec::<i32>(&[]).is_empty());
        let cands = shrinks::truncate_vec(&[1, 2, 3, 4]);
        assert!(cands.contains(&vec![]));
        assert!(cands.contains(&vec![1, 2]));
        assert!(cands.contains(&vec![1, 2, 3]));
        assert_eq!(shrinks::halve_usize(0), Vec::<usize>::new());
        assert_eq!(shrinks::halve_usize(1), vec![0]);
        assert!(shrinks::halve_usize(10).contains(&5));
    }
}

//! Deterministic random number generation.
//!
//! [`SintelRng`] is a self-contained xoshiro256++ generator seeded through
//! SplitMix64. Keeping the PRNG in-repo (rather than depending on an
//! external generator whose stream may change between releases) makes every
//! experiment bit-reproducible from a single seed recorded in the
//! experiment logs, on every platform and forever.
//!
//! On top of the raw stream it provides the distributions the workspace
//! needs: uniforms, normals (Box–Muller), categorical choice, Fisher–Yates
//! shuffle and distinct-index sampling.

/// Deterministic RNG used throughout the Sintel workspace (xoshiro256++).
#[derive(Debug, Clone)]
pub struct SintelRng {
    state: [u64; 4],
    /// Cached second sample from the Box–Muller transform.
    spare_normal: Option<f64>,
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SintelRng {
    /// Create a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { state, spare_normal: None }
    }

    /// Next raw 64-bit output (xoshiro256++ step).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Derive an independent child generator; used to give each signal /
    /// model its own stream while staying reproducible from the root seed.
    pub fn fork(&mut self, salt: u64) -> Self {
        let s = self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Self::seed_from_u64(s)
    }

    /// Uniform sample in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample in `[lo, hi)`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(hi >= lo, "uniform_range requires hi >= lo");
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`. `n` must be positive.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index() requires a non-empty range");
        // Multiply-shift bounded sampling (Lemire); bias is negligible for
        // the small ranges used here and the stream stays deterministic.
        let x = self.next_u64();
        (((x as u128) * (n as u128)) >> 64) as usize
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn int_range(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(hi > lo, "int_range requires hi > lo");
        let span = (hi - lo) as u64;
        let x = self.next_u64();
        lo + (((x as u128) * (span as u128)) >> 64) as i64
    }

    /// Bernoulli trial with probability `p` of returning `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Standard normal sample (Box–Muller transform).
    pub fn normal_std(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Box–Muller: two uniforms -> two independent standard normals.
        let mut u1 = self.uniform();
        if u1 < f64::MIN_POSITIVE {
            u1 = f64::MIN_POSITIVE;
        }
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = std::f64::consts::TAU * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std: f64) -> f64 {
        mean + std * self.normal_std()
    }

    /// Uniformly pick one element of a non-empty slice.
    pub fn choice<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `[0, n)` (k <= n).
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct indices from {n}");
        let mut idx: Vec<usize> = (0..n).collect();
        self.shuffle(&mut idx);
        idx.truncate(k);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SintelRng::seed_from_u64(7);
        let mut b = SintelRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SintelRng::seed_from_u64(1);
        let mut b = SintelRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should diverge, {same} collisions");
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = SintelRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.uniform();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn index_in_bounds_and_covers_range() {
        let mut rng = SintelRng::seed_from_u64(17);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[rng.index(7)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit: {seen:?}");
    }

    #[test]
    fn int_range_in_bounds() {
        let mut rng = SintelRng::seed_from_u64(23);
        for _ in 0..1_000 {
            let v = rng.int_range(-5, 5);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = SintelRng::seed_from_u64(11);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(2.0, 3.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n as f64 - 1.0);
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.05, "std {}", var.sqrt());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SintelRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = SintelRng::seed_from_u64(9);
        let idx = rng.sample_indices(50, 10);
        assert_eq!(idx.len(), 10);
        let mut dedup = idx.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 10);
        assert!(idx.iter().all(|&i| i < 50));
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut root = SintelRng::seed_from_u64(42);
        let mut c1 = root.fork(1);
        let mut c2 = root.fork(2);
        let a: Vec<u64> = (0..16).map(|_| c1.next_u64()).collect();
        let b: Vec<u64> = (0..16).map(|_| c2.next_u64()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SintelRng::seed_from_u64(1);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn index_of_zero_panics() {
        SintelRng::seed_from_u64(0).index(0);
    }
}

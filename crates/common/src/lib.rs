#![warn(missing_docs)]

//! # sintel-common
//!
//! Shared low-level utilities for the Sintel reproduction workspace:
//! a deterministic random number generator with the distributions the
//! framework needs (uniform, normal, choice, shuffle) and a handful of
//! numeric helpers used across crates.
//!
//! Everything in the workspace that needs randomness goes through
//! [`SintelRng`] so that experiments are reproducible from a single seed.

pub mod microbench;
pub mod numeric;
pub mod rng;

pub use numeric::{argmax, argmin, ewma, mean, median, quantile, stddev, variance};
pub use rng::SintelRng;

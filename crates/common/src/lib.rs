#![warn(missing_docs)]

//! # sintel-common
//!
//! Shared low-level utilities for the Sintel reproduction workspace:
//! a deterministic random number generator with the distributions the
//! framework needs (uniform, normal, choice, shuffle), a deterministic
//! parallel fan-out substrate ([`par`]), an in-tree property-testing
//! harness ([`check`]), and a handful of numeric helpers used across
//! crates.
//!
//! Everything in the workspace that needs randomness goes through
//! [`SintelRng`] so that experiments are reproducible from a single
//! seed, and everything that needs threads goes through [`par`] so
//! that results are bit-identical at every `SINTEL_THREADS` setting.

pub mod cancel;
pub mod check;
pub mod microbench;
pub mod numeric;
pub mod par;
pub mod rng;

pub use cancel::{cancelled, with_cancel_token, CancelToken};
pub use numeric::{argmax, argmin, ewma, mean, median, quantile, stddev, variance};
pub use par::{configured_threads, par_map, par_try_map, set_threads, TaskPanic};
pub use rng::SintelRng;

//! Cooperative cancellation for watchdog-guarded work.
//!
//! Rust threads cannot be killed, so a watchdog that abandons a
//! timed-out attempt used to leave the worker thread running until it
//! finished on its own (or the process exited) — a thread *leak* for
//! genuinely hung primitives. The fix is cooperative: the watchdog
//! installs a [`CancelToken`] in the worker's thread-local slot before
//! the task starts and trips it when the budget expires; primitive hot
//! loops (LSTM epochs, ARIMA recursions, rolling-window construction)
//! poll [`cancelled`] and bail out early.
//!
//! Polling [`cancelled`] from code that runs outside any watchdog is
//! free and always answers `false` — there is no token installed, so
//! nothing can be cancelled.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared cancellation flag: cloned into the watchdog, installed on
/// the worker thread.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, untripped token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trip the token: every holder (and the thread it is installed on)
    /// observes `is_cancelled() == true` from now on.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether the token has been tripped.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

thread_local! {
    static CURRENT: std::cell::RefCell<Option<CancelToken>> =
        const { std::cell::RefCell::new(None) };
}

/// Install `token` as the current thread's cancellation token for the
/// duration of `f`, restoring the previous token afterwards (watchdog
/// workers may nest, e.g. a guarded run inside a guarded run).
pub fn with_cancel_token<T>(token: CancelToken, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<CancelToken>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let previous = self.0.take();
            CURRENT.with(|slot| *slot.borrow_mut() = previous);
        }
    }
    let previous = CURRENT.with(|slot| slot.borrow_mut().replace(token));
    // Restore on unwind too: a panicking task must not leave its token
    // installed on a reused thread.
    let _restore = Restore(previous);
    f()
}

/// Whether the current thread's installed token (if any) has been
/// tripped. Hot loops poll this to stop abandoned work.
pub fn cancelled() -> bool {
    CURRENT.with(|slot| slot.borrow().as_ref().is_some_and(CancelToken::is_cancelled))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_token_means_not_cancelled() {
        assert!(!cancelled());
    }

    #[test]
    fn tripped_token_is_visible_inside_scope_only() {
        let token = CancelToken::new();
        token.cancel();
        assert!(token.is_cancelled());
        with_cancel_token(token, || assert!(cancelled()));
        assert!(!cancelled(), "token must be uninstalled after the scope");
    }

    #[test]
    fn cancel_crosses_threads() {
        let token = CancelToken::new();
        let remote = token.clone();
        let worker = std::thread::spawn(move || {
            with_cancel_token(remote, || {
                while !cancelled() {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                true
            })
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        token.cancel();
        assert!(worker.join().unwrap());
    }

    #[test]
    fn nested_scopes_restore_outer_token() {
        let outer = CancelToken::new();
        let inner = CancelToken::new();
        outer.cancel();
        with_cancel_token(outer, || {
            assert!(cancelled());
            with_cancel_token(inner, || assert!(!cancelled()));
            assert!(cancelled(), "outer token must be restored");
        });
    }

    #[test]
    fn panicking_scope_still_restores() {
        let token = CancelToken::new();
        token.cancel();
        let result = std::panic::catch_unwind(|| {
            with_cancel_token(CancelToken::new(), || panic!("boom"));
        });
        assert!(result.is_err());
        assert!(!cancelled());
        with_cancel_token(token, || assert!(cancelled()));
    }
}

//! Deterministic parallel execution substrate.
//!
//! A fixed-size fan-out pool over an index space: [`par_map`] runs
//! `f(0..n)` on up to [`configured_threads`] workers and collects the
//! results **in input order**, so a parallel run is indistinguishable
//! from a serial one to every caller. The design rule that makes the
//! workspace-wide determinism contract hold is:
//!
//! > **Work decomposition is a function of the input, never of the
//! > thread count.** Thread count only changes *which worker* computes
//! > each index, not *what* is computed or in what order results are
//! > observed.
//!
//! Concretely:
//!
//! * Tasks are claimed from a shared atomic cursor (self-balancing),
//!   but each task's computation depends only on its index, and
//!   results are written into per-index slots — collection order is
//!   the index order regardless of scheduling.
//! * Workers are scoped ([`std::thread::scope`]): closures may borrow
//!   from the caller's stack, no `'static` bounds leak into callers,
//!   and the fan-out joins all workers before returning.
//! * A panicking task never poisons the pool: [`par_try_map`] captures
//!   each task's unwind as a [`TaskPanic`] (index + payload message)
//!   so callers can route it into their failure taxonomy. [`par_map`]
//!   re-raises the panic of the *lowest* failing index — exactly the
//!   panic a serial loop would have surfaced first.
//!
//! The worker budget comes from, in priority order: the process-wide
//! [`set_threads`] override (the CLI's `--threads` flag), the
//! `SINTEL_THREADS` environment variable, and finally
//! [`std::thread::available_parallelism`].

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Process-wide thread-count override (0 = unset, fall through to the
/// environment).
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Environment variable naming the worker budget (`>= 1`).
pub const THREADS_ENV: &str = "SINTEL_THREADS";

/// Override (`Some(n)`) or restore (`None`) the process-wide worker
/// budget. Takes precedence over `SINTEL_THREADS`; `n` is clamped to
/// at least 1. The CLI's `--threads` flag and the determinism
/// conformance tests route through this.
pub fn set_threads(n: Option<usize>) {
    THREAD_OVERRIDE.store(n.map_or(0, |v| v.max(1)), Ordering::SeqCst);
}

/// The effective worker budget: [`set_threads`] override, else a valid
/// `SINTEL_THREADS` value, else the machine's available parallelism.
/// Always at least 1.
pub fn configured_threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        return forced;
    }
    if let Ok(raw) = std::env::var(THREADS_ENV) {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// A captured panic from one fan-out task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskPanic {
    /// Index of the task that panicked.
    pub index: usize,
    /// The panic payload rendered as a message (`&str`/`String`
    /// payloads verbatim, anything else a placeholder).
    pub message: String,
}

impl std::fmt::Display for TaskPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task {} panicked: {}", self.index, self.message)
    }
}

fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Run `f(i)` for every `i in 0..n` on up to [`configured_threads`]
/// scoped workers; results are returned in index order with each
/// task's panic captured as a [`TaskPanic`].
///
/// With a budget of 1 (or `n <= 1`) this degenerates to a serial loop
/// over the same indices — the parallel and serial paths execute the
/// identical per-index computation.
pub fn par_try_map<T, F>(n: usize, f: F) -> Vec<Result<T, TaskPanic>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let run_one = |i: usize| -> Result<T, TaskPanic> {
        catch_unwind(AssertUnwindSafe(|| f(i)))
            .map_err(|p| TaskPanic { index: i, message: payload_message(p.as_ref()) })
    };
    let workers = configured_threads().min(n);
    if workers <= 1 {
        return (0..n).map(run_one).collect();
    }

    // One slot per index; each worker owns the slots of the indices it
    // claims, so there is no contention beyond the claim cursor.
    let slots: Vec<Mutex<Option<Result<T, TaskPanic>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let result = run_one(i);
                if let Ok(mut slot) = slots[i].lock() {
                    *slot = Some(result);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .unwrap_or(Err(TaskPanic {
                    index: usize::MAX,
                    message: "task slot was never filled".to_string(),
                }))
        })
        .collect()
}

/// [`par_try_map`], re-raising the panic of the lowest failing index —
/// the same panic a serial `for` loop would have surfaced first.
pub fn par_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    par_try_map(n, f)
        .into_iter()
        .map(|r| r.unwrap_or_else(|p| resume_unwind(Box::new(p.message))))
        .collect()
}

/// Partition `0..n` into contiguous blocks of at most `block` items.
/// The partition depends only on `(n, block)` — never on the thread
/// count — so block-parallel kernels decompose identically on every
/// machine and worker budget.
pub fn block_ranges(n: usize, block: usize) -> Vec<std::ops::Range<usize>> {
    let block = block.max(1);
    (0..n.div_ceil(block)).map(|b| (b * block)..((b + 1) * block).min(n)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialize tests that mutate the process-wide override.
    static OVERRIDE_GUARD: Mutex<()> = Mutex::new(());

    #[test]
    fn par_map_preserves_input_order() {
        let _g = OVERRIDE_GUARD.lock().unwrap_or_else(|e| e.into_inner());
        set_threads(Some(4));
        let out = par_map(100, |i| i * i);
        set_threads(None);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_results_are_identical() {
        let _g = OVERRIDE_GUARD.lock().unwrap_or_else(|e| e.into_inner());
        let f = |i: usize| (i as f64).sqrt().sin();
        set_threads(Some(1));
        let serial = par_map(257, f);
        set_threads(Some(8));
        let parallel = par_map(257, f);
        set_threads(None);
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn panics_are_captured_per_task_not_poisoning_the_pool() {
        let _g = OVERRIDE_GUARD.lock().unwrap_or_else(|e| e.into_inner());
        set_threads(Some(4));
        let out = par_try_map(10, |i| {
            if i == 3 || i == 7 {
                panic!("boom {i}");
            }
            i
        });
        set_threads(None);
        assert_eq!(out.len(), 10);
        for (i, r) in out.iter().enumerate() {
            match r {
                Ok(v) => {
                    assert_eq!(*v, i);
                    assert!(i != 3 && i != 7);
                }
                Err(p) => {
                    assert_eq!(p.index, i);
                    assert!(p.message.contains(&format!("boom {i}")), "{p:?}");
                }
            }
        }
    }

    #[test]
    fn par_map_reraises_lowest_failing_index() {
        let _g = OVERRIDE_GUARD.lock().unwrap_or_else(|e| e.into_inner());
        set_threads(Some(4));
        let caught = catch_unwind(AssertUnwindSafe(|| {
            par_map(10, |i| if i >= 5 { panic!("first failure is {i}") } else { i })
        }));
        set_threads(None);
        let payload = caught.unwrap_err();
        let message = payload_message(payload.as_ref());
        assert!(message.contains("first failure is 5"), "{message}");
    }

    #[test]
    fn override_beats_environment_and_clamps() {
        let _g = OVERRIDE_GUARD.lock().unwrap_or_else(|e| e.into_inner());
        set_threads(Some(0));
        assert_eq!(configured_threads(), 1, "override clamps to 1");
        set_threads(Some(3));
        assert_eq!(configured_threads(), 3);
        set_threads(None);
        assert!(configured_threads() >= 1);
    }

    #[test]
    fn empty_and_single_item_maps() {
        let _g = OVERRIDE_GUARD.lock().unwrap_or_else(|e| e.into_inner());
        set_threads(Some(8));
        assert!(par_map(0, |i| i).is_empty());
        assert_eq!(par_map(1, |i| i + 41), vec![41]);
        set_threads(None);
    }

    #[test]
    fn block_ranges_cover_exactly_once_independent_of_threads() {
        for (n, block) in [(0, 4), (1, 4), (7, 3), (12, 4), (13, 4), (100, 16)] {
            let ranges = block_ranges(n, block);
            let mut covered = Vec::new();
            for r in &ranges {
                assert!(r.len() <= block.max(1));
                covered.extend(r.clone());
            }
            assert_eq!(covered, (0..n).collect::<Vec<_>>(), "n={n} block={block}");
        }
        assert_eq!(block_ranges(5, 0), block_ranges(5, 1), "block clamps to 1");
    }

    #[test]
    fn workers_can_borrow_caller_stack() {
        let _g = OVERRIDE_GUARD.lock().unwrap_or_else(|e| e.into_inner());
        set_threads(Some(4));
        let data: Vec<u64> = (0..64).collect();
        // No 'static bound: the closure borrows `data` from this frame.
        let doubled = par_map(data.len(), |i| data[i] * 2);
        set_threads(None);
        assert_eq!(doubled[63], 126);
    }
}

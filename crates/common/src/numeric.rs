//! Small numeric helpers shared across the workspace.
//!
//! These are deliberately simple slice-based functions: every crate in the
//! workspace operates on `&[f64]` signals, error series, or score vectors,
//! and these helpers keep the basic descriptive statistics in one place.

/// Arithmetic mean. Returns 0.0 for an empty slice so callers that divide
/// by derived quantities do not have to special-case emptiness.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample variance (divides by `n - 1`); 0.0 for fewer than two elements.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() as f64 - 1.0)
}

/// Sample standard deviation.
pub fn stddev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Median via sorting a copy; 0.0 for an empty slice.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    let mid = v.len() / 2;
    if v.len() % 2 == 1 {
        v[mid]
    } else {
        0.5 * (v[mid - 1] + v[mid])
    }
}

/// Linear-interpolated quantile, `q` in `[0, 1]`. 0.0 for an empty slice.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    let pos = q * (v.len() as f64 - 1.0);
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = pos - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

/// Index of the maximum element (first on ties); `None` when empty.
pub fn argmax(xs: &[f64]) -> Option<usize> {
    xs.iter()
        .enumerate()
        .max_by(|(ia, a), (ib, b)| a.total_cmp(b).then(ib.cmp(ia)))
        .map(|(i, _)| i)
}

/// Index of the minimum element (first on ties); `None` when empty.
pub fn argmin(xs: &[f64]) -> Option<usize> {
    xs.iter()
        .enumerate()
        .min_by(|(ia, a), (ib, b)| a.total_cmp(b).then(ia.cmp(ib)))
        .map(|(i, _)| i)
}

/// Exponentially-weighted moving average with smoothing factor
/// `alpha` in `(0, 1]`; larger alpha tracks the series more closely.
pub fn ewma(xs: &[f64], alpha: f64) -> Vec<f64> {
    assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1], got {alpha}");
    let mut out = Vec::with_capacity(xs.len());
    let mut acc = f64::NAN;
    for &x in xs {
        acc = if acc.is_nan() { x } else { alpha * x + (1.0 - alpha) * acc };
        out.push(acc);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SintelRng;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn variance_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        // population variance 4.0 -> sample variance 32/7.
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
        assert!((stddev(&xs) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(variance(&[1.0]), 0.0);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn quantile_endpoints_and_midpoint() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 5.0);
        assert_eq!(quantile(&xs, 0.5), 3.0);
        assert_eq!(quantile(&xs, 0.25), 2.0);
    }

    #[test]
    fn argmax_argmin() {
        let xs = [1.0, 5.0, 5.0, -2.0];
        assert_eq!(argmax(&xs), Some(1));
        assert_eq!(argmin(&xs), Some(3));
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmin(&[]), None);
    }

    #[test]
    fn ewma_alpha_one_is_identity() {
        let xs = [3.0, 1.0, 4.0, 1.0];
        assert_eq!(ewma(&xs, 1.0), xs.to_vec());
    }

    #[test]
    fn ewma_smooths_towards_history() {
        let xs = [0.0, 10.0];
        let sm = ewma(&xs, 0.5);
        assert_eq!(sm, vec![0.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn ewma_rejects_zero_alpha() {
        ewma(&[1.0], 0.0);
    }

    /// Random vector of `len` uniform samples in `[lo, hi)`.
    fn random_vec(rng: &mut SintelRng, len: usize, lo: f64, hi: f64) -> Vec<f64> {
        (0..len).map(|_| rng.uniform_range(lo, hi)).collect()
    }

    #[test]
    fn prop_mean_within_bounds() {
        let mut rng = SintelRng::seed_from_u64(0x0111);
        for _ in 0..256 {
            let len = 1 + rng.index(199);
            let xs = random_vec(&mut rng, len, -1e6, 1e6);
            let m = mean(&xs);
            let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
        }
    }

    #[test]
    fn prop_variance_nonnegative() {
        let mut rng = SintelRng::seed_from_u64(0x0112);
        for _ in 0..256 {
            let len = rng.index(200);
            let xs = random_vec(&mut rng, len, -1e6, 1e6);
            assert!(variance(&xs) >= 0.0);
        }
    }

    #[test]
    fn prop_quantile_monotone() {
        let mut rng = SintelRng::seed_from_u64(0x0113);
        for _ in 0..256 {
            let len = 1 + rng.index(99);
            let xs = random_vec(&mut rng, len, -1e6, 1e6);
            let q1 = rng.uniform();
            let q2 = rng.uniform();
            let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
            assert!(quantile(&xs, lo) <= quantile(&xs, hi) + 1e-9);
        }
    }

    #[test]
    fn prop_ewma_preserves_length() {
        let mut rng = SintelRng::seed_from_u64(0x0114);
        for _ in 0..256 {
            let len = rng.index(100);
            let xs = random_vec(&mut rng, len, -1e3, 1e3);
            let alpha = rng.uniform_range(0.01, 1.0);
            assert_eq!(ewma(&xs, alpha).len(), xs.len());
        }
    }
}

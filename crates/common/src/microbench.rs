//! Minimal, dependency-free micro-benchmark harness.
//!
//! A drop-in stand-in for the subset of the `criterion` API the workspace
//! benches use ([`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros), so `cargo bench` works fully offline. Each benchmark is
//! calibrated to a small per-sample budget, then timed for a fixed number
//! of samples; the median, mean, and spread are printed in
//! criterion-like one-line reports.
//!
//! This intentionally trades criterion's statistical machinery for zero
//! dependencies: numbers are indicative (good for relative ordering and
//! regression eyeballing), not publication-grade confidence intervals.

use std::time::{Duration, Instant};

/// Wall-clock budget per measured sample (calibration target).
const SAMPLE_BUDGET: Duration = Duration::from_millis(10);
/// Upper bound on iterations per sample, to keep pathological cases bounded.
const MAX_ITERS: u64 = 1_000_000;

/// Times a closure over a batch of iterations. Passed to bench closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `f` for the configured number of iterations, recording total
    /// elapsed wall-clock time. The closure's output is passed through
    /// [`std::hint::black_box`] so the optimiser cannot delete the work.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level benchmark driver; mirrors `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 30 }
    }
}

impl Criterion {
    /// Register and immediately run a single benchmark.
    pub fn bench_function(
        &mut self,
        name: &str,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(name, self.sample_size, f);
        self
    }

    /// Open a named group of related benchmarks.
    // The harness IS a console reporter; exempt from the workspace-wide
    // no-print-in-libraries gate.
    #[allow(clippy::print_stdout)]
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup { _parent: self, name: name.to_string(), sample_size: 30 }
    }
}

/// A named group of benchmarks sharing a sample-size setting.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples each benchmark in this group collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Register and immediately run a benchmark within the group.
    pub fn bench_function(
        &mut self,
        name: &str,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, name), self.sample_size, f);
        self
    }

    /// End the group (kept for criterion API compatibility).
    pub fn finish(self) {}
}

// The harness IS a console reporter; exempt from the workspace-wide
// no-print-in-libraries gate.
#[allow(clippy::print_stdout)]
fn run_one(name: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };

    // Calibration: one untimed-in-spirit iteration sizes the batch so each
    // sample lands near SAMPLE_BUDGET, and doubles as warm-up.
    f(&mut b);
    let once = b.elapsed.max(Duration::from_nanos(1));
    let iters = ((SAMPLE_BUDGET.as_nanos() / once.as_nanos()).max(1) as u64).min(MAX_ITERS);

    let mut per_iter: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        b.iters = iters;
        f(&mut b);
        per_iter.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let p90 = percentile(&per_iter, 0.90);
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let lo = per_iter[0];
    let hi = per_iter[per_iter.len() - 1];
    println!(
        "bench: {name:<40} median {:>10}  p90 {:>10}  mean {:>10}  range [{} .. {}]  ({} samples x {} iters, {} threads)",
        fmt_secs(median),
        fmt_secs(p90),
        fmt_secs(mean),
        fmt_secs(lo),
        fmt_secs(hi),
        sample_size,
        iters,
        crate::par::configured_threads(),
    );
}

/// Nearest-rank percentile of an ascending-sorted sample set.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Define a benchmark group function from a list of bench functions, each
/// taking `&mut Criterion` — mirrors `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::microbench::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Define `main()` from benchmark groups — mirrors `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_work() {
        let mut b = Bencher { iters: 10, elapsed: Duration::ZERO };
        let mut count = 0u64;
        b.iter(|| {
            count += 1;
            count
        });
        assert_eq!(count, 10);
        assert!(b.elapsed > Duration::ZERO || count == 10);
    }

    #[test]
    fn percentile_nearest_rank() {
        let sorted: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        assert_eq!(percentile(&sorted, 0.90), 9.0);
        assert_eq!(percentile(&sorted, 0.50), 5.0);
        assert_eq!(percentile(&sorted, 1.0), 10.0);
        assert_eq!(percentile(&[3.5], 0.90), 3.5);
        assert!(percentile(&[], 0.90).is_nan());
    }

    #[test]
    fn group_runs_and_finishes() {
        let mut c = Criterion { sample_size: 2 };
        let mut group = c.benchmark_group("g");
        group.sample_size(2).bench_function("noop", |b| b.iter(|| 1 + 1));
        group.finish();
        c.bench_function("top", |b| b.iter(|| 2 + 2));
    }
}

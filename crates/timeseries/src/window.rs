//! Rolling-window extraction (`rolling_window_sequences` in Figure 2a).
//!
//! Prediction models (LSTM DT, ARIMA) consume `(window, next value)`
//! pairs; reconstruction models (autoencoders, TadGAN) consume plain
//! windows. [`WindowSet`] stores the windows as one flat row-major
//! [`Matrix`] arena (channel-major per time step within a row) together
//! with the index/timestamp bookkeeping needed to map model errors back
//! onto the original time axis.
//!
//! The arena layout is a determinism *and* allocation contract
//! (DESIGN.md §4j): extraction performs O(1) allocations per call —
//! every buffer is sized up front from the window-count formula — and
//! downstream consumers borrow rows as slices instead of cloning
//! per-window vectors. The allocation-regression suite in
//! `sintel-primitives` pins this.

use sintel_linalg::Matrix;

use crate::{Result, Signal, TimeSeriesError};

/// A set of fixed-length windows extracted from one signal.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSet {
    /// Flattened windows, one matrix row per window:
    /// `windows.row(w)[t * channels + c]`.
    pub windows: Matrix,
    /// Regression target for each window (value right after the window,
    /// first channel), when `with_targets` was requested.
    pub targets: Vec<f64>,
    /// Sample index (into the source signal) of the first element of each
    /// window.
    pub first_index: Vec<usize>,
    /// Timestamp of the *target* position for prediction windows, or of
    /// the window start for reconstruction windows.
    pub index_timestamps: Vec<i64>,
    /// Window length in time steps.
    pub window_size: usize,
    /// Number of channels per time step.
    pub channels: usize,
}

impl WindowSet {
    /// Number of windows.
    pub fn len(&self) -> usize {
        self.windows.rows()
    }

    /// True when no window was extracted.
    pub fn is_empty(&self) -> bool {
        self.windows.rows() == 0
    }
}

/// Extract rolling windows of `window_size` steps advancing by `step`.
///
/// With `with_targets`, each window is paired with the first-channel value
/// immediately after it (so the last possible window ends at `len - 2`).
pub fn rolling_windows(
    signal: &Signal,
    window_size: usize,
    step: usize,
    with_targets: bool,
) -> Result<WindowSet> {
    if window_size == 0 || step == 0 {
        return Err(TimeSeriesError::InvalidParameter(
            "window_size and step must be positive".into(),
        ));
    }
    let n = signal.len();
    let channels = signal.num_channels();
    let needed = if with_targets { window_size + 1 } else { window_size };
    let count = if n >= needed { (n - needed) / step + 1 } else { 0 };

    // O(1) allocations per call: the window-count formula sizes every
    // buffer exactly, so the fill loops below never reallocate.
    let mut flat = Vec::with_capacity(count * window_size * channels);
    let mut targets = Vec::with_capacity(if with_targets { count } else { 0 });
    let mut first_index = Vec::with_capacity(count);
    let mut index_timestamps = Vec::with_capacity(count);

    for w in 0..count {
        // Watchdogged runs poll for cancellation so abandoned window
        // extraction over a huge signal stops instead of leaking its
        // thread (amortised to 1 check per 1024 windows).
        if w % 1024 == 1023 && sintel_common::cancelled() {
            return Err(TimeSeriesError::Cancelled);
        }
        let start = w * step;
        for t in start..start + window_size {
            for c in 0..channels {
                flat.push(signal.channel(c)[t]);
            }
        }
        first_index.push(start);
        if with_targets {
            targets.push(signal.values()[start + window_size]);
            index_timestamps.push(signal.timestamps()[start + window_size]);
        } else {
            index_timestamps.push(signal.timestamps()[start]);
        }
    }
    Ok(WindowSet {
        windows: Matrix::from_vec(count, window_size * channels, flat),
        targets,
        first_index,
        index_timestamps,
        window_size,
        channels,
    })
}

/// Reassemble per-window reconstructions into a single series by averaging
/// the values every window contributes at each time step (the unfolding
/// used by reconstruction pipelines before computing errors).
///
/// `recons` holds one window per row (first channel, so its column count
/// is the window length); returns a vector aligned with the source signal
/// of length `signal_len`.
pub fn overlap_average(recons: &Matrix, first_index: &[usize], signal_len: usize) -> Vec<f64> {
    let mut sum = vec![0.0; signal_len];
    let mut count = vec![0u32; signal_len];
    for (rec, &base) in recons.row_iter().zip(first_index) {
        for (t, &v) in rec.iter().enumerate() {
            let idx = base + t;
            if idx < signal_len {
                sum[idx] += v;
                count[idx] += 1;
            }
        }
    }
    sum.iter()
        .zip(&count)
        .map(|(&s, &c)| if c == 0 { f64::NAN } else { s / c as f64 })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sintel_common::SintelRng;

    fn sig(n: usize) -> Signal {
        Signal::from_values("s", (0..n).map(|i| i as f64).collect())
    }

    #[test]
    fn windows_with_targets() {
        let ws = rolling_windows(&sig(6), 3, 1, true).unwrap();
        assert_eq!(ws.len(), 3);
        assert_eq!(ws.windows.row(0), &[0.0, 1.0, 2.0]);
        assert_eq!(ws.targets, vec![3.0, 4.0, 5.0]);
        assert_eq!(ws.first_index, vec![0, 1, 2]);
        assert_eq!(ws.index_timestamps, vec![3, 4, 5]);
    }

    #[test]
    fn windows_without_targets() {
        let ws = rolling_windows(&sig(6), 3, 1, false).unwrap();
        assert_eq!(ws.len(), 4);
        assert!(ws.targets.is_empty());
        assert_eq!(ws.index_timestamps, vec![0, 1, 2, 3]);
    }

    #[test]
    fn window_step_skips() {
        let ws = rolling_windows(&sig(10), 4, 3, false).unwrap();
        assert_eq!(ws.first_index, vec![0, 3, 6]);
    }

    #[test]
    fn too_short_signal_yields_empty() {
        let ws = rolling_windows(&sig(3), 3, 1, true).unwrap();
        assert!(ws.is_empty());
        let ws2 = rolling_windows(&sig(2), 3, 1, false).unwrap();
        assert!(ws2.is_empty());
    }

    #[test]
    fn zero_window_rejected() {
        assert!(rolling_windows(&sig(5), 0, 1, false).is_err());
        assert!(rolling_windows(&sig(5), 2, 0, false).is_err());
    }

    #[test]
    fn multichannel_flattening_is_channel_minor() {
        let s = Signal::multivariate(
            "m",
            vec![0, 1, 2],
            vec![vec![1.0, 2.0, 3.0], vec![10.0, 20.0, 30.0]],
        )
        .unwrap();
        let ws = rolling_windows(&s, 2, 1, false).unwrap();
        assert_eq!(ws.windows.row(0), &[1.0, 10.0, 2.0, 20.0]);
        assert_eq!(ws.channels, 2);
    }

    #[test]
    fn overlap_average_reconstructs_identity() {
        let s = sig(5);
        let ws = rolling_windows(&s, 2, 1, false).unwrap();
        // Perfect reconstruction: each window returns its own input.
        let merged = overlap_average(&ws.windows, &ws.first_index, 5);
        assert_eq!(merged, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn overlap_average_marks_uncovered_as_nan() {
        let recons = Matrix::from_vec(1, 2, vec![1.0, 1.0]);
        let merged = overlap_average(&recons, &[0], 4);
        assert_eq!(&merged[..2], &[1.0, 1.0]);
        assert!(merged[2].is_nan() && merged[3].is_nan());
    }

    #[test]
    fn prop_window_count_formula() {
        let mut rng = SintelRng::seed_from_u64(0x5411);
        for _ in 0..256 {
            let n = rng.index(200);
            let w = 1 + rng.index(9);
            let step = 1 + rng.index(4);
            let ws = rolling_windows(&sig(n), w, step, false).unwrap();
            let expected = if n >= w { (n - w) / step + 1 } else { 0 };
            assert_eq!(ws.len(), expected);
        }
    }

    #[test]
    fn prop_targets_follow_windows() {
        let mut rng = SintelRng::seed_from_u64(0x5412);
        for _ in 0..256 {
            let n = 2 + rng.index(98);
            let w = 1 + rng.index(7);
            if n <= w {
                continue;
            }
            let ws = rolling_windows(&sig(n), w, 1, true).unwrap();
            for (k, &fi) in ws.first_index.iter().enumerate() {
                // Target is the sample right after the window.
                assert_eq!(ws.targets[k], (fi + w) as f64);
            }
        }
    }
}

//! The [`Signal`] type — Sintel's `(timestamp, values)` input standard.

use crate::{Result, TimeSeriesError};

/// A univariate or multivariate time series.
///
/// Timestamps are `i64` (typically epoch seconds) and must be strictly
/// increasing. Values are stored channel-major: `channels[c][t]` is channel
/// `c` at sample `t`. Missing values are represented as `NaN` and handled
/// by the imputation primitives.
///
/// ```
/// use sintel_timeseries::Signal;
///
/// let signal = Signal::univariate("S-1", vec![0, 60, 120], vec![1.0, 2.0, 3.0]).unwrap();
/// assert_eq!(signal.len(), 3);
/// assert_eq!(signal.median_step(), 60);
/// let (train, test) = signal.split(0.67).unwrap();
/// assert_eq!(train.len() + test.len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Signal {
    name: String,
    timestamps: Vec<i64>,
    channels: Vec<Vec<f64>>,
}

impl Signal {
    /// Build a univariate signal. Validates timestamp ordering and lengths.
    pub fn univariate(
        name: impl Into<String>,
        timestamps: Vec<i64>,
        values: Vec<f64>,
    ) -> Result<Self> {
        Self::multivariate(name, timestamps, vec![values])
    }

    /// Build a multivariate signal (one `Vec<f64>` per channel).
    pub fn multivariate(
        name: impl Into<String>,
        timestamps: Vec<i64>,
        channels: Vec<Vec<f64>>,
    ) -> Result<Self> {
        if channels.is_empty() {
            return Err(TimeSeriesError::InvalidSignal("at least one channel required".into()));
        }
        for (c, ch) in channels.iter().enumerate() {
            if ch.len() != timestamps.len() {
                return Err(TimeSeriesError::InvalidSignal(format!(
                    "channel {c} has {} samples, expected {}",
                    ch.len(),
                    timestamps.len()
                )));
            }
        }
        if timestamps.windows(2).any(|w| w[0] >= w[1]) {
            return Err(TimeSeriesError::InvalidSignal(
                "timestamps must be strictly increasing".into(),
            ));
        }
        Ok(Self { name: name.into(), timestamps, channels })
    }

    /// Convenience constructor: values indexed `0..n` with unit spacing.
    pub fn from_values(name: impl Into<String>, values: Vec<f64>) -> Self {
        let timestamps = (0..values.len() as i64).collect();
        Self { name: name.into(), timestamps, channels: vec![values] }
    }

    /// Signal identifier.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename the signal (returns self for chaining).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.timestamps.len()
    }

    /// True when the signal holds no samples.
    pub fn is_empty(&self) -> bool {
        self.timestamps.is_empty()
    }

    /// Number of channels (m in the paper's notation).
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// Borrow the timestamp vector.
    pub fn timestamps(&self) -> &[i64] {
        &self.timestamps
    }

    /// Borrow a channel's values.
    pub fn channel(&self, c: usize) -> &[f64] {
        &self.channels[c]
    }

    /// Borrow the primary (first) channel — the common univariate case.
    pub fn values(&self) -> &[f64] {
        &self.channels[0]
    }

    /// Mutable access to a channel (for in-place preprocessing).
    pub fn channel_mut(&mut self, c: usize) -> &mut [f64] {
        &mut self.channels[c]
    }

    /// First timestamp, if any.
    pub fn start(&self) -> Option<i64> {
        self.timestamps.first().copied()
    }

    /// Last timestamp, if any.
    pub fn end(&self) -> Option<i64> {
        self.timestamps.last().copied()
    }

    /// Median spacing between consecutive timestamps (0 for < 2 samples).
    pub fn median_step(&self) -> i64 {
        if self.timestamps.len() < 2 {
            return 0;
        }
        let mut deltas: Vec<i64> =
            self.timestamps.windows(2).map(|w| w[1] - w[0]).collect();
        deltas.sort_unstable();
        deltas[deltas.len() / 2]
    }

    /// Fraction of missing (`NaN`) samples across all channels.
    pub fn missing_fraction(&self) -> f64 {
        let total = self.len() * self.num_channels();
        if total == 0 {
            return 0.0;
        }
        let missing: usize =
            self.channels.iter().map(|ch| ch.iter().filter(|v| v.is_nan()).count()).sum();
        missing as f64 / total as f64
    }

    /// Sub-signal covering timestamps in `[from, to]` (inclusive).
    pub fn slice_time(&self, from: i64, to: i64) -> Result<Signal> {
        if to < from {
            return Err(TimeSeriesError::InvalidInterval(format!("slice {from}..{to}")));
        }
        let lo = self.timestamps.partition_point(|&t| t < from);
        let hi = self.timestamps.partition_point(|&t| t <= to);
        self.slice_index(lo, hi)
    }

    /// Sub-signal of sample indices `[lo, hi)`.
    pub fn slice_index(&self, lo: usize, hi: usize) -> Result<Signal> {
        if lo > hi || hi > self.len() {
            return Err(TimeSeriesError::InvalidParameter(format!(
                "index slice {lo}..{hi} out of bounds for length {}",
                self.len()
            )));
        }
        Ok(Signal {
            name: self.name.clone(),
            timestamps: self.timestamps[lo..hi].to_vec(),
            channels: self.channels.iter().map(|ch| ch[lo..hi].to_vec()).collect(),
        })
    }

    /// Split at `fraction` (0..1) of the samples: `(train, test)`.
    pub fn split(&self, fraction: f64) -> Result<(Signal, Signal)> {
        if !(0.0..=1.0).contains(&fraction) {
            return Err(TimeSeriesError::InvalidParameter(format!(
                "split fraction {fraction} not in [0, 1]"
            )));
        }
        let cut = (self.len() as f64 * fraction).round() as usize;
        Ok((self.slice_index(0, cut)?, self.slice_index(cut, self.len())?))
    }

    /// Index of the first sample with timestamp >= `t`.
    pub fn index_at(&self, t: i64) -> usize {
        self.timestamps.partition_point(|&ts| ts < t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sintel_common::SintelRng;

    fn sig() -> Signal {
        Signal::univariate("s", vec![0, 10, 20, 30, 40], vec![1.0, 2.0, 3.0, 4.0, 5.0]).unwrap()
    }

    #[test]
    fn construct_and_accessors() {
        let s = sig();
        assert_eq!(s.len(), 5);
        assert_eq!(s.num_channels(), 1);
        assert_eq!(s.values()[2], 3.0);
        assert_eq!(s.start(), Some(0));
        assert_eq!(s.end(), Some(40));
        assert_eq!(s.median_step(), 10);
        assert!(!s.is_empty());
    }

    #[test]
    fn rejects_unsorted_timestamps() {
        let err = Signal::univariate("s", vec![0, 10, 5], vec![1.0; 3]).unwrap_err();
        assert!(matches!(err, TimeSeriesError::InvalidSignal(_)));
    }

    #[test]
    fn rejects_duplicate_timestamps() {
        assert!(Signal::univariate("s", vec![0, 10, 10], vec![1.0; 3]).is_err());
    }

    #[test]
    fn rejects_ragged_channels() {
        let err =
            Signal::multivariate("s", vec![0, 1], vec![vec![1.0, 2.0], vec![1.0]]).unwrap_err();
        assert!(matches!(err, TimeSeriesError::InvalidSignal(_)));
    }

    #[test]
    fn rejects_zero_channels() {
        assert!(Signal::multivariate("s", vec![0, 1], vec![]).is_err());
    }

    #[test]
    fn slice_time_inclusive() {
        let s = sig();
        let sub = s.slice_time(10, 30).unwrap();
        assert_eq!(sub.timestamps(), &[10, 20, 30]);
        assert_eq!(sub.values(), &[2.0, 3.0, 4.0]);
    }

    #[test]
    fn slice_time_outside_range_is_empty() {
        let s = sig();
        assert!(s.slice_time(100, 200).unwrap().is_empty());
    }

    #[test]
    fn split_train_test() {
        let s = sig();
        let (train, test) = s.split(0.6).unwrap();
        assert_eq!(train.len(), 3);
        assert_eq!(test.len(), 2);
        assert_eq!(test.timestamps()[0], 30);
        assert!(s.split(1.5).is_err());
    }

    #[test]
    fn missing_fraction_counts_nans() {
        let s = Signal::univariate("s", vec![0, 1, 2, 3], vec![1.0, f64::NAN, 3.0, f64::NAN])
            .unwrap();
        assert_eq!(s.missing_fraction(), 0.5);
    }

    #[test]
    fn from_values_unit_spacing() {
        let s = Signal::from_values("s", vec![5.0, 6.0, 7.0]);
        assert_eq!(s.timestamps(), &[0, 1, 2]);
        assert_eq!(s.median_step(), 1);
    }

    #[test]
    fn index_at_partition() {
        let s = sig();
        assert_eq!(s.index_at(0), 0);
        assert_eq!(s.index_at(15), 2);
        assert_eq!(s.index_at(41), 5);
    }

    #[test]
    fn prop_split_partitions() {
        let mut rng = SintelRng::seed_from_u64(0x5311);
        for _ in 0..256 {
            let len = 1 + rng.index(199);
            let frac = rng.uniform();
            let s = Signal::from_values("s", vec![0.0; len]);
            let (a, b) = s.split(frac).unwrap();
            assert_eq!(a.len() + b.len(), len);
        }
    }

    #[test]
    fn prop_slice_time_subset() {
        let mut rng = SintelRng::seed_from_u64(0x5312);
        for _ in 0..256 {
            let len = 2 + rng.index(98);
            let lo = rng.int_range(0, 50);
            let span = rng.int_range(0, 100);
            let s = Signal::from_values("s", (0..len).map(|i| i as f64).collect());
            let sub = s.slice_time(lo, lo + span).unwrap();
            assert!(sub.timestamps().iter().all(|&t| t >= lo && t <= lo + span));
        }
    }
}

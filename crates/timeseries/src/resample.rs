//! Equi-spaced aggregation — the `time_segments_aggregate` primitive's
//! underlying algorithm (Figure 2a, first pipeline step).
//!
//! Real telemetry arrives irregularly sampled; every model in the hub
//! expects an equi-spaced series. [`time_segments_aggregate`] partitions
//! the time axis into fixed-width bins and aggregates samples per bin;
//! empty bins become `NaN` so the imputation primitive downstream can fill
//! them.

use crate::{Result, Signal, TimeSeriesError};

/// Aggregation function applied within each time bin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregation {
    /// Arithmetic mean of the samples in the bin.
    Mean,
    /// Median of the samples in the bin.
    Median,
    /// Maximum of the samples in the bin.
    Max,
    /// Minimum of the samples in the bin.
    Min,
    /// Last sample of the bin.
    Last,
}

impl Aggregation {
    /// Parse from the hyperparameter string used in pipeline specs.
    pub fn parse(s: &str) -> Result<Self> {
        match s {
            "mean" => Ok(Self::Mean),
            "median" => Ok(Self::Median),
            "max" => Ok(Self::Max),
            "min" => Ok(Self::Min),
            "last" => Ok(Self::Last),
            other => Err(TimeSeriesError::InvalidParameter(format!(
                "unknown aggregation '{other}'"
            ))),
        }
    }

    fn apply(&self, values: &[f64]) -> f64 {
        let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
        if finite.is_empty() {
            return f64::NAN;
        }
        match self {
            Aggregation::Mean => sintel_common::mean(&finite),
            Aggregation::Median => sintel_common::median(&finite),
            Aggregation::Max => finite.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            Aggregation::Min => finite.iter().copied().fold(f64::INFINITY, f64::min),
            Aggregation::Last => *finite.last().expect("non-empty"),
        }
    }
}

/// Aggregate `signal` into equi-spaced bins of width `interval`,
/// producing `x = [x^1 … x^T]` with equal spacing between consecutive
/// samples. Bins with no samples hold `NaN` on every channel.
pub fn time_segments_aggregate(
    signal: &Signal,
    interval: i64,
    agg: Aggregation,
) -> Result<Signal> {
    if interval <= 0 {
        return Err(TimeSeriesError::InvalidParameter(format!(
            "aggregation interval must be positive, got {interval}"
        )));
    }
    if signal.is_empty() {
        return Signal::multivariate(
            signal.name(),
            Vec::new(),
            vec![Vec::new(); signal.num_channels()],
        );
    }
    let start = signal.start().expect("non-empty");
    let end = signal.end().expect("non-empty");
    let n_bins = ((end - start) / interval + 1) as usize;

    let mut timestamps = Vec::with_capacity(n_bins);
    let mut channels: Vec<Vec<f64>> = vec![Vec::with_capacity(n_bins); signal.num_channels()];

    let ts = signal.timestamps();
    let mut lo = 0usize;
    for b in 0..n_bins {
        let bin_start = start + b as i64 * interval;
        let bin_end = bin_start + interval; // exclusive
        let hi = ts.partition_point(|&t| t < bin_end);
        timestamps.push(bin_start);
        for (c, out) in channels.iter_mut().enumerate() {
            out.push(agg.apply(&signal.channel(c)[lo..hi]));
        }
        lo = hi;
    }
    Signal::multivariate(signal.name(), timestamps, channels)
}

/// Linearly interpolate `NaN` runs in-place; leading/trailing NaNs take
/// the nearest finite value. A fully-NaN series becomes all zeros.
pub fn interpolate_nans(values: &mut [f64]) {
    let n = values.len();
    let first_finite = values.iter().position(|v| v.is_finite());
    let Some(first) = first_finite else {
        values.iter_mut().for_each(|v| *v = 0.0);
        return;
    };
    // Fill the leading run.
    let lead = values[first];
    values[..first].iter_mut().for_each(|v| *v = lead);

    let mut i = first;
    while i < n {
        if values[i].is_finite() {
            i += 1;
            continue;
        }
        // NaN run [i, j); values[i-1] is finite.
        let j = (i..n).find(|&k| values[k].is_finite());
        match j {
            Some(j) => {
                let a = values[i - 1];
                let b = values[j];
                let run = (j - i + 1) as f64;
                for (off, k) in (i..j).enumerate() {
                    values[k] = a + (b - a) * (off as f64 + 1.0) / run;
                }
                i = j;
            }
            None => {
                let tail = values[i - 1];
                values[i..].iter_mut().for_each(|v| *v = tail);
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sintel_common::SintelRng;

    #[test]
    fn aggregation_parse_roundtrip() {
        for (s, a) in [
            ("mean", Aggregation::Mean),
            ("median", Aggregation::Median),
            ("max", Aggregation::Max),
            ("min", Aggregation::Min),
            ("last", Aggregation::Last),
        ] {
            assert_eq!(Aggregation::parse(s).unwrap(), a);
        }
        assert!(Aggregation::parse("bogus").is_err());
    }

    #[test]
    fn aggregate_regular_signal_mean() {
        let s = Signal::univariate("s", vec![0, 1, 2, 3, 4, 5], vec![0.0, 2.0, 4.0, 6.0, 8.0, 10.0])
            .unwrap();
        let agg = time_segments_aggregate(&s, 2, Aggregation::Mean).unwrap();
        assert_eq!(agg.timestamps(), &[0, 2, 4]);
        assert_eq!(agg.values(), &[1.0, 5.0, 9.0]);
    }

    #[test]
    fn aggregate_irregular_signal_leaves_nan_gaps() {
        // No samples in bin [10, 20).
        let s = Signal::univariate("s", vec![0, 5, 25], vec![1.0, 3.0, 7.0]).unwrap();
        let agg = time_segments_aggregate(&s, 10, Aggregation::Mean).unwrap();
        assert_eq!(agg.timestamps(), &[0, 10, 20]);
        assert_eq!(agg.values()[0], 2.0);
        assert!(agg.values()[1].is_nan());
        assert_eq!(agg.values()[2], 7.0);
    }

    #[test]
    fn aggregate_max_min_last() {
        let s = Signal::univariate("s", vec![0, 1, 2, 3], vec![1.0, 4.0, 2.0, 3.0]).unwrap();
        let mx = time_segments_aggregate(&s, 4, Aggregation::Max).unwrap();
        assert_eq!(mx.values(), &[4.0]);
        let mn = time_segments_aggregate(&s, 4, Aggregation::Min).unwrap();
        assert_eq!(mn.values(), &[1.0]);
        let last = time_segments_aggregate(&s, 4, Aggregation::Last).unwrap();
        assert_eq!(last.values(), &[3.0]);
    }

    #[test]
    fn aggregate_multichannel() {
        let s = Signal::multivariate(
            "s",
            vec![0, 1, 2, 3],
            vec![vec![1.0, 2.0, 3.0, 4.0], vec![10.0, 20.0, 30.0, 40.0]],
        )
        .unwrap();
        let agg = time_segments_aggregate(&s, 2, Aggregation::Mean).unwrap();
        assert_eq!(agg.channel(0), &[1.5, 3.5]);
        assert_eq!(agg.channel(1), &[15.0, 35.0]);
    }

    #[test]
    fn aggregate_rejects_bad_interval() {
        let s = Signal::from_values("s", vec![1.0]);
        assert!(time_segments_aggregate(&s, 0, Aggregation::Mean).is_err());
    }

    #[test]
    fn aggregate_empty_signal() {
        let s = Signal::univariate("s", vec![], vec![]).unwrap();
        let agg = time_segments_aggregate(&s, 5, Aggregation::Mean).unwrap();
        assert!(agg.is_empty());
    }

    #[test]
    fn interpolate_middle_run() {
        let mut v = [1.0, f64::NAN, f64::NAN, 4.0];
        interpolate_nans(&mut v);
        assert_eq!(v, [1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn interpolate_leading_and_trailing() {
        let mut v = [f64::NAN, 2.0, f64::NAN];
        interpolate_nans(&mut v);
        assert_eq!(v, [2.0, 2.0, 2.0]);
    }

    #[test]
    fn interpolate_all_nan_becomes_zero() {
        let mut v = [f64::NAN, f64::NAN];
        interpolate_nans(&mut v);
        assert_eq!(v, [0.0, 0.0]);
    }

    #[test]
    fn prop_aggregate_output_equispaced() {
        let mut rng = SintelRng::seed_from_u64(0x5211);
        for _ in 0..256 {
            let n = 2 + rng.index(98);
            let interval = rng.int_range(1, 20);
            let ts: Vec<i64> = (0..n as i64).map(|i| i * 3).collect();
            let vals: Vec<f64> = (0..n).map(|i| i as f64).collect();
            let s = Signal::univariate("s", ts, vals).unwrap();
            let agg = time_segments_aggregate(&s, interval, Aggregation::Mean).unwrap();
            for w in agg.timestamps().windows(2) {
                assert_eq!(w[1] - w[0], interval);
            }
        }
    }

    #[test]
    fn prop_interpolate_removes_all_nans() {
        let mut rng = SintelRng::seed_from_u64(0x5212);
        for _ in 0..256 {
            let len = rng.index(60);
            let mut v: Vec<f64> = (0..len)
                .map(|_| {
                    if rng.chance(0.5) {
                        rng.uniform_range(-100.0, 100.0)
                    } else {
                        f64::NAN
                    }
                })
                .collect();
            interpolate_nans(&mut v);
            assert!(v.iter().all(|x| x.is_finite()));
        }
    }
}

//! Interval algebra for variable-length anomalies.
//!
//! The paper represents an anomaly as a `(t_start, t_end)` pair with
//! `t_start < t_end`; detected anomalies additionally carry a severity
//! score. Both evaluation algorithms (§2.3) are defined purely in terms of
//! overlap between such intervals, so the overlap/merge/clip operations
//! here are the foundation of `sintel-metrics`.

use crate::{Result, TimeSeriesError};

/// A closed time interval `[start, end]` (timestamps, `start <= end`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Interval {
    /// Start timestamp (inclusive).
    pub start: i64,
    /// End timestamp (inclusive).
    pub end: i64,
}

impl Interval {
    /// Construct, validating `start <= end`.
    pub fn new(start: i64, end: i64) -> Result<Self> {
        if end < start {
            return Err(TimeSeriesError::InvalidInterval(format!(
                "end {end} before start {start}"
            )));
        }
        Ok(Self { start, end })
    }

    /// Duration in timestamp units (`end - start`).
    pub fn duration(&self) -> i64 {
        self.end - self.start
    }

    /// True when the two closed intervals share at least one instant.
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.start <= other.end && other.start <= self.end
    }

    /// Intersection of two intervals, if non-empty.
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        (start <= end).then_some(Interval { start, end })
    }

    /// True when `t` lies within the closed interval.
    pub fn contains(&self, t: i64) -> bool {
        self.start <= t && t <= self.end
    }

    /// Smallest interval covering both operands.
    pub fn hull(&self, other: &Interval) -> Interval {
        Interval { start: self.start.min(other.start), end: self.end.max(other.end) }
    }

    /// Clip to `[lo, hi]`, if anything remains.
    pub fn clip(&self, lo: i64, hi: i64) -> Option<Interval> {
        self.intersect(&Interval { start: lo, end: hi })
    }
}

impl std::fmt::Display for Interval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {}]", self.start, self.end)
    }
}

/// An interval tagged with an anomaly severity score (higher = more
/// anomalous). This is what postprocessing primitives emit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredInterval {
    /// The anomalous span.
    pub interval: Interval,
    /// Severity / likelihood score, higher is more anomalous.
    pub score: f64,
}

impl ScoredInterval {
    /// Construct from raw bounds and a score.
    pub fn new(start: i64, end: i64, score: f64) -> Result<Self> {
        Ok(Self { interval: Interval::new(start, end)?, score })
    }

    /// Strip the score.
    pub fn interval(&self) -> Interval {
        self.interval
    }
}

/// Merge overlapping or touching intervals into a disjoint, sorted set.
///
/// `gap` allows merging intervals whose distance is at most `gap`
/// (use 0 to merge only overlapping/touching intervals).
pub fn merge_overlapping(intervals: &[Interval], gap: i64) -> Vec<Interval> {
    if intervals.is_empty() {
        return Vec::new();
    }
    let mut sorted = intervals.to_vec();
    sorted.sort();
    let mut out = Vec::with_capacity(sorted.len());
    let mut current = sorted[0];
    for iv in &sorted[1..] {
        if iv.start <= current.end.saturating_add(gap) {
            current.end = current.end.max(iv.end);
        } else {
            out.push(current);
            current = *iv;
        }
    }
    out.push(current);
    out
}

/// Merge scored intervals the same way, keeping the maximum score of the
/// merged members.
pub fn merge_scored(intervals: &[ScoredInterval], gap: i64) -> Vec<ScoredInterval> {
    if intervals.is_empty() {
        return Vec::new();
    }
    let mut sorted = intervals.to_vec();
    sorted.sort_by_key(|a| a.interval);
    let mut out: Vec<ScoredInterval> = Vec::with_capacity(sorted.len());
    let mut current = sorted[0];
    for si in &sorted[1..] {
        if si.interval.start <= current.interval.end.saturating_add(gap) {
            current.interval.end = current.interval.end.max(si.interval.end);
            current.score = current.score.max(si.score);
        } else {
            out.push(current);
            current = *si;
        }
    }
    out.push(current);
    out
}

/// Total covered duration of a (possibly overlapping) interval set.
pub fn total_duration(intervals: &[Interval]) -> i64 {
    merge_overlapping(intervals, 0).iter().map(Interval::duration).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sintel_common::SintelRng;

    #[test]
    fn construction_and_validation() {
        assert!(Interval::new(5, 3).is_err());
        let iv = Interval::new(3, 5).unwrap();
        assert_eq!(iv.duration(), 2);
        assert_eq!(iv.to_string(), "[3, 5]");
    }

    #[test]
    fn overlap_cases() {
        let a = Interval::new(0, 10).unwrap();
        assert!(a.overlaps(&Interval::new(5, 15).unwrap()));
        assert!(a.overlaps(&Interval::new(10, 20).unwrap())); // touching counts
        assert!(!a.overlaps(&Interval::new(11, 20).unwrap()));
        assert!(a.overlaps(&Interval::new(-5, 0).unwrap()));
        assert!(a.overlaps(&Interval::new(2, 3).unwrap())); // containment
    }

    #[test]
    fn intersect_and_hull() {
        let a = Interval::new(0, 10).unwrap();
        let b = Interval::new(5, 15).unwrap();
        assert_eq!(a.intersect(&b), Some(Interval::new(5, 10).unwrap()));
        assert_eq!(a.hull(&b), Interval::new(0, 15).unwrap());
        assert_eq!(a.intersect(&Interval::new(20, 30).unwrap()), None);
    }

    #[test]
    fn clip_behaviour() {
        let a = Interval::new(0, 100).unwrap();
        assert_eq!(a.clip(10, 20), Some(Interval::new(10, 20).unwrap()));
        assert_eq!(a.clip(-10, 5), Some(Interval::new(0, 5).unwrap()));
        assert_eq!(a.clip(200, 300), None);
    }

    #[test]
    fn merge_overlapping_basic() {
        let ivs = [
            Interval::new(0, 5).unwrap(),
            Interval::new(3, 8).unwrap(),
            Interval::new(10, 12).unwrap(),
        ];
        let merged = merge_overlapping(&ivs, 0);
        assert_eq!(merged, vec![Interval::new(0, 8).unwrap(), Interval::new(10, 12).unwrap()]);
    }

    #[test]
    fn merge_with_gap() {
        let ivs = [Interval::new(0, 5).unwrap(), Interval::new(7, 9).unwrap()];
        assert_eq!(merge_overlapping(&ivs, 0).len(), 2);
        assert_eq!(merge_overlapping(&ivs, 2).len(), 1);
    }

    #[test]
    fn merge_scored_keeps_max_score() {
        let sis = [
            ScoredInterval::new(0, 5, 0.3).unwrap(),
            ScoredInterval::new(4, 8, 0.9).unwrap(),
        ];
        let merged = merge_scored(&sis, 0);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].interval, Interval::new(0, 8).unwrap());
        assert_eq!(merged[0].score, 0.9);
    }

    #[test]
    fn total_duration_deduplicates() {
        let ivs = [Interval::new(0, 10).unwrap(), Interval::new(5, 15).unwrap()];
        assert_eq!(total_duration(&ivs), 15);
    }

    #[test]
    fn empty_inputs() {
        assert!(merge_overlapping(&[], 0).is_empty());
        assert!(merge_scored(&[], 0).is_empty());
        assert_eq!(total_duration(&[]), 0);
    }

    /// Random interval with start in `[0, 1000)` and duration in `[0, 100)`.
    fn random_interval(rng: &mut SintelRng) -> Interval {
        let s = rng.int_range(0, 1000);
        let d = rng.int_range(0, 100);
        Interval::new(s, s + d).expect("valid by construction")
    }

    fn random_interval_vec(rng: &mut SintelRng, min: usize, max: usize) -> Vec<Interval> {
        let n = min + rng.index(max - min);
        (0..n).map(|_| random_interval(rng)).collect()
    }

    #[test]
    fn prop_merged_is_disjoint_and_sorted() {
        let mut rng = SintelRng::seed_from_u64(0x5111);
        for _ in 0..256 {
            let ivs = random_interval_vec(&mut rng, 0, 40);
            let gap = rng.int_range(0, 10);
            let merged = merge_overlapping(&ivs, gap);
            for w in merged.windows(2) {
                assert!(w[0].end + gap < w[1].start);
            }
        }
    }

    #[test]
    fn prop_merge_preserves_coverage() {
        let mut rng = SintelRng::seed_from_u64(0x5112);
        for _ in 0..256 {
            let ivs = random_interval_vec(&mut rng, 1, 40);
            let merged = merge_overlapping(&ivs, 0);
            // Every original instant is covered by some merged interval.
            for iv in &ivs {
                assert!(merged.iter().any(|m| m.start <= iv.start && iv.end <= m.end));
            }
            // Total duration never grows.
            assert_eq!(total_duration(&merged), total_duration(&ivs));
        }
    }

    #[test]
    fn prop_overlap_symmetric() {
        let mut rng = SintelRng::seed_from_u64(0x5113);
        for _ in 0..256 {
            let a = random_interval(&mut rng);
            let b = random_interval(&mut rng);
            assert_eq!(a.overlaps(&b), b.overlaps(&a));
            assert_eq!(a.intersect(&b).is_some(), a.overlaps(&b));
        }
    }
}

//! CSV I/O for signals and anomaly label files.
//!
//! The public Sintel datasets ship as two-column `timestamp,value` CSV
//! files plus label files of `start,end` anomaly intervals; this module
//! reads and writes both formats (extended to multiple value columns for
//! multivariate signals) without external dependencies.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use crate::{Interval, Result, Signal, TimeSeriesError};

fn io_err(e: impl std::fmt::Display) -> TimeSeriesError {
    TimeSeriesError::Io(e.to_string())
}

/// Serialize a signal as `timestamp,value[,value…]` with a header row.
pub fn write_signal_csv(signal: &Signal, path: &Path) -> Result<()> {
    let file = std::fs::File::create(path).map_err(io_err)?;
    let mut out = BufWriter::new(file);
    let mut header = String::from("timestamp");
    for c in 0..signal.num_channels() {
        header.push_str(&format!(",value_{c}"));
    }
    writeln!(out, "{header}").map_err(io_err)?;
    for (t, &ts) in signal.timestamps().iter().enumerate() {
        let mut line = ts.to_string();
        for c in 0..signal.num_channels() {
            line.push(',');
            let v = signal.channel(c)[t];
            if v.is_nan() {
                // Empty field encodes a missing value.
            } else {
                line.push_str(&format!("{v}"));
            }
        }
        writeln!(out, "{line}").map_err(io_err)?;
    }
    out.flush().map_err(io_err)
}

/// Parse a signal CSV produced by [`write_signal_csv`] (or any
/// `timestamp,value…` file with a header row). Empty numeric fields
/// become `NaN`.
pub fn read_signal_csv(name: &str, path: &Path) -> Result<Signal> {
    let file = std::fs::File::open(path).map_err(io_err)?;
    let reader = BufReader::new(file);
    let mut timestamps = Vec::new();
    let mut channels: Vec<Vec<f64>> = Vec::new();
    let mut line_buf = String::new();
    let mut lines = reader.lines();

    // Header row defines the channel count.
    let header = match lines.next() {
        Some(h) => h.map_err(io_err)?,
        None => return Err(TimeSeriesError::Io("empty csv".into())),
    };
    let n_channels = header.split(',').count().saturating_sub(1);
    if n_channels == 0 {
        return Err(TimeSeriesError::Io("csv needs at least one value column".into()));
    }
    channels.resize(n_channels, Vec::new());

    for (lineno, line) in lines.enumerate() {
        line_buf.clear();
        line_buf.push_str(&line.map_err(io_err)?);
        if line_buf.trim().is_empty() {
            continue;
        }
        let mut fields = line_buf.split(',');
        let ts_field = fields.next().ok_or_else(|| io_err("missing timestamp"))?;
        let ts: i64 = ts_field
            .trim()
            .parse()
            .map_err(|e| io_err(format!("line {}: bad timestamp: {e}", lineno + 2)))?;
        timestamps.push(ts);
        for (c, ch) in channels.iter_mut().enumerate() {
            let field = fields.next().unwrap_or("").trim();
            let v = if field.is_empty() {
                f64::NAN
            } else {
                field.parse().map_err(|e| {
                    io_err(format!("line {}: bad value in column {c}: {e}", lineno + 2))
                })?
            };
            ch.push(v);
        }
    }
    Signal::multivariate(name, timestamps, channels)
}

/// Write anomaly labels as `start,end` rows with a header.
pub fn write_labels_csv(labels: &[Interval], path: &Path) -> Result<()> {
    let file = std::fs::File::create(path).map_err(io_err)?;
    let mut out = BufWriter::new(file);
    writeln!(out, "start,end").map_err(io_err)?;
    for iv in labels {
        writeln!(out, "{},{}", iv.start, iv.end).map_err(io_err)?;
    }
    out.flush().map_err(io_err)
}

/// Read anomaly labels written by [`write_labels_csv`].
pub fn read_labels_csv(path: &Path) -> Result<Vec<Interval>> {
    let file = std::fs::File::open(path).map_err(io_err)?;
    let reader = BufReader::new(file);
    let mut out = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(io_err)?;
        if lineno == 0 || line.trim().is_empty() {
            continue; // header
        }
        let mut fields = line.split(',');
        let start: i64 = fields
            .next()
            .ok_or_else(|| io_err("missing start"))?
            .trim()
            .parse()
            .map_err(|e| io_err(format!("line {}: {e}", lineno + 1)))?;
        let end: i64 = fields
            .next()
            .ok_or_else(|| io_err("missing end"))?
            .trim()
            .parse()
            .map_err(|e| io_err(format!("line {}: {e}", lineno + 1)))?;
        out.push(Interval::new(start, end)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sintel-csv-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn signal_roundtrip_univariate() {
        let dir = tmpdir();
        let path = dir.join("uni.csv");
        let s = Signal::univariate("s", vec![10, 20, 30], vec![1.5, -2.0, 0.0]).unwrap();
        write_signal_csv(&s, &path).unwrap();
        let back = read_signal_csv("s", &path).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn signal_roundtrip_multivariate_with_nan() {
        let dir = tmpdir();
        let path = dir.join("multi.csv");
        let s = Signal::multivariate(
            "m",
            vec![0, 1],
            vec![vec![1.0, f64::NAN], vec![f64::NAN, 4.0]],
        )
        .unwrap();
        write_signal_csv(&s, &path).unwrap();
        let back = read_signal_csv("m", &path).unwrap();
        assert_eq!(back.timestamps(), s.timestamps());
        assert_eq!(back.channel(0)[0], 1.0);
        assert!(back.channel(0)[1].is_nan());
        assert!(back.channel(1)[0].is_nan());
        assert_eq!(back.channel(1)[1], 4.0);
    }

    #[test]
    fn labels_roundtrip() {
        let dir = tmpdir();
        let path = dir.join("labels.csv");
        let labels =
            vec![Interval::new(5, 10).unwrap(), Interval::new(100, 250).unwrap()];
        write_labels_csv(&labels, &path).unwrap();
        assert_eq!(read_labels_csv(&path).unwrap(), labels);
    }

    #[test]
    fn read_missing_file_is_io_error() {
        let err = read_signal_csv("x", Path::new("/nonexistent/file.csv")).unwrap_err();
        assert!(matches!(err, TimeSeriesError::Io(_)));
    }

    #[test]
    fn read_rejects_garbage() {
        let dir = tmpdir();
        let path = dir.join("bad.csv");
        std::fs::write(&path, "timestamp,value_0\nnot_a_number,1.0\n").unwrap();
        assert!(matches!(read_signal_csv("b", &path), Err(TimeSeriesError::Io(_))));
    }

    #[test]
    fn empty_file_rejected() {
        let dir = tmpdir();
        let path = dir.join("empty.csv");
        std::fs::write(&path, "").unwrap();
        assert!(read_signal_csv("e", &path).is_err());
    }
}

#![warn(missing_docs)]

//! # sintel-timeseries
//!
//! Time-series substrate for the Sintel reproduction.
//!
//! Defines the input standard of the framework — a [`Signal`] is a sequence
//! of `(timestamp, values)` samples with one or more channels — plus the
//! interval algebra used to describe variable-length anomalies
//! ([`Interval`], [`ScoredInterval`]), equi-spaced aggregation
//! ([`resample::time_segments_aggregate`]), rolling-window extraction used
//! by every model, and CSV I/O matching the `(timestamp, value)` files the
//! paper's datasets ship as.

pub mod csvio;
pub mod interval;
pub mod resample;
pub mod signal;
pub mod window;

pub use interval::{merge_overlapping, Interval, ScoredInterval};
pub use resample::{time_segments_aggregate, Aggregation};
pub use signal::Signal;
pub use window::{rolling_windows, WindowSet};

/// Errors produced by the time-series substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TimeSeriesError {
    /// The signal is structurally invalid (unsorted/duplicate timestamps,
    /// ragged channels, zero channels…).
    InvalidSignal(String),
    /// An interval has `end < start` or falls outside the signal.
    InvalidInterval(String),
    /// A parameter was out of range for the operation.
    InvalidParameter(String),
    /// CSV parsing / IO failure.
    Io(String),
    /// Work was cancelled by a watchdog (`sintel_common::cancel`): the
    /// run budget expired and a long extraction loop bailed out early.
    Cancelled,
}

impl std::fmt::Display for TimeSeriesError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TimeSeriesError::InvalidSignal(m) => write!(f, "invalid signal: {m}"),
            TimeSeriesError::InvalidInterval(m) => write!(f, "invalid interval: {m}"),
            TimeSeriesError::InvalidParameter(m) => write!(f, "invalid parameter: {m}"),
            TimeSeriesError::Io(m) => write!(f, "io error: {m}"),
            TimeSeriesError::Cancelled => write!(f, "cancelled by run budget"),
        }
    }
}

impl std::error::Error for TimeSeriesError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, TimeSeriesError>;

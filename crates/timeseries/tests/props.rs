//! Property-based suite for signal resampling and interval algebra,
//! built on `sintel_common::check`. Failures print a replayable case
//! seed; rerun a whole suite run with `SINTEL_CHECK_SEED=<root>`.

use sintel_common::check::{forall, shrinks, Config};
use sintel_common::SintelRng;
use sintel_timeseries::{merge_overlapping, time_segments_aggregate, Aggregation, Interval, Signal};

/// Random univariate signal with strictly increasing integer timestamps.
fn random_signal(rng: &mut SintelRng) -> Signal {
    let n = rng.int_range(1, 120) as usize;
    let mut t = rng.int_range(-50, 50);
    let mut timestamps = Vec::with_capacity(n);
    for _ in 0..n {
        timestamps.push(t);
        t += rng.int_range(1, 7);
    }
    let values: Vec<f64> = (0..n).map(|_| rng.normal(0.0, 5.0)).collect();
    Signal::univariate("prop", timestamps, values).expect("strictly increasing timestamps")
}

fn random_interval(rng: &mut SintelRng) -> Interval {
    let a = rng.int_range(-100, 100);
    let b = rng.int_range(-100, 100);
    Interval::new(a.min(b), a.max(b)).expect("ordered endpoints")
}

/// `time_segments_aggregate` covers `[start, end]` with bins of width
/// `interval`: the output must hold exactly `(end-start)/interval + 1`
/// equally spaced timestamps regardless of where samples fall.
#[test]
fn aggregate_length_and_spacing_invariants() {
    forall(
        "time_segments_aggregate bin count and spacing",
        &Config::default(),
        |rng| {
            let signal = random_signal(rng);
            let interval = rng.int_range(1, 15);
            (signal, interval)
        },
        shrinks::none,
        |(signal, interval)| {
            let agg = time_segments_aggregate(signal, *interval, Aggregation::Mean)
                .map_err(|e| e.to_string())?;
            let start = signal.start().expect("non-empty");
            let end = signal.end().expect("non-empty");
            let expected = ((end - start) / interval + 1) as usize;
            if agg.len() != expected {
                return Err(format!("expected {expected} bins, got {}", agg.len()));
            }
            let ts = agg.timestamps();
            if ts.first() != Some(&start) {
                return Err(format!("first bin {:?} != signal start {start}", ts.first()));
            }
            if let Some(bad) = ts.windows(2).find(|w| w[1] - w[0] != *interval) {
                return Err(format!("uneven spacing {bad:?}, want step {interval}"));
            }
            Ok(())
        },
    );
}

/// Aggregated means must lie within the min/max of the source values
/// (or be NaN for empty bins) — aggregation never invents new extremes.
#[test]
fn aggregate_means_stay_within_source_range() {
    forall(
        "time_segments_aggregate(Mean) stays in [min, max] of source",
        &Config::default(),
        |rng| {
            let signal = random_signal(rng);
            let interval = rng.int_range(1, 15);
            (signal, interval)
        },
        shrinks::none,
        |(signal, interval)| {
            let agg = time_segments_aggregate(signal, *interval, Aggregation::Mean)
                .map_err(|e| e.to_string())?;
            let src = signal.channel(0);
            let lo = src.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = src.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            for v in agg.channel(0) {
                if v.is_nan() {
                    continue; // empty bin
                }
                if *v < lo - 1e-12 || *v > hi + 1e-12 {
                    return Err(format!("bin mean {v} outside source range [{lo}, {hi}]"));
                }
            }
            Ok(())
        },
    );
}

#[test]
fn interval_overlap_is_symmetric_and_matches_intersect() {
    forall(
        "overlaps symmetry and intersect consistency",
        &Config::default(),
        |rng| (random_interval(rng), random_interval(rng)),
        shrinks::none,
        |(a, b)| {
            if a.overlaps(b) != b.overlaps(a) {
                return Err(format!("overlaps not symmetric for {a:?}, {b:?}"));
            }
            match (a.intersect(b), b.intersect(a)) {
                (Some(x), Some(y)) if x == y => {
                    if !a.overlaps(b) {
                        return Err(format!("intersect Some but overlaps false: {a:?}, {b:?}"));
                    }
                    if x.start < a.start.max(b.start) || x.end > a.end.min(b.end) {
                        return Err(format!("intersection {x:?} escapes {a:?} ∩ {b:?}"));
                    }
                }
                (None, None) => {
                    if a.overlaps(b) {
                        return Err(format!("overlaps true but intersect None: {a:?}, {b:?}"));
                    }
                }
                (x, y) => return Err(format!("intersect not symmetric: {x:?} vs {y:?}")),
            }
            let hull = a.hull(b);
            if hull.start != a.start.min(b.start) || hull.end != a.end.max(b.end) {
                return Err(format!("hull {hull:?} does not span {a:?} and {b:?}"));
            }
            Ok(())
        },
    );
}

/// `merge_overlapping` must return sorted, pairwise-disjoint intervals
/// that cover exactly the input points (no instant gained or lost when
/// gap = 0).
#[test]
fn merge_overlapping_yields_disjoint_cover() {
    forall(
        "merge_overlapping output is sorted, disjoint, covering",
        &Config::default(),
        |rng| {
            let n = rng.int_range(0, 12) as usize;
            (0..n).map(|_| random_interval(rng)).collect::<Vec<_>>()
        },
        |v| shrinks::truncate_vec(v),
        |intervals| {
            let merged = merge_overlapping(intervals, 0);
            for w in merged.windows(2) {
                if w[1].start <= w[0].end {
                    return Err(format!("merged intervals not disjoint/sorted: {w:?}"));
                }
            }
            // Every input instant is covered by some merged interval.
            for iv in intervals {
                if !merged.iter().any(|m| m.start <= iv.start && iv.end <= m.end) {
                    return Err(format!("input {iv:?} not covered by {merged:?}"));
                }
            }
            // Every merged endpoint comes from some input interval.
            for m in &merged {
                let start_ok = intervals.iter().any(|iv| iv.start == m.start);
                let end_ok = intervals.iter().any(|iv| iv.end == m.end);
                if !start_ok || !end_ok {
                    return Err(format!("merged {m:?} endpoints not drawn from inputs"));
                }
            }
            Ok(())
        },
    );
}

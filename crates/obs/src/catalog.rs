//! The metric catalog: every `sintel_*` series the instrumented stack
//! registers, with its kind, label keys and meaning.
//!
//! The catalog is the single source of truth that `METRICS.md` (the
//! operator-facing reference) and the `metrics_doc` integration test
//! are checked against: a metric recorded anywhere in the workspace
//! must appear here, and every row here must appear in the doc. That
//! keeps "what the code emits" and "what the operator reads" from
//! drifting apart.

/// What kind of series a catalog entry describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic counter in the cumulative registry.
    Counter,
    /// Last-write-wins gauge in the cumulative registry.
    Gauge,
    /// Log-bucket latency histogram in the cumulative registry.
    Histogram,
    /// Windowed per-tick sum in the rollup registry
    /// (see [`crate::rollup`]).
    RollupDelta,
    /// Windowed per-tick histogram in the rollup registry.
    RollupObserve,
}

impl MetricKind {
    /// Stable lower-case label (used by METRICS.md and the sync test).
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
            MetricKind::RollupDelta => "rollup-delta",
            MetricKind::RollupObserve => "rollup-observe",
        }
    }
}

/// One registered metric name.
#[derive(Debug, Clone, Copy)]
pub struct MetricDef {
    /// Base series name (labels stripped).
    pub name: &'static str,
    /// Series kind.
    pub kind: MetricKind,
    /// Label keys the series carries (empty for unlabeled series).
    pub labels: &'static [&'static str],
    /// One-line semantics.
    pub help: &'static str,
}

/// Every registered `sintel_*` metric, sorted by name.
pub const METRICS: &[MetricDef] = &[
    MetricDef {
        name: "sintel_benchmark_failure_breakdown",
        kind: MetricKind::Gauge,
        labels: &["kind"],
        help: "Benchmark signal failures by failure kind, from the last finished run.",
    },
    MetricDef {
        name: "sintel_benchmark_failures_total",
        kind: MetricKind::Counter,
        labels: &["kind"],
        help: "Benchmark trial failures by failure kind.",
    },
    MetricDef {
        name: "sintel_benchmark_quarantine_added_total",
        kind: MetricKind::Counter,
        labels: &[],
        help: "(pipeline, signal) pairs newly quarantined during benchmarking.",
    },
    MetricDef {
        name: "sintel_benchmark_quarantine_skips_total",
        kind: MetricKind::Counter,
        labels: &[],
        help: "Benchmark cells skipped because the pair was already quarantined.",
    },
    MetricDef {
        name: "sintel_benchmark_rows",
        kind: MetricKind::Gauge,
        labels: &[],
        help: "Rows in the last finished benchmark report.",
    },
    MetricDef {
        name: "sintel_benchmark_signals_failed",
        kind: MetricKind::Gauge,
        labels: &[],
        help: "Signals that failed in the last finished benchmark run.",
    },
    MetricDef {
        name: "sintel_benchmark_signals_quarantine_skipped",
        kind: MetricKind::Gauge,
        labels: &[],
        help: "Signals skipped by quarantine in the last finished benchmark run.",
    },
    MetricDef {
        name: "sintel_benchmark_signals_scored",
        kind: MetricKind::Gauge,
        labels: &[],
        help: "Signals scored in the last finished benchmark run.",
    },
    MetricDef {
        name: "sintel_benchmark_trials_total",
        kind: MetricKind::Counter,
        labels: &[],
        help: "Benchmark (pipeline, signal) trials executed.",
    },
    MetricDef {
        name: "sintel_pipeline_detect_seconds",
        kind: MetricKind::Histogram,
        labels: &[],
        help: "Wall time of a full pipeline detect pass.",
    },
    MetricDef {
        name: "sintel_pipeline_fit_seconds",
        kind: MetricKind::Histogram,
        labels: &[],
        help: "Wall time of a full pipeline fit.",
    },
    MetricDef {
        name: "sintel_primitive_fit_seconds",
        kind: MetricKind::Histogram,
        labels: &[],
        help: "Wall time of a single primitive fit step.",
    },
    MetricDef {
        name: "sintel_primitive_produce_seconds",
        kind: MetricKind::Histogram,
        labels: &[],
        help: "Wall time of a single primitive produce step.",
    },
    MetricDef {
        name: "sintel_quarantine_pairs",
        kind: MetricKind::Gauge,
        labels: &[],
        help: "Quarantined (pipeline, signal) pairs currently persisted in the store.",
    },
    MetricDef {
        name: "sintel_run_attempts_total",
        kind: MetricKind::Counter,
        labels: &[],
        help: "Policy-supervised pipeline run attempts (including retries).",
    },
    MetricDef {
        name: "sintel_run_failure_records",
        kind: MetricKind::Gauge,
        labels: &[],
        help: "Failure records currently persisted in the store.",
    },
    MetricDef {
        name: "sintel_run_failures_total",
        kind: MetricKind::Counter,
        labels: &["kind"],
        help: "Policy-supervised run failures by failure kind.",
    },
    MetricDef {
        name: "sintel_run_retries_total",
        kind: MetricKind::Counter,
        labels: &[],
        help: "Policy-supervised run retries after a retryable failure.",
    },
    MetricDef {
        name: "sintel_serve_accepted_total",
        kind: MetricKind::Counter,
        labels: &[],
        help: "Ingest events admitted into a tenant queue.",
    },
    MetricDef {
        name: "sintel_serve_backlog",
        kind: MetricKind::Gauge,
        labels: &[],
        help: "Events across all tenant queues after the last tick drained.",
    },
    MetricDef {
        name: "sintel_serve_breaker_transitions_total",
        kind: MetricKind::Counter,
        labels: &["to"],
        help: "Circuit-breaker state transitions by destination state (open, half_open, closed, quarantined).",
    },
    MetricDef {
        name: "sintel_serve_breaker_trips_total",
        kind: MetricKind::Counter,
        labels: &[],
        help: "Circuit-breaker trips (closed or half-open to open).",
    },
    MetricDef {
        name: "sintel_serve_checkpoint_seconds",
        kind: MetricKind::Histogram,
        labels: &[],
        help: "Wall time of the group-committed session checkpoint batch per tick.",
    },
    MetricDef {
        name: "sintel_serve_degraded_total",
        kind: MetricKind::Counter,
        labels: &[],
        help: "Tenant degradations to the fallback template.",
    },
    MetricDef {
        name: "sintel_serve_emit_latency_seconds",
        kind: MetricKind::Histogram,
        labels: &[],
        help: "Queue residency of drained events: offer to tick pickup.",
    },
    MetricDef {
        name: "sintel_serve_emits_per_tick",
        kind: MetricKind::RollupDelta,
        labels: &[],
        help: "Anomaly events committed per tick over the rollup window.",
    },
    MetricDef {
        name: "sintel_serve_emitted_total",
        kind: MetricKind::Counter,
        labels: &[],
        help: "Anomaly events committed by the serve tier.",
    },
    MetricDef {
        name: "sintel_serve_events_per_tick",
        kind: MetricKind::RollupDelta,
        labels: &[],
        help: "Ingest events drained into sessions per tick over the rollup window.",
    },
    MetricDef {
        name: "sintel_serve_pass_failures_per_tick",
        kind: MetricKind::RollupDelta,
        labels: &[],
        help: "Detection-pass failures per tick over the rollup window.",
    },
    MetricDef {
        name: "sintel_serve_pass_seconds",
        kind: MetricKind::Histogram,
        labels: &[],
        help: "Wall time of one detection pass over a tenant window.",
    },
    MetricDef {
        name: "sintel_serve_pass_window_seconds",
        kind: MetricKind::RollupObserve,
        labels: &[],
        help: "Detection-pass latency distribution over the rollup window (live p50/p90/p99).",
    },
    MetricDef {
        name: "sintel_serve_quarantined_total",
        kind: MetricKind::Counter,
        labels: &[],
        help: "Tenants quarantined after repeated breaker trips.",
    },
    MetricDef {
        name: "sintel_serve_queue_depth",
        kind: MetricKind::Gauge,
        labels: &["tenant"],
        help: "Per-tenant queue depth after the last offer or drain.",
    },
    MetricDef {
        name: "sintel_serve_retries_per_tick",
        kind: MetricKind::RollupDelta,
        labels: &[],
        help: "Backpressure Retry admissions per tick over the rollup window.",
    },
    MetricDef {
        name: "sintel_serve_retry_total",
        kind: MetricKind::Counter,
        labels: &[],
        help: "Offers answered with backpressure Retry{after_ticks}.",
    },
    MetricDef {
        name: "sintel_serve_scrape_errors_total",
        kind: MetricKind::Counter,
        labels: &[],
        help: "Status-server requests that failed to parse or hit an I/O error.",
    },
    MetricDef {
        name: "sintel_serve_scrapes_total",
        kind: MetricKind::Counter,
        labels: &["endpoint"],
        help: "Status-server requests served, by endpoint.",
    },
    MetricDef {
        name: "sintel_serve_self_events_total",
        kind: MetricKind::Counter,
        labels: &[],
        help: "Anomaly events the self-monitor emitted on the engine's own operational streams.",
    },
    MetricDef {
        name: "sintel_serve_shed_total",
        kind: MetricKind::Counter,
        labels: &[],
        help: "Offers shed by priority load shedding or a full queue.",
    },
    MetricDef {
        name: "sintel_serve_sheds_per_tick",
        kind: MetricKind::RollupDelta,
        labels: &[],
        help: "Shed offers per tick over the rollup window.",
    },
    MetricDef {
        name: "sintel_serve_tick_seconds",
        kind: MetricKind::Histogram,
        labels: &[],
        help: "Wall time of a full engine tick (drain, passes, checkpoint).",
    },
    MetricDef {
        name: "sintel_serve_tick_window_seconds",
        kind: MetricKind::RollupObserve,
        labels: &[],
        help: "Tick-duration distribution over the rollup window (live p50/p90/p99).",
    },
    MetricDef {
        name: "sintel_serve_ticks_total",
        kind: MetricKind::Counter,
        labels: &[],
        help: "Engine ticks completed.",
    },
    MetricDef {
        name: "sintel_store_compaction_seconds",
        kind: MetricKind::Histogram,
        labels: &[],
        help: "Wall time of a WAL compaction.",
    },
    MetricDef {
        name: "sintel_store_compactions_total",
        kind: MetricKind::Counter,
        labels: &[],
        help: "WAL compactions performed.",
    },
    MetricDef {
        name: "sintel_store_corrupt_collections_total",
        kind: MetricKind::Counter,
        labels: &[],
        help: "Collection snapshots discarded as corrupt during recovery.",
    },
    MetricDef {
        name: "sintel_store_orphans_removed_total",
        kind: MetricKind::Counter,
        labels: &[],
        help: "Orphaned temp/snapshot files removed during recovery.",
    },
    MetricDef {
        name: "sintel_store_shard_read_blocked_total",
        kind: MetricKind::Counter,
        labels: &[],
        help: "Shard reads that had to wait on a concurrent writer.",
    },
    MetricDef {
        name: "sintel_store_wal_append_errors_total",
        kind: MetricKind::Counter,
        labels: &[],
        help: "WAL append failures.",
    },
    MetricDef {
        name: "sintel_store_wal_append_seconds",
        kind: MetricKind::Histogram,
        labels: &[],
        help: "Wall time of a WAL append (including group-commit fsync).",
    },
    MetricDef {
        name: "sintel_store_wal_appended_bytes_total",
        kind: MetricKind::Counter,
        labels: &[],
        help: "Bytes appended to the WAL.",
    },
    MetricDef {
        name: "sintel_store_wal_appends_total",
        kind: MetricKind::Counter,
        labels: &[],
        help: "Mutation batches appended to the WAL.",
    },
    MetricDef {
        name: "sintel_store_wal_fsyncs_total",
        kind: MetricKind::Counter,
        labels: &[],
        help: "fsync calls issued by WAL group commit.",
    },
    MetricDef {
        name: "sintel_store_wal_replay_seconds",
        kind: MetricKind::Histogram,
        labels: &[],
        help: "Wall time of WAL replay at open.",
    },
    MetricDef {
        name: "sintel_store_wal_replayed_batches_total",
        kind: MetricKind::Counter,
        labels: &[],
        help: "Batches replayed from the WAL at open.",
    },
    MetricDef {
        name: "sintel_store_wal_truncations_total",
        kind: MetricKind::Counter,
        labels: &[],
        help: "Torn WAL tails truncated during recovery.",
    },
    MetricDef {
        name: "sintel_tune_failed_trials_total",
        kind: MetricKind::Counter,
        labels: &[],
        help: "Tuner trials that failed under policy.",
    },
    MetricDef {
        name: "sintel_tune_rejected_trials_total",
        kind: MetricKind::Counter,
        labels: &[],
        help: "Tuner candidates rejected by static analysis before execution.",
    },
    MetricDef {
        name: "sintel_tune_trial_seconds",
        kind: MetricKind::Histogram,
        labels: &[],
        help: "Wall time of one tuner trial.",
    },
    MetricDef {
        name: "sintel_tune_trials_total",
        kind: MetricKind::Counter,
        labels: &[],
        help: "Tuner trials executed.",
    },
];

/// Look up a catalog entry by base name (labels stripped by the
/// caller).
pub fn metric_def(name: &str) -> Option<&'static MetricDef> {
    METRICS
        .binary_search_by(|def| def.name.cmp(name))
        .ok()
        .map(|i| &METRICS[i])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_sorted_and_unique() {
        for pair in METRICS.windows(2) {
            assert!(
                pair[0].name < pair[1].name,
                "catalog out of order (binary search relies on it): {} >= {}",
                pair[0].name,
                pair[1].name
            );
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(metric_def("sintel_serve_accepted_total").is_some());
        assert!(metric_def("sintel_store_wal_fsyncs_total").is_some());
        assert!(metric_def("sintel_no_such_metric").is_none());
        let def = metric_def("sintel_serve_queue_depth").expect("known metric");
        assert_eq!(def.kind, MetricKind::Gauge);
        assert_eq!(def.labels, ["tenant"]);
    }

    #[test]
    fn every_entry_has_prefix_kind_string_and_help() {
        for def in METRICS {
            assert!(def.name.starts_with("sintel_"), "{}", def.name);
            assert!(!def.help.is_empty(), "{} lacks help text", def.name);
            assert!(!def.kind.as_str().is_empty());
        }
    }
}

//! Nested spans on one monotonic clock, with a JSON-lines trace.
//!
//! [`span_with`] opens a span; dropping (or [`SpanGuard::close`]-ing)
//! the guard closes it. Parent/child nesting is tracked per thread, so
//! a pipeline's `primitive.fit` spans nest under its `pipeline.fit`
//! span automatically. When tracing is active ([`tracing_start`]),
//! every open and close appends a [`TraceEvent`] to the process trace
//! buffer; [`export_jsonl`] renders the buffer one JSON object per
//! line and [`parse_jsonl`] reads it back, so a whole benchmark run
//! can be replayed as a flamegraph-style timeline.
//!
//! Timing: every span measures its duration with `Instant` regardless
//! of whether tracing is active, and [`SpanGuard::close`] returns it —
//! callers that need the number (e.g. `PipelineProfile`) therefore see
//! the *same* measurement the trace records.

use std::cell::RefCell;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use crate::{fields_to_json, json_string, FieldValue};

/// Process-wide monotonic anchor: all trace timestamps are nanoseconds
/// since the first span (or trace start) of the process.
fn anchor() -> Instant {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    *ANCHOR.get_or_init(Instant::now)
}

static NEXT_ID: AtomicU64 = AtomicU64::new(1);
static TRACING: AtomicBool = AtomicBool::new(false);

/// Max buffered trace events before the oldest are dropped (0 =
/// unbounded, the historical default for short batch runs).
static TRACE_CAP: AtomicUsize = AtomicUsize::new(0);

fn trace_buffer() -> &'static Mutex<Vec<TraceEvent>> {
    static BUF: OnceLock<Mutex<Vec<TraceEvent>>> = OnceLock::new();
    BUF.get_or_init(|| Mutex::new(Vec::new()))
}

fn buffer_lock() -> MutexGuard<'static, Vec<TraceEvent>> {
    trace_buffer().lock().unwrap_or_else(|e| e.into_inner())
}

fn trace_sink() -> &'static Mutex<Option<PathBuf>> {
    static SINK: OnceLock<Mutex<Option<PathBuf>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(None))
}

/// Append one event to the buffer, honouring the capacity cap
/// (oldest-first eviction keeps the tail an operator asks for).
fn push_event(event: TraceEvent) {
    let cap = TRACE_CAP.load(Ordering::Relaxed);
    let mut buf = buffer_lock();
    if cap > 0 && buf.len() >= cap {
        let drop_n = buf.len() + 1 - cap;
        buf.drain(..drop_n);
    }
    buf.push(event);
}

/// Cap the in-memory trace buffer at `cap` events (0 = unbounded).
/// Long-running servers set a cap so `/trace` keeps a bounded recent
/// tail instead of growing without limit.
pub fn set_trace_capacity(cap: usize) {
    TRACE_CAP.store(cap, Ordering::SeqCst);
}

/// Route [`flush_trace`] output to `path` (append mode), or disable
/// flushing with `None`. Setting a sink does not start tracing —
/// callers still opt in with [`tracing_start`].
pub fn set_trace_sink(path: Option<PathBuf>) {
    *trace_sink().lock().unwrap_or_else(|e| e.into_inner()) = path;
}

/// Drain the trace buffer and append it (as JSONL) to the configured
/// sink. Returns the number of events written; with no sink configured
/// the buffer is left untouched and 0 is returned, so batch callers
/// using [`tracing_stop`] are unaffected. Tracing stays active — a
/// long-running engine can flush once per checkpoint.
pub fn flush_trace() -> Result<usize, String> {
    let sink = trace_sink().lock().unwrap_or_else(|e| e.into_inner()).clone();
    let Some(path) = sink else {
        return Ok(0);
    };
    let events = std::mem::take(&mut *buffer_lock());
    if events.is_empty() {
        return Ok(0);
    }
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .map_err(|e| format!("open trace sink {}: {e}", path.display()))?;
    file.write_all(export_jsonl(&events).as_bytes())
        .map_err(|e| format!("write trace sink {}: {e}", path.display()))?;
    Ok(events.len())
}

/// The last `n` buffered trace events (oldest first), without
/// draining. This is what a `/trace` endpoint serves.
pub fn trace_tail(n: usize) -> Vec<TraceEvent> {
    let buf = buffer_lock();
    let start = buf.len().saturating_sub(n);
    buf[start..].to_vec()
}

/// Flushes the trace sink when dropped — including during a
/// panic-unwind — so a crashed engine still leaves a readable trace
/// tail on disk. Hold one for the lifetime of the instrumented work:
///
/// ```no_run
/// let _flush = sintel_obs::TraceFlushGuard::new();
/// ```
///
/// Errors during the drop flush are swallowed (there is no one to
/// report them to mid-unwind); call [`flush_trace`] directly on the
/// happy path to observe them.
#[derive(Debug, Default)]
#[must_use = "dropping the guard immediately flushes the trace"]
pub struct TraceFlushGuard {
    _private: (),
}

impl TraceFlushGuard {
    /// New guard; pair with [`set_trace_sink`].
    pub fn new() -> Self {
        Self { _private: () }
    }
}

impl Drop for TraceFlushGuard {
    fn drop(&mut self) {
        let _ = flush_trace();
    }
}

thread_local! {
    /// Open-span stack of this thread (ids, innermost last).
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Start recording trace events (clears any previous buffer).
pub fn tracing_start() {
    anchor();
    buffer_lock().clear();
    TRACING.store(true, Ordering::SeqCst);
}

/// Stop recording and drain the buffer.
pub fn tracing_stop() -> Vec<TraceEvent> {
    TRACING.store(false, Ordering::SeqCst);
    std::mem::take(&mut *buffer_lock())
}

/// Whether trace events are currently being recorded.
pub fn tracing_active() -> bool {
    TRACING.load(Ordering::SeqCst)
}

/// Open/close marker of a trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Span opened.
    Open,
    /// Span closed; `duration_ns` is set.
    Close,
}

/// One line of the trace: a span opening or closing.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Open or close.
    pub kind: EventKind,
    /// Span id (unique within the process).
    pub id: u64,
    /// Enclosing span id, if any (same thread).
    pub parent: Option<u64>,
    /// Span name (dotted taxonomy, e.g. `primitive.fit`).
    pub name: String,
    /// Nanoseconds since the process trace anchor.
    pub ts_ns: u64,
    /// Span duration (close events only).
    pub duration_ns: Option<u64>,
    /// Structured fields (open events only).
    pub fields: Vec<(String, FieldValue)>,
}

impl TraceEvent {
    /// Render as one JSON object (one line of the JSONL trace).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"event\":");
        out.push_str(match self.kind {
            EventKind::Open => "\"open\"",
            EventKind::Close => "\"close\"",
        });
        out.push_str(&format!(",\"id\":{}", self.id));
        match self.parent {
            Some(p) => out.push_str(&format!(",\"parent\":{p}")),
            None => out.push_str(",\"parent\":null"),
        }
        out.push_str(",\"name\":");
        out.push_str(&json_string(&self.name));
        out.push_str(&format!(",\"ts_ns\":{}", self.ts_ns));
        if let Some(d) = self.duration_ns {
            out.push_str(&format!(",\"duration_ns\":{d}"));
        }
        if !self.fields.is_empty() {
            out.push_str(",\"fields\":");
            out.push_str(&fields_to_json(&self.fields));
        }
        out.push('}');
        out
    }
}

/// Render events as a JSON-lines document (trailing newline included).
pub fn export_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for event in events {
        out.push_str(&event.to_json());
        out.push('\n');
    }
    out
}

/// Guard of an open span; closes (and emits the close event) on drop.
#[must_use = "dropping the guard immediately closes the span"]
pub struct SpanGuard {
    id: u64,
    parent: Option<u64>,
    name: String,
    start: Instant,
    start_ns: u64,
    closed: bool,
}

/// Open a span with no fields.
pub fn span(name: &str) -> SpanGuard {
    span_with(name, &[])
}

/// Id of the innermost open span on *this thread*, if any.
///
/// Capture this before handing work to another thread and pass it to
/// [`span_with_parent`] on the worker: span stacks are thread-local,
/// so without an explicit parent a worker's spans would appear as
/// roots (or, worse, interleave under whatever that worker happened
/// to have open).
pub fn current_span_id() -> Option<u64> {
    SPAN_STACK.with(|stack| stack.borrow().last().copied())
}

/// Open a span with structured fields. The span nests under the
/// innermost open span *of this thread*.
pub fn span_with(name: &str, fields: &[(&str, FieldValue)]) -> SpanGuard {
    open_span(name, fields, None)
}

/// Open a span whose parent is set explicitly instead of taken from
/// this thread's stack — the cross-thread attribution primitive. The
/// new span is still pushed onto the *current* thread's stack, so
/// spans opened underneath it on this thread nest correctly.
pub fn span_with_parent(
    name: &str,
    fields: &[(&str, FieldValue)],
    parent: Option<u64>,
) -> SpanGuard {
    open_span(name, fields, Some(parent))
}

/// `forced_parent`: `None` = inherit this thread's innermost span,
/// `Some(p)` = record exactly `p` (which may itself be `None` for an
/// explicit root).
fn open_span(
    name: &str,
    fields: &[(&str, FieldValue)],
    forced_parent: Option<Option<u64>>,
) -> SpanGuard {
    let start = Instant::now();
    let start_ns = start.duration_since(anchor()).as_nanos() as u64;
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let parent = SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let parent = forced_parent.unwrap_or_else(|| stack.last().copied());
        stack.push(id);
        parent
    });
    if tracing_active() {
        push_event(TraceEvent {
            kind: EventKind::Open,
            id,
            parent,
            name: name.to_string(),
            ts_ns: start_ns,
            duration_ns: None,
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        });
    }
    SpanGuard { id, parent, name: name.to_string(), start, start_ns, closed: false }
}

impl SpanGuard {
    /// This span's id (to correlate with the exported trace).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Close the span now and return its duration — the same number
    /// the trace's close event records.
    pub fn close(mut self) -> Duration {
        self.finish()
    }

    fn finish(&mut self) -> Duration {
        if self.closed {
            return Duration::ZERO;
        }
        self.closed = true;
        let elapsed = self.start.elapsed();
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Usually the top of the stack; be robust to out-of-order
            // closes (a kept guard outliving a child).
            if let Some(pos) = stack.iter().rposition(|open| *open == self.id) {
                stack.remove(pos);
            }
        });
        if tracing_active() {
            push_event(TraceEvent {
                kind: EventKind::Close,
                id: self.id,
                parent: self.parent,
                name: self.name.clone(),
                ts_ns: self.start_ns + elapsed.as_nanos() as u64,
                duration_ns: Some(elapsed.as_nanos() as u64),
                fields: Vec::new(),
            });
        }
        elapsed
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.finish();
    }
}

// ---- JSONL parsing (for replay and round-trip tests) -----------------

/// Parse a JSON-lines trace produced by [`export_jsonl`]. Blank lines
/// are skipped; any malformed line is an error naming its line number.
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceEvent>, String> {
    let mut events = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        events.push(
            parse_event(line).map_err(|e| format!("line {}: {e}", lineno + 1))?,
        );
    }
    Ok(events)
}

/// Minimal JSON value for the trace-event grammar.
#[derive(Debug, Clone, PartialEq)]
enum JsonValue {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    Obj(Vec<(String, JsonValue)>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Self { bytes: s.as_bytes(), pos: 0 }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        match self.peek() {
            Some(c) if c == b => {
                self.pos += 1;
                Ok(())
            }
            other => Err(format!("expected '{}', found {other:?}", b as char)),
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'"') => Ok(JsonValue::Str(self.parse_string()?)),
            Some(b'n') => self.parse_keyword("null", JsonValue::Null),
            Some(b't') => self.parse_keyword("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_keyword("false", JsonValue::Bool(false)),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(format!("unexpected {other:?}")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("expected '{word}'"))
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        let start = self.pos;
        let mut is_float = false;
        while let Some(&c) = self.bytes.get(self.pos) {
            match c {
                b'-' | b'+' => self.pos += 1,
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| e.to_string())?;
        if is_float {
            text.parse::<f64>().map(JsonValue::Float).map_err(|e| e.to_string())
        } else {
            text.parse::<i64>().map(JsonValue::Int).map_err(|e| e.to_string())
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&c) = self.bytes.get(self.pos) else {
                return Err("unterminated string".to_string());
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err("dangling escape".to_string());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            self.pos += 4;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                // Multi-byte UTF-8: copy raw continuation bytes through.
                c => {
                    let width = match c {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let end = (self.pos - 1 + width).min(self.bytes.len());
                    let chunk = std::str::from_utf8(&self.bytes[self.pos - 1..end])
                        .map_err(|e| e.to_string())?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(entries));
        }
        loop {
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(entries));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }
}

fn parse_event(line: &str) -> Result<TraceEvent, String> {
    let mut parser = Parser::new(line);
    let JsonValue::Obj(entries) = parser.parse_value()? else {
        return Err("trace line is not a JSON object".to_string());
    };
    let get = |key: &str| entries.iter().find(|(k, _)| k == key).map(|(_, v)| v);
    let kind = match get("event") {
        Some(JsonValue::Str(s)) if s == "open" => EventKind::Open,
        Some(JsonValue::Str(s)) if s == "close" => EventKind::Close,
        other => return Err(format!("bad event kind {other:?}")),
    };
    let int = |v: Option<&JsonValue>, what: &str| -> Result<i64, String> {
        match v {
            Some(JsonValue::Int(n)) => Ok(*n),
            other => Err(format!("bad {what}: {other:?}")),
        }
    };
    let id = int(get("id"), "id")? as u64;
    let parent = match get("parent") {
        Some(JsonValue::Null) | None => None,
        Some(JsonValue::Int(n)) => Some(*n as u64),
        other => return Err(format!("bad parent: {other:?}")),
    };
    let name = match get("name") {
        Some(JsonValue::Str(s)) => s.clone(),
        other => return Err(format!("bad name: {other:?}")),
    };
    let ts_ns = int(get("ts_ns"), "ts_ns")? as u64;
    let duration_ns = match get("duration_ns") {
        None => None,
        Some(JsonValue::Int(n)) => Some(*n as u64),
        other => return Err(format!("bad duration_ns: {other:?}")),
    };
    let fields = match get("fields") {
        None => Vec::new(),
        Some(JsonValue::Obj(entries)) => entries
            .iter()
            .map(|(k, v)| {
                let fv = match v {
                    JsonValue::Str(s) => FieldValue::Str(s.clone()),
                    JsonValue::Int(n) if *n >= 0 => FieldValue::UInt(*n as u64),
                    JsonValue::Int(n) => FieldValue::Int(*n),
                    JsonValue::Float(f) => FieldValue::Float(*f),
                    JsonValue::Bool(b) => FieldValue::Bool(*b),
                    JsonValue::Null => FieldValue::Float(f64::NAN),
                    JsonValue::Obj(_) => {
                        return Err("nested field objects are not supported".to_string())
                    }
                };
                Ok((k.clone(), fv))
            })
            .collect::<Result<Vec<_>, String>>()?,
        other => return Err(format!("bad fields: {other:?}")),
    };
    Ok(TraceEvent { kind, id, parent, name, ts_ns, duration_ns, fields })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The trace buffer is global; serialize the tests that use it.
    static GUARD: Mutex<()> = Mutex::new(());

    #[test]
    fn nesting_tracks_parents_and_ordering() {
        let _guard = GUARD.lock().unwrap_or_else(|e| e.into_inner());
        tracing_start();
        let outer = span_with("outer", &[("k", FieldValue::Int(1))]);
        let outer_id = outer.id();
        let inner = span("inner");
        let inner_id = inner.id();
        let inner_elapsed = inner.close();
        let outer_elapsed = outer.close();
        let events = tracing_stop();

        assert_eq!(events.len(), 4);
        assert_eq!(events[0].kind, EventKind::Open);
        assert_eq!(events[0].name, "outer");
        assert_eq!(events[0].parent, None);
        assert_eq!(events[1].name, "inner");
        assert_eq!(events[1].parent, Some(outer_id));
        // Close order: inner first, then outer.
        assert_eq!(events[2].kind, EventKind::Close);
        assert_eq!(events[2].id, inner_id);
        assert_eq!(events[3].id, outer_id);
        // The guard's returned duration is the trace's duration.
        assert_eq!(events[2].duration_ns, Some(inner_elapsed.as_nanos() as u64));
        assert_eq!(events[3].duration_ns, Some(outer_elapsed.as_nanos() as u64));
        // Children nest in time: inner opened after outer, closed before.
        assert!(events[1].ts_ns >= events[0].ts_ns);
        assert!(events[2].ts_ns <= events[3].ts_ns);
        assert!(inner_elapsed <= outer_elapsed);
    }

    #[test]
    fn drop_closes_and_siblings_share_parent() {
        let _guard = GUARD.lock().unwrap_or_else(|e| e.into_inner());
        tracing_start();
        {
            let _outer = span("outer");
            let _a = span("a");
            drop(_a);
            let _b = span("b");
        }
        let events = tracing_stop();
        let opens: Vec<_> =
            events.iter().filter(|e| e.kind == EventKind::Open).collect();
        assert_eq!(opens.len(), 3);
        assert_eq!(opens[1].parent, Some(opens[0].id));
        assert_eq!(opens[2].parent, Some(opens[0].id), "siblings share the outer parent");
        assert_eq!(events.iter().filter(|e| e.kind == EventKind::Close).count(), 3);
    }

    #[test]
    fn jsonl_round_trip() {
        let _guard = GUARD.lock().unwrap_or_else(|e| e.into_inner());
        tracing_start();
        let outer = span_with(
            "trial",
            &[
                ("pipeline", FieldValue::Str("arima \"x\"".into())),
                ("signal", FieldValue::Str("S-1".into())),
                ("attempt", FieldValue::UInt(2)),
                ("score", FieldValue::Float(0.25)),
                ("ok", FieldValue::Bool(true)),
            ],
        );
        let inner = span("primitive.fit");
        inner.close();
        outer.close();
        let events = tracing_stop();
        let text = export_jsonl(&events);
        assert_eq!(text.lines().count(), 4);
        let parsed = parse_jsonl(&text).unwrap();
        assert_eq!(parsed, events);
    }

    #[test]
    fn parse_rejects_garbage_with_line_number() {
        let err = parse_jsonl("{\"event\":\"open\"}\nnot json\n").unwrap_err();
        assert!(err.contains("line"), "{err}");
        assert!(parse_jsonl("").unwrap().is_empty());
        assert!(parse_jsonl("\n\n").unwrap().is_empty());
    }

    #[test]
    fn trace_tail_and_capacity_keep_the_recent_end() {
        let _guard = GUARD.lock().unwrap_or_else(|e| e.into_inner());
        set_trace_capacity(6);
        tracing_start();
        for i in 0..10 {
            span(&format!("s{i}")).close();
        }
        let tail = trace_tail(4);
        assert_eq!(tail.len(), 4);
        // Each span contributes open+close; the newest close is last.
        assert_eq!(tail[3].kind, EventKind::Close);
        assert_eq!(tail[3].name, "s9");
        assert!(buffer_lock().len() <= 6, "cap must bound the buffer");
        // Tail does not drain: the buffer still holds the same events.
        assert_eq!(trace_tail(4), tail);
        assert!(trace_tail(100).len() <= 6);
        set_trace_capacity(0);
        tracing_stop();
    }

    #[test]
    fn flush_guard_writes_jsonl_even_on_panic_unwind() {
        let _guard = GUARD.lock().unwrap_or_else(|e| e.into_inner());
        let path = std::env::temp_dir().join(format!(
            "sintel-obs-flush-{}-{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        set_trace_sink(Some(path.clone()));
        tracing_start();

        let panicked = std::panic::catch_unwind(|| {
            let _flush = TraceFlushGuard::new();
            let _span = span("doomed.work");
            panic!("injected crash");
        });
        assert!(panicked.is_err());

        let text = std::fs::read_to_string(&path).expect("trace file must exist after panic");
        let events = parse_jsonl(&text).expect("flushed trace must parse");
        assert!(
            events.iter().any(|e| e.name == "doomed.work" && e.kind == EventKind::Close),
            "the panicked span's close event must be on disk: {events:?}"
        );
        // The flush drained the buffer; a second flush is a no-op.
        assert_eq!(flush_trace().expect("flush"), 0);

        set_trace_sink(None);
        tracing_stop();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn flush_without_sink_leaves_buffer_for_tracing_stop() {
        let _guard = GUARD.lock().unwrap_or_else(|e| e.into_inner());
        set_trace_sink(None);
        tracing_start();
        span("kept").close();
        assert_eq!(flush_trace().expect("flush"), 0);
        let events = tracing_stop();
        assert_eq!(events.len(), 2, "no sink: tracing_stop still sees the events");
    }

    #[test]
    fn spans_without_tracing_still_time() {
        let _guard = GUARD.lock().unwrap_or_else(|e| e.into_inner());
        TRACING.store(false, Ordering::SeqCst);
        buffer_lock().clear();
        let s = span("untraced");
        std::thread::sleep(Duration::from_millis(2));
        let d = s.close();
        assert!(d >= Duration::from_millis(2));
        assert!(buffer_lock().is_empty());
    }
}

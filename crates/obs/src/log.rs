//! Leveled structured logging.
//!
//! A minimal stand-in for the `tracing`/`log` crates: one global level
//! (from `SINTEL_LOG` or [`set_level`]), records carrying `key=value`
//! fields, and two sinks — stderr for humans, an in-memory capture
//! buffer for tests ([`capture_start`] / [`capture_stop`]).

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

use crate::FieldValue;

/// Log severity, most severe first. Ordering is by verbosity:
/// `Error < Warn < Info < Debug < Trace`, and a record is emitted when
/// its level is `<=` the configured maximum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The operation failed.
    Error = 1,
    /// Something surprising that the run survived.
    Warn = 2,
    /// Coarse progress events (quarantine skips, retries exhausted…).
    Info = 3,
    /// Per-attempt / per-trial detail.
    Debug = 4,
    /// Everything, including per-primitive events.
    Trace = 5,
}

impl Level {
    /// Stable lowercase label.
    pub fn label(&self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// Parse a level name (case-insensitive; `off` disables everything).
    pub fn parse(s: &str) -> Option<Option<Level>> {
        match s.to_ascii_lowercase().as_str() {
            "off" | "none" => Some(None),
            "error" => Some(Some(Level::Error)),
            "warn" | "warning" => Some(Some(Level::Warn)),
            "info" => Some(Some(Level::Info)),
            "debug" => Some(Some(Level::Debug)),
            "trace" => Some(Some(Level::Trace)),
            _ => None,
        }
    }

    fn from_u8(v: u8) -> Option<Level> {
        match v {
            1 => Some(Level::Error),
            2 => Some(Level::Warn),
            3 => Some(Level::Info),
            4 => Some(Level::Debug),
            5 => Some(Level::Trace),
            _ => None,
        }
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One emitted log record.
#[derive(Debug, Clone, PartialEq)]
pub struct LogRecord {
    /// Severity.
    pub level: Level,
    /// Emitting subsystem (module-path style, e.g. `sintel::policy`).
    pub target: String,
    /// Human-readable message.
    pub message: String,
    /// Structured fields.
    pub fields: Vec<(String, FieldValue)>,
}

impl LogRecord {
    /// One-line human rendering (the stderr format).
    pub fn render(&self) -> String {
        let mut out = format!("{:<5} {}: {}", self.level.label(), self.target, self.message);
        for (k, v) in &self.fields {
            out.push(' ');
            out.push_str(k);
            out.push('=');
            match v {
                FieldValue::Str(s) if s.contains(' ') => {
                    out.push('"');
                    out.push_str(s);
                    out.push('"');
                }
                other => out.push_str(&other.to_string()),
            }
        }
        out
    }
}

/// 0 = uninitialised (read `SINTEL_LOG` on first use), 255 = off.
static MAX_LEVEL: AtomicU8 = AtomicU8::new(0);
const LEVEL_OFF: u8 = 255;

fn capture_cell() -> &'static Mutex<Option<Vec<LogRecord>>> {
    static CAPTURE: OnceLock<Mutex<Option<Vec<LogRecord>>>> = OnceLock::new();
    CAPTURE.get_or_init(|| Mutex::new(None))
}

fn capture_lock() -> MutexGuard<'static, Option<Vec<LogRecord>>> {
    capture_cell().lock().unwrap_or_else(|e| e.into_inner())
}

fn init_level_from_env() -> u8 {
    let from_env = std::env::var("SINTEL_LOG")
        .ok()
        .and_then(|s| Level::parse(&s))
        .unwrap_or(Some(Level::Info));
    let raw = from_env.map(|l| l as u8).unwrap_or(LEVEL_OFF);
    // Another thread may have raced `set_level`; only fill the default in.
    let _ = MAX_LEVEL.compare_exchange(0, raw, Ordering::SeqCst, Ordering::SeqCst);
    MAX_LEVEL.load(Ordering::SeqCst)
}

/// Set the global maximum level (`None` = off). Overrides `SINTEL_LOG`.
pub fn set_level(level: Option<Level>) {
    MAX_LEVEL.store(level.map(|l| l as u8).unwrap_or(LEVEL_OFF), Ordering::SeqCst);
}

/// The currently configured maximum level (`None` = off).
pub fn max_level() -> Option<Level> {
    let mut raw = MAX_LEVEL.load(Ordering::SeqCst);
    if raw == 0 {
        raw = init_level_from_env();
    }
    Level::from_u8(raw)
}

/// Whether a record at `level` would be emitted.
pub fn enabled(level: Level) -> bool {
    max_level().is_some_and(|max| level <= max)
}

/// Emit one structured record (no-op when the level is disabled).
/// Prefer the [`crate::log_event!`] / [`crate::info!`] family, which
/// also skips evaluating the message when disabled.
pub fn log(
    level: Level,
    target: &str,
    message: impl Into<String>,
    fields: Vec<(String, FieldValue)>,
) {
    if !enabled(level) {
        return;
    }
    let record = LogRecord { level, target: target.to_string(), message: message.into(), fields };
    let mut capture = capture_lock();
    match capture.as_mut() {
        Some(buffer) => buffer.push(record),
        // Observability output is the logger's purpose; this is the one
        // place in the library crates allowed to write to stderr.
        #[allow(clippy::print_stderr)]
        None => eprintln!("{}", record.render()),
    }
}

/// Start capturing records in-memory instead of writing them to stderr
/// (test sink). Nested captures are not supported: starting again
/// clears the buffer.
pub fn capture_start() {
    *capture_lock() = Some(Vec::new());
}

/// Stop capturing and return everything captured since
/// [`capture_start`]. Subsequent records go to stderr again.
pub fn capture_stop() -> Vec<LogRecord> {
    capture_lock().take().unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Logger state is global; serialize the tests that mutate it.
    static GUARD: Mutex<()> = Mutex::new(());

    #[test]
    fn level_ordering_and_parse() {
        assert!(Level::Error < Level::Trace);
        assert_eq!(Level::parse("WARN"), Some(Some(Level::Warn)));
        assert_eq!(Level::parse("off"), Some(None));
        assert_eq!(Level::parse("nope"), None);
        assert_eq!(Level::Debug.label(), "debug");
    }

    #[test]
    fn capture_records_fields_and_filters_levels() {
        let _guard = GUARD.lock().unwrap_or_else(|e| e.into_inner());
        set_level(Some(Level::Info));
        capture_start();
        crate::info!("test::target", format!("hello {}", 7), pipeline = "arima", n = 3usize);
        crate::debug!("test::target", "dropped: below max level");
        let records = capture_stop();
        assert_eq!(records.len(), 1);
        let r = &records[0];
        assert_eq!(r.level, Level::Info);
        assert_eq!(r.target, "test::target");
        assert_eq!(r.message, "hello 7");
        assert_eq!(r.fields[0], ("pipeline".to_string(), FieldValue::Str("arima".into())));
        assert_eq!(r.fields[1], ("n".to_string(), FieldValue::UInt(3)));
        set_level(Some(Level::Info));
    }

    #[test]
    fn off_disables_everything() {
        let _guard = GUARD.lock().unwrap_or_else(|e| e.into_inner());
        set_level(None);
        capture_start();
        crate::error!("test::off", "must not appear");
        assert!(capture_stop().is_empty());
        assert!(!enabled(Level::Error));
        set_level(Some(Level::Info));
    }

    #[test]
    fn render_quotes_spaced_strings() {
        let r = LogRecord {
            level: Level::Warn,
            target: "t".into(),
            message: "m".into(),
            fields: vec![("reason".to_string(), FieldValue::Str("took too long".into()))],
        };
        assert_eq!(r.render(), "warn  t: m reason=\"took too long\"");
    }
}

//! Counters, gauges and fixed-log-bucket latency histograms.
//!
//! A [`Registry`] maps metric names (optionally carrying
//! `{key="value"}` labels, see [`labeled`]) to metrics. The process
//! [`global`] registry is what the instrumented stack records into;
//! tests can use private registries. [`Registry::snapshot`] freezes
//! the state into a [`MetricsSnapshot`] that renders as a
//! Prometheus-style text dump or a JSON object.

use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use crate::{format_f64, json_string};

/// Number of histogram buckets. Bucket `i` covers
/// `(ub(i-1), ub(i)]` seconds with `ub(i) = 1e-6 * 2^i`: 1 µs up to
/// ~4295 s, doubling each bucket; the last bucket also absorbs
/// overflow.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// Upper bound (seconds) of bucket `i`.
fn bucket_upper_bound(i: usize) -> f64 {
    1e-6 * 2f64.powi(i as i32)
}

/// Index of the bucket a value falls into (deterministic: computed by
/// repeated doubling, not floating-point logs).
fn bucket_index(value: f64) -> usize {
    // NaN and non-positive values land in the first bucket.
    if value.is_nan() || value <= 0.0 {
        return 0;
    }
    let mut ub = 1e-6;
    let mut i = 0;
    while i < HISTOGRAM_BUCKETS - 1 && value > ub {
        ub *= 2.0;
        i += 1;
    }
    i
}

/// A latency histogram with fixed logarithmic buckets.
///
/// Quantiles are bucket-resolution estimates: [`Histogram::quantile`]
/// returns the upper bound of the bucket containing the requested
/// rank, so the estimate is within one 2× bucket of the true value.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    counts: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            counts: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl Histogram {
    /// New empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation (seconds; negatives clamp to bucket 0).
    pub fn observe(&mut self, value: f64) {
        if value.is_nan() {
            return;
        }
        self.counts[bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value.max(0.0);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (seconds).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean observation, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Bucket-resolution quantile estimate for `q` in `[0, 1]`:
    /// the upper bound of the bucket containing the `ceil(q·count)`-th
    /// observation. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, &n) in self.counts.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(HISTOGRAM_BUCKETS - 1)
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(upper_bound_seconds, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(f64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (bucket_upper_bound(i), n))
            .collect()
    }
}

/// One registered metric.
// Histogram dwarfs the scalar variants, but metrics are few and
// long-lived — boxing would buy nothing and cost an indirection on the
// hot `observe` path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// Monotonic counter.
    Counter(u64),
    /// Last-write-wins gauge.
    Gauge(f64),
    /// Latency histogram.
    Histogram(Histogram),
}

/// A named collection of metrics.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// New empty registry (tests; production code uses [`global`]).
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> MutexGuard<'_, BTreeMap<String, Metric>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Add to a counter (creating it at zero first). `counter_add(n, 0)`
    /// pre-registers the counter so it appears in dumps before the
    /// first increment.
    pub fn counter_add(&self, name: &str, by: u64) {
        // `get_mut` first: the steady-state path (metric exists) must
        // not allocate — these run on ingest hot paths.
        let mut inner = self.lock();
        match inner.get_mut(name) {
            Some(Metric::Counter(v)) => *v += by,
            Some(other) => *other = Metric::Counter(by),
            None => {
                inner.insert(name.to_string(), Metric::Counter(by));
            }
        }
    }

    /// Set a gauge.
    pub fn gauge_set(&self, name: &str, value: f64) {
        let mut inner = self.lock();
        match inner.get_mut(name) {
            Some(metric) => *metric = Metric::Gauge(value),
            None => {
                inner.insert(name.to_string(), Metric::Gauge(value));
            }
        }
    }

    /// Record an observation (seconds) into a histogram.
    pub fn observe(&self, name: &str, seconds: f64) {
        let mut inner = self.lock();
        match inner.get_mut(name) {
            Some(Metric::Histogram(h)) => h.observe(seconds),
            Some(other) => {
                let mut h = Histogram::new();
                h.observe(seconds);
                *other = Metric::Histogram(h);
            }
            None => {
                let mut h = Histogram::new();
                h.observe(seconds);
                inner.insert(name.to_string(), Metric::Histogram(h));
            }
        }
    }

    /// Record a [`Duration`] into a histogram.
    pub fn observe_duration(&self, name: &str, d: Duration) {
        self.observe(name, d.as_secs_f64());
    }

    /// Freeze the current state.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot { metrics: self.lock().clone() }
    }

    /// Remove every metric (between CLI runs / tests).
    pub fn reset(&self) {
        self.lock().clear();
    }
}

/// The process-wide registry the instrumented stack records into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::default)
}

/// [`Registry::counter_add`] on the global registry (no-op while
/// [`crate::set_instrumentation`] is off).
pub fn counter_add(name: &str, by: u64) {
    if crate::instrumentation_on() {
        global().counter_add(name, by);
    }
}

/// [`Registry::gauge_set`] on the global registry (no-op while
/// [`crate::set_instrumentation`] is off).
pub fn gauge_set(name: &str, value: f64) {
    if crate::instrumentation_on() {
        global().gauge_set(name, value);
    }
}

/// [`Registry::observe`] on the global registry (no-op while
/// [`crate::set_instrumentation`] is off).
pub fn observe(name: &str, seconds: f64) {
    if crate::instrumentation_on() {
        global().observe(name, seconds);
    }
}

/// [`Registry::observe_duration`] on the global registry (no-op while
/// [`crate::set_instrumentation`] is off).
pub fn observe_duration(name: &str, d: Duration) {
    if crate::instrumentation_on() {
        global().observe_duration(name, d);
    }
}

/// Canonical labeled metric name: `name{k="v",k2="v2"}`.
pub fn labeled(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let body: Vec<String> =
        labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    format!("{name}{{{}}}", body.join(","))
}

/// An immutable copy of a registry's state, renderable as text.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Metric name (possibly labeled) → value.
    pub metrics: BTreeMap<String, Metric>,
}

/// Split `name{labels}` into (`name`, `{labels}` or "").
fn split_labels(name: &str) -> (&str, &str) {
    match name.find('{') {
        Some(at) => name.split_at(at),
        None => (name, ""),
    }
}

impl MetricsSnapshot {
    /// Fetch a metric by (possibly labeled) name.
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.metrics.get(name)
    }

    /// Counter value, or `None` when absent / not a counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.metrics.get(name) {
            Some(Metric::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// Gauge value, or `None` when absent / not a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.metrics.get(name) {
            Some(Metric::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// Histogram, or `None` when absent / not a histogram.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        match self.metrics.get(name) {
            Some(Metric::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Prometheus-style text dump: `# TYPE` headers, counters and
    /// gauges as plain samples, histograms as summaries
    /// (`{quantile="…"}` samples plus `_sum` / `_count`).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut typed: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
        for (name, metric) in &self.metrics {
            let (base, labels) = split_labels(name);
            match metric {
                Metric::Counter(v) => {
                    if typed.insert(base) {
                        out.push_str(&format!("# TYPE {base} counter\n"));
                    }
                    out.push_str(&format!("{base}{labels} {v}\n"));
                }
                Metric::Gauge(v) => {
                    if typed.insert(base) {
                        out.push_str(&format!("# TYPE {base} gauge\n"));
                    }
                    out.push_str(&format!("{base}{labels} {}\n", format_f64(*v)));
                }
                Metric::Histogram(h) => {
                    if typed.insert(base) {
                        out.push_str(&format!("# TYPE {base} summary\n"));
                    }
                    for q in [0.5, 0.9, 0.99] {
                        out.push_str(&format!(
                            "{base}{{quantile=\"{q}\"}} {}\n",
                            format_f64(h.quantile(q))
                        ));
                    }
                    out.push_str(&format!("{base}_sum {}\n", format_f64(h.sum())));
                    out.push_str(&format!("{base}_count {}\n", h.count()));
                }
            }
        }
        out
    }

    /// JSON object dump: `{"name":{"type":…,…},…}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, metric)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_string(name));
            out.push(':');
            match metric {
                Metric::Counter(v) => {
                    out.push_str(&format!("{{\"type\":\"counter\",\"value\":{v}}}"));
                }
                Metric::Gauge(v) => {
                    out.push_str(&format!(
                        "{{\"type\":\"gauge\",\"value\":{}}}",
                        if v.is_finite() { format_f64(*v) } else { "null".to_string() }
                    ));
                }
                Metric::Histogram(h) => {
                    let buckets: Vec<String> = h
                        .nonzero_buckets()
                        .iter()
                        .map(|(ub, n)| format!("[{},{n}]", format_f64(*ub)))
                        .collect();
                    out.push_str(&format!(
                        "{{\"type\":\"histogram\",\"count\":{},\"sum\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[{}]}}",
                        h.count(),
                        format_f64(h.sum()),
                        format_f64(h.quantile(0.5)),
                        format_f64(h.quantile(0.9)),
                        format_f64(h.quantile(0.99)),
                        buckets.join(",")
                    ));
                }
            }
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_double_from_one_microsecond() {
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-1.0), 0);
        assert_eq!(bucket_index(5e-7), 0); // 0.5 µs ≤ 1 µs
        assert_eq!(bucket_index(1.5e-6), 1); // (1 µs, 2 µs]
        assert_eq!(bucket_index(3e-6), 2); // (2 µs, 4 µs]
        assert_eq!(bucket_index(1e3), 30); // ~1000 s
        assert_eq!(bucket_index(1e12), HISTOGRAM_BUCKETS - 1); // overflow
        assert!((bucket_upper_bound(10) - 1.024e-3).abs() < 1e-12);
    }

    #[test]
    fn quantiles_on_known_distribution() {
        let mut h = Histogram::new();
        // 90 fast observations (~1 ms) and 10 slow ones (~1 s).
        for _ in 0..90 {
            h.observe(0.001);
        }
        for _ in 0..10 {
            h.observe(1.0);
        }
        assert_eq!(h.count(), 100);
        assert!((h.sum() - 10.09).abs() < 1e-9);
        // p50 and p90 land in the 1 ms bucket (ub 1.024 ms), p99 in the
        // 1 s bucket (ub ~1.049 s).
        assert!((h.quantile(0.5) - 1.024e-3).abs() < 1e-12, "{}", h.quantile(0.5));
        assert!((h.quantile(0.9) - 1.024e-3).abs() < 1e-12);
        assert!((h.quantile(0.99) - 1.048576).abs() < 1e-9, "{}", h.quantile(0.99));
        assert_eq!(h.quantile(1.0), h.quantile(0.999));
        // Estimates are upper bounds: within one 2× bucket of truth.
        assert!(h.quantile(0.5) >= 0.001 && h.quantile(0.5) < 0.002);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn merge_combines_counts_and_extremes() {
        let mut a = Histogram::new();
        a.observe(0.001);
        a.observe(0.002);
        let mut b = Histogram::new();
        b.observe(1.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert!((a.sum() - 1.003).abs() < 1e-12);
        assert_eq!(a.min, 0.001);
        assert_eq!(a.max, 1.0);
        assert!((a.quantile(0.99) - 1.048576).abs() < 1e-9);
        // Merging preserves per-bucket counts.
        assert_eq!(a.nonzero_buckets().len(), 3);
    }

    #[test]
    fn registry_counters_gauges_histograms() {
        let r = Registry::new();
        r.counter_add("hits", 0); // pre-register
        r.counter_add("hits", 2);
        r.counter_add("hits", 3);
        r.gauge_set("depth", 4.5);
        r.observe("lat", 0.01);
        r.observe_duration("lat", Duration::from_millis(20));
        let snap = r.snapshot();
        assert_eq!(snap.counter("hits"), Some(5));
        assert_eq!(snap.gauge("depth"), Some(4.5));
        assert_eq!(snap.histogram("lat").map(|h| h.count()), Some(2));
        r.reset();
        assert!(r.snapshot().metrics.is_empty());
    }

    #[test]
    fn labeled_names_render_canonically() {
        assert_eq!(labeled("failures_total", &[]), "failures_total");
        assert_eq!(
            labeled("failures_total", &[("kind", "panic")]),
            "failures_total{kind=\"panic\"}"
        );
        assert_eq!(
            labeled("x", &[("a", "1"), ("b", "2")]),
            "x{a=\"1\",b=\"2\"}"
        );
    }

    #[test]
    fn prometheus_dump_shape() {
        let r = Registry::new();
        r.counter_add(&labeled("fails_total", &[("kind", "panic")]), 2);
        r.counter_add(&labeled("fails_total", &[("kind", "timeout")]), 1);
        r.gauge_set("quarantine_pairs", 3.0);
        r.observe("fit_seconds", 0.001);
        let text = r.snapshot().to_prometheus();
        assert!(text.contains("# TYPE fails_total counter"));
        // The TYPE header appears once even with two labeled series.
        assert_eq!(text.matches("# TYPE fails_total").count(), 1);
        assert!(text.contains("fails_total{kind=\"panic\"} 2"));
        assert!(text.contains("fails_total{kind=\"timeout\"} 1"));
        assert!(text.contains("# TYPE quarantine_pairs gauge"));
        assert!(text.contains("quarantine_pairs 3.0"));
        assert!(text.contains("# TYPE fit_seconds summary"));
        assert!(text.contains("fit_seconds{quantile=\"0.5\"}"));
        assert!(text.contains("fit_seconds_count 1"));
    }

    #[test]
    fn json_dump_is_parseable_by_span_parser_grammar() {
        let r = Registry::new();
        r.counter_add("c", 1);
        r.gauge_set("g", 2.5);
        r.observe("h", 0.003);
        let json = r.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"c\":{\"type\":\"counter\",\"value\":1}"));
        assert!(json.contains("\"type\":\"histogram\""));
        assert!(json.contains("\"p50\":"));
    }
}

#![warn(missing_docs)]

//! # sintel-obs
//!
//! The observability substrate of the Sintel reproduction: structured
//! logging, nested spans with a replayable trace, and a metrics
//! registry. Like `sintel-store`, it is dependency-free and sits at the
//! bottom of the workspace graph so every other crate can instrument
//! itself without pulling anything in.
//!
//! Three layers, all sharing the [`FieldValue`] structured-field type:
//!
//! * [`log`] — a leveled (`error..trace`) structured logger with
//!   `key=value` fields. The level comes from `SINTEL_LOG` (or
//!   [`set_level`]); records go to stderr by default and to an
//!   in-memory buffer while a test capture ([`capture_start`]) is
//!   active.
//! * [`span`] — nested spans timed on one monotonic clock. Opening and
//!   closing a span emits one [`TraceEvent`] each into the process
//!   trace buffer (when [`tracing_start`] has been called), so a whole
//!   benchmark run can be exported as JSON lines ([`export_jsonl`])
//!   and replayed as a flamegraph-style timeline ([`parse_jsonl`]).
//!   [`SpanGuard::close`] returns the span's duration, so callers that
//!   need the number (e.g. `PipelineProfile`) read the *same*
//!   measurement the trace records — one clock, no double counting.
//! * [`metrics`] — a registry of counters, gauges and fixed-log-bucket
//!   latency histograms (p50/p90/p99), dumpable as Prometheus-style
//!   text ([`MetricsSnapshot::to_prometheus`]) or JSON
//!   ([`MetricsSnapshot::to_json`]).

pub mod catalog;
pub mod log;
pub mod metrics;
pub mod rollup;
pub mod span;

pub use crate::catalog::{metric_def, MetricDef, MetricKind, METRICS};
pub use crate::log::{
    capture_start, capture_stop, enabled, log, set_level, Level, LogRecord,
};
pub use crate::metrics::{
    counter_add, gauge_set, global, labeled, observe, observe_duration, Histogram, Metric,
    MetricsSnapshot, Registry,
};
pub use crate::rollup::{
    rollup_add, rollup_observe, rollup_tick, rollups, RollupSeries, RollupSnapshot, Rollups,
};
pub use crate::span::{
    current_span_id, export_jsonl, flush_trace, parse_jsonl, set_trace_capacity,
    set_trace_sink, span, span_with, span_with_parent, trace_tail,
    tracing_active, tracing_start, tracing_stop,
    EventKind, SpanGuard, TraceEvent, TraceFlushGuard,
};

/// Process-wide instrumentation switch (default: on).
///
/// When off, the *global*-registry convenience helpers
/// ([`counter_add`], [`gauge_set`], [`observe`], [`observe_duration`])
/// and the rollup helpers ([`rollup_add`], [`rollup_observe`],
/// [`rollup_tick`]) become no-ops, so `obs_bench` can measure the true
/// overhead of instrumentation on a hot ingest path. Explicit
/// [`Registry`]/[`Rollups`] instances are never gated — tests that own
/// a private registry always see their writes.
static INSTRUMENTATION: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(true);

/// Turn the global instrumentation helpers on or off.
pub fn set_instrumentation(on: bool) {
    INSTRUMENTATION.store(on, std::sync::atomic::Ordering::SeqCst);
}

/// Whether the global instrumentation helpers are currently enabled.
pub fn instrumentation_on() -> bool {
    INSTRUMENTATION.load(std::sync::atomic::Ordering::Relaxed)
}

/// A structured field value attached to log records, spans and trace
/// events.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// A string.
    Str(String),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A float.
    Float(f64),
    /// A boolean.
    Bool(bool),
}

impl FieldValue {
    /// Render as a JSON value fragment (non-finite floats become
    /// `null`, which keeps every exported line parseable).
    pub fn to_json(&self) -> String {
        match self {
            FieldValue::Str(s) => json_string(s),
            FieldValue::Int(v) => v.to_string(),
            FieldValue::UInt(v) => v.to_string(),
            FieldValue::Float(v) if v.is_finite() => format_f64(*v),
            FieldValue::Float(_) => "null".to_string(),
            FieldValue::Bool(b) => b.to_string(),
        }
    }
}

impl std::fmt::Display for FieldValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FieldValue::Str(s) => f.write_str(s),
            FieldValue::Int(v) => write!(f, "{v}"),
            FieldValue::UInt(v) => write!(f, "{v}"),
            FieldValue::Float(v) => write!(f, "{v}"),
            FieldValue::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<&String> for FieldValue {
    fn from(v: &String) -> Self {
        FieldValue::Str(v.clone())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::Int(v)
    }
}
impl From<i32> for FieldValue {
    fn from(v: i32) -> Self {
        FieldValue::Int(v as i64)
    }
}
impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::UInt(v)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::UInt(v as u64)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::UInt(v as u64)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::Float(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<std::time::Duration> for FieldValue {
    fn from(v: std::time::Duration) -> Self {
        FieldValue::Float(v.as_secs_f64())
    }
}

/// Format an `f64` so it round-trips as JSON (always with enough
/// precision, never in a locale-dependent way).
pub(crate) fn format_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        // Keep integral floats readable ("3" not "3.0" is invalid JSON
        // as a float marker is not required, but emit ".0" for clarity).
        format!("{v:.1}")
    } else {
        let s = format!("{v}");
        s
    }
}

/// JSON-escape a string, with surrounding quotes.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render a field list as a JSON object fragment (`{"k":"v",...}`).
pub(crate) fn fields_to_json(fields: &[(String, FieldValue)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_string(k));
        out.push(':');
        out.push_str(&v.to_json());
    }
    out.push('}');
    out
}

/// Log at a level with structured fields:
/// `log_event!(Level::Warn, "sintel::policy", format!("attempt {n} failed"), kind = "panic", attempt = n)`.
///
/// The message expression is only evaluated when the level is enabled.
#[macro_export]
macro_rules! log_event {
    ($lvl:expr, $target:expr, $msg:expr $(, $k:ident = $v:expr)* $(,)?) => {
        if $crate::enabled($lvl) {
            $crate::log(
                $lvl,
                $target,
                $msg,
                vec![$((stringify!($k).to_string(), $crate::FieldValue::from($v))),*],
            );
        }
    };
}

/// [`log_event!`] at [`Level::Error`].
#[macro_export]
macro_rules! error {
    ($($t:tt)*) => { $crate::log_event!($crate::Level::Error, $($t)*) };
}
/// [`log_event!`] at [`Level::Warn`].
#[macro_export]
macro_rules! warn {
    ($($t:tt)*) => { $crate::log_event!($crate::Level::Warn, $($t)*) };
}
/// [`log_event!`] at [`Level::Info`].
#[macro_export]
macro_rules! info {
    ($($t:tt)*) => { $crate::log_event!($crate::Level::Info, $($t)*) };
}
/// [`log_event!`] at [`Level::Debug`].
#[macro_export]
macro_rules! debug {
    ($($t:tt)*) => { $crate::log_event!($crate::Level::Debug, $($t)*) };
}
/// [`log_event!`] at [`Level::Trace`].
#[macro_export]
macro_rules! trace {
    ($($t:tt)*) => { $crate::log_event!($crate::Level::Trace, $($t)*) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_value_json_fragments() {
        assert_eq!(FieldValue::from("a\"b").to_json(), "\"a\\\"b\"");
        assert_eq!(FieldValue::from(3i64).to_json(), "3");
        assert_eq!(FieldValue::from(2.5f64).to_json(), "2.5");
        assert_eq!(FieldValue::from(f64::NAN).to_json(), "null");
        assert_eq!(FieldValue::from(true).to_json(), "true");
        assert_eq!(
            FieldValue::from(std::time::Duration::from_millis(1500)),
            FieldValue::Float(1.5)
        );
    }

    #[test]
    fn json_string_escapes_controls() {
        assert_eq!(json_string("a\nb\t\u{1}"), "\"a\\nb\\t\\u0001\"");
    }

    #[test]
    fn fields_to_json_shape() {
        let fields =
            vec![("a".to_string(), FieldValue::Int(1)), ("b".to_string(), "x".into())];
        assert_eq!(fields_to_json(&fields), "{\"a\":1,\"b\":\"x\"}");
        assert_eq!(fields_to_json(&[]), "{}");
    }
}

//! Windowed per-tick rollups — live rates, deltas and per-window
//! latency quantiles over the last N *logical* ticks.
//!
//! The cumulative [`crate::metrics`] registry answers "how many events
//! ever"; an operator watching a live engine needs "how many events
//! *per tick*, lately". A [`Rollups`] registry keeps, per series, an
//! accumulator for the tick in progress plus a ring buffer of the last
//! `window` completed ticks. Producers record into the accumulator
//! ([`rollup_add`] / [`rollup_observe`]); the engine advances the
//! clock once per tick ([`rollup_tick`]), which seals every
//! accumulator into its ring. Snapshots then answer events/tick,
//! sheds/tick, and p99-over-the-last-window without any background
//! thread — the clock is logical, driven by the instrumented loop
//! itself, so rollups stay deterministic and scrape-independent.
//!
//! Two series kinds:
//!
//! * **delta** — a `u64` sum per tick (events admitted, sheds, …).
//! * **observe** — a [`Histogram`] per tick (pass latency, …), merged
//!   across the window for quantiles.
//!
//! Like the metrics registry, there is a process [`rollups`] registry
//! gated by [`crate::set_instrumentation`], and tests can own private
//! [`Rollups`] instances that are never gated.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Mutex, MutexGuard, OnceLock};

use crate::metrics::Histogram;
use crate::{format_f64, json_string};

/// Default number of completed ticks a ring retains.
pub const DEFAULT_WINDOW: usize = 64;

#[derive(Debug, Clone)]
enum Series {
    /// Per-tick sums.
    Delta { current: u64, ring: VecDeque<u64> },
    /// Per-tick histograms.
    Observe { current: Histogram, ring: VecDeque<Histogram> },
}

impl Series {
    fn seal(&mut self, window: usize) {
        match self {
            Series::Delta { current, ring } => {
                ring.push_back(std::mem::take(current));
                while ring.len() > window {
                    ring.pop_front();
                }
            }
            Series::Observe { current, ring } => {
                ring.push_back(std::mem::take(current));
                while ring.len() > window {
                    ring.pop_front();
                }
            }
        }
    }
}

#[derive(Debug)]
struct Inner {
    window: usize,
    ticks: u64,
    series: BTreeMap<String, Series>,
}

/// A registry of windowed per-tick series (see module docs).
#[derive(Debug)]
pub struct Rollups {
    inner: Mutex<Inner>,
}

impl Default for Rollups {
    fn default() -> Self {
        Self {
            inner: Mutex::new(Inner {
                window: DEFAULT_WINDOW,
                ticks: 0,
                series: BTreeMap::new(),
            }),
        }
    }
}

impl Rollups {
    /// New empty registry with the default window.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Set the ring length (completed ticks retained); clamps to ≥ 1
    /// and truncates existing rings from the oldest end.
    pub fn set_window(&self, window: usize) {
        let mut inner = self.lock();
        inner.window = window.max(1);
        let window = inner.window;
        for series in inner.series.values_mut() {
            match series {
                Series::Delta { ring, .. } => {
                    while ring.len() > window {
                        ring.pop_front();
                    }
                }
                Series::Observe { ring, .. } => {
                    while ring.len() > window {
                        ring.pop_front();
                    }
                }
            }
        }
    }

    /// Add to a delta series' current-tick sum (creating the series on
    /// first use; `add(name, 0)` pre-registers it).
    pub fn add(&self, name: &str, by: u64) {
        let mut inner = self.lock();
        match inner
            .series
            .entry(name.to_string())
            .or_insert_with(|| Series::Delta { current: 0, ring: VecDeque::new() })
        {
            Series::Delta { current, .. } => *current += by,
            other => *other = Series::Delta { current: by, ring: VecDeque::new() },
        }
    }

    /// Record an observation (seconds) into an observe series'
    /// current-tick histogram.
    pub fn observe(&self, name: &str, seconds: f64) {
        let mut inner = self.lock();
        match inner.series.entry(name.to_string()).or_insert_with(|| Series::Observe {
            current: Histogram::new(),
            ring: VecDeque::new(),
        }) {
            Series::Observe { current, .. } => current.observe(seconds),
            other => {
                let mut h = Histogram::new();
                h.observe(seconds);
                *other = Series::Observe { current: h, ring: VecDeque::new() };
            }
        }
    }

    /// Advance the logical clock: seal every series' accumulator into
    /// its ring (dropping ticks beyond the window) and return the
    /// number of completed ticks.
    pub fn tick(&self) -> u64 {
        let mut inner = self.lock();
        let window = inner.window;
        for series in inner.series.values_mut() {
            series.seal(window);
        }
        inner.ticks += 1;
        inner.ticks
    }

    /// Remove every series and reset the clock (between runs / tests).
    pub fn reset(&self) {
        let mut inner = self.lock();
        inner.series.clear();
        inner.ticks = 0;
    }

    /// Freeze the completed-tick state (the in-progress accumulator is
    /// excluded: it is not a finished tick yet).
    pub fn snapshot(&self) -> RollupSnapshot {
        let inner = self.lock();
        let series = inner
            .series
            .iter()
            .map(|(name, series)| {
                let summary = match series {
                    Series::Delta { ring, .. } => {
                        let window_total: u64 = ring.iter().sum();
                        let ticks_covered = ring.len();
                        RollupSeries::Delta {
                            last: ring.back().copied().unwrap_or(0),
                            window_total,
                            ticks_covered,
                            per_tick: if ticks_covered == 0 {
                                0.0
                            } else {
                                window_total as f64 / ticks_covered as f64
                            },
                            peak: ring.iter().copied().max().unwrap_or(0),
                        }
                    }
                    Series::Observe { ring, .. } => {
                        let mut merged = Histogram::new();
                        for h in ring {
                            merged.merge(h);
                        }
                        RollupSeries::Observe {
                            last_count: ring.back().map(|h| h.count()).unwrap_or(0),
                            ticks_covered: ring.len(),
                            window: merged,
                        }
                    }
                };
                (name.clone(), summary)
            })
            .collect();
        RollupSnapshot { window: inner.window, ticks: inner.ticks, series }
    }
}

/// The process-wide rollup registry.
pub fn rollups() -> &'static Rollups {
    static GLOBAL: OnceLock<Rollups> = OnceLock::new();
    GLOBAL.get_or_init(Rollups::default)
}

/// [`Rollups::add`] on the process registry (no-op while
/// [`crate::set_instrumentation`] is off).
pub fn rollup_add(name: &str, by: u64) {
    if crate::instrumentation_on() {
        rollups().add(name, by);
    }
}

/// [`Rollups::observe`] on the process registry (no-op while
/// [`crate::set_instrumentation`] is off).
pub fn rollup_observe(name: &str, seconds: f64) {
    if crate::instrumentation_on() {
        rollups().observe(name, seconds);
    }
}

/// [`Rollups::tick`] on the process registry; returns 0 without
/// advancing while [`crate::set_instrumentation`] is off.
pub fn rollup_tick() -> u64 {
    if crate::instrumentation_on() {
        rollups().tick()
    } else {
        0
    }
}

/// One series in a [`RollupSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum RollupSeries {
    /// Per-tick sums over the window.
    Delta {
        /// Sum of the most recent completed tick.
        last: u64,
        /// Sum across the whole window.
        window_total: u64,
        /// Completed ticks in the ring (≤ window).
        ticks_covered: usize,
        /// `window_total / ticks_covered` (0 when empty).
        per_tick: f64,
        /// Largest single-tick sum in the window.
        peak: u64,
    },
    /// Per-tick histograms merged across the window.
    Observe {
        /// Observation count of the most recent completed tick.
        last_count: u64,
        /// Completed ticks in the ring (≤ window).
        ticks_covered: usize,
        /// All window observations merged (quantiles, count, sum).
        window: Histogram,
    },
}

/// An immutable copy of a [`Rollups`] registry's completed-tick state.
#[derive(Debug, Clone)]
pub struct RollupSnapshot {
    /// Ring length the registry was configured with.
    pub window: usize,
    /// Completed ticks since start/reset.
    pub ticks: u64,
    /// Series name → windowed summary.
    pub series: BTreeMap<String, RollupSeries>,
}

impl RollupSnapshot {
    /// Fetch a series by name.
    pub fn get(&self, name: &str) -> Option<&RollupSeries> {
        self.series.get(name)
    }

    /// Prometheus-style gauges derived from the window. Every sample
    /// is a gauge: rates go up *and* down, unlike the cumulative
    /// registry's counters. A delta series `X` renders `X_last`,
    /// `X_window_total` and `X_window_per_tick`; an observe series
    /// renders `X_window_count` and `X_window_p50/p90/p99`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, series) in &self.series {
            match series {
                RollupSeries::Delta { last, window_total, per_tick, .. } => {
                    for (suffix, value) in [
                        ("last", *last as f64),
                        ("window_total", *window_total as f64),
                        ("window_per_tick", *per_tick),
                    ] {
                        out.push_str(&format!("# TYPE {name}_{suffix} gauge\n"));
                        out.push_str(&format!("{name}_{suffix} {}\n", format_f64(value)));
                    }
                }
                RollupSeries::Observe { window, .. } => {
                    out.push_str(&format!("# TYPE {name}_window_count gauge\n"));
                    out.push_str(&format!("{name}_window_count {}\n", window.count()));
                    for (suffix, q) in [("p50", 0.5), ("p90", 0.9), ("p99", 0.99)] {
                        out.push_str(&format!("# TYPE {name}_window_{suffix} gauge\n"));
                        out.push_str(&format!(
                            "{name}_window_{suffix} {}\n",
                            format_f64(window.quantile(q))
                        ));
                    }
                }
            }
        }
        out
    }

    /// JSON object dump:
    /// `{"window":…,"ticks":…,"series":{"name":{…},…}}`.
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\"window\":{},\"ticks\":{},\"series\":{{", self.window, self.ticks);
        for (i, (name, series)) in self.series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_string(name));
            out.push(':');
            match series {
                RollupSeries::Delta { last, window_total, ticks_covered, per_tick, peak } => {
                    out.push_str(&format!(
                        "{{\"kind\":\"delta\",\"last\":{last},\"window_total\":{window_total},\"ticks\":{ticks_covered},\"per_tick\":{},\"peak\":{peak}}}",
                        format_f64(*per_tick)
                    ));
                }
                RollupSeries::Observe { last_count, ticks_covered, window } => {
                    out.push_str(&format!(
                        "{{\"kind\":\"observe\",\"last_count\":{last_count},\"ticks\":{ticks_covered},\"count\":{},\"sum\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
                        window.count(),
                        format_f64(window.sum()),
                        format_f64(window.quantile(0.5)),
                        format_f64(window.quantile(0.9)),
                        format_f64(window.quantile(0.99)),
                    ));
                }
            }
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_rollup_windows_and_rates() {
        let r = Rollups::new();
        r.set_window(3);
        for tick in 0..5u64 {
            r.add("events", tick + 1); // 1, 2, 3, 4, 5
            r.tick();
        }
        let snap = r.snapshot();
        assert_eq!(snap.ticks, 5);
        match snap.get("events") {
            Some(RollupSeries::Delta { last, window_total, ticks_covered, per_tick, peak }) => {
                assert_eq!(*last, 5);
                assert_eq!(*window_total, 3 + 4 + 5, "only the last 3 ticks survive");
                assert_eq!(*ticks_covered, 3);
                assert!((*per_tick - 4.0).abs() < 1e-12);
                assert_eq!(*peak, 5);
            }
            other => panic!("expected delta series, got {other:?}"),
        }
    }

    #[test]
    fn in_progress_tick_is_not_visible_until_sealed() {
        let r = Rollups::new();
        r.add("events", 7);
        match r.snapshot().get("events") {
            Some(RollupSeries::Delta { last, window_total, .. }) => {
                assert_eq!((*last, *window_total), (0, 0));
            }
            other => panic!("expected delta series, got {other:?}"),
        }
        r.tick();
        match r.snapshot().get("events") {
            Some(RollupSeries::Delta { last, .. }) => assert_eq!(*last, 7),
            other => panic!("expected delta series, got {other:?}"),
        }
    }

    #[test]
    fn observe_rollup_merges_window_histograms() {
        let r = Rollups::new();
        r.set_window(2);
        r.observe("lat", 0.001);
        r.tick();
        r.observe("lat", 0.001);
        r.observe("lat", 1.0);
        r.tick();
        match r.snapshot().get("lat") {
            Some(RollupSeries::Observe { last_count, ticks_covered, window }) => {
                assert_eq!(*last_count, 2);
                assert_eq!(*ticks_covered, 2);
                assert_eq!(window.count(), 3);
                assert!(window.quantile(0.99) > 1.0, "slow outlier dominates p99");
            }
            other => panic!("expected observe series, got {other:?}"),
        }
        // A third tick evicts the first; only 2 observations remain.
        r.tick();
        match r.snapshot().get("lat") {
            Some(RollupSeries::Observe { window, .. }) => assert_eq!(window.count(), 2),
            other => panic!("expected observe series, got {other:?}"),
        }
    }

    #[test]
    fn empty_ticks_are_recorded_as_zero() {
        let r = Rollups::new();
        r.add("sheds", 0); // pre-register
        r.tick();
        r.tick();
        match r.snapshot().get("sheds") {
            Some(RollupSeries::Delta { ticks_covered, window_total, .. }) => {
                assert_eq!(*ticks_covered, 2);
                assert_eq!(*window_total, 0);
            }
            other => panic!("expected delta series, got {other:?}"),
        }
    }

    #[test]
    fn shrinking_the_window_truncates_oldest_ticks() {
        let r = Rollups::new();
        for i in 0..10u64 {
            r.add("n", i);
            r.tick();
        }
        r.set_window(2);
        match r.snapshot().get("n") {
            Some(RollupSeries::Delta { window_total, ticks_covered, .. }) => {
                assert_eq!(*ticks_covered, 2);
                assert_eq!(*window_total, 8 + 9);
            }
            other => panic!("expected delta series, got {other:?}"),
        }
    }

    #[test]
    fn renders_prometheus_gauges_and_json() {
        let r = Rollups::new();
        r.add("sintel_serve_events_per_tick", 3);
        r.observe("sintel_serve_pass_window_seconds", 0.01);
        r.tick();
        let snap = r.snapshot();
        let text = snap.to_prometheus();
        assert!(text.contains("# TYPE sintel_serve_events_per_tick_last gauge"));
        assert!(text.contains("sintel_serve_events_per_tick_last 3.0"));
        assert!(text.contains("sintel_serve_events_per_tick_window_per_tick 3.0"));
        assert!(text.contains("sintel_serve_pass_window_seconds_window_count 1"));
        assert!(text.contains("sintel_serve_pass_window_seconds_window_p99"));
        let json = snap.to_json();
        assert!(json.starts_with("{\"window\":"));
        assert!(json.contains("\"kind\":\"delta\""));
        assert!(json.contains("\"kind\":\"observe\""));
    }

    #[test]
    fn reset_clears_series_and_clock() {
        let r = Rollups::new();
        r.add("x", 1);
        r.tick();
        r.reset();
        let snap = r.snapshot();
        assert_eq!(snap.ticks, 0);
        assert!(snap.series.is_empty());
    }
}

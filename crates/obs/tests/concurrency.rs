//! Concurrency stress tests for the observability substrate.
//!
//! The parallel benchmark and tuner hammer the metrics registry and the
//! span exporter from worker threads; these tests pin the guarantees
//! they rely on:
//!
//! * counter totals are exact under contention (no lost updates),
//! * the JSONL trace parses losslessly however threads interleave,
//! * span parentage never leaks across threads — a span nests under
//!   another thread's parent only when attached explicitly via
//!   [`sintel_obs::span_with_parent`].

use std::collections::HashMap;
use std::sync::Mutex;
use std::thread;

use sintel_obs::{
    current_span_id, export_jsonl, parse_jsonl, span, span_with_parent, tracing_start,
    tracing_stop, EventKind, Registry, TraceEvent,
};

/// Tracing state is process-global, so tests that record traces must
/// not interleave with each other.
static TRACE_GUARD: Mutex<()> = Mutex::new(());

const THREADS: usize = 8;
const OPS: usize = 2_000;

#[test]
fn counter_totals_are_exact_under_contention() {
    let registry = Registry::new();
    thread::scope(|scope| {
        for t in 0..THREADS {
            let registry = &registry;
            scope.spawn(move || {
                for i in 0..OPS {
                    registry.counter_add("stress_total", 1);
                    registry.counter_add(&format!("stress_thread_{t}_total"), 1);
                    registry.observe("stress_seconds", (i % 7) as f64 * 1e-3);
                }
            });
        }
    });
    let snapshot = registry.snapshot();
    assert_eq!(snapshot.counter("stress_total"), Some((THREADS * OPS) as u64));
    for t in 0..THREADS {
        assert_eq!(
            snapshot.counter(&format!("stress_thread_{t}_total")),
            Some(OPS as u64),
            "per-thread counter {t} lost updates"
        );
    }
    let hist = snapshot.histogram("stress_seconds").expect("histogram exists");
    assert_eq!(hist.count(), (THREADS * OPS) as u64);
}

/// Per-thread span structure produced by one stress worker: the id of
/// its own root span and the ids of the children it nested under it.
struct ThreadSpans {
    root: u64,
    children: Vec<u64>,
    explicit: u64,
}

#[test]
fn span_parentage_never_crosses_threads() {
    let _guard = TRACE_GUARD.lock().expect("trace guard");
    tracing_start();

    // A shared ancestor opened on the main thread; workers attach to it
    // explicitly, the way the parallel benchmark attaches trial spans
    // to their row span.
    let shared = span("stress.shared");
    let shared_id = shared.id();

    let mut reports: Vec<ThreadSpans> = Vec::new();
    thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            handles.push(scope.spawn(move || {
                // Fresh thread: no inherited stack.
                assert_eq!(current_span_id(), None);
                let root = span("stress.root");
                let root_id = root.id();
                assert_eq!(current_span_id(), Some(root_id));
                let mut children = Vec::new();
                for _ in 0..50 {
                    let child = span("stress.child");
                    children.push(child.id());
                    child.close();
                }
                // Explicit cross-thread attachment to the shared span.
                let explicit = span_with_parent("stress.task", &[], Some(shared_id));
                let explicit_id = explicit.id();
                explicit.close();
                root.close();
                ThreadSpans { root: root_id, children, explicit: explicit_id }
            }));
        }
        for handle in handles {
            reports.push(handle.join().expect("stress worker panicked"));
        }
    });
    shared.close();
    let events = tracing_stop();

    // JSONL round-trips losslessly no matter how threads interleaved.
    let parsed = parse_jsonl(&export_jsonl(&events)).expect("trace parses");
    assert_eq!(parsed, events, "JSONL round-trip altered the trace");

    let opens: HashMap<u64, &TraceEvent> = events
        .iter()
        .filter(|e| e.kind == EventKind::Open)
        .map(|e| (e.id, e))
        .collect();
    let closes = events.iter().filter(|e| e.kind == EventKind::Close).count();
    assert_eq!(opens.len(), closes, "every span must open and close exactly once");

    // Which root id belongs to which thread.
    let owner_of_root: HashMap<u64, usize> =
        reports.iter().enumerate().map(|(t, r)| (r.root, t)).collect();

    for (t, report) in reports.iter().enumerate() {
        let root_open = opens.get(&report.root).expect("root span recorded");
        assert_eq!(
            root_open.parent, None,
            "thread {t} root must not nest under any other span"
        );
        for child in &report.children {
            let child_open = opens.get(child).expect("child span recorded");
            let parent = child_open.parent.expect("child has a parent");
            assert_eq!(
                parent, report.root,
                "thread {t} child nests under span {parent}, not its own root"
            );
            if let Some(owner) = owner_of_root.get(&parent) {
                assert_eq!(*owner, t, "child leaked under another thread's root");
            }
        }
        let explicit_open = opens.get(&report.explicit).expect("explicit span recorded");
        assert_eq!(
            explicit_open.parent,
            Some(shared_id),
            "explicitly attached span must record exactly the requested parent"
        );
    }
}

#[test]
fn concurrent_traces_export_every_event() {
    let _guard = TRACE_GUARD.lock().expect("trace guard");
    tracing_start();
    thread::scope(|scope| {
        for _ in 0..THREADS {
            scope.spawn(|| {
                for _ in 0..200 {
                    span("stress.spin").close();
                }
            });
        }
    });
    let events = tracing_stop();
    let opens = events.iter().filter(|e| e.kind == EventKind::Open).count();
    let closes = events.iter().filter(|e| e.kind == EventKind::Close).count();
    assert_eq!(opens, THREADS * 200, "lost open events under contention");
    assert_eq!(closes, THREADS * 200, "lost close events under contention");
    let parsed = parse_jsonl(&export_jsonl(&events)).expect("trace parses");
    assert_eq!(parsed.len(), events.len());
}

//! Tuner implementations and the budgeted search session.

use sintel_common::SintelRng;

use crate::gp::{expected_improvement, GaussianProcess};
use crate::space::Space;
use crate::{Result, TunerError};

/// Common interface of hyperparameter tuners: propose a unit-cube point,
/// record its observed score (higher is better), repeat.
pub trait Tuner {
    /// Propose the next candidate (unit-cube coordinates).
    fn propose(&mut self) -> Result<Vec<f64>>;

    /// Record the score observed for a candidate.
    fn record(&mut self, point: Vec<f64>, score: f64);

    /// Best `(point, score)` recorded so far.
    fn best(&self) -> Option<(&[f64], f64)>;

    /// Number of recorded evaluations.
    fn num_observations(&self) -> usize;
}

/// Observation storage shared by the tuner implementations.
#[derive(Debug, Clone, Default)]
struct History {
    xs: Vec<Vec<f64>>,
    ys: Vec<f64>,
}

impl History {
    fn record(&mut self, x: Vec<f64>, y: f64) {
        self.xs.push(x);
        self.ys.push(y);
    }

    fn best(&self) -> Option<(&[f64], f64)> {
        let idx = sintel_common::argmax(&self.ys)?;
        Some((&self.xs[idx], self.ys[idx]))
    }
}

/// Uniform random search — the baseline tuner.
#[derive(Debug, Clone)]
pub struct RandomTuner {
    space: Space,
    rng: SintelRng,
    history: History,
}

impl RandomTuner {
    /// Create for a space.
    pub fn new(space: Space, seed: u64) -> Self {
        Self { space, rng: SintelRng::seed_from_u64(seed), history: History::default() }
    }
}

impl Tuner for RandomTuner {
    fn propose(&mut self) -> Result<Vec<f64>> {
        if self.space.is_empty() {
            return Err(TunerError::EmptySpace);
        }
        Ok(self.space.sample_unit(&mut self.rng))
    }

    fn record(&mut self, point: Vec<f64>, score: f64) {
        self.history.record(point, score);
    }

    fn best(&self) -> Option<(&[f64], f64)> {
        self.history.best()
    }

    fn num_observations(&self) -> usize {
        self.history.ys.len()
    }
}

/// BTB-style `GPTuner`: Gaussian-process meta-model + Expected
/// Improvement acquisition over random candidates.
#[derive(Debug, Clone)]
pub struct GpTuner {
    space: Space,
    rng: SintelRng,
    history: History,
    /// Random proposals before the GP takes over.
    n_initial: usize,
    /// Candidate pool size per acquisition round.
    n_candidates: usize,
}

impl GpTuner {
    /// Create for a space with default settings (5 warm-up points, 200
    /// acquisition candidates).
    pub fn new(space: Space, seed: u64) -> Self {
        Self {
            space,
            rng: SintelRng::seed_from_u64(seed),
            history: History::default(),
            n_initial: 5,
            n_candidates: 200,
        }
    }
}

impl Tuner for GpTuner {
    fn propose(&mut self) -> Result<Vec<f64>> {
        if self.space.is_empty() {
            return Err(TunerError::EmptySpace);
        }
        if self.history.ys.len() < self.n_initial {
            return Ok(self.space.sample_unit(&mut self.rng));
        }
        // Fit the meta-model; if the fit degenerates, fall back to random.
        let lengthscale = 0.2 * (self.space.len() as f64).sqrt().max(1.0);
        let mut gp = GaussianProcess::new(lengthscale, 1e-4);
        if gp.fit(&self.history.xs, &self.history.ys).is_err() {
            return Ok(self.space.sample_unit(&mut self.rng));
        }
        let best_y = self.history.best().map(|(_, y)| y).unwrap_or(0.0);
        let mut best_candidate = None;
        let mut best_ei = f64::NEG_INFINITY;
        for _ in 0..self.n_candidates {
            let cand = self.space.sample_unit(&mut self.rng);
            let Ok((mean, std)) = gp.predict(&cand) else { continue };
            let ei = expected_improvement(mean, std, best_y, 0.01);
            if ei > best_ei {
                best_ei = ei;
                best_candidate = Some(cand);
            }
        }
        Ok(best_candidate.unwrap_or_else(|| self.space.sample_unit(&mut self.rng)))
    }

    fn record(&mut self, point: Vec<f64>, score: f64) {
        self.history.record(point, score);
    }

    fn best(&self) -> Option<(&[f64], f64)> {
        self.history.best()
    }

    fn num_observations(&self) -> usize {
        self.history.ys.len()
    }
}

/// A budgeted propose → evaluate → record loop (paper Figure 5: "continue
/// the search until our budget runs out").
///
/// ```
/// use sintel_tuner::{DimSpec, GpTuner, Space, TuningSession};
///
/// let space = Space::new(vec![DimSpec::Float { lo: 0.0, hi: 1.0, log: false }]);
/// let mut session = TuningSession::new(GpTuner::new(space, 7), 20);
/// // Maximise a 1-D objective peaking at x = 0.3.
/// let (best_x, best_y) = session.run(|x| -(x[0] - 0.3) * (x[0] - 0.3)).unwrap();
/// assert!((best_x[0] - 0.3).abs() < 0.2);
/// assert!(best_y <= 0.0);
/// ```
pub struct TuningSession<T: Tuner> {
    tuner: T,
    budget: usize,
}

impl<T: Tuner> TuningSession<T> {
    /// Create with an evaluation budget.
    pub fn new(tuner: T, budget: usize) -> Self {
        Self { tuner, budget }
    }

    /// Run the loop: `objective` scores each proposed unit-cube point
    /// (higher is better). Returns the best `(point, score)`.
    pub fn run(
        &mut self,
        mut objective: impl FnMut(&[f64]) -> f64,
    ) -> Result<(Vec<f64>, f64)> {
        for _ in 0..self.budget {
            let cand = self.tuner.propose()?;
            let score = objective(&cand);
            self.tuner.record(cand, score);
        }
        self.tuner
            .best()
            .map(|(x, y)| (x.to_vec(), y))
            .ok_or(TunerError::EmptySpace)
    }

    /// Access the underlying tuner (e.g. to inspect the history).
    pub fn tuner(&self) -> &T {
        &self.tuner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::DimSpec;

    fn unit_space(d: usize) -> Space {
        Space::new(vec![DimSpec::Float { lo: 0.0, hi: 1.0, log: false }; d])
    }

    /// Smooth 2-D objective with optimum at (0.3, 0.7).
    fn objective(x: &[f64]) -> f64 {
        let dx = x[0] - 0.3;
        let dy = x[1] - 0.7;
        (-4.0 * (dx * dx + dy * dy)).exp()
    }

    #[test]
    fn empty_space_rejected() {
        let mut t = GpTuner::new(Space::default(), 0);
        assert_eq!(t.propose().unwrap_err(), TunerError::EmptySpace);
        let mut r = RandomTuner::new(Space::default(), 0);
        assert_eq!(r.propose().unwrap_err(), TunerError::EmptySpace);
    }

    #[test]
    fn random_tuner_tracks_best() {
        let mut t = RandomTuner::new(unit_space(2), 1);
        for _ in 0..20 {
            let p = t.propose().unwrap();
            let s = objective(&p);
            t.record(p, s);
        }
        assert_eq!(t.num_observations(), 20);
        let (_, best) = t.best().unwrap();
        assert!(best > 0.1);
    }

    #[test]
    fn gp_tuner_beats_random_on_smooth_objective() {
        // With an equal budget the GP tuner should (on average) find a
        // better optimum than random search. Compare over a few seeds to
        // avoid flakiness.
        let budget = 30;
        let mut gp_wins = 0;
        for seed in 0..5u64 {
            let mut gp = TuningSession::new(GpTuner::new(unit_space(2), seed), budget);
            let (_, gp_best) = gp.run(objective).unwrap();
            let mut rnd = TuningSession::new(RandomTuner::new(unit_space(2), seed), budget);
            let (_, rnd_best) = rnd.run(objective).unwrap();
            if gp_best >= rnd_best {
                gp_wins += 1;
            }
        }
        assert!(gp_wins >= 3, "GP won only {gp_wins}/5 seeds");
    }

    #[test]
    fn gp_tuner_improves_over_warmup() {
        let mut session = TuningSession::new(GpTuner::new(unit_space(2), 7), 40);
        let (_, best) = session.run(objective).unwrap();
        assert!(best > 0.8, "best {best}");
        // The best proposal should sit near the true optimum.
        let hist = session.tuner();
        let (x, _) = hist.best().unwrap();
        assert!((x[0] - 0.3).abs() < 0.2 && (x[1] - 0.7).abs() < 0.2, "{x:?}");
    }

    #[test]
    fn proposals_stay_in_unit_cube() {
        let mut t = GpTuner::new(unit_space(3), 3);
        for i in 0..15 {
            let p = t.propose().unwrap();
            assert!(p.iter().all(|v| (0.0..=1.0).contains(v)), "iter {i}: {p:?}");
            let s = p.iter().sum::<f64>();
            t.record(p, s);
        }
    }

    #[test]
    fn session_exhausts_budget() {
        let mut calls = 0;
        let mut session = TuningSession::new(RandomTuner::new(unit_space(1), 0), 12);
        session
            .run(|_| {
                calls += 1;
                0.0
            })
            .unwrap();
        assert_eq!(calls, 12);
    }
}

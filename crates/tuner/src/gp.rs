//! A small Gaussian-process regressor (RBF kernel) — the meta-model
//! behind [`crate::GpTuner`], fitted with the Cholesky factorisation from
//! `sintel-linalg`.

use sintel_linalg::{cholesky, solve_lower, solve_upper, Matrix};

use crate::{Result, TunerError};

/// Gaussian process with an RBF kernel and homoskedastic noise.
#[derive(Debug, Clone)]
pub struct GaussianProcess {
    lengthscale: f64,
    noise: f64,
    xs: Vec<Vec<f64>>,
    /// Cholesky factor of `K + noise*I`.
    chol: Option<Matrix>,
    /// `alpha = K^{-1} y` (with y mean-centred).
    alpha: Vec<f64>,
    y_mean: f64,
}

fn rbf(a: &[f64], b: &[f64], lengthscale: f64) -> f64 {
    let d2: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    (-0.5 * d2 / (lengthscale * lengthscale)).exp()
}

impl GaussianProcess {
    /// Create an unfitted GP.
    pub fn new(lengthscale: f64, noise: f64) -> Self {
        Self {
            lengthscale,
            noise: noise.max(1e-10),
            xs: Vec::new(),
            chol: None,
            alpha: Vec::new(),
            y_mean: 0.0,
        }
    }

    /// Fit on observations (maximising callers should pass raw scores).
    pub fn fit(&mut self, xs: &[Vec<f64>], ys: &[f64]) -> Result<()> {
        if xs.is_empty() || xs.len() != ys.len() {
            return Err(TunerError::DimensionMismatch { expected: xs.len(), got: ys.len() });
        }
        let n = xs.len();
        self.y_mean = ys.iter().sum::<f64>() / n as f64;
        let centred: Vec<f64> = ys.iter().map(|y| y - self.y_mean).collect();
        let mut k = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let v = rbf(&xs[i], &xs[j], self.lengthscale);
                k[(i, j)] = v;
                k[(j, i)] = v;
            }
            k[(i, i)] += self.noise;
        }
        let l = cholesky(&k).map_err(|e| TunerError::Numerical(e.to_string()))?;
        // alpha = K^{-1} y via two triangular solves.
        let tmp = solve_lower(&l, &centred).map_err(|e| TunerError::Numerical(e.to_string()))?;
        self.alpha =
            solve_upper(&l.transpose(), &tmp).map_err(|e| TunerError::Numerical(e.to_string()))?;
        self.chol = Some(l);
        self.xs = xs.to_vec();
        Ok(())
    }

    /// Predictive mean and standard deviation at `x`.
    pub fn predict(&self, x: &[f64]) -> Result<(f64, f64)> {
        let l = self.chol.as_ref().ok_or(TunerError::EmptySpace)?;
        let kstar: Vec<f64> =
            self.xs.iter().map(|xi| rbf(xi, x, self.lengthscale)).collect();
        let mean = self.y_mean + sintel_linalg::dot(&kstar, &self.alpha);
        let v = solve_lower(l, &kstar).map_err(|e| TunerError::Numerical(e.to_string()))?;
        let var = (1.0 + self.noise - sintel_linalg::dot(&v, &v)).max(1e-12);
        Ok((mean, var.sqrt()))
    }
}

/// Standard normal CDF (Abramowitz–Stegun 7.1.26 via erf approximation).
pub fn norm_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Standard normal PDF.
pub fn norm_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

fn erf(x: f64) -> f64 {
    // Abramowitz & Stegun 7.1.26, |error| < 1.5e-7.
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736 + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Expected improvement of predictive `(mean, std)` over `best` (for
/// maximisation), with exploration margin `xi`.
pub fn expected_improvement(mean: f64, std: f64, best: f64, xi: f64) -> f64 {
    if std <= 1e-12 {
        return (mean - best - xi).max(0.0);
    }
    let z = (mean - best - xi) / std;
    (mean - best - xi) * norm_cdf(z) + std * norm_pdf(z)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        // The A&S 7.1.26 approximation is accurate to ~1.5e-7.
        assert!(erf(0.0).abs() < 1e-7);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
        assert!((norm_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((norm_cdf(1.96) - 0.975).abs() < 1e-3);
    }

    #[test]
    fn gp_interpolates_training_points() {
        let xs = vec![vec![0.0], vec![0.5], vec![1.0]];
        let ys = vec![0.0, 1.0, 0.0];
        let mut gp = GaussianProcess::new(0.3, 1e-8);
        gp.fit(&xs, &ys).unwrap();
        for (x, y) in xs.iter().zip(&ys) {
            let (mean, std) = gp.predict(x).unwrap();
            assert!((mean - y).abs() < 1e-3, "mean {mean} vs {y}");
            assert!(std < 0.05, "std {std}");
        }
    }

    #[test]
    fn gp_uncertainty_grows_away_from_data() {
        let xs = vec![vec![0.0], vec![0.1]];
        let ys = vec![0.5, 0.6];
        let mut gp = GaussianProcess::new(0.2, 1e-6);
        gp.fit(&xs, &ys).unwrap();
        let (_, std_near) = gp.predict(&[0.05]).unwrap();
        let (_, std_far) = gp.predict(&[0.9]).unwrap();
        assert!(std_far > std_near * 2.0, "near {std_near} far {std_far}");
    }

    #[test]
    fn gp_prediction_before_fit_errors() {
        let gp = GaussianProcess::new(0.2, 1e-6);
        assert!(gp.predict(&[0.0]).is_err());
    }

    #[test]
    fn gp_mismatched_lengths_rejected() {
        let mut gp = GaussianProcess::new(0.2, 1e-6);
        assert!(gp.fit(&[vec![0.0]], &[1.0, 2.0]).is_err());
        assert!(gp.fit(&[], &[]).is_err());
    }

    #[test]
    fn ei_properties() {
        // Higher mean -> more EI; higher std -> more EI at equal mean.
        let base = expected_improvement(0.5, 0.1, 0.6, 0.0);
        let better_mean = expected_improvement(0.7, 0.1, 0.6, 0.0);
        let more_std = expected_improvement(0.5, 0.3, 0.6, 0.0);
        assert!(better_mean > base);
        assert!(more_std > base);
        // Deterministic below best: zero.
        assert_eq!(expected_improvement(0.5, 0.0, 0.6, 0.0), 0.0);
        assert!(expected_improvement(0.5, 0.2, 0.6, 0.0) >= 0.0);
    }

    #[test]
    fn gp_handles_duplicate_points() {
        // Duplicates make K singular without the noise jitter.
        let xs = vec![vec![0.5], vec![0.5], vec![0.7]];
        let ys = vec![1.0, 1.0, 0.0];
        let mut gp = GaussianProcess::new(0.3, 1e-6);
        gp.fit(&xs, &ys).unwrap();
        let (mean, _) = gp.predict(&[0.5]).unwrap();
        assert!((mean - 1.0).abs() < 0.05);
    }
}

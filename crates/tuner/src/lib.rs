#![warn(missing_docs)]

//! # sintel-tuner
//!
//! The AutoML hyperparameter-tuning substrate (paper §3.3) — an in-Rust
//! equivalent of BTB's `GPTuner`.
//!
//! The tuner works over a [`Space`] of typed dimensions (float, log-float,
//! integer, categorical, boolean), internally mapped to the unit cube.
//! [`GpTuner`] fits a Gaussian-process meta-model (RBF kernel, Cholesky
//! solve from `sintel-linalg`) over recorded `(λ, score)` evaluations and
//! proposes the candidate maximising Expected Improvement;
//! [`RandomTuner`] is the random-search baseline used in the ablation
//! bench. The search loop is [`TuningSession`]: propose → evaluate →
//! record until the budget runs out, keeping the best λ (Figure 5).

pub mod gp;
pub mod space;
pub mod tuners;

pub use gp::GaussianProcess;
pub use space::{DimSpec, DimValue, Space};
pub use tuners::{GpTuner, RandomTuner, Tuner, TuningSession};

/// Errors produced by the tuning substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum TunerError {
    /// The search space has no dimensions.
    EmptySpace,
    /// A point had the wrong dimensionality.
    DimensionMismatch {
        /// Expected dimensionality.
        expected: usize,
        /// Received dimensionality.
        got: usize,
    },
    /// Numerical failure in the GP fit.
    Numerical(String),
}

impl std::fmt::Display for TunerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TunerError::EmptySpace => write!(f, "search space is empty"),
            TunerError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            TunerError::Numerical(m) => write!(f, "numerical failure: {m}"),
        }
    }
}

impl std::error::Error for TunerError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, TunerError>;

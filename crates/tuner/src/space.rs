//! Typed search spaces mapped to the unit cube.

use sintel_common::SintelRng;

/// One dimension of a search space.
#[derive(Debug, Clone, PartialEq)]
pub enum DimSpec {
    /// Real-valued in `[lo, hi]`; `log` requests log-uniform scaling.
    Float {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
        /// Log-uniform when true (requires `lo > 0`).
        log: bool,
    },
    /// Integer-valued in `[lo, hi]` inclusive.
    Int {
        /// Lower bound.
        lo: i64,
        /// Upper bound.
        hi: i64,
    },
    /// Categorical with `n` options.
    Choice(usize),
    /// Boolean.
    Flag,
}

/// A decoded dimension value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DimValue {
    /// Real value.
    F(f64),
    /// Integer value.
    I(i64),
    /// Categorical option index.
    Idx(usize),
    /// Boolean value.
    B(bool),
}

/// An ordered, typed search space.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Space {
    /// The dimensions, in encoding order.
    pub dims: Vec<DimSpec>,
}

impl Space {
    /// Create from dimensions.
    pub fn new(dims: Vec<DimSpec>) -> Self {
        Self { dims }
    }

    /// Dimensionality of the unit-cube encoding.
    pub fn len(&self) -> usize {
        self.dims.len()
    }

    /// True when there is nothing to search.
    pub fn is_empty(&self) -> bool {
        self.dims.is_empty()
    }

    /// Uniform random unit-cube point.
    pub fn sample_unit(&self, rng: &mut SintelRng) -> Vec<f64> {
        (0..self.dims.len()).map(|_| rng.uniform()).collect()
    }

    /// Decode a unit-cube point into typed values.
    pub fn decode(&self, unit: &[f64]) -> Vec<DimValue> {
        assert_eq!(unit.len(), self.dims.len(), "decode: dimension mismatch");
        self.dims
            .iter()
            .zip(unit)
            .map(|(dim, &u)| {
                let u = u.clamp(0.0, 1.0);
                match dim {
                    DimSpec::Float { lo, hi, log } => {
                        if *log {
                            debug_assert!(*lo > 0.0, "log scale requires positive bounds");
                            let v = (lo.ln() + u * (hi.ln() - lo.ln())).exp();
                            DimValue::F(v.clamp(*lo, *hi))
                        } else {
                            DimValue::F(lo + u * (hi - lo))
                        }
                    }
                    DimSpec::Int { lo, hi } => {
                        let span = (hi - lo + 1) as f64;
                        let v = lo + (u * span).floor().min(span - 1.0) as i64;
                        DimValue::I(v)
                    }
                    DimSpec::Choice(n) => {
                        let idx = ((u * *n as f64).floor() as usize).min(n.saturating_sub(1));
                        DimValue::Idx(idx)
                    }
                    DimSpec::Flag => DimValue::B(u >= 0.5),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sintel_common::SintelRng;

    fn space() -> Space {
        Space::new(vec![
            DimSpec::Float { lo: -1.0, hi: 1.0, log: false },
            DimSpec::Float { lo: 1e-4, hi: 1e-1, log: true },
            DimSpec::Int { lo: 3, hi: 7 },
            DimSpec::Choice(4),
            DimSpec::Flag,
        ])
    }

    #[test]
    fn decode_endpoints() {
        let s = space();
        let lo = s.decode(&[0.0, 0.0, 0.0, 0.0, 0.0]);
        assert_eq!(lo[0], DimValue::F(-1.0));
        assert_eq!(lo[2], DimValue::I(3));
        assert_eq!(lo[3], DimValue::Idx(0));
        assert_eq!(lo[4], DimValue::B(false));
        let hi = s.decode(&[1.0, 1.0, 1.0, 1.0, 1.0]);
        assert_eq!(hi[0], DimValue::F(1.0));
        assert_eq!(hi[2], DimValue::I(7));
        assert_eq!(hi[3], DimValue::Idx(3));
        assert_eq!(hi[4], DimValue::B(true));
        if let DimValue::F(v) = hi[1] {
            assert!((v - 0.1).abs() < 1e-12);
        } else {
            panic!()
        }
    }

    #[test]
    fn log_scale_midpoint_is_geometric_mean() {
        let s = Space::new(vec![DimSpec::Float { lo: 1e-4, hi: 1.0, log: true }]);
        let mid = s.decode(&[0.5]);
        if let DimValue::F(v) = mid[0] {
            assert!((v - 1e-2).abs() < 1e-10, "{v}");
        } else {
            panic!()
        }
    }

    #[test]
    fn sample_unit_dimension() {
        let s = space();
        let mut rng = SintelRng::seed_from_u64(1);
        let u = s.sample_unit(&mut rng);
        assert_eq!(u.len(), 5);
        assert!(u.iter().all(|x| (0.0..1.0).contains(x)));
    }

    #[test]
    fn prop_decode_within_bounds() {
        let mut rng = SintelRng::seed_from_u64(0x6111);
        for _ in 0..256 {
            let u: Vec<f64> = (0..5).map(|_| rng.uniform()).collect();
            let s = space();
            let vals = s.decode(&u);
            match vals[0] {
                DimValue::F(v) => assert!((-1.0..=1.0).contains(&v)),
                _ => unreachable!("dim 0 is Float"),
            }
            match vals[1] {
                DimValue::F(v) => assert!((1e-4..=0.1 + 1e-12).contains(&v)),
                _ => unreachable!("dim 1 is Float"),
            }
            match vals[2] {
                DimValue::I(v) => assert!((3..=7).contains(&v)),
                _ => unreachable!("dim 2 is Int"),
            }
            match vals[3] {
                DimValue::Idx(v) => assert!(v < 4),
                _ => unreachable!("dim 3 is Choice"),
            }
        }
    }

    #[test]
    fn prop_int_decode_uniformish() {
        let mut rng = SintelRng::seed_from_u64(0x6112);
        for _ in 0..256 {
            let u = rng.uniform();
            let s = Space::new(vec![DimSpec::Int { lo: 0, hi: 9 }]);
            if let DimValue::I(v) = s.decode(&[u])[0] {
                assert_eq!(v, (u * 10.0).floor().min(9.0) as i64);
            }
        }
    }
}

//! Substrate micro-benchmarks: the hot paths every experiment leans on
//! (FFT, LSTM step, ARIMA fit, window extraction, JSON round-trip).

use sintel_common::microbench::Criterion;
use sintel_common::{criterion_group, criterion_main};
use std::hint::black_box;

use sintel_common::SintelRng;
use sintel_timeseries::Signal;

fn substrate_benches(c: &mut Criterion) {
    let mut rng = SintelRng::seed_from_u64(1);
    let series: Vec<f64> = (0..4096).map(|_| rng.normal(0.0, 1.0)).collect();

    c.bench_function("fft_4096", |b| {
        b.iter(|| black_box(sintel_stats::fft(black_box(&series))));
    });

    c.bench_function("spectral_residual_4096", |b| {
        b.iter(|| {
            black_box(sintel_stats::spectral::spectral_residual_scores(
                black_box(&series),
                3,
                21,
            ))
        });
    });

    c.bench_function("arima_fit_2000", |b| {
        let data = &series[..2000];
        b.iter(|| black_box(sintel_stats::Arima::fit(black_box(data), 5, 0, 1).unwrap()));
    });

    c.bench_function("lstm_forward_backward_w50_h20", |b| {
        let mut lstm = sintel_nn::Lstm::new(1, 20, &mut SintelRng::seed_from_u64(2));
        let xs: Vec<Vec<f64>> = (0..50).map(|t| vec![(t as f64 * 0.1).sin()]).collect();
        b.iter(|| {
            let cache = lstm.forward(black_box(&xs));
            let dh: Vec<Vec<f64>> = cache.hidden_states().to_vec();
            black_box(lstm.backward(&cache, &dh));
            lstm.zero_grad();
        });
    });

    c.bench_function("rolling_windows_10k_w100", |b| {
        let signal = Signal::from_values("s", (0..10_000).map(|i| i as f64).collect());
        b.iter(|| {
            black_box(sintel_timeseries::rolling_windows(black_box(&signal), 100, 1, true).unwrap())
        });
    });

    c.bench_function("store_json_roundtrip", |b| {
        let doc = sintel_store::Doc::obj()
            .with("signal", "S-1")
            .with("events", (0..50).map(|i| i as i64).collect::<Vec<i64>>())
            .with("scores", (0..50).map(|i| i as f64 * 0.01).collect::<Vec<f64>>());
        b.iter(|| {
            let json = sintel_store::json::to_json(black_box(&doc));
            black_box(sintel_store::json::from_json(&json).unwrap())
        });
    });
}

criterion_group!(benches, substrate_benches);
criterion_main!(benches);

//! Per-pipeline fit/detect micro-benchmarks — the criterion counterpart
//! of Figure 7a on a single fixed signal (relative ordering between
//! pipelines is the claim being tracked).

use sintel_common::microbench::Criterion;
use sintel_common::{criterion_group, criterion_main};
use std::hint::black_box;

use sintel_common::SintelRng;
use sintel_datasets::synth::{inject, AnomalyKind, BaseSignal};
use sintel_pipeline::hub;
use sintel_timeseries::Signal;

fn bench_signal(n: usize) -> Signal {
    let mut rng = SintelRng::seed_from_u64(7);
    let base = BaseSignal {
        level: 10.0,
        seasonal: vec![(2.0, 48.0, 0.2)],
        noise: 0.3,
        ..Default::default()
    };
    let mut values = base.render(n, &mut rng);
    inject(&mut values, n / 2, n / 2 + 10, AnomalyKind::Spike, 6.0, &mut rng);
    Signal::from_values("bench", values)
}

fn pipeline_benches(c: &mut Criterion) {
    let signal = bench_signal(400);
    let mut group = c.benchmark_group("pipeline_fit_detect");
    group.sample_size(10);
    for name in hub::available_pipelines() {
        group.bench_function(*name, |b| {
            b.iter(|| {
                let mut pipeline = hub::build_pipeline(name).expect("hub pipeline");
                let anomalies =
                    pipeline.fit_detect(black_box(&signal), black_box(&signal)).unwrap();
                black_box(anomalies)
            });
        });
    }
    group.finish();

    // Detection latency alone (model already trained) — the "pipeline
    // latency" bar of Figure 7a.
    let mut group = c.benchmark_group("pipeline_latency");
    group.sample_size(10);
    for name in ["arima", "azure_anomaly_detection", "dense_autoencoder"] {
        let mut pipeline = hub::build_pipeline(name).expect("hub pipeline");
        pipeline.fit(&signal).expect("fit");
        group.bench_function(name, |b| {
            b.iter(|| black_box(pipeline.detect(black_box(&signal)).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, pipeline_benches);
criterion_main!(benches);

//! Ablation benches for the design choices DESIGN.md §4 calls out:
//!
//! * dynamic (Hundman) vs fixed k·σ thresholding — cost and yield;
//! * GP tuner vs random search at equal budget — time per proposal;
//! * indexed vs full-scan store queries;
//! * error smoothing on vs off in `regression_errors`;
//! * weighted vs overlapping segment scoring.

use sintel_common::microbench::Criterion;
use sintel_common::{criterion_group, criterion_main};
use std::hint::black_box;

use sintel_common::SintelRng;
use sintel_stats::threshold::{dynamic_threshold, fixed_threshold, ThresholdParams};
use sintel_store::{Doc, Filter, SintelDb};
use sintel_timeseries::Interval;
use sintel_tuner::{DimSpec, GpTuner, RandomTuner, Space, Tuner};

fn errors_with_bursts(n: usize) -> Vec<f64> {
    let mut rng = SintelRng::seed_from_u64(3);
    let mut errors: Vec<f64> = (0..n).map(|_| rng.normal(1.0, 0.15).abs()).collect();
    for burst in 0..4 {
        let at = (burst + 1) * n / 5;
        for e in &mut errors[at..at + 12] {
            *e += 4.0;
        }
    }
    errors
}

fn threshold_ablation(c: &mut Criterion) {
    let errors = errors_with_bursts(4000);
    let mut group = c.benchmark_group("threshold");
    group.sample_size(20);
    group.bench_function("dynamic_hundman", |b| {
        let params = ThresholdParams::default();
        b.iter(|| black_box(dynamic_threshold(black_box(&errors), &params).expect("valid params")));
    });
    group.bench_function("fixed_3sigma", |b| {
        b.iter(|| black_box(fixed_threshold(black_box(&errors), 3.0).expect("valid k")));
    });
    group.finish();
}

fn tuner_ablation(c: &mut Criterion) {
    let space = Space::new(vec![DimSpec::Float { lo: 0.0, hi: 1.0, log: false }; 4]);
    let objective = |x: &[f64]| -> f64 {
        -x.iter().map(|v| (v - 0.4) * (v - 0.4)).sum::<f64>()
    };
    let mut group = c.benchmark_group("tuner_30_evals");
    group.sample_size(10);
    group.bench_function("gp", |b| {
        b.iter(|| {
            let mut tuner = GpTuner::new(space.clone(), 1);
            for _ in 0..30 {
                let p = tuner.propose().unwrap();
                let s = objective(&p);
                tuner.record(p, s);
            }
            black_box(tuner.best().map(|(_, s)| s))
        });
    });
    group.bench_function("random", |b| {
        b.iter(|| {
            let mut tuner = RandomTuner::new(space.clone(), 1);
            for _ in 0..30 {
                let p = tuner.propose().unwrap();
                let s = objective(&p);
                tuner.record(p, s);
            }
            black_box(tuner.best().map(|(_, s)| s))
        });
    });
    group.finish();
}

fn store_index_ablation(c: &mut Criterion) {
    let build = |indexed: bool| {
        let db = SintelDb::in_memory(); // indexes events.signal by default
        let raw = db.raw();
        if !indexed {
            // A parallel unindexed collection with identical content.
            for i in 0..5_000 {
                raw.insert(
                    "events_unindexed",
                    Doc::obj().with("signal", format!("S-{}", i % 100)).with("n", i as i64),
                );
            }
        } else {
            for i in 0..5_000 {
                raw.insert(
                    sintel_store::schema::collections::EVENTS,
                    Doc::obj().with("signal", format!("S-{}", i % 100)).with("n", i as i64),
                );
            }
        }
        db
    };
    let indexed = build(true);
    let scanned = build(false);
    let filter = Filter::eq("signal", "S-42");
    let mut group = c.benchmark_group("store_query_5k_docs");
    group.bench_function("indexed", |b| {
        b.iter(|| {
            black_box(
                indexed
                    .raw()
                    .find(sintel_store::schema::collections::EVENTS, black_box(&filter)),
            )
        });
    });
    group.bench_function("full_scan", |b| {
        b.iter(|| black_box(scanned.raw().find("events_unindexed", black_box(&filter))));
    });
    group.finish();
}

fn scoring_ablation(c: &mut Criterion) {
    let mut rng = SintelRng::seed_from_u64(11);
    let mk = |n: usize, rng: &mut SintelRng| -> Vec<Interval> {
        (0..n)
            .map(|_| {
                let s = rng.int_range(0, 1_000_000);
                Interval::new(s, s + rng.int_range(1, 2_000)).unwrap()
            })
            .collect()
    };
    let truth = mk(200, &mut rng);
    let pred = mk(300, &mut rng);
    let mut group = c.benchmark_group("segment_scoring_200x300");
    group.bench_function("overlapping", |b| {
        b.iter(|| black_box(sintel_metrics::overlapping_segment(&truth, &pred)));
    });
    group.bench_function("weighted", |b| {
        b.iter(|| black_box(sintel_metrics::weighted_segment(&truth, &pred)));
    });
    group.finish();
}

fn smoothing_ablation(c: &mut Criterion) {
    use sintel_primitives::{Context, HyperValue, Value};
    let n = 8_000;
    let mut rng = SintelRng::seed_from_u64(5);
    let preds: Vec<f64> = (0..n).map(|_| rng.normal(0.0, 1.0)).collect();
    let targets: Vec<f64> = (0..n).map(|_| rng.normal(0.0, 1.0)).collect();
    let mut ctx = Context::new();
    ctx.set("predictions", Value::Series(preds));
    ctx.set("targets", Value::Series(targets));
    ctx.set("index_timestamps", Value::Timestamps((0..n as i64).collect()));

    let mut group = c.benchmark_group("regression_errors_8k");
    for (label, smooth) in [("smoothing_on", true), ("smoothing_off", false)] {
        group.bench_function(label, |b| {
            let mut prim = sintel_primitives::build_primitive("regression_errors").unwrap();
            prim.set_hyperparam("smooth", HyperValue::Flag(smooth)).unwrap();
            b.iter(|| black_box(prim.produce(black_box(&ctx)).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    threshold_ablation,
    tuner_ablation,
    store_index_ablation,
    scoring_ablation,
    smoothing_ablation
);
criterion_main!(benches);

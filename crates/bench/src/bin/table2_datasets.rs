//! **Table 2** — dataset summary: 492 signals and 2349 anomalies.
//!
//! At `SINTEL_SCALE=1` (the default here; this binary is cheap) the
//! synthetic corpora reproduce the published statistics exactly:
//!
//! ```text
//! NAB    45 signals   94 anomalies  avg length 6088
//! NASA   80          103            avg length 8686
//! YAHOO 367         2152            avg length 1561
//! ```
//!
//! Run: `cargo run -p sintel-bench --bin table2_datasets`

use sintel_datasets::{load_all, DatasetConfig};

fn main() {
    let scale = sintel_bench::scale_from_env(1.0);
    let cfg = DatasetConfig { seed: 42, signal_scale: scale, length_scale: scale };
    println!("Table 2: Dataset Summary (scale = {scale})\n");
    println!(
        "{:<10} {:>10} {:>13} {:>20}",
        "Dataset", "# Signals", "# Anomalies", "Avg. Signal Length"
    );
    let mut total_signals = 0;
    let mut total_anomalies = 0;
    for dataset in load_all(&cfg) {
        println!(
            "{:<10} {:>10} {:>13} {:>20}",
            dataset.name,
            dataset.num_signals(),
            dataset.num_anomalies(),
            dataset.avg_signal_length()
        );
        total_signals += dataset.num_signals();
        total_anomalies += dataset.num_anomalies();
        for subset in &dataset.subsets {
            let anoms: usize = subset.signals.iter().map(|s| s.anomalies.len()).sum();
            println!(
                "  {:<24} {:>6} signals {:>6} anomalies",
                subset.name,
                subset.signals.len(),
                anoms
            );
        }
    }
    println!("\nTotal: {total_signals} signals and {total_anomalies} anomalies.");
    if (scale - 1.0).abs() < f64::EPSILON {
        assert_eq!(total_signals, 492, "paper reports 492 signals");
        assert_eq!(total_anomalies, 2349, "paper reports 2349 anomalies");
        println!("Matches the paper exactly (492 / 2349).");
    }
}

//! **Obs microbench** — the cost of the observability layer itself
//! (DESIGN.md §4h).
//!
//! Measures two things:
//!
//! * ns/op of each instrumentation primitive — counter bump, histogram
//!   observation, rollup accumulation + tick, span open/close with
//!   tracing off and on — with the kill switch both armed and off
//!   (`sintel_obs::set_instrumentation(false)` must make every helper
//!   a branch-and-return);
//! * end-to-end serve-tier ingest throughput with instrumentation on
//!   vs off. The §4h budget is **< 5% ingest overhead**; the measured
//!   `overhead_percent` is recorded in the JSON report and a console
//!   warning fires when the budget is blown (a warning, not an assert:
//!   microbench noise on shared CI must not fail the build).
//!
//! Besides the console table, writes `BENCH_obs.json` (override with
//! `SINTEL_BENCH_OUT`) so the numbers can be tracked across commits.
//!
//! Run: `cargo run -p sintel-bench --release --bin obs_bench`

use std::time::Instant;

use sintel_serve::engine::fallback_template;
use sintel_serve::{Admission, IngestEvent, ServeConfig, ServeEngine, TenantSpec};
use sintel_store::{json, Doc, SintelDb};

const TENANTS: usize = 4;

/// Budget from DESIGN.md §4h: instrumentation may cost at most this
/// fraction of ingest throughput.
const OVERHEAD_BUDGET_PERCENT: f64 = 5.0;

/// Time `iters` repetitions of `op`; returns ns/op.
fn ns_per_op(iters: usize, mut op: impl FnMut(usize)) -> f64 {
    let start = Instant::now();
    for i in 0..iters {
        op(i);
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn config() -> ServeConfig {
    ServeConfig {
        window: 256,
        hop: 64,
        min_points: 64,
        queue_capacity: 1 << 20,
        ..ServeConfig::default()
    }
}

fn specs() -> Vec<TenantSpec> {
    (0..TENANTS)
        .map(|i| TenantSpec::new(&format!("tenant-{i}"), 5, fallback_template()))
        .collect()
}

fn value_at(tenant: usize, t: i64) -> f64 {
    (t as f64 * (0.11 + tenant as f64 * 0.07)).sin()
        + if t % 911 == 0 && t > 0 { 4.0 } else { 0.0 }
}

/// Serve-tier ingest rate (events/sec) with the current
/// instrumentation switch, in-memory store, ticking every 64 offers.
fn ingest_rate(per_tenant: usize) -> f64 {
    let mut engine =
        ServeEngine::open(SintelDb::in_memory(), config(), specs()).expect("open engine");
    let start = Instant::now();
    for t in 0..per_tenant {
        for tenant in 0..TENANTS {
            let event = IngestEvent::new(
                &format!("tenant-{tenant}"),
                "cpu",
                t as i64,
                value_at(tenant, t as i64),
            );
            match engine.offer(&event).expect("offer") {
                Admission::Accepted => {}
                other => panic!("unexpected admission {other:?}"),
            }
        }
        if (t + 1) % 64 == 0 {
            engine.tick().expect("tick");
        }
    }
    engine.tick().expect("tick");
    (per_tenant * TENANTS) as f64 / start.elapsed().as_secs_f64().max(1e-9)
}

fn main() {
    let session = sintel_bench::obs_session();
    let scale = sintel_bench::scale_from_env(0.25);
    let prim_iters = ((400_000.0 * scale) as usize).max(20_000);
    let per_tenant = ((8_000.0 * scale) as usize).max(500);
    eprintln!("obs microbench: {prim_iters} primitive iters, {TENANTS} tenants x {per_tenant} events, scale {scale} …");

    // -- primitive costs, instrumentation armed ------------------------
    let counter_on = ns_per_op(prim_iters, |_| sintel_obs::counter_add("obs_bench_counter", 1));
    let observe_on =
        ns_per_op(prim_iters, |i| sintel_obs::observe("obs_bench_hist", (i % 1000) as f64 * 1e-6));
    let rollup_on = ns_per_op(prim_iters, |i| {
        sintel_obs::rollup_add("obs_bench_rollup", 1);
        if (i + 1) % 64 == 0 {
            sintel_obs::rollup_tick();
        }
    });
    let span_untraced = ns_per_op(prim_iters, |_| {
        let _g = sintel_obs::span("obs_bench.span");
    });
    sintel_obs::tracing_start();
    let span_traced = ns_per_op(prim_iters, |_| {
        let _g = sintel_obs::span("obs_bench.span");
    });
    let _ = sintel_obs::tracing_stop();

    // -- primitive costs with the kill switch off ----------------------
    sintel_obs::set_instrumentation(false);
    let counter_off = ns_per_op(prim_iters, |_| sintel_obs::counter_add("obs_bench_counter", 1));
    let span_off = ns_per_op(prim_iters, |_| {
        let _g = sintel_obs::span("obs_bench.span");
    });
    sintel_obs::set_instrumentation(true);

    // -- end-to-end ingest overhead ------------------------------------
    // Alternate the two modes and keep each mode's best rate: the modes
    // then share warmup, frequency-scaling and allocator state, so the
    // gap measures instrumentation, not run order. `emitted` parity
    // between modes is covered by the serve test suite, not re-checked
    // here.
    let _ = ingest_rate(per_tenant.min(500));
    let (mut rate_on, mut rate_off) = (0.0f64, 0.0f64);
    for _ in 0..3 {
        rate_on = rate_on.max(ingest_rate(per_tenant));
        sintel_obs::set_instrumentation(false);
        rate_off = rate_off.max(ingest_rate(per_tenant));
        sintel_obs::set_instrumentation(true);
    }
    let overhead = (1.0 - rate_on / rate_off.max(1e-9)) * 100.0;

    println!("Obs microbench: instrumentation cost (scale {scale})\n");
    println!("{:<26} {:>14}", "phase", "value");
    println!("{:<26} {:>12.1}ns", "counter_add", counter_on);
    println!("{:<26} {:>12.1}ns", "counter_add_off", counter_off);
    println!("{:<26} {:>12.1}ns", "observe", observe_on);
    println!("{:<26} {:>12.1}ns", "rollup_add_tick", rollup_on);
    println!("{:<26} {:>12.1}ns", "span_untraced", span_untraced);
    println!("{:<26} {:>12.1}ns", "span_traced", span_traced);
    println!("{:<26} {:>12.1}ns", "span_off", span_off);
    println!("{:<26} {:>11.0}/s", "ingest_instrumented", rate_on);
    println!("{:<26} {:>11.0}/s", "ingest_uninstrumented", rate_off);
    println!("{:<26} {:>12.1}%", "ingest_overhead", overhead);
    if overhead > OVERHEAD_BUDGET_PERCENT {
        eprintln!(
            "obs microbench: WARNING ingest overhead {overhead:.1}% exceeds the \
             {OVERHEAD_BUDGET_PERCENT}% budget (DESIGN.md §4h)"
        );
    }

    let out = std::env::var("SINTEL_BENCH_OUT").unwrap_or_else(|_| "BENCH_obs.json".into());
    let ns = |v: f64| Doc::obj().with("ns_per_op", v).with("iters", prim_iters);
    let report = Doc::obj().with("bench", "obs").with("scale", scale).with(
        "phases",
        Doc::obj()
            .with("counter_add", ns(counter_on))
            .with("counter_add_off", ns(counter_off))
            .with("observe", ns(observe_on))
            .with("rollup_add_tick", ns(rollup_on))
            .with("span_untraced", ns(span_untraced))
            .with("span_traced", ns(span_traced))
            .with("span_off", ns(span_off))
            .with(
                "ingest_overhead",
                Doc::obj()
                    .with("instrumented_per_sec", (rate_on.round() as i64).max(1))
                    .with("uninstrumented_per_sec", (rate_off.round() as i64).max(1))
                    .with("overhead_percent", overhead)
                    .with("budget_percent", OVERHEAD_BUDGET_PERCENT)
                    .with("events", per_tenant * TENANTS),
            ),
    );
    if let Err(e) = std::fs::write(&out, json::to_json(&report) + "\n") {
        eprintln!("obs microbench: writing {out}: {e}");
        std::process::exit(1);
    }
    eprintln!("obs microbench: wrote {out}");
    session.finish();
}

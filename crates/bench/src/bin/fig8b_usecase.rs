//! **Figure 8b** — tags collected in the real-world satellite use case.
//!
//! The paper's study: 16 signals spanning 5+ years, 6 experts, 110
//! human-tagged events traced back a posteriori — 52.7% deemed normal,
//! 11 confirmed anomalies, 6 manually added events, the rest marked for
//! further investigation; 27/110 events had been missed by the ML model
//! (eclipse-like events look normal; maneuvers look anomalous but are
//! routine). Proprietary telemetry is simulated per DESIGN.md §2.
//!
//! Run: `cargo run -p sintel-bench --bin fig8b_usecase`

use sintel_hil::study::{run_study, StudyConfig};
use sintel_store::SintelDb;

fn main() {
    let db = SintelDb::in_memory();
    let cfg = StudyConfig::default();
    let outcome = run_study(&cfg, &db);

    println!(
        "Figure 8b: collected tags ({} signals, {} experts, {} events)\n",
        outcome.signals,
        outcome.experts,
        outcome.total_events()
    );
    println!(
        "{:<26} {:>16} {:>16} {:>8}",
        "tag", "identified by ML", "missed by ML", "total"
    );
    let rows = [
        ("normal", outcome.ml_presented.normal, outcome.ml_missed.normal),
        ("confirmed anomaly", outcome.ml_presented.confirmed, outcome.ml_missed.confirmed),
        ("new event (added)", outcome.ml_presented.added, outcome.ml_missed.added),
        (
            "further investigation",
            outcome.ml_presented.investigate,
            outcome.ml_missed.investigate,
        ),
    ];
    for (tag, presented, missed) in rows {
        println!("{:<26} {:>16} {:>16} {:>8}", tag, presented, missed, presented + missed);
    }
    println!(
        "{:<26} {:>16} {:>16} {:>8}",
        "total",
        outcome.ml_presented.total(),
        outcome.ml_missed.total(),
        outcome.total_events()
    );
    println!(
        "\nnormal fraction: {:.1}% (paper: 52.7%)   missed by ML: {}/{} (paper: 27/110)",
        100.0 * outcome.normal_fraction(),
        outcome.ml_missed.total(),
        outcome.total_events()
    );

    use sintel_store::{schema::collections, Filter};
    println!(
        "knowledge base now holds {} events, {} annotations, {} comments.",
        db.raw().count(collections::EVENTS, &Filter::All),
        db.raw().count(collections::ANNOTATIONS, &Filter::All),
        db.raw().count(collections::COMMENTS, &Filter::All),
    );
}

//! **Store microbench** — durability-path throughput of the sharded,
//! WAL-backed knowledge base (DESIGN.md §4f).
//!
//! Measures, at `SINTEL_SCALE`:
//!
//! * single-op append throughput at each durability level
//!   (`snapshot` / `wal` / `wal-sync`),
//! * group-commit append throughput (one batch, one record, one fsync),
//! * WAL replay throughput on reopen (crash-recovery speed), and
//! * compaction throughput (log → snapshot fold).
//!
//! Besides the console table, writes `BENCH_store.json` (override with
//! `SINTEL_BENCH_OUT`) — machine-readable ops/sec so the numbers can be
//! tracked across commits.
//!
//! Run: `cargo run -p sintel-bench --release --bin store_bench`

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use sintel_store::{json, Database, Doc, Durability, StoreOptions};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sintel-store-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn doc(i: usize) -> Doc {
    Doc::obj()
        .with("signal", format!("signal-{:04}", i % 97))
        .with("score", (i as f64) * 0.125)
        .with("tag", if i % 3 == 0 { "anomaly" } else { "normal" })
}

/// Options with compaction disabled: each phase is measured in
/// isolation, so the log must not fold mid-measurement.
fn opts(durability: Durability) -> StoreOptions {
    StoreOptions { durability, compact_threshold: u64::MAX }
}

fn ops_per_sec(n: usize, elapsed: Duration) -> f64 {
    n as f64 / elapsed.as_secs_f64().max(1e-9)
}

/// Insert `n` docs one commit at a time; returns ops/sec.
fn bench_appends(dir: &Path, durability: Durability, n: usize) -> f64 {
    let db = Database::open_with(dir, opts(durability)).expect("open store");
    let start = Instant::now();
    for i in 0..n {
        db.insert("events", doc(i));
    }
    ops_per_sec(n, start.elapsed())
}

/// Insert `n` docs under one batch scope — one record, one fsync.
fn bench_batched(dir: &Path, n: usize) -> f64 {
    let db = Database::open_with(dir, opts(Durability::WalSync)).expect("open store");
    let start = Instant::now();
    let scope = db.batch();
    for i in 0..n {
        db.insert("events", doc(i));
    }
    scope.commit().expect("batch commit");
    ops_per_sec(n, start.elapsed())
}

fn main() {
    let session = sintel_bench::obs_session();
    let scale = sintel_bench::scale_from_env(0.25);
    let n = ((20_000.0 * scale) as usize).max(200);
    let n_sync = (n / 20).max(50); // per-op fsync is orders slower; keep it bounded
    eprintln!("store microbench: {n} ops per level ({n_sync} at wal-sync), scale {scale} …");

    let mut results: Vec<(String, f64, usize)> = Vec::new();

    for (durability, ops) in [
        (Durability::Snapshot, n),
        (Durability::Wal, n),
        (Durability::WalSync, n_sync),
    ] {
        let dir = tmpdir(durability.label());
        let rate = bench_appends(&dir, durability, ops);
        results.push((format!("append_{}", durability.label()), rate, ops));
        let _ = std::fs::remove_dir_all(&dir);
    }

    let batch_dir = tmpdir("batched");
    results.push(("append_wal_sync_batched".into(), bench_batched(&batch_dir, n), n));
    let _ = std::fs::remove_dir_all(&batch_dir);

    // Replay: populate a log, drop the handle mid-flight (no save), and
    // time the recovery reopen.
    let replay_dir = tmpdir("replay");
    {
        let db = Database::open_with(&replay_dir, opts(Durability::Wal)).expect("open store");
        for i in 0..n {
            db.insert("events", doc(i));
        }
    }
    let start = Instant::now();
    let db = Database::open_with(&replay_dir, opts(Durability::Wal)).expect("replay reopen");
    let replay_elapsed = start.elapsed();
    assert_eq!(db.recovery().wal_replayed_batches, n, "replay must cover every batch");
    results.push(("wal_replay".into(), ops_per_sec(n, replay_elapsed), n));

    // Compaction: fold the replayed log into snapshots.
    let start = Instant::now();
    db.save().expect("compaction");
    results.push(("compaction".into(), ops_per_sec(n, start.elapsed()), n));
    drop(db);
    let _ = std::fs::remove_dir_all(&replay_dir);

    println!("Store microbench: durability-path throughput (scale {scale})\n");
    println!("{:<26} {:>14} {:>10}", "phase", "docs/sec", "docs");
    for (name, rate, ops) in &results {
        println!("{name:<26} {rate:>14.0} {ops:>10}");
    }
    println!(
        "\nexpected shape: batched wal-sync ≈ snapshot ≫ per-op wal-sync;\n\
         replay and compaction are linear in log size."
    );

    let out = std::env::var("SINTEL_BENCH_OUT").unwrap_or_else(|_| "BENCH_store.json".into());
    let mut phases = Doc::obj();
    for (name, rate, ops) in &results {
        phases = phases.with(
            name.as_str(),
            Doc::obj().with("docs_per_sec", (rate.round() as i64).max(1)).with("docs", *ops),
        );
    }
    let report = Doc::obj().with("bench", "store").with("scale", scale).with("phases", phases);
    if let Err(e) = std::fs::write(&out, json::to_json(&report) + "\n") {
        eprintln!("store microbench: writing {out}: {e}");
        std::process::exit(1);
    }
    eprintln!("store microbench: wrote {out}");
    session.finish();
}

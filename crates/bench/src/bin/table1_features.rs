//! **Table 1** — comparison of anomaly detection software.
//!
//! The other systems' rows are the paper's published assessment; the
//! Sintel column is computed from the capabilities this repository
//! actually implements (see `sintel::features`).
//!
//! Run: `cargo run -p sintel-bench --bin table1_features`

fn main() {
    println!("Table 1: Comparison of anomaly detection software");
    println!("(Y = attribute present, - = absent; Sintel column computed from this repo)\n");
    print!("{}", sintel::features::render_table());
    let sintel_col = sintel::features::sintel_features();
    println!(
        "\nSintel implements {}/{} compared capabilities.",
        sintel::features::ALL_CAPABILITIES
            .iter()
            .filter(|&&c| sintel_col.has(c))
            .count(),
        sintel::features::ALL_CAPABILITIES.len()
    );
}

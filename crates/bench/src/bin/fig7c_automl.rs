//! **Figure 7c** — F1 scores prior to and after tuning pipelines on the
//! NAB dataset with a ground-truth set of anomalies (supervised AutoML).
//!
//! The paper reports a 6.6% average improvement across deep pipelines,
//! with ~15% of the hyperparameter changes landing in the postprocessing
//! engine (the `find_anomalies` primitive).
//!
//! Run: `SINTEL_SCALE=0.05 cargo run -p sintel-bench --release --bin fig7c_automl`

use sintel::tune::{tune_template, TuneSetting};
use sintel_datasets::{load, DatasetConfig, DatasetId};
use sintel_pipeline::hub;
use sintel_primitives::build_primitive;

fn main() {
    let obs = sintel_bench::obs_session();
    let scale = sintel_bench::scale_from_env(0.04);
    let budget: usize = std::env::var("SINTEL_TUNE_BUDGET")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let data = DatasetConfig { seed: 42, signal_scale: scale, length_scale: (scale * 2.5).clamp(0.12, 1.0) };
    let nab = load(DatasetId::Nab, &data);
    // The paper tunes the deep pipelines; azure is a fixed service.
    let pipelines =
        ["lstm_dynamic_threshold", "dense_autoencoder", "lstm_autoencoder", "tadgan", "arima"];

    eprintln!("Figure 7c: supervised AutoML on NAB at scale {scale}, budget {budget}/signal-pool …");
    println!("Figure 7c: F1 before/after supervised tuning on NAB (scale {scale}, budget {budget})\n");
    println!("{:<26} {:>10} {:>10} {:>10}", "pipeline", "before", "after", "delta");

    let mut improvements = Vec::new();
    let mut post_changes = 0usize;
    let mut total_changes = 0usize;
    for name in pipelines {
        let mut template = hub::template_by_name(name).expect("hub pipeline");
        // Fix the compute-dominating hyperparameters (epochs, hidden
        // width, window length) so each tuner evaluation stays cheap and
        // the search concentrates on the quality knobs — scalers, error
        // smoothing and the find_anomalies thresholding, where the paper
        // reports most improvements land.
        for step in &mut template.steps {
            let prim = build_primitive(&step.primitive).expect("registered");
            if prim.meta().hyperparam("epochs").is_some() {
                step.overrides.push(("epochs".into(), sintel_primitives::HyperValue::Int(3)));
                step.overrides.push(("hidden".into(), sintel_primitives::HyperValue::Int(10)));
            }
            if step.primitive == "rolling_window_sequences" {
                step.overrides
                    .push(("window_size".into(), sintel_primitives::HyperValue::Int(30)));
            }
        }
        // Identify which steps are postprocessing (for the 15% stat).
        let engines: Vec<sintel_primitives::Engine> = template
            .steps
            .iter()
            .map(|s| build_primitive(&s.primitive).expect("registered").meta().engine)
            .collect();

        let mut before = Vec::new();
        let mut after = Vec::new();
        // Tune per signal, as the paper measures F1 per signal on NAB.
        for labeled in nab.iter_signals().take(4) {
            let setting =
                TuneSetting::Supervised { ground_truth: labeled.anomalies.clone() };
            match tune_template(&template, &labeled.signal, &setting, budget) {
                Ok(report) => {
                    before.push(report.default_score.max(0.0));
                    after.push(report.best_score.max(0.0));
                    for pid in &report.changed_params {
                        total_changes += 1;
                        if engines[pid.step] == sintel_primitives::Engine::Postprocessing {
                            post_changes += 1;
                        }
                    }
                }
                Err(_) => continue,
            }
        }
        let b = sintel_common::mean(&before);
        let a = sintel_common::mean(&after);
        println!("{:<26} {:>10.3} {:>10.3} {:>+10.3}", name, b, a, a - b);
        if b > 0.0 {
            improvements.push(100.0 * (a - b) / b);
        }
    }
    println!(
        "\naverage relative improvement: {:+.1}% (paper: +6.6%)",
        sintel_common::mean(&improvements)
    );
    if total_changes > 0 {
        println!(
            "hyperparameter changes in the postprocessing engine: {:.0}% (paper: ~15%)",
            100.0 * post_changes as f64 / total_changes as f64
        );
    }
    obs.finish();
}

//! **Figure 7a** — pipeline computational performance: training time,
//! pipeline latency (detect mode), and memory across the benchmark
//! corpus.
//!
//! Expected shape (paper): TadGAN is the slowest to train and to produce
//! output (four adversarial networks); the reconstruction pipelines
//! (TadGAN, LSTM AE, Dense AE) need the most memory; ARIMA is comparable
//! to deep pipelines once training + latency are combined (its rolling
//! forecast is sequential).
//!
//! Run: `SINTEL_SCALE=0.08 cargo run -p sintel-bench --release --bin fig7a_compute`

use sintel::benchmark::{benchmark, BenchmarkConfig, MetricKind};
use sintel_datasets::{DatasetConfig, DatasetId};

#[global_allocator]
static ALLOC: sintel::alloc::TrackingAllocator = sintel::alloc::TrackingAllocator;

fn main() {
    let obs = sintel_bench::obs_session();
    let scale = sintel_bench::scale_from_env(0.05);
    let pipelines: Vec<String> = sintel_pipeline::hub::available_pipelines()
        .iter()
        .map(|s| s.to_string())
        .collect();
    eprintln!("Figure 7a: compute profile at scale {scale} …");

    // Run one pipeline at a time so the peak-memory counter attributes
    // cleanly.
    println!("Figure 7a: pipeline computational performance (scale {scale})\n");
    println!(
        "{:<26} {:>14} {:>14} {:>12}   (training-time bar)",
        "pipeline", "training time", "latency", "memory"
    );
    let mut results = Vec::new();
    for name in &pipelines {
        let cfg = BenchmarkConfig {
            pipelines: vec![name.clone()],
            datasets: vec![DatasetId::Nab, DatasetId::Nasa, DatasetId::Yahoo],
            data: DatasetConfig { seed: 42, signal_scale: scale, length_scale: (scale * 2.5).clamp(0.12, 1.0) },
            metric: MetricKind::Overlap,
            rank: "f1",
            ..BenchmarkConfig::default()
        };
        let rows = benchmark(&cfg).expect("benchmark run");
        let train: std::time::Duration = rows.iter().map(|r| r.train_time).sum();
        let detect: std::time::Duration = rows.iter().map(|r| r.detect_time).sum();
        let mem = rows.iter().map(|r| r.peak_memory).max().unwrap_or(0);
        results.push((name.clone(), train, detect, mem));
    }
    let max_train =
        results.iter().map(|r| r.1.as_secs_f64()).fold(0.0, f64::max);
    for (name, train, detect, mem) in &results {
        println!(
            "{:<26} {:>14} {:>14} {:>12}   {}",
            name,
            sintel_bench::fmt_duration(*train),
            sintel_bench::fmt_duration(*detect),
            sintel_bench::fmt_bytes(*mem),
            sintel_bench::bar(train.as_secs_f64(), max_train, 30),
        );
    }

    // Paper-shape checks.
    let tadgan = results.iter().find(|r| r.0 == "tadgan").expect("tadgan row");
    let slowest_train = results.iter().max_by_key(|r| r.1).expect("rows");
    println!(
        "\nTadGAN slowest to train: {} (paper: yes)",
        if slowest_train.0 == "tadgan" { "yes" } else { "no" }
    );
    let recon_mem: usize = results
        .iter()
        .filter(|r| ["tadgan", "lstm_autoencoder", "dense_autoencoder"].contains(&r.0.as_str()))
        .map(|r| r.3)
        .min()
        .unwrap_or(0);
    let pred_mem: usize = results
        .iter()
        .filter(|r| ["arima", "azure_anomaly_detection"].contains(&r.0.as_str()))
        .map(|r| r.3)
        .max()
        .unwrap_or(usize::MAX);
    println!(
        "reconstruction pipelines outweigh statistical ones in memory: {}",
        if recon_mem >= pred_mem { "yes (matches paper)" } else { "mixed" }
    );
    let _ = tadgan;
    obs.finish();
}

//! **Figure 8a** — semi-supervised pipeline performance through
//! simulated annotations, warm-started from different unsupervised
//! pipelines.
//!
//! Protocol (paper §4, "Feedback evaluation"): 70/30 train/test split on
//! NAB-style data; the expert annotates k = 2 events per iteration
//! (adding or removing); the semi-supervised pipeline retrains on the
//! verified sequences; F1 on the held-out events is tracked. Expected
//! shape: curves start below the best unsupervised pipeline and surpass
//! it once enough annotations accumulate; some flat segments appear
//! (not every annotation helps).
//!
//! Run: `cargo run -p sintel-bench --release --bin fig8a_feedback`

use sintel_common::SintelRng;
use sintel_datasets::synth::{inject, AnomalyKind, BaseSignal};
use sintel_hil::{FeedbackLoop, SimulatedExpert};
use sintel_metrics::overlapping_segment;
use sintel_pipeline::hub;
use sintel_timeseries::{Interval, ScoredInterval, Signal};

/// Build a train/test pair with varied, subtle anomaly types on a noisy
/// NAB-flavoured server metric — hard enough that unsupervised pipelines
/// land mid-range, as in the paper.
fn scenario(seed: u64) -> (Signal, Vec<Interval>, Signal, Vec<Interval>) {
    let make = |salt: u64, n: usize, events: &[(usize, usize, AnomalyKind, f64)]| {
        let mut rng = SintelRng::seed_from_u64(seed ^ salt);
        let base = BaseSignal {
            level: 50.0,
            seasonal: vec![(8.0, 96.0, 0.4), (2.0, 17.0, 1.2)],
            noise: 2.2,
            walk: 0.05,
            ..Default::default()
        };
        let mut values = base.render(n, &mut rng);
        let mut truth = Vec::new();
        for &(s, e, kind, mag) in events {
            inject(&mut values, s, e, kind, mag, &mut rng);
            truth.push(Interval::new(s as i64, e as i64).expect("ordered"));
        }
        (Signal::from_values("train", values), truth)
    };
    // 70/30 split by event count (paper: 70 train / 32 test events;
    // scaled here to 24 / 8). Kinds cycle through the four families with
    // jittered positions and subtle magnitudes.
    use AnomalyKind::*;
    let kinds = [LevelShift, Spike, AmplitudeChange, Dip];
    let mut placer = SintelRng::seed_from_u64(seed ^ 0xF1685A);
    let mut plan = |n_events: usize, n: usize| -> Vec<(usize, usize, AnomalyKind, f64)> {
        let spacing = n / (n_events + 1);
        (0..n_events)
            .map(|k| {
                let s = (k + 1) * spacing + placer.index(spacing / 3);
                let dur = 20 + placer.index(30);
                let kind = kinds[k % kinds.len()];
                let mag = placer.uniform_range(1.8, 2.8);
                (s, (s + dur).min(n - 10), kind, mag)
            })
            .collect()
    };
    let train_events = plan(24, 8000);
    let (train, train_truth) = make(1, 8000, &train_events);
    let test_events = plan(8, 2800);
    let (test, test_truth) = make(2, 2800, &test_events);
    (train, train_truth, test.with_name("test"), test_truth)
}

fn main() {
    let (train, train_truth, test, test_truth) = scenario(42);
    // Warm-start curves from three unsupervised pipelines (the paper
    // warm-starts from all of them).
    let starts = ["arima", "azure_anomaly_detection", "dense_autoencoder"];

    println!("Figure 8a: semi-supervised F1 vs number of annotations (k = 2)\n");
    let mut best_unsupervised: f64 = 0.0;
    let mut finals = Vec::new();
    for name in starts {
        // Unsupervised proposals on the *training* data warm-start the
        // loop; the same pipeline's F1 on the *test* data is the baseline
        // the semi-supervised model must beat.
        let mut pipeline = hub::build_pipeline(name).expect("hub pipeline");
        let raw: Vec<ScoredInterval> =
            pipeline.fit_detect(&train, &train).unwrap_or_default();
        // A triage UI surfaces a bounded review queue: merge near-
        // duplicate alarms and keep the 25 most severe (matters for the
        // azure warm start, which fires on everything).
        let mut proposals =
            sintel_timeseries::interval::merge_scored(&raw, 25);
        proposals.sort_by(|a, b| b.score.total_cmp(&a.score));
        proposals.truncate(25);
        let test_pred: Vec<Interval> = pipeline
            .fit_detect(&test, &test)
            .unwrap_or_default()
            .iter()
            .map(|a| a.interval)
            .collect();
        let unsup_f1 = overlapping_segment(&test_truth, &test_pred).scores().f1;
        best_unsupervised = best_unsupervised.max(unsup_f1);

        let mut expert = SimulatedExpert::new(
            vec![("train".to_string(), train_truth.clone())],
            1.0,
            7,
        );
        let cfg = FeedbackLoop { epochs: 60, window: 28, ..Default::default() };
        let points = cfg
            .run(&mut expert, &train, &test, &test_truth, &proposals)
            .expect("feedback loop");

        println!(
            "warm start: {name} ({} proposals, unsupervised test F1 = {unsup_f1:.3})",
            proposals.len()
        );
        for p in &points {
            println!(
                "  annotations {:>3}  semi-supervised F1 {:.3}  {}",
                p.annotations,
                p.f1,
                sintel_bench::bar(p.f1, 1.0, 30)
            );
        }
        let final_f1 = points.last().map(|p| p.f1).unwrap_or(0.0);
        finals.push(final_f1);
        println!(
            "  -> final {:.3} {} this warm start's unsupervised baseline {:.3}\n",
            final_f1,
            if final_f1 > unsup_f1 { "surpasses" } else { "below" },
            unsup_f1
        );
    }
    let best_final = finals.iter().copied().fold(0.0, f64::max);
    println!(
        "paper shape: semi-supervised curves climb with annotations and the best\n\
         ({best_final:.3}) {} the best unsupervised pipeline ({best_unsupervised:.3});\n\
         flat segments appear where annotations do not help.",
        if best_final > best_unsupervised { "surpasses" } else { "approaches" }
    );
}

//! **Serve microbench** — streaming-tier throughput and recovery speed
//! (DESIGN.md §4g).
//!
//! Measures, at `SINTEL_SCALE`:
//!
//! * ingest throughput (events/sec through `offer` + periodic `tick`)
//!   with an in-memory knowledge base,
//! * the same loop with a live HTTP status server being scraped
//!   continuously from another thread (the §4h introspection tax),
//! * the same loop with group-committed `wal-sync` checkpoints (the
//!   durability tax of crash-recoverable sessions), and
//! * session recovery latency: reopening the engine over the persisted
//!   checkpoints.
//!
//! Besides the console table, writes `BENCH_serve.json` (override with
//! `SINTEL_BENCH_OUT`) so the numbers can be tracked across commits.
//!
//! Run: `cargo run -p sintel-bench --release --bin serve_bench`

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sintel_serve::engine::fallback_template;
use sintel_serve::{
    Admission, IngestEvent, ServeConfig, ServeEngine, StatusServer, TenantSpec,
};
use sintel_store::{json, Doc, Durability, SintelDb, StoreOptions};

const TENANTS: usize = 4;

fn tmpdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sintel-serve-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config() -> ServeConfig {
    ServeConfig {
        window: 256,
        hop: 64,
        min_points: 64,
        queue_capacity: 1 << 20,
        ..ServeConfig::default()
    }
}

fn specs() -> Vec<TenantSpec> {
    (0..TENANTS)
        .map(|i| TenantSpec::new(&format!("tenant-{i}"), 5, fallback_template()))
        .collect()
}

fn value_at(tenant: usize, t: i64) -> f64 {
    (t as f64 * (0.11 + tenant as f64 * 0.07)).sin()
        + if t % 911 == 0 && t > 0 { 4.0 } else { 0.0 }
}

/// One best-effort GET against the status server.
fn scrape_once(addr: std::net::SocketAddr, path: &str) {
    let Ok(mut stream) = TcpStream::connect(addr) else { return };
    if stream.write_all(format!("GET {path} HTTP/1.1\r\nHost: b\r\n\r\n").as_bytes()).is_err() {
        return;
    }
    let mut sink = String::new();
    let _ = stream.read_to_string(&mut sink);
}

/// Stream `per_tenant` events per tenant through the engine, ticking
/// every 64 offers per tenant; returns (events/sec, emitted). With
/// `scrape`, a live status server is hammered from another thread for
/// the whole run — an upper bound on scrape contention, far past any
/// real Prometheus interval.
fn bench_ingest(db: SintelDb, per_tenant: usize, scrape: bool) -> (f64, usize) {
    let mut engine = ServeEngine::open(db, config(), specs()).expect("open engine");
    let mut server = None;
    let mut scraper = None;
    let stop = Arc::new(AtomicBool::new(false));
    if scrape {
        let shared = engine.enable_status();
        let bound = StatusServer::bind("127.0.0.1:0", shared).expect("bind status server");
        let addr = bound.local_addr();
        let flag = Arc::clone(&stop);
        scraper = Some(std::thread::spawn(move || {
            let routes = ["/metrics", "/tenants", "/healthz"];
            let mut hits = 0usize;
            while !flag.load(Ordering::Relaxed) {
                scrape_once(addr, routes[hits % routes.len()]);
                hits += 1;
            }
        }));
        server = Some(bound);
    }
    let total = per_tenant * TENANTS;
    let mut emitted = 0usize;
    let start = Instant::now();
    for t in 0..per_tenant {
        for tenant in 0..TENANTS {
            let event =
                IngestEvent::new(&format!("tenant-{tenant}"), "cpu", t as i64, value_at(tenant, t as i64));
            match engine.offer(&event).expect("offer") {
                Admission::Accepted => {}
                other => panic!("unexpected admission {other:?}"),
            }
        }
        if (t + 1) % 64 == 0 {
            emitted += engine.tick().expect("tick").len();
        }
    }
    emitted += engine.tick().expect("tick").len();
    let rate = total as f64 / start.elapsed().as_secs_f64().max(1e-9);
    stop.store(true, Ordering::Relaxed);
    if let Some(handle) = scraper {
        handle.join().expect("scraper thread joins");
    }
    if let Some(server) = server {
        server.stop();
    }
    (rate, emitted)
}

fn main() {
    let session = sintel_bench::obs_session();
    let scale = sintel_bench::scale_from_env(0.25);
    let per_tenant = ((8_000.0 * scale) as usize).max(500);
    eprintln!(
        "serve microbench: {TENANTS} tenants x {per_tenant} events, scale {scale} …"
    );

    let (mem_rate, mem_emitted) = bench_ingest(SintelDb::in_memory(), per_tenant, false);

    let (scraped_rate, scraped_emitted) =
        bench_ingest(SintelDb::in_memory(), per_tenant, true);
    assert_eq!(mem_emitted, scraped_emitted, "scraping must not change emissions");

    let dir = tmpdir();
    let opts = StoreOptions { durability: Durability::WalSync, ..StoreOptions::default() };
    let db = SintelDb::open_with(&dir, opts.clone()).expect("open store");
    let (wal_rate, wal_emitted) = bench_ingest(db, per_tenant, false);
    assert_eq!(mem_emitted, wal_emitted, "durability must not change emissions");

    // Recovery: reopen the store (WAL replay) and the engine (session
    // checkpoint decode) from cold.
    let start = Instant::now();
    let db = SintelDb::open_with(&dir, opts).expect("reopen store");
    let engine = ServeEngine::open(db, config(), specs()).expect("recover engine");
    let recover = start.elapsed();
    assert!(engine.ticks() > 0, "recovery must resume the tick counter");
    drop(engine);
    let _ = std::fs::remove_dir_all(&dir);

    println!("Serve microbench: streaming-tier throughput (scale {scale})\n");
    println!("{:<24} {:>14}", "phase", "value");
    println!("{:<24} {:>11.0}/s", "ingest_in_memory", mem_rate);
    println!("{:<24} {:>11.0}/s", "ingest_scraped", scraped_rate);
    println!("{:<24} {:>11.0}/s", "ingest_checkpointed", wal_rate);
    println!("{:<24} {:>12.1}ms", "recover_sessions", recover.as_secs_f64() * 1e3);
    println!("\nemitted {mem_emitted} anomaly event(s) per run; checkpointing cost = the gap\nbetween the two ingest rates.");

    let out = std::env::var("SINTEL_BENCH_OUT").unwrap_or_else(|_| "BENCH_serve.json".into());
    let events = per_tenant * TENANTS;
    let report = Doc::obj().with("bench", "serve").with("scale", scale).with(
        "phases",
        Doc::obj()
            .with(
                "ingest_in_memory",
                Doc::obj()
                    .with("events_per_sec", (mem_rate.round() as i64).max(1))
                    .with("events", events),
            )
            .with(
                "ingest_scraped",
                Doc::obj()
                    .with("events_per_sec", (scraped_rate.round() as i64).max(1))
                    .with("events", events),
            )
            .with(
                "ingest_checkpointed",
                Doc::obj()
                    .with("events_per_sec", (wal_rate.round() as i64).max(1))
                    .with("events", events),
            )
            .with(
                "recover_sessions",
                Doc::obj()
                    .with("millis", (recover.as_secs_f64() * 1e3).max(Duration::ZERO.as_secs_f64()))
                    .with("tenants", TENANTS),
            ),
    );
    if let Err(e) = std::fs::write(&out, json::to_json(&report) + "\n") {
        eprintln!("serve microbench: writing {out}: {e}");
        std::process::exit(1);
    }
    eprintln!("serve microbench: wrote {out}");
    session.finish();
}

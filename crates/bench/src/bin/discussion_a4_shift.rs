//! **§5 discussion — "Addressing distribution shifts"** (beyond the
//! headline tables): unsupervised F1 drops on Yahoo's A4 subset, whose
//! signals contain unlabelled change points (86% of them, reproduced by
//! the data generator), and recovers once the §5 remedy — change-point
//! segmentation preprocessing — is put in front of the same pipeline.
//!
//! Run: `cargo run -p sintel-bench --release --bin discussion_a4_shift`

use sintel_datasets::{load, DatasetConfig, DatasetId};
use sintel_metrics::{overlapping_segment, Scores};
use sintel_pipeline::hub;
use sintel_timeseries::Interval;

fn subset_f1(pipeline_name: &str, subset: &sintel_datasets::Subset) -> Scores {
    let mut per_signal = Vec::new();
    for labeled in &subset.signals {
        let Ok(mut pipeline) = hub::template_by_name(pipeline_name)
            .and_then(|t| t.build_default())
        else {
            continue;
        };
        let Ok(anomalies) = pipeline.fit_detect(&labeled.signal, &labeled.signal) else {
            continue;
        };
        let pred: Vec<Interval> = anomalies.iter().map(|a| a.interval).collect();
        per_signal.push(overlapping_segment(&labeled.anomalies, &pred).scores());
    }
    Scores::mean(&per_signal)
}

fn main() {
    let scale = sintel_bench::scale_from_env(0.05);
    let data = DatasetConfig { seed: 42, signal_scale: scale, length_scale: 0.2 };
    let yahoo = load(DatasetId::Yahoo, &data);

    println!("§5 discussion: Yahoo A4 distribution shift (scale {scale})\n");
    println!("{:<22} {:>8} {:>8} {:>8} {:>8}", "pipeline", "A1", "A2", "A3", "A4");
    let mut plain_a4 = 0.0;
    let mut plain_others = Vec::new();
    for name in ["arima", "arima_shift_robust"] {
        let mut row = format!("{name:<22}");
        for subset in &yahoo.subsets {
            let f1 = subset_f1(name, subset).f1;
            row.push_str(&format!(" {f1:>8.3}"));
            if name == "arima" {
                if subset.name == "A4" {
                    plain_a4 = f1;
                } else {
                    plain_others.push(f1);
                }
            }
        }
        println!("{row}");
    }
    let robust_a4 = subset_f1("arima_shift_robust", &yahoo.subsets[3]).f1;
    let others = sintel_common::mean(&plain_others);
    println!();
    if plain_a4 < others - 0.02 {
        println!(
            "paper shape reproduced: plain F1 drops on A4 ({plain_a4:.3} vs A1–A3 mean {others:.3})."
        );
    } else {
        println!(
            "note: this reproduction's windowed dynamic threshold partially immunises\n\
             pipelines against change points (plain A4 {plain_a4:.3} vs A1–A3 mean {others:.3});\n\
             the paper's global-threshold setups suffer more."
        );
    }
    if robust_a4 >= plain_a4 - 0.02 {
        println!(
            "shift-removal preprocessing keeps or improves A4 quality (robust {robust_a4:.3})\n\
             while eliminating change-point alarms (see tests/extensions.rs)."
        );
    } else {
        println!("robust A4 {robust_a4:.3} (vs plain {plain_a4:.3}).");
    }
}

//! **Table 3** — unsupervised anomaly detection quality (F1, precision,
//! recall) per pipeline on each dataset, scored with the *overlapping
//! segment* method.
//!
//! The paper's qualitative findings this run should reproduce:
//!
//! * no single pipeline dominates every dataset;
//! * MS Azure (spectral residual here) posts the highest recall and the
//!   lowest precision everywhere — it fires on everything;
//! * prediction pipelines (LSTM DT, ARIMA) do well on Yahoo's point
//!   outliers; reconstruction pipelines are competitive on NAB/NASA.
//!
//! Run: `SINTEL_SCALE=0.1 cargo run -p sintel-bench --release --bin table3_quality`

use sintel::benchmark::{benchmark, render_table, BenchmarkConfig, MetricKind};
use sintel_datasets::{DatasetConfig, DatasetId};

#[global_allocator]
static ALLOC: sintel::alloc::TrackingAllocator = sintel::alloc::TrackingAllocator;

fn main() {
    let obs = sintel_bench::obs_session();
    let scale = sintel_bench::scale_from_env(0.06);
    let cfg = BenchmarkConfig {
        pipelines: sintel_pipeline::hub::available_pipelines()
            .iter()
            .map(|s| s.to_string())
            .collect(),
        datasets: vec![DatasetId::Nab, DatasetId::Nasa, DatasetId::Yahoo],
        data: DatasetConfig { seed: 42, signal_scale: scale, length_scale: (scale * 2.5).clamp(0.12, 1.0) },
        metric: MetricKind::Overlap,
        rank: "f1",
        ..BenchmarkConfig::default()
    };
    eprintln!(
        "Table 3: running {} pipelines x {} datasets at scale {scale} …",
        cfg.pipelines.len(),
        cfg.datasets.len()
    );
    let t0 = std::time::Instant::now();
    let rows = benchmark(&cfg).expect("benchmark run");
    println!(
        "Table 3: Unsupervised anomaly detection results (overlapping segment, scale {scale})\n"
    );
    print!("{}", render_table(&rows));
    println!("\ntotal wall-clock: {}", sintel_bench::fmt_duration(t0.elapsed()));

    // Qualitative checks mirroring the paper's headline observations.
    let azure_rows: Vec<_> =
        rows.iter().filter(|r| r.pipeline == "azure_anomaly_detection").collect();
    let best_recall_is_azure = azure_rows.iter().all(|az| {
        rows.iter()
            .filter(|r| r.dataset == az.dataset)
            .all(|r| az.mean.recall >= r.mean.recall - 0.05)
    });
    println!(
        "azure has (near-)top recall on every dataset: {}",
        if best_recall_is_azure { "yes (matches paper)" } else { "NO" }
    );
    let azure_low_precision = azure_rows.iter().all(|az| {
        rows.iter()
            .filter(|r| r.dataset == az.dataset && r.pipeline != az.pipeline)
            .all(|r| az.mean.precision <= r.mean.precision + 0.05)
    });
    println!(
        "azure has (near-)bottom precision on every dataset: {}",
        if azure_low_precision { "yes (matches paper)" } else { "NO" }
    );
    let winners: std::collections::HashSet<&str> = cfg
        .datasets
        .iter()
        .filter_map(|d| {
            rows.iter()
                .filter(|r| r.dataset == format!("{:?}", d).to_uppercase() || r.dataset == d.name())
                .max_by(|a, b| a.mean.f1.total_cmp(&b.mean.f1))
                .map(|r| r.pipeline.as_str())
        })
        .collect();
    println!("distinct per-dataset winners: {} (paper: no single pipeline dominates)", winners.len());
    obs.finish();
}

//! **Figure 7b** — difference in runtime between stand-alone primitives
//! and end-to-end pipelines (framework overhead).
//!
//! The paper reports the delta per pipeline (µ ± σ seconds over signals,
//! and the average percentage increase), all small: ARIMA 0.58%, LSTM AE
//! 0.75%, LSTM DT 2.5%, Dense AE 1.0%, TadGAN 0.2%. The heavier the
//! modeling stage, the smaller the relative overhead.
//!
//! Run: `SINTEL_SCALE=0.06 cargo run -p sintel-bench --release --bin fig7b_overhead`

use sintel_datasets::{load_all, DatasetConfig};
use sintel_pipeline::hub;

fn main() {
    let scale = sintel_bench::scale_from_env(0.04);
    let data = DatasetConfig { seed: 42, signal_scale: scale, length_scale: (scale * 2.5).clamp(0.12, 1.0) };
    let datasets = load_all(&data);
    let pipelines = ["arima", "lstm_autoencoder", "lstm_dynamic_threshold", "dense_autoencoder", "tadgan"];

    eprintln!("Figure 7b: primitive profiling at scale {scale} …");
    println!("Figure 7b: pipeline-vs-standalone primitive runtime (scale {scale})\n");
    println!(
        "{:<26} {:>16} {:>14} {:>12}",
        "pipeline", "delta mean ± std", "avg % incr.", "signals"
    );

    for name in pipelines {
        let template = hub::template_by_name(name).expect("hub pipeline");
        let mut deltas = Vec::new(); // seconds per signal
        let mut percents = Vec::new();
        for dataset in &datasets {
            for labeled in dataset.iter_signals() {
                let Ok(mut pipeline) = template.build_default() else { continue };
                if pipeline.fit_detect(&labeled.signal, &labeled.signal).is_err() {
                    continue;
                }
                let prof = pipeline.profile();
                let total = prof.total_time().as_secs_f64();
                let standalone = prof.primitive_time().as_secs_f64();
                deltas.push((total - standalone).max(0.0));
                if standalone > 0.0 {
                    percents.push(100.0 * (total - standalone).max(0.0) / standalone);
                }
            }
        }
        println!(
            "{:<26} {:>7.4}s ± {:<6.4} {:>12.2}% {:>12}",
            name,
            sintel_common::mean(&deltas),
            sintel_common::stddev(&deltas),
            sintel_common::mean(&percents),
            deltas.len(),
        );
    }
    println!(
        "\npaper shape: all deltas small (sub-3% average increase); running a\n\
         primitive inside a pipeline costs little beyond the primitive itself."
    );
}

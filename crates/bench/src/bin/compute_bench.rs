//! **Compute microbench** — kernel-level throughput of the vectorized
//! compute substrate (DESIGN.md §4j), tracked across commits.
//!
//! Measures, at `SINTEL_SCALE`:
//!
//! * matmul ns/op at shapes below / at / above the `2^20`-flop blocked
//!   threshold ([`Matrix::MATMUL_PAR_FLOPS`]), at 1 and 4 worker
//!   threads — the serial lane kernel vs the blocked fan-out;
//! * fused LSTM step latency (ns per time step on the flat inference
//!   path);
//! * `LstmRegressor::predict_batch` throughput (windows/sec) at 1 and
//!   4 threads; and
//! * a full deep-pipeline fit + detect sweep (wall and summed CPU time
//!   from [`BenchmarkReport`]) at 1 and 4 threads.
//!
//! Besides the console table, writes `BENCH_compute.json` (override
//! with `SINTEL_BENCH_OUT`). `compute_bench --check [path]` validates
//! an existing report against the expected schema and exits non-zero
//! on mismatch — `scripts/verify.sh` runs this after the measurement
//! pass, so a malformed report fails the build, not a later reader.
//!
//! Every measurement runs the *same decomposition* the library would
//! use in production: thread counts are set through
//! [`sintel_common::set_threads`], never by changing block sizes, so
//! the numbers track the determinism contract's actual cost.
//!
//! Run: `cargo run -p sintel-bench --release --bin compute_bench`

use std::time::{Duration, Instant};

use sintel::benchmark::{benchmark_report, BenchmarkConfig, BenchmarkReport, MetricKind};
use sintel::policy::RunPolicy;
use sintel_common::SintelRng;
use sintel_datasets::{DatasetConfig, DatasetId};
use sintel_linalg::Matrix;
use sintel_nn::{Lstm, LstmRegressor};
use sintel_pipeline::{StepSpec, Template};
use sintel_primitives::HyperValue;
use sintel_store::{json, Doc};

/// Thread budgets the kernel phases are measured at: the serial path
/// and a modest fan-out every CI machine can actually provide.
const THREADS: [usize; 2] = [1, 4];

fn random_matrix(rows: usize, cols: usize, rng: &mut SintelRng) -> Matrix {
    let data = (0..rows * cols).map(|_| rng.uniform_range(-1.0, 1.0)).collect();
    Matrix::from_vec(rows, cols, data)
}

/// Median-of-reps wall time for `f`, in nanoseconds. Reps are cheap
/// insurance against scheduler noise on shared CI machines.
fn time_ns(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos() as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// Matmul shapes spanning the blocked threshold: `(m, k, n)` with
/// `m*k*n` landing below / exactly at / above `MATMUL_PAR_FLOPS`.
/// (128*64*64 = 2^19, 128*128*64 = 2^20, 256*128*128 = 2^22.)
const MATMUL_SHAPES: [(&str, usize, usize, usize); 3] = [
    ("below_threshold", 128, 64, 64),
    ("at_threshold", 128, 128, 64),
    ("above_threshold", 256, 128, 128),
];

fn bench_matmul(scale: f64) -> Doc {
    let mut rng = SintelRng::seed_from_u64(0xC0_FFEE);
    let reps = ((12.0 * scale) as usize).max(3);
    let mut out = Doc::obj();
    for (name, m, k, n) in MATMUL_SHAPES {
        let a = random_matrix(m, k, &mut rng);
        let b = random_matrix(k, n, &mut rng);
        let flops = m * k * n;
        let mut shape = Doc::obj().with("m", m as i64).with("k", k as i64).with("n", n as i64);
        for threads in THREADS {
            sintel_common::set_threads(Some(threads));
            let blocked = Matrix::matmul_uses_blocked(flops, threads);
            a.matmul(&b).expect("matmul shapes agree"); // warm-up
            let ns = time_ns(reps, || {
                std::hint::black_box(a.matmul(std::hint::black_box(&b)).expect("matmul"));
            });
            shape = shape.with(
                format!("t{threads}").as_str(),
                Doc::obj()
                    .with("ns_per_op", ns.round() as i64)
                    .with("gflops", (2.0 * flops as f64) / ns.max(1.0))
                    .with("blocked", if blocked { 1_i64 } else { 0 }),
            );
        }
        out = out.with(name, shape);
    }
    sintel_common::set_threads(None);
    out
}

fn bench_lstm_step(scale: f64) -> Doc {
    let input_dim = 1;
    let hidden = 32;
    let steps = 100;
    let mut rng = SintelRng::seed_from_u64(0x157_317);
    let lstm = Lstm::new(input_dim, hidden, &mut rng);
    let xs: Vec<f64> = (0..steps).map(|_| rng.uniform_range(-1.0, 1.0)).collect();
    let mut state = lstm.state();
    let mut hs = Vec::new();
    lstm.forward_flat(&xs, &mut state, Some(&mut hs)); // warm-up
    let reps = ((40.0 * scale) as usize).max(5);
    let ns = time_ns(reps, || {
        lstm.forward_flat(std::hint::black_box(&xs), &mut state, Some(&mut hs));
        std::hint::black_box(&state);
    });
    Doc::obj()
        .with("hidden", hidden as i64)
        .with("sequence_steps", steps as i64)
        .with("ns_per_step", (ns / steps as f64).round() as i64)
}

fn bench_predict_batch(scale: f64) -> Doc {
    let window = 32;
    let hidden = 16;
    let n = ((2048.0 * scale) as usize).max(256);
    let model = LstmRegressor::new(window, 1, hidden, 11);
    let mut rng = SintelRng::seed_from_u64(0xBA7C4);
    let windows = random_matrix(n, window, &mut rng);
    let mut out = Doc::obj().with("windows", n as i64).with("window_size", window as i64);
    for threads in THREADS {
        sintel_common::set_threads(Some(threads));
        model.predict_batch(&windows).expect("predict_batch"); // warm-up
        let ns = time_ns(5, || {
            std::hint::black_box(model.predict_batch(std::hint::black_box(&windows)))
                .expect("predict_batch");
        });
        let per_sec = n as f64 / (ns / 1e9);
        out = out.with(
            format!("t{threads}").as_str(),
            Doc::obj().with("windows_per_sec", per_sec.round() as i64),
        );
    }
    sintel_common::set_threads(None);
    out
}

/// A small deep pipeline with the vectorized kernels on every hot
/// stage: flat-arena windowing, fused-LSTM training, blocked batched
/// inference, overlap unfolding.
fn deep_template() -> Template {
    Template {
        name: "compute_bench_lstm".into(),
        steps: vec![
            StepSpec::plain("time_segments_aggregate"),
            StepSpec::plain("SimpleImputer"),
            StepSpec::plain("MinMaxScaler"),
            StepSpec::with(
                "rolling_window_sequences",
                &[("window_size", HyperValue::Int(25)), ("targets", HyperValue::Flag(true))],
            ),
            StepSpec::with(
                "lstm_regressor",
                &[("epochs", HyperValue::Int(3)), ("hidden", HyperValue::Int(12))],
            ),
            StepSpec::plain("regression_errors"),
            StepSpec::plain("find_anomalies"),
        ],
    }
}

fn bench_pipeline(scale: f64) -> Doc {
    let cfg = BenchmarkConfig {
        pipelines: Vec::new(),
        extra_templates: vec![deep_template()],
        datasets: vec![DatasetId::Nab],
        data: DatasetConfig {
            seed: 42,
            signal_scale: (0.05 * scale.max(0.2)).clamp(0.01, 1.0),
            length_scale: 0.1,
        },
        metric: MetricKind::Overlap,
        rank: "f1",
        policy: RunPolicy {
            timeout: Duration::from_secs(300),
            max_retries: 0,
            backoff: Duration::ZERO,
        },
    };
    let mut out = Doc::obj();
    for threads in THREADS {
        sintel_common::set_threads(Some(threads));
        let report: BenchmarkReport = benchmark_report(&cfg).expect("deep sweep runs");
        assert!(!report.rows.is_empty(), "deep sweep produced no rows");
        out = out.with(
            format!("t{threads}").as_str(),
            Doc::obj()
                .with("wall_ms", report.wall_time.as_millis() as i64)
                .with("cpu_ms", report.cpu_time.as_millis() as i64)
                .with("threads", report.threads as i64),
        );
    }
    sintel_common::set_threads(None);
    out
}

// ---------------------------------------------------------------------
// Schema validation (`--check`)
// ---------------------------------------------------------------------

fn require<'d>(doc: &'d Doc, path: &str) -> Result<&'d Doc, String> {
    let mut cur = doc;
    for key in path.split('.') {
        cur = cur.get(key).ok_or_else(|| format!("missing field `{path}`"))?;
    }
    Ok(cur)
}

fn require_positive(doc: &Doc, path: &str) -> Result<(), String> {
    let v = require(doc, path)?;
    let n = v.as_f64().or_else(|| v.as_i64().map(|i| i as f64));
    match n {
        Some(x) if x > 0.0 => Ok(()),
        Some(x) => Err(format!("field `{path}` must be positive, got {x}")),
        None => Err(format!("field `{path}` is not numeric")),
    }
}

/// Validate a `BENCH_compute.json` produced by this binary. Every
/// phase, shape and thread count must be present with positive
/// numbers — a truncated or hand-edited report fails loudly.
fn check_report(path: &str) -> Result<(), String> {
    let raw = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let doc = json::from_json(raw.trim()).map_err(|e| format!("parsing {path}: {e}"))?;
    if require(&doc, "bench")?.as_str() != Some("compute") {
        return Err("field `bench` must be \"compute\"".into());
    }
    require_positive(&doc, "scale")?;
    for (name, _, _, _) in MATMUL_SHAPES {
        for t in THREADS {
            require_positive(&doc, &format!("matmul.{name}.t{t}.ns_per_op"))?;
            require_positive(&doc, &format!("matmul.{name}.t{t}.gflops"))?;
            require(&doc, &format!("matmul.{name}.t{t}.blocked"))?;
        }
        require_positive(&doc, &format!("matmul.{name}.m"))?;
    }
    require_positive(&doc, "lstm.ns_per_step")?;
    require_positive(&doc, "lstm.hidden")?;
    for t in THREADS {
        require_positive(&doc, &format!("predict_batch.t{t}.windows_per_sec"))?;
        require_positive(&doc, &format!("pipeline.t{t}.wall_ms"))?;
        require_positive(&doc, &format!("pipeline.t{t}.cpu_ms"))?;
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("--check") {
        let default_out =
            std::env::var("SINTEL_BENCH_OUT").unwrap_or_else(|_| "BENCH_compute.json".into());
        let path = args.get(2).cloned().unwrap_or(default_out);
        match check_report(&path) {
            Ok(()) => {
                eprintln!("compute microbench: {path} conforms to the schema");
                return;
            }
            Err(e) => {
                eprintln!("compute microbench: {path} failed validation: {e}");
                std::process::exit(1);
            }
        }
    }

    let session = sintel_bench::obs_session();
    let scale = sintel_bench::scale_from_env(0.25);
    eprintln!("compute microbench: scale {scale} …");

    let matmul = bench_matmul(scale);
    let lstm = bench_lstm_step(scale);
    let predict = bench_predict_batch(scale);
    let pipeline = bench_pipeline(scale);

    println!("Compute microbench (scale {scale})\n");
    println!("{:<22} {:>6} {:>14} {:>10}", "matmul shape", "thr", "ns/op", "gflops");
    for (name, _, _, _) in MATMUL_SHAPES {
        for t in THREADS {
            let entry = matmul.get(name).and_then(|s| s.get(&format!("t{t}")));
            let ns = entry.and_then(|e| e.get("ns_per_op")).and_then(Doc::as_i64).unwrap_or(0);
            let gf = entry.and_then(|e| e.get("gflops")).and_then(Doc::as_f64).unwrap_or(0.0);
            println!("{name:<22} {t:>6} {ns:>14} {gf:>10.2}");
        }
    }
    let step_ns = lstm.get("ns_per_step").and_then(Doc::as_i64).unwrap_or(0);
    println!("\nlstm step: {step_ns} ns/step (hidden 32)");
    for t in THREADS {
        let wps = predict
            .get(&format!("t{t}"))
            .and_then(|e| e.get("windows_per_sec"))
            .and_then(Doc::as_i64)
            .unwrap_or(0);
        println!("predict_batch t{t}: {wps} windows/sec");
    }
    for t in THREADS {
        let entry = pipeline.get(&format!("t{t}"));
        let wall = entry.and_then(|e| e.get("wall_ms")).and_then(Doc::as_i64).unwrap_or(0);
        let cpu = entry.and_then(|e| e.get("cpu_ms")).and_then(Doc::as_i64).unwrap_or(0);
        println!("pipeline t{t}: wall {wall} ms, cpu {cpu} ms");
    }

    let report = Doc::obj()
        .with("bench", "compute")
        .with("scale", scale)
        .with("matmul", matmul)
        .with("lstm", lstm)
        .with("predict_batch", predict)
        .with("pipeline", pipeline);
    let out = std::env::var("SINTEL_BENCH_OUT").unwrap_or_else(|_| "BENCH_compute.json".into());
    if let Err(e) = std::fs::write(&out, json::to_json(&report) + "\n") {
        eprintln!("compute microbench: writing {out}: {e}");
        std::process::exit(1);
    }
    // Self-check: the file this run just wrote must satisfy the schema
    // the `--check` mode enforces, so the two can never drift.
    if let Err(e) = check_report(&out) {
        eprintln!("compute microbench: self-validation of {out} failed: {e}");
        std::process::exit(1);
    }
    eprintln!("compute microbench: wrote {out}");
    session.finish();
}

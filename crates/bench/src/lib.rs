#![warn(missing_docs)]

//! # sintel-bench
//!
//! The benchmark harness that regenerates **every table and figure** of
//! the paper's evaluation section (§4). One binary per artefact:
//!
//! | Artefact | Binary | Paper content |
//! |----------|--------|---------------|
//! | Table 1  | `table1_features`  | system capability matrix |
//! | Table 2  | `table2_datasets`  | dataset summary (492 signals / 2349 anomalies) |
//! | Table 3  | `table3_quality`   | unsupervised F1/precision/recall per pipeline × dataset |
//! | Fig 7a   | `fig7a_compute`    | training time, pipeline latency, memory |
//! | Fig 7b   | `fig7b_overhead`   | standalone primitives vs end-to-end pipelines |
//! | Fig 7c   | `fig7c_automl`     | F1 before/after supervised tuning on NAB |
//! | Fig 8a   | `fig8a_feedback`   | semi-supervised F1 vs #annotations |
//! | Fig 8b   | `fig8b_usecase`    | satellite-study tag taxonomy |
//!
//! Every binary honours `SINTEL_SCALE` (fraction of the published corpus
//! size, default chosen per experiment to finish in minutes on a laptop)
//! and prints paper-formatted rows so measured numbers can be placed
//! next to the published ones (see EXPERIMENTS.md).
//!
//! Criterion micro-benches (`cargo bench`) cover the DESIGN.md §4
//! ablations: dynamic vs fixed thresholding, GP vs random tuner, indexed
//! vs scanned store queries, error smoothing on/off, and the two scoring
//! algorithms — plus per-pipeline fit/detect micro-benchmarks and
//! substrate benches (FFT, metrics, store).

use std::time::Duration;

/// Observability hookup of a bench binary, armed from the environment:
///
/// * `SINTEL_LOG` — log verbosity (read by `sintel-obs` itself).
/// * `SINTEL_TRACE_OUT` — write the run's span trace (JSON lines) here.
/// * `SINTEL_METRICS_OUT` — write the run's metrics snapshot
///   (Prometheus text) here.
///
/// Call [`obs_session`] first thing in `main` and [`ObsSession::finish`]
/// after the experiment: the published table output is untouched, the
/// exports ride alongside it.
#[must_use = "call .finish() after the experiment to write the exports"]
pub struct ObsSession {
    trace_out: Option<String>,
    metrics_out: Option<String>,
}

/// Arm trace capture if `SINTEL_TRACE_OUT` is set (see [`ObsSession`]).
pub fn obs_session() -> ObsSession {
    let session = ObsSession {
        trace_out: std::env::var("SINTEL_TRACE_OUT").ok(),
        metrics_out: std::env::var("SINTEL_METRICS_OUT").ok(),
    };
    if session.trace_out.is_some() {
        sintel_obs::tracing_start();
    }
    session
}

impl ObsSession {
    /// Write the requested exports; failures are logged, not fatal — a
    /// bench run's numbers are worth keeping even if an export path is
    /// bad.
    pub fn finish(self) {
        if let Some(path) = &self.trace_out {
            let events = sintel_obs::tracing_stop();
            if let Err(e) = std::fs::write(path, sintel_obs::export_jsonl(&events)) {
                sintel_obs::error!(
                    "sintel::bench",
                    format!("writing SINTEL_TRACE_OUT {path}: {e}"),
                );
            }
        }
        if let Some(path) = &self.metrics_out {
            let snapshot = sintel_obs::global().snapshot();
            if let Err(e) = std::fs::write(path, snapshot.to_prometheus()) {
                sintel_obs::error!(
                    "sintel::bench",
                    format!("writing SINTEL_METRICS_OUT {path}: {e}"),
                );
            }
        }
    }
}

/// Read `SINTEL_SCALE` (clamped), with a per-experiment default.
pub fn scale_from_env(default_scale: f64) -> f64 {
    std::env::var("SINTEL_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(default_scale)
        .clamp(0.001, 1.0)
}

/// Format a duration compactly for report tables.
pub fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 60.0 {
        format!("{:.1} min", s / 60.0)
    } else if s >= 1.0 {
        format!("{s:.2} s")
    } else {
        format!("{:.1} ms", s * 1e3)
    }
}

/// Format bytes compactly.
pub fn fmt_bytes(b: usize) -> String {
    const KB: f64 = 1024.0;
    let b = b as f64;
    if b >= KB * KB * KB {
        format!("{:.2} GiB", b / (KB * KB * KB))
    } else if b >= KB * KB {
        format!("{:.1} MiB", b / (KB * KB))
    } else if b >= KB {
        format!("{:.1} KiB", b / KB)
    } else {
        format!("{b:.0} B")
    }
}

/// Render a crude ASCII bar for figure-style output.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 || !value.is_finite() {
        return String::new();
    }
    let n = ((value / max) * width as f64).round() as usize;
    "#".repeat(n.min(width))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_formats() {
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.0 ms");
        assert_eq!(fmt_duration(Duration::from_secs_f64(2.5)), "2.50 s");
        assert_eq!(fmt_duration(Duration::from_secs(120)), "2.0 min");
    }

    #[test]
    fn byte_formats() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.0 KiB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024), "3.0 MiB");
        assert!(fmt_bytes(2 * 1024 * 1024 * 1024).contains("GiB"));
    }

    #[test]
    fn bars_scale() {
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(10.0, 10.0, 10), "##########");
        assert_eq!(bar(20.0, 10.0, 10), "##########");
        assert_eq!(bar(1.0, 0.0, 10), "");
    }

    #[test]
    fn scale_env_default() {
        std::env::remove_var("SINTEL_SCALE");
        assert_eq!(scale_from_env(0.1), 0.1);
    }
}

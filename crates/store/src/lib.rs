#![warn(missing_docs)]

//! # sintel-store
//!
//! The persistent knowledge base (paper §3.5) — an embedded document
//! database standing in for the MongoDB instance the Python Sintel stack
//! uses (see DESIGN.md §2).
//!
//! Layers, bottom-up:
//!
//! * [`doc::Doc`] — a JSON-like document value with an in-repo JSON
//!   serializer/parser ([`json`]);
//! * [`query::Filter`] — MongoDB-flavoured filters (eq/ne/gt/lt/in/
//!   exists/and/or) evaluated against documents;
//! * [`collection::Collection`] — id-keyed document storage with
//!   secondary hash indexes used to accelerate equality filters;
//! * [`db::Database`] — a named set of collections behind a
//!   `std::sync::RwLock`, with atomic JSONL persistence (write to a
//!   temp file, rename) and reload-on-open;
//! * [`schema`] — the Sintel entity schema of Figure 6 (datasets,
//!   signals, templates, pipelines, experiments, signalruns, events,
//!   annotations, users) as typed helpers over the generic layers.

pub mod collection;
pub mod db;
pub mod doc;
pub mod json;
pub mod query;
pub mod schema;

pub use collection::Collection;
pub use db::Database;
pub use doc::Doc;
pub use query::Filter;
pub use schema::SintelDb;

/// Errors produced by the document store.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// JSON parsing failed.
    Parse {
        /// Byte offset of the failure.
        offset: usize,
        /// What went wrong.
        message: String,
    },
    /// Filesystem failure during persistence.
    Io(String),
    /// Document id not found.
    NotFound(u64),
    /// Schema-level validation failure.
    Schema(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Parse { offset, message } => {
                write!(f, "json parse error at byte {offset}: {message}")
            }
            StoreError::Io(m) => write!(f, "io error: {m}"),
            StoreError::NotFound(id) => write!(f, "document {id} not found"),
            StoreError::Schema(m) => write!(f, "schema error: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, StoreError>;

#![warn(missing_docs)]

//! # sintel-store
//!
//! The persistent knowledge base (paper §3.5) — an embedded document
//! database standing in for the MongoDB instance the Python Sintel stack
//! uses (see DESIGN.md §2).
//!
//! Layers, bottom-up:
//!
//! * [`doc::Doc`] — a JSON-like document value with an in-repo JSON
//!   serializer/parser ([`json`]);
//! * [`query::Filter`] — MongoDB-flavoured filters (eq/ne/gt/lt/in/
//!   exists/and/or) evaluated against documents;
//! * [`collection::Collection`] — id-keyed document storage with
//!   secondary hash indexes used to accelerate equality filters;
//! * [`wal`] — an append-only, CRC32-checksummed write-ahead log with
//!   torn-tail recovery and (behind the `faulty` feature) crash-point
//!   fault injection;
//! * [`db::Database`] — collections sharded across per-shard locks
//!   ([`db::NUM_SHARDS`]), every mutation logged to the WAL and
//!   compacted into JSONL snapshots; [`db::Database::open`] replays the
//!   log over the snapshots and repairs crash debris deterministically
//!   (see [`db::RecoveryReport`]);
//! * [`schema`] — the Sintel entity schema of Figure 6 (datasets,
//!   signals, templates, pipelines, experiments, signalruns, events,
//!   annotations, users) as typed helpers over the generic layers.

pub mod collection;
pub mod db;
pub mod doc;
pub mod json;
pub mod query;
pub mod schema;
pub mod wal;

pub use collection::Collection;
pub use db::{
    shard_of, BatchScope, Database, Durability, RecoveryReport, StoreOptions, NUM_SHARDS,
};
pub use doc::Doc;
pub use query::Filter;
pub use schema::SintelDb;

/// Errors produced by the document store.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// JSON parsing failed.
    Parse {
        /// Byte offset of the failure.
        offset: usize,
        /// What went wrong.
        message: String,
    },
    /// Filesystem failure during persistence.
    Io(String),
    /// Document id not found.
    NotFound(u64),
    /// Schema-level validation failure.
    Schema(String),
    /// A persisted collection snapshot failed to load and was
    /// quarantined (renamed to `<collection>.jsonl.corrupt`) so the
    /// rest of the database could open.
    Corrupt {
        /// Collection whose snapshot was corrupt.
        collection: String,
        /// 1-based line number of the first bad line.
        line: usize,
        /// What was wrong with it.
        cause: String,
    },
    /// A crash injected by the `faulty` fault-injection layer
    /// ([`wal::fault`]); carries the crash-point label. Test-only.
    #[cfg(feature = "faulty")]
    Injected(&'static str),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Parse { offset, message } => {
                write!(f, "json parse error at byte {offset}: {message}")
            }
            StoreError::Io(m) => write!(f, "io error: {m}"),
            StoreError::NotFound(id) => write!(f, "document {id} not found"),
            StoreError::Schema(m) => write!(f, "schema error: {m}"),
            StoreError::Corrupt { collection, line, cause } => {
                write!(f, "corrupt snapshot for '{collection}' at line {line}: {cause}")
            }
            #[cfg(feature = "faulty")]
            StoreError::Injected(point) => write!(f, "injected crash at {point}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, StoreError>;

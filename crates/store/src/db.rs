//! The database: named collections behind a lock, with atomic JSONL
//! persistence.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

use std::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::collection::Collection;
use crate::doc::Doc;
use crate::json::{from_json, to_json};
use crate::query::Filter;
use crate::{Result, StoreError};

fn io_err(e: impl std::fmt::Display) -> StoreError {
    StoreError::Io(e.to_string())
}

/// An embedded multi-collection document database.
///
/// Thread-safe: reads take a shared lock, writes an exclusive one. When
/// opened with a directory path, [`Database::save`] writes one
/// `<collection>.jsonl` file per collection atomically (temp file +
/// rename) and [`Database::open`] reloads them.
///
/// ```
/// use sintel_store::{Database, Doc, Filter};
///
/// let db = Database::in_memory();
/// db.insert("events", Doc::obj().with("signal", "S-1").with("severity", 0.9));
/// let hits = db.find("events", &Filter::eq("signal", "S-1"));
/// assert_eq!(hits.len(), 1);
/// ```
pub struct Database {
    collections: RwLock<HashMap<String, Collection>>,
    path: Option<PathBuf>,
}

impl Database {
    /// Shared lock; a poisoned lock (writer panicked) is recovered rather
    /// than propagated — collection state is valid after any completed
    /// insert/update, so reads remain safe.
    fn read_lock(&self) -> RwLockReadGuard<'_, HashMap<String, Collection>> {
        self.collections.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Exclusive lock with the same poison-recovery rationale.
    fn write_lock(&self) -> RwLockWriteGuard<'_, HashMap<String, Collection>> {
        self.collections.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Volatile in-memory database.
    pub fn in_memory() -> Self {
        Self { collections: RwLock::new(HashMap::new()), path: None }
    }

    /// Open (creating if needed) a database persisted under `dir`.
    pub fn open(dir: &Path) -> Result<Self> {
        std::fs::create_dir_all(dir).map_err(io_err)?;
        let mut collections = HashMap::new();
        for entry in std::fs::read_dir(dir).map_err(io_err)? {
            let entry = entry.map_err(io_err)?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("jsonl") {
                continue;
            }
            let name = path
                .file_stem()
                .and_then(|s| s.to_str())
                .ok_or_else(|| StoreError::Io(format!("bad file name {path:?}")))?
                .to_string();
            let mut collection = Collection::new();
            let file = std::fs::File::open(&path).map_err(io_err)?;
            for line in BufReader::new(file).lines() {
                let line = line.map_err(io_err)?;
                if line.trim().is_empty() {
                    continue;
                }
                let doc = from_json(&line)?;
                let id = doc
                    .get("_id")
                    .and_then(Doc::as_i64)
                    .ok_or_else(|| StoreError::Schema("persisted doc lacks _id".into()))?;
                collection.restore(id as u64, doc);
            }
            collections.insert(name, collection);
        }
        Ok(Self { collections: RwLock::new(collections), path: Some(dir.to_path_buf()) })
    }

    /// Persist every collection (no-op for in-memory databases).
    pub fn save(&self) -> Result<()> {
        let Some(dir) = &self.path else { return Ok(()) };
        let collections = self.read_lock();
        for (name, collection) in collections.iter() {
            let final_path = dir.join(format!("{name}.jsonl"));
            let tmp_path = dir.join(format!(".{name}.jsonl.tmp"));
            {
                let file = std::fs::File::create(&tmp_path).map_err(io_err)?;
                let mut out = BufWriter::new(file);
                for (_, doc) in collection.iter() {
                    writeln!(out, "{}", to_json(doc)).map_err(io_err)?;
                }
                out.flush().map_err(io_err)?;
            }
            std::fs::rename(&tmp_path, &final_path).map_err(io_err)?;
        }
        Ok(())
    }

    /// Insert into a collection (created on first use); returns the id.
    pub fn insert(&self, collection: &str, doc: Doc) -> u64 {
        self.write_lock().entry(collection.to_string()).or_default().insert(doc)
    }

    /// Fetch one document by id (cloned out of the lock).
    pub fn get(&self, collection: &str, id: u64) -> Option<Doc> {
        self.read_lock().get(collection)?.get(id).cloned()
    }

    /// Find matching documents (cloned).
    pub fn find(&self, collection: &str, filter: &Filter) -> Vec<Doc> {
        self.read_lock()
            .get(collection)
            .map(|c| c.find(filter).into_iter().cloned().collect())
            .unwrap_or_default()
    }

    /// First match (cloned).
    pub fn find_one(&self, collection: &str, filter: &Filter) -> Option<Doc> {
        self.read_lock().get(collection)?.find_one(filter).cloned()
    }

    /// Count matches.
    pub fn count(&self, collection: &str, filter: &Filter) -> usize {
        self.read_lock().get(collection).map(|c| c.count(filter)).unwrap_or(0)
    }

    /// Replace a document.
    pub fn update(&self, collection: &str, id: u64, doc: Doc) -> Result<()> {
        self.write_lock()
            .get_mut(collection)
            .ok_or(StoreError::NotFound(id))?
            .update(id, doc)
    }

    /// Merge fields into a document.
    pub fn patch(&self, collection: &str, id: u64, fields: &[(&str, Doc)]) -> Result<()> {
        self.write_lock()
            .get_mut(collection)
            .ok_or(StoreError::NotFound(id))?
            .patch(id, fields)
    }

    /// Delete a document.
    pub fn delete(&self, collection: &str, id: u64) -> Result<()> {
        self.write_lock()
            .get_mut(collection)
            .ok_or(StoreError::NotFound(id))?
            .delete(id)
    }

    /// Create a secondary index on a collection field.
    pub fn create_index(&self, collection: &str, field: &str) {
        self.write_lock()
            .entry(collection.to_string())
            .or_default()
            .create_index(field);
    }

    /// Names of non-empty collections (sorted).
    pub fn collection_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.read_lock().keys().cloned().collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sintel-db-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn in_memory_crud() {
        let db = Database::in_memory();
        let id = db.insert("events", Doc::obj().with("signal", "S-1"));
        assert_eq!(db.get("events", id).unwrap().get("signal").unwrap().as_str(), Some("S-1"));
        db.patch("events", id, &[("status", Doc::from("confirmed"))]).unwrap();
        assert_eq!(db.count("events", &Filter::eq("status", "confirmed")), 1);
        db.delete("events", id).unwrap();
        assert_eq!(db.count("events", &Filter::All), 0);
        assert!(db.get("events", id).is_none());
        assert!(db.find_one("missing", &Filter::All).is_none());
    }

    #[test]
    fn save_and_reopen_roundtrip() {
        let dir = tmpdir("roundtrip");
        {
            let db = Database::open(&dir).unwrap();
            db.insert("signals", Doc::obj().with("name", "S-1").with("len", 100i64));
            db.insert("signals", Doc::obj().with("name", "S-2").with("len", 200i64));
            db.insert("events", Doc::obj().with("signal", "S-1").with("score", 0.9));
            db.save().unwrap();
        }
        let db = Database::open(&dir).unwrap();
        assert_eq!(db.count("signals", &Filter::All), 2);
        assert_eq!(db.count("events", &Filter::All), 1);
        let s2 = db.find_one("signals", &Filter::eq("name", "S-2")).unwrap();
        assert_eq!(s2.get("len").unwrap().as_i64(), Some(200));
        // Ids continue monotonically after reload.
        let id = db.insert("signals", Doc::obj().with("name", "S-3"));
        assert_eq!(id, 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_is_atomic_no_tmp_left_behind() {
        let dir = tmpdir("atomic");
        let db = Database::open(&dir).unwrap();
        db.insert("events", Doc::obj().with("a", 1i64));
        db.save().unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_inserts_are_serialised() {
        let db = std::sync::Arc::new(Database::in_memory());
        let mut handles = Vec::new();
        for t in 0..8 {
            let db = db.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    db.insert("events", Doc::obj().with("thread", t as i64).with("i", i as i64));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(db.count("events", &Filter::All), 400);
        // Ids are unique.
        let docs = db.find("events", &Filter::All);
        let mut ids: Vec<i64> =
            docs.iter().map(|d| d.get("_id").unwrap().as_i64().unwrap()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 400);
    }

    #[test]
    fn indexed_find_through_db() {
        let db = Database::in_memory();
        db.create_index("events", "signal");
        for i in 0..30 {
            db.insert("events", Doc::obj().with("signal", format!("S-{}", i % 3)));
        }
        assert_eq!(db.find("events", &Filter::eq("signal", "S-1")).len(), 10);
    }
}

//! The database: collections sharded across per-shard locks, durably
//! persisted through a checksummed write-ahead log plus JSONL snapshots.
//!
//! ## Concurrency
//!
//! Documents are distributed over [`NUM_SHARDS`] shards by
//! [`shard_of`]`(collection, id)` — a deterministic FNV-1a hash, never
//! `RandomState`, so the same document lands on the same shard in every
//! process. Each shard holds its slice of every collection behind its
//! own `RwLock`, so a writer touching one shard never blocks readers of
//! the other fifteen; readers first `try_read` and count the rare
//! conflict in `sintel_store_shard_read_blocked_total` before waiting.
//!
//! ## Durability
//!
//! Mutations apply to memory first (under one shard's write lock), then
//! are logged to the WAL ([`crate::wal`]) — individually, or as one
//! record per [`Database::batch`] scope. [`Database::save`] doubles as
//! *compaction*: it writes one `<collection>.jsonl` snapshot per
//! collection (temp file + `sync_all` + rename + directory `fsync`) and
//! then truncates the log; the log also auto-compacts once it crosses
//! [`StoreOptions::compact_threshold`]. [`Database::open`] recovers
//! deterministically: remove orphan temp files, load snapshots
//! (quarantining corrupt files as `<name>.jsonl.corrupt` instead of
//! failing the open), then replay the WAL — truncating a torn tail —
//! and report it all in a [`RecoveryReport`].
//!
//! A database directory supports one writer at a time; concurrent
//! writers through separate `Database` handles would interleave
//! appends on independent file cursors and corrupt the log.

use std::collections::HashMap;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard, TryLockError};
use std::time::Instant;

use crate::collection::Collection;
use crate::doc::Doc;
use crate::json::{from_json, to_json};
use crate::query::Filter;
use crate::wal::{crash_point, encode_batch, fsync_dir, Wal, WalOp};
use crate::{Result, StoreError};

/// Log target for store observability events.
const TARGET: &str = "sintel::store";

/// Number of lock shards collections are hashed across.
pub const NUM_SHARDS: usize = 16;

fn io_err(e: impl std::fmt::Display) -> StoreError {
    StoreError::Io(e.to_string())
}

/// Shard index for a document: FNV-1a 64 over the collection name and
/// the little-endian id bytes. Deterministic across processes and runs
/// (the persisted layout and the tests depend on that).
pub fn shard_of(collection: &str, id: u64) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in collection.bytes().chain(id.to_le_bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % NUM_SHARDS as u64) as usize
}

/// How eagerly committed writes reach the disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Durability {
    /// No write-ahead log: data persists only on explicit
    /// [`Database::save`] (the pre-WAL behaviour, with the snapshot
    /// writer's fsync bugs fixed). A crash loses everything since the
    /// last save.
    Snapshot,
    /// Every mutation is appended to the WAL but `fsync` is left to the
    /// OS page cache: a process crash loses nothing, a power failure
    /// may lose the cache tail.
    Wal,
    /// Every WAL append is `sync_data`'d before the mutation returns:
    /// committed means durable. The default.
    WalSync,
}

impl Durability {
    /// Parse a CLI-flavoured label (`snapshot` | `wal` | `wal-sync`).
    pub fn parse(s: &str) -> Option<Durability> {
        match s {
            "snapshot" => Some(Durability::Snapshot),
            "wal" => Some(Durability::Wal),
            "wal-sync" => Some(Durability::WalSync),
            _ => None,
        }
    }

    /// The label [`Durability::parse`] accepts.
    pub fn label(self) -> &'static str {
        match self {
            Durability::Snapshot => "snapshot",
            Durability::Wal => "wal",
            Durability::WalSync => "wal-sync",
        }
    }
}

/// Tunables for [`Database::open_with`].
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Write durability level.
    pub durability: Durability,
    /// WAL size (bytes) beyond which a commit triggers auto-compaction
    /// into fresh snapshots. `u64::MAX` disables auto-compaction.
    pub compact_threshold: u64,
}

impl Default for StoreOptions {
    fn default() -> Self {
        Self { durability: Durability::WalSync, compact_threshold: 4 * 1024 * 1024 }
    }
}

/// What [`Database::open`] found and repaired on the way up.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Snapshot files that failed to load and were quarantined with a
    /// `.corrupt` suffix ([`StoreError::Corrupt`] each).
    pub corrupt: Vec<StoreError>,
    /// Orphan `.tmp` files (compaction crash debris) that were removed.
    pub orphans_removed: Vec<String>,
    /// Committed WAL batches replayed over the snapshots.
    pub wal_replayed_batches: usize,
    /// Individual operations inside those batches.
    pub wal_replayed_ops: usize,
    /// Byte offset the WAL was truncated at when a torn tail was found.
    pub wal_truncated_at: Option<u64>,
}

impl RecoveryReport {
    /// True when recovery found nothing to repair.
    pub fn is_clean(&self) -> bool {
        self.corrupt.is_empty()
            && self.orphans_removed.is_empty()
            && self.wal_truncated_at.is_none()
    }
}

/// Writes buffered during an open [`BatchScope`], committed as one WAL
/// record. `depth` counts nested scopes.
struct PendingBatch {
    depth: usize,
    ops: Vec<WalOp>,
}

/// An embedded multi-collection document database.
///
/// Thread-safe: collections are sharded across [`NUM_SHARDS`] locks so
/// readers and writers of different shards proceed in parallel. When
/// opened with a directory path, every mutation is logged to a
/// checksummed write-ahead log and [`Database::save`] compacts the log
/// into one `<collection>.jsonl` snapshot per collection;
/// [`Database::open`] replays log over snapshots, repairing crash
/// debris (see [`RecoveryReport`]).
///
/// ```
/// use sintel_store::{Database, Doc, Filter};
///
/// let db = Database::in_memory();
/// db.insert("events", Doc::obj().with("signal", "S-1").with("severity", 0.9));
/// let hits = db.find("events", &Filter::eq("signal", "S-1"));
/// assert_eq!(hits.len(), 1);
/// ```
pub struct Database {
    /// `shard -> collection name -> that shard's slice of the collection`.
    shards: [RwLock<HashMap<String, Collection>>; NUM_SHARDS],
    /// Global per-collection id allocator (`next_id`).
    ids: Mutex<HashMap<String, u64>>,
    /// Index registry: collection -> indexed fields. New shard slices
    /// of a collection inherit these on creation.
    indexed: Mutex<HashMap<String, Vec<String>>>,
    /// The write-ahead log; `None` for in-memory and snapshot-only DBs.
    wal: Mutex<Option<Wal>>,
    /// Open batch scope, if any.
    pending: Mutex<Option<PendingBatch>>,
    path: Option<PathBuf>,
    opts: StoreOptions,
    recovery: RecoveryReport,
}

impl Database {
    // ---- lock helpers (poisoned locks are recovered, not propagated:
    // collection state is valid after any completed mutation) ----------

    fn read_shard(&self, idx: usize) -> RwLockReadGuard<'_, HashMap<String, Collection>> {
        match self.shards[idx].try_read() {
            Ok(guard) => guard,
            Err(TryLockError::Poisoned(e)) => e.into_inner(),
            Err(TryLockError::WouldBlock) => {
                sintel_obs::counter_add("sintel_store_shard_read_blocked_total", 1);
                self.shards[idx].read().unwrap_or_else(|e| e.into_inner())
            }
        }
    }

    fn write_shard(&self, idx: usize) -> RwLockWriteGuard<'_, HashMap<String, Collection>> {
        self.shards[idx].write().unwrap_or_else(|e| e.into_inner())
    }

    fn lock_ids(&self) -> MutexGuard<'_, HashMap<String, u64>> {
        self.ids.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn lock_indexed(&self) -> MutexGuard<'_, HashMap<String, Vec<String>>> {
        self.indexed.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn lock_wal(&self) -> MutexGuard<'_, Option<Wal>> {
        self.wal.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn lock_pending(&self) -> MutexGuard<'_, Option<PendingBatch>> {
        self.pending.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn empty(path: Option<PathBuf>, opts: StoreOptions) -> Self {
        Self {
            shards: std::array::from_fn(|_| RwLock::new(HashMap::new())),
            ids: Mutex::new(HashMap::new()),
            indexed: Mutex::new(HashMap::new()),
            wal: Mutex::new(None),
            pending: Mutex::new(None),
            path,
            opts,
            recovery: RecoveryReport::default(),
        }
    }

    /// Volatile in-memory database.
    pub fn in_memory() -> Self {
        Self::empty(None, StoreOptions::default())
    }

    /// Open (creating if needed) a database persisted under `dir`, with
    /// default options ([`Durability::WalSync`]).
    pub fn open(dir: &Path) -> Result<Self> {
        Self::open_with(dir, StoreOptions::default())
    }

    /// Open (creating if needed) a database persisted under `dir`.
    ///
    /// Recovery sequence, in order: remove orphan compaction temp
    /// files; load every `<name>.jsonl` snapshot (a file with a corrupt
    /// line is renamed to `<name>.jsonl.corrupt` and reported rather
    /// than failing the open); replay the write-ahead log over the
    /// snapshots, truncating a torn tail. The outcome is readable via
    /// [`Database::recovery`] — this never panics on crash debris.
    pub fn open_with(dir: &Path, opts: StoreOptions) -> Result<Self> {
        std::fs::create_dir_all(dir).map_err(io_err)?;
        let mut db = Self::empty(Some(dir.to_path_buf()), opts);
        let mut report = RecoveryReport::default();

        // 1. Orphan temp files: debris of a crash mid-compaction. The
        // WAL still holds whatever the interrupted compaction was
        // flushing, so the orphans are pure garbage.
        let mut snapshots = Vec::new();
        for entry in std::fs::read_dir(dir).map_err(io_err)? {
            let path = entry.map_err(io_err)?.path();
            if !path.is_file() {
                continue;
            }
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("").to_string();
            if name.ends_with(".tmp") {
                std::fs::remove_file(&path).map_err(io_err)?;
                sintel_obs::warn!(
                    TARGET,
                    "removed orphan temp file left by an interrupted compaction",
                    file = name.as_str(),
                );
                sintel_obs::counter_add("sintel_store_orphans_removed_total", 1);
                report.orphans_removed.push(name);
            } else if path.extension().and_then(|e| e.to_str()) == Some("jsonl") {
                snapshots.push(path);
            }
        }
        snapshots.sort();

        // 2. Snapshots. A corrupt file is quarantined whole: half a
        // collection silently loaded would be worse than none, and the
        // bytes stay on disk (renamed) for manual inspection.
        for path in snapshots {
            let name = path
                .file_stem()
                .and_then(|s| s.to_str())
                .ok_or_else(|| StoreError::Io(format!("bad file name {path:?}")))?
                .to_string();
            match load_snapshot(&path) {
                Ok(docs) => {
                    // Even an empty snapshot names a collection that
                    // must exist (and persist) after reopen.
                    db.ensure_collection(&name);
                    for (id, doc) in docs {
                        db.bump_next_id(&name, id);
                        db.apply_put(&name, id, doc);
                    }
                }
                Err(err) => {
                    let quarantine = path.with_extension("jsonl.corrupt");
                    std::fs::rename(&path, &quarantine).map_err(io_err)?;
                    sintel_obs::warn!(
                        TARGET,
                        format!("quarantined corrupt snapshot: {err}"),
                        collection = name.as_str(),
                    );
                    sintel_obs::counter_add("sintel_store_corrupt_collections_total", 1);
                    report.corrupt.push(err);
                }
            }
        }

        // 3. The log: replay every committed batch, truncate torn tails.
        let t0 = Instant::now();
        let sync = db.opts.durability == Durability::WalSync;
        let (mut wal, replay) = Wal::open(dir, sync)?;
        report.wal_replayed_batches = replay.batches.len();
        report.wal_truncated_at = replay.truncated_at;
        for batch in replay.batches {
            for op in batch {
                report.wal_replayed_ops += 1;
                db.apply_replayed(op);
            }
        }
        if let Some(offset) = replay.truncated_at {
            sintel_obs::warn!(
                TARGET,
                "truncated torn tail of write-ahead log",
                offset = offset,
            );
            sintel_obs::counter_add("sintel_store_wal_truncations_total", 1);
        }
        sintel_obs::counter_add(
            "sintel_store_wal_replayed_batches_total",
            report.wal_replayed_batches as u64,
        );
        sintel_obs::observe_duration("sintel_store_wal_replay_seconds", t0.elapsed());

        if db.opts.durability == Durability::Snapshot {
            // Snapshot-only mode keeps no log. Fold anything a previous
            // WAL-mode run left in it into fresh snapshots *now*, then
            // truncate — a stale log must never resurrect over
            // snapshots written later by this mode's explicit saves.
            if report.wal_replayed_batches > 0 || report.wal_truncated_at.is_some() {
                db.snapshot_all(dir)?;
            }
            if wal.size() > 0 {
                wal.reset()?;
            }
        } else {
            *db.lock_wal() = Some(wal);
        }
        db.recovery = report;
        Ok(db)
    }

    /// What recovery found when this database was opened (empty report
    /// for in-memory databases).
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// The durability level this database runs at.
    pub fn durability(&self) -> Durability {
        self.opts.durability
    }

    /// Current size of the write-ahead log in bytes (0 without a WAL).
    pub fn wal_size(&self) -> u64 {
        self.lock_wal().as_ref().map(Wal::size).unwrap_or(0)
    }

    // ---- persistence -------------------------------------------------

    /// Persist every collection and truncate the write-ahead log (a
    /// no-op for in-memory databases). This is also *compaction*: the
    /// log's contents are folded into `<collection>.jsonl` snapshots
    /// (temp file, `sync_all`, rename, directory `fsync` — the full
    /// crash-safe sequence), after which the log restarts empty.
    pub fn save(&self) -> Result<()> {
        let Some(dir) = self.path.clone() else { return Ok(()) };
        let t0 = Instant::now();
        let mut wal_guard = self.lock_wal();
        self.snapshot_all(&dir)?;
        if let Some(wal) = wal_guard.as_mut() {
            wal.reset()?;
        }
        drop(wal_guard);
        sintel_obs::counter_add("sintel_store_compactions_total", 1);
        sintel_obs::observe_duration("sintel_store_compaction_seconds", t0.elapsed());
        Ok(())
    }

    /// Write one JSONL snapshot per collection under `dir`, from a
    /// consistent view (all shard read locks held). The caller decides
    /// what happens to the WAL.
    fn snapshot_all(&self, dir: &Path) -> Result<()> {
        let shards: Vec<_> = (0..NUM_SHARDS).map(|i| self.read_shard(i)).collect();
        // Every collection that ever existed gets a file — including
        // ones that are currently empty or only had an index declared —
        // so a reopened database sees the same collection set.
        let mut names: Vec<String> =
            shards.iter().flat_map(|shard| shard.keys().cloned()).collect();
        names.extend(self.lock_indexed().keys().cloned());
        names.sort();
        names.dedup();
        for name in &names {
            let final_path = dir.join(format!("{name}.jsonl"));
            let tmp_path = dir.join(format!(".{name}.jsonl.tmp"));
            {
                let file = File::create(&tmp_path).map_err(io_err)?;
                let mut out = BufWriter::new(file);
                let mut docs: Vec<(&u64, &Doc)> = shards
                    .iter()
                    .filter_map(|shard| shard.get(name))
                    .flat_map(Collection::iter)
                    .collect();
                docs.sort_by_key(|(id, _)| **id);
                for (_, doc) in docs {
                    writeln!(out, "{}", to_json(doc)).map_err(io_err)?;
                }
                out.flush().map_err(io_err)?;
                // A rename is only atomic *and durable* if the new
                // bytes are on disk first.
                out.get_ref().sync_all().map_err(io_err)?;
            }
            crash_point!(MidCompaction, Err);
            std::fs::rename(&tmp_path, &final_path).map_err(io_err)?;
        }
        // ...and the renames themselves live in the directory entry.
        fsync_dir(dir)
    }

    // ---- write path --------------------------------------------------

    /// Make a collection exist (possibly empty) so `collection_names`
    /// and snapshots keep listing it. Its home shard is `shard_of(name, 0)`.
    fn ensure_collection(&self, name: &str) {
        let mut shard = self.write_shard(shard_of(name, 0));
        shard.entry(name.to_string()).or_default();
    }

    fn bump_next_id(&self, collection: &str, id: u64) {
        let mut ids = self.lock_ids();
        let next = ids.entry(collection.to_string()).or_insert(1);
        *next = (*next).max(id + 1);
    }

    fn alloc_id(&self, collection: &str) -> u64 {
        let mut ids = self.lock_ids();
        let next = ids.entry(collection.to_string()).or_insert(1);
        let id = *next;
        *next += 1;
        id
    }

    /// Upsert `doc` (already carrying `_id`) into its shard. Existing
    /// documents go through `update` so their old index entries are
    /// removed; fresh ones through `restore`.
    fn apply_put(&self, collection: &str, id: u64, doc: Doc) {
        let fields: Vec<String> =
            self.lock_indexed().get(collection).cloned().unwrap_or_default();
        let mut shard = self.write_shard(shard_of(collection, id));
        let col = shard.entry(collection.to_string()).or_default();
        for field in &fields {
            col.create_index(field);
        }
        if col.get(id).is_some() {
            let _ = col.update(id, doc);
        } else {
            col.restore(id, doc);
        }
    }

    fn apply_replayed(&self, op: WalOp) {
        match op {
            WalOp::Put { collection, id, doc } => {
                self.bump_next_id(&collection, id);
                self.apply_put(&collection, id, doc);
            }
            WalOp::Delete { collection, id } => {
                let mut shard = self.write_shard(shard_of(&collection, id));
                if let Some(col) = shard.get_mut(&collection) {
                    // Deleting a doc the snapshot already lacks is fine:
                    // the snapshot was written after this op committed.
                    let _ = col.delete(id);
                }
            }
        }
    }

    /// Route one committed operation to the WAL — directly, or into the
    /// open batch scope.
    fn log_op(&self, op: WalOp) -> Result<()> {
        {
            let mut pending = self.lock_pending();
            if let Some(batch) = pending.as_mut() {
                batch.ops.push(op);
                return Ok(());
            }
        }
        self.commit_ops(vec![op])
    }

    /// Append a batch of operations as one WAL record.
    fn commit_ops(&self, ops: Vec<WalOp>) -> Result<()> {
        if ops.is_empty() {
            return Ok(());
        }
        let mut wal_guard = self.lock_wal();
        let Some(wal) = wal_guard.as_mut() else { return Ok(()) };
        let payload = encode_batch(&ops);
        let t0 = Instant::now();
        match wal.append(&payload) {
            Ok(()) => {
                sintel_obs::counter_add("sintel_store_wal_appends_total", 1);
                sintel_obs::counter_add(
                    "sintel_store_wal_appended_bytes_total",
                    payload.len() as u64 + 8,
                );
                if wal.synced() {
                    sintel_obs::counter_add("sintel_store_wal_fsyncs_total", 1);
                }
                sintel_obs::observe_duration("sintel_store_wal_append_seconds", t0.elapsed());
                let compact = wal.size() >= self.opts.compact_threshold;
                drop(wal_guard);
                if compact {
                    // Auto-compaction failing is not a commit failure:
                    // the data is durable in the log; only the fold
                    // into snapshots is deferred.
                    if let Err(e) = self.save() {
                        sintel_obs::warn!(
                            TARGET,
                            format!("auto-compaction failed, will retry on next commit: {e}"),
                        );
                    }
                }
                Ok(())
            }
            Err(e) => {
                sintel_obs::counter_add("sintel_store_wal_append_errors_total", 1);
                Err(e)
            }
        }
    }

    /// True for errors produced by the WAL append path (as opposed to
    /// the in-memory mutation, which e.g. yields `NotFound`).
    fn is_wal_error(e: &StoreError) -> bool {
        match e {
            StoreError::Io(_) => true,
            #[cfg(feature = "faulty")]
            StoreError::Injected(_) => true,
            _ => false,
        }
    }

    /// Swallow a WAL failure from an infallible legacy signature: the
    /// mutation stays applied in memory (availability wins) and the
    /// failure is logged and counted; callers that must know use the
    /// `try_*` variants.
    fn swallow_wal_error(op: &'static str, result: Result<()>) -> Result<()> {
        match result {
            Err(e) if Self::is_wal_error(&e) => {
                sintel_obs::warn!(
                    TARGET,
                    format!("{op}: write applied in memory but not logged: {e}"),
                );
                Ok(())
            }
            other => other,
        }
    }

    /// Open a batch scope: every mutation until the scope commits (or
    /// drops) is buffered and appended as **one** WAL record — one
    /// fsync per batch instead of per write. Scopes nest (inner scopes
    /// just deepen the outer one), and while one is open, writes from
    /// *all* threads join the buffer, so batches are for serial
    /// sections (the benchmark fold) or single-writer phases.
    pub fn batch(&self) -> BatchScope<'_> {
        let mut pending = self.lock_pending();
        match pending.as_mut() {
            Some(batch) => batch.depth += 1,
            None => *pending = Some(PendingBatch { depth: 1, ops: Vec::new() }),
        }
        BatchScope { db: self, committed: false }
    }

    fn batch_end(&self) -> Result<()> {
        let ops = {
            let mut pending = self.lock_pending();
            match pending.as_mut() {
                Some(batch) if batch.depth > 1 => {
                    batch.depth -= 1;
                    return Ok(());
                }
                Some(_) => pending.take().map(|b| b.ops).unwrap_or_default(),
                None => return Ok(()),
            }
        };
        self.commit_ops(ops)
    }

    // ---- public mutations --------------------------------------------

    /// Insert into a collection (created on first use); returns the id.
    ///
    /// Infallible legacy signature: a WAL failure leaves the document
    /// in memory and is logged/counted ([`Database::try_insert`]
    /// surfaces it instead).
    pub fn insert(&self, collection: &str, doc: Doc) -> u64 {
        let (id, logged) = self.insert_inner(collection, doc);
        let _ = Self::swallow_wal_error("insert", logged);
        id
    }

    /// Insert, surfacing WAL append failures; returns the new id.
    pub fn try_insert(&self, collection: &str, doc: Doc) -> Result<u64> {
        let (id, logged) = self.insert_inner(collection, doc);
        logged.map(|_| id)
    }

    fn insert_inner(&self, collection: &str, mut doc: Doc) -> (u64, Result<()>) {
        let id = self.alloc_id(collection);
        doc.set("_id", id);
        self.apply_put(collection, id, doc.clone());
        let logged = self.log_op(WalOp::Put { collection: collection.to_string(), id, doc });
        (id, logged)
    }

    /// Replace a document. WAL failures are swallowed (see
    /// [`Database::insert`]); `NotFound` is still reported.
    pub fn update(&self, collection: &str, id: u64, doc: Doc) -> Result<()> {
        Self::swallow_wal_error("update", self.try_update(collection, id, doc))
    }

    /// Replace a document, surfacing WAL append failures.
    pub fn try_update(&self, collection: &str, id: u64, doc: Doc) -> Result<()> {
        let post = {
            let mut shard = self.write_shard(shard_of(collection, id));
            let col = shard.get_mut(collection).ok_or(StoreError::NotFound(id))?;
            col.update(id, doc)?;
            col.get(id).cloned().ok_or(StoreError::NotFound(id))?
        };
        self.log_op(WalOp::Put { collection: collection.to_string(), id, doc: post })
    }

    /// Merge fields into a document (WAL failures swallowed).
    pub fn patch(&self, collection: &str, id: u64, fields: &[(&str, Doc)]) -> Result<()> {
        Self::swallow_wal_error("patch", self.try_patch(collection, id, fields))
    }

    /// Merge fields into a document, surfacing WAL append failures.
    /// The WAL records the merged *post-image*, so replay needs no
    /// patch semantics.
    pub fn try_patch(&self, collection: &str, id: u64, fields: &[(&str, Doc)]) -> Result<()> {
        let post = {
            let mut shard = self.write_shard(shard_of(collection, id));
            let col = shard.get_mut(collection).ok_or(StoreError::NotFound(id))?;
            col.patch(id, fields)?;
            col.get(id).cloned().ok_or(StoreError::NotFound(id))?
        };
        self.log_op(WalOp::Put { collection: collection.to_string(), id, doc: post })
    }

    /// Delete a document (WAL failures swallowed).
    pub fn delete(&self, collection: &str, id: u64) -> Result<()> {
        Self::swallow_wal_error("delete", self.try_delete(collection, id))
    }

    /// Delete a document, surfacing WAL append failures.
    pub fn try_delete(&self, collection: &str, id: u64) -> Result<()> {
        {
            let mut shard = self.write_shard(shard_of(collection, id));
            let col = shard.get_mut(collection).ok_or(StoreError::NotFound(id))?;
            col.delete(id)?;
        }
        self.log_op(WalOp::Delete { collection: collection.to_string(), id })
    }

    /// Create a secondary index on a collection field. Registered
    /// globally, so shard slices created later inherit it.
    pub fn create_index(&self, collection: &str, field: &str) {
        {
            let mut registry = self.lock_indexed();
            let fields = registry.entry(collection.to_string()).or_default();
            if !fields.iter().any(|f| f == field) {
                fields.push(field.to_string());
            }
        }
        for idx in 0..NUM_SHARDS {
            let mut shard = self.write_shard(idx);
            if let Some(col) = shard.get_mut(collection) {
                col.create_index(field);
            }
        }
    }

    // ---- reads -------------------------------------------------------

    /// Fetch one document by id (cloned out of its shard's lock).
    pub fn get(&self, collection: &str, id: u64) -> Option<Doc> {
        self.read_shard(shard_of(collection, id)).get(collection)?.get(id).cloned()
    }

    /// Find matching documents (cloned), in `_id` order across shards.
    pub fn find(&self, collection: &str, filter: &Filter) -> Vec<Doc> {
        let mut hits: Vec<Doc> = Vec::new();
        for idx in 0..NUM_SHARDS {
            let shard = self.read_shard(idx);
            if let Some(col) = shard.get(collection) {
                hits.extend(col.find(filter).into_iter().cloned());
            }
        }
        hits.sort_by_key(|d| d.get("_id").and_then(Doc::as_i64).unwrap_or(0));
        hits
    }

    /// First match in `_id` order (cloned).
    pub fn find_one(&self, collection: &str, filter: &Filter) -> Option<Doc> {
        self.find(collection, filter).into_iter().next()
    }

    /// Count matches.
    pub fn count(&self, collection: &str, filter: &Filter) -> usize {
        (0..NUM_SHARDS)
            .map(|idx| {
                self.read_shard(idx).get(collection).map(|c| c.count(filter)).unwrap_or(0)
            })
            .sum()
    }

    /// Names of known collections (sorted): anything a shard holds a
    /// slice of, plus collections with only an index declared.
    pub fn collection_names(&self) -> Vec<String> {
        let mut names: Vec<String> = (0..NUM_SHARDS)
            .flat_map(|idx| self.read_shard(idx).keys().cloned().collect::<Vec<_>>())
            .collect();
        names.extend(self.lock_indexed().keys().cloned());
        names.sort();
        names.dedup();
        names
    }
}

/// RAII handle for a group-commit scope opened by [`Database::batch`].
///
/// [`BatchScope::commit`] appends the buffered writes as one WAL record
/// and surfaces any append failure; dropping the scope commits too, but
/// can only log a failure.
#[must_use = "dropping a BatchScope commits it with errors only logged; call commit() to observe them"]
pub struct BatchScope<'a> {
    db: &'a Database,
    committed: bool,
}

impl BatchScope<'_> {
    /// Close the scope, appending its writes as one WAL record.
    pub fn commit(mut self) -> Result<()> {
        self.committed = true;
        self.db.batch_end()
    }
}

impl Drop for BatchScope<'_> {
    fn drop(&mut self) {
        if !self.committed {
            if let Err(e) = self.db.batch_end() {
                sintel_obs::warn!(
                    TARGET,
                    format!("batch scope dropped without commit and the append failed: {e}"),
                );
            }
        }
    }
}

/// Load one snapshot file into `(id, doc)` pairs; any malformed line
/// fails the whole file with a structured [`StoreError::Corrupt`].
fn load_snapshot(path: &Path) -> Result<Vec<(u64, Doc)>> {
    let collection = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("<unknown>")
        .to_string();
    let corrupt = |line: usize, cause: String| StoreError::Corrupt {
        collection: collection.clone(),
        line,
        cause,
    };
    let file = File::open(path).map_err(io_err)?;
    let mut docs = Vec::new();
    for (lineno, line) in BufReader::new(file).lines().enumerate() {
        let line = line.map_err(|e| corrupt(lineno + 1, e.to_string()))?;
        if line.trim().is_empty() {
            continue;
        }
        let doc = from_json(&line).map_err(|e| corrupt(lineno + 1, e.to_string()))?;
        let id = doc
            .get("_id")
            .and_then(Doc::as_i64)
            .filter(|id| *id >= 0)
            .ok_or_else(|| corrupt(lineno + 1, "persisted doc lacks _id".to_string()))?;
        docs.push((id as u64, doc));
    }
    Ok(docs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sintel-db-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn in_memory_crud() {
        let db = Database::in_memory();
        let id = db.insert("events", Doc::obj().with("signal", "S-1"));
        assert_eq!(db.get("events", id).unwrap().get("signal").unwrap().as_str(), Some("S-1"));
        db.patch("events", id, &[("status", Doc::from("confirmed"))]).unwrap();
        assert_eq!(db.count("events", &Filter::eq("status", "confirmed")), 1);
        db.delete("events", id).unwrap();
        assert_eq!(db.count("events", &Filter::All), 0);
        assert!(db.get("events", id).is_none());
        assert!(db.find_one("missing", &Filter::All).is_none());
    }

    #[test]
    fn save_and_reopen_roundtrip() {
        let dir = tmpdir("roundtrip");
        {
            let db = Database::open(&dir).unwrap();
            db.insert("signals", Doc::obj().with("name", "S-1").with("len", 100i64));
            db.insert("signals", Doc::obj().with("name", "S-2").with("len", 200i64));
            db.insert("events", Doc::obj().with("signal", "S-1").with("score", 0.9));
            db.save().unwrap();
        }
        let db = Database::open(&dir).unwrap();
        assert_eq!(db.count("signals", &Filter::All), 2);
        assert_eq!(db.count("events", &Filter::All), 1);
        let s2 = db.find_one("signals", &Filter::eq("name", "S-2")).unwrap();
        assert_eq!(s2.get("len").unwrap().as_i64(), Some(200));
        // Ids continue monotonically after reload.
        let id = db.insert("signals", Doc::obj().with("name", "S-3"));
        assert_eq!(id, 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unsaved_writes_survive_reopen_through_wal() {
        let dir = tmpdir("wal-survives");
        {
            let db = Database::open(&dir).unwrap();
            db.insert("events", Doc::obj().with("signal", "S-1"));
            db.insert("events", Doc::obj().with("signal", "S-2"));
            // No save(): the WAL alone must carry these.
        }
        let db = Database::open(&dir).unwrap();
        assert_eq!(db.count("events", &Filter::All), 2);
        assert_eq!(db.recovery().wal_replayed_batches, 2);
        assert_eq!(db.recovery().wal_replayed_ops, 2);
        // Replay continues id allocation correctly.
        assert_eq!(db.insert("events", Doc::obj().with("signal", "S-3")), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn updates_deletes_replay_over_snapshot() {
        let dir = tmpdir("replay-mix");
        {
            let db = Database::open(&dir).unwrap();
            let a = db.insert("events", Doc::obj().with("signal", "S-1"));
            let b = db.insert("events", Doc::obj().with("signal", "S-2"));
            db.save().unwrap(); // snapshot holds both, log now empty
            db.patch("events", a, &[("status", Doc::from("confirmed"))]).unwrap();
            db.delete("events", b).unwrap();
        }
        let db = Database::open(&dir).unwrap();
        assert_eq!(db.count("events", &Filter::All), 1);
        let a = db.find_one("events", &Filter::eq("signal", "S-1")).unwrap();
        assert_eq!(a.get("status").unwrap().as_str(), Some("confirmed"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_is_atomic_no_tmp_left_behind() {
        let dir = tmpdir("atomic");
        let db = Database::open(&dir).unwrap();
        db.insert("events", Doc::obj().with("a", 1i64));
        db.save().unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_truncates_the_wal() {
        let dir = tmpdir("compact");
        let db = Database::open(&dir).unwrap();
        db.insert("events", Doc::obj().with("a", 1i64));
        assert!(db.wal_size() > 0);
        db.save().unwrap();
        assert_eq!(db.wal_size(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn auto_compaction_at_threshold() {
        let dir = tmpdir("auto-compact");
        let opts = StoreOptions { compact_threshold: 256, ..StoreOptions::default() };
        let db = Database::open_with(&dir, opts).unwrap();
        for i in 0..20 {
            db.insert("events", Doc::obj().with("i", i as i64));
        }
        // The log crossed 256 bytes long ago and must have compacted.
        assert!(db.wal_size() < 256, "wal stayed at {} bytes", db.wal_size());
        assert!(dir.join("events.jsonl").exists());
        let reopened = Database::open(&dir).unwrap();
        assert_eq!(reopened.count("events", &Filter::All), 20);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_durability_keeps_no_wal() {
        let dir = tmpdir("snapshot-mode");
        let opts = StoreOptions { durability: Durability::Snapshot, ..StoreOptions::default() };
        {
            let db = Database::open_with(&dir, opts.clone()).unwrap();
            db.insert("events", Doc::obj().with("a", 1i64));
            assert_eq!(db.wal_size(), 0);
            db.save().unwrap();
            db.insert("events", Doc::obj().with("a", 2i64)); // lost: not saved
        }
        let db = Database::open_with(&dir, opts).unwrap();
        assert_eq!(db.count("events", &Filter::All), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_mode_folds_in_stale_wal_from_wal_mode_run() {
        let dir = tmpdir("mode-switch");
        {
            let db = Database::open(&dir).unwrap(); // wal-sync
            db.insert("events", Doc::obj().with("a", 1i64));
            // No save: the write lives only in the log.
        }
        let opts = StoreOptions { durability: Durability::Snapshot, ..StoreOptions::default() };
        {
            let db = Database::open_with(&dir, opts.clone()).unwrap();
            assert_eq!(db.count("events", &Filter::All), 1, "stale wal replayed");
            db.insert("events", Doc::obj().with("a", 2i64));
            db.save().unwrap();
        }
        // The stale log was folded and truncated: it cannot resurrect.
        let db = Database::open_with(&dir, opts).unwrap();
        assert_eq!(db.count("events", &Filter::All), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_snapshot_is_quarantined_not_fatal() {
        let dir = tmpdir("quarantine");
        {
            let db = Database::open(&dir).unwrap();
            db.insert("events", Doc::obj().with("a", 1i64));
            db.insert("signals", Doc::obj().with("name", "S-1"));
            db.save().unwrap();
        }
        // Mangle one collection's snapshot.
        let victim = dir.join("events.jsonl");
        std::fs::write(&victim, "{\"_id\":1,\"a\":1}\nnot json at all\n").unwrap();
        let db = Database::open(&dir).unwrap();
        // The intact collection loads; the corrupt one is quarantined.
        assert_eq!(db.count("signals", &Filter::All), 1);
        assert_eq!(db.count("events", &Filter::All), 0);
        assert_eq!(db.recovery().corrupt.len(), 1);
        match &db.recovery().corrupt[0] {
            StoreError::Corrupt { collection, line, .. } => {
                assert_eq!(collection, "events");
                assert_eq!(*line, 2);
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        assert!(!victim.exists());
        assert!(dir.join("events.jsonl.corrupt").exists());
        // A second open must not trip over the quarantined file.
        let again = Database::open(&dir).unwrap();
        assert!(again.recovery().corrupt.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn orphan_tmp_files_are_removed_on_open() {
        let dir = tmpdir("orphans");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(".events.jsonl.tmp"), "debris").unwrap();
        let db = Database::open(&dir).unwrap();
        assert_eq!(db.recovery().orphans_removed, vec![".events.jsonl.tmp".to_string()]);
        assert!(!dir.join(".events.jsonl.tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn batch_commits_one_wal_record() {
        let dir = tmpdir("batch");
        let db = Database::open(&dir).unwrap();
        let size_empty = db.wal_size();
        let scope = db.batch();
        db.insert("events", Doc::obj().with("a", 1i64));
        db.insert("events", Doc::obj().with("a", 2i64));
        assert_eq!(db.wal_size(), size_empty, "writes buffer until commit");
        scope.commit().unwrap();
        assert!(db.wal_size() > size_empty);
        // Reopen: the whole batch is one committed record.
        drop(db);
        let db = Database::open(&dir).unwrap();
        assert_eq!(db.recovery().wal_replayed_batches, 1);
        assert_eq!(db.recovery().wal_replayed_ops, 2);
        assert_eq!(db.count("events", &Filter::All), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn nested_batches_commit_once_at_outermost() {
        let dir = tmpdir("batch-nest");
        let db = Database::open(&dir).unwrap();
        let outer = db.batch();
        db.insert("events", Doc::obj().with("a", 1i64));
        {
            let inner = db.batch();
            db.insert("events", Doc::obj().with("a", 2i64));
            inner.commit().unwrap();
        }
        assert_eq!(db.wal_size(), 0, "inner commit must not flush the outer scope");
        outer.commit().unwrap();
        drop(db);
        let db = Database::open(&dir).unwrap();
        assert_eq!(db.recovery().wal_replayed_batches, 1);
        assert_eq!(db.recovery().wal_replayed_ops, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_inserts_are_serialised() {
        let db = std::sync::Arc::new(Database::in_memory());
        let mut handles = Vec::new();
        for t in 0..8 {
            let db = db.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    db.insert("events", Doc::obj().with("thread", t as i64).with("i", i as i64));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(db.count("events", &Filter::All), 400);
        // Ids are unique.
        let docs = db.find("events", &Filter::All);
        let mut ids: Vec<i64> =
            docs.iter().map(|d| d.get("_id").unwrap().as_i64().unwrap()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 400);
    }

    #[test]
    fn indexed_find_through_db() {
        let db = Database::in_memory();
        db.create_index("events", "signal");
        for i in 0..30 {
            db.insert("events", Doc::obj().with("signal", format!("S-{}", i % 3)));
        }
        assert_eq!(db.find("events", &Filter::eq("signal", "S-1")).len(), 10);
    }

    #[test]
    fn index_declared_after_load_covers_all_shards() {
        let db = Database::in_memory();
        for i in 0..64 {
            db.insert("events", Doc::obj().with("signal", format!("S-{}", i % 4)));
        }
        db.create_index("events", "signal");
        assert_eq!(db.find("events", &Filter::eq("signal", "S-2")).len(), 16);
        // New shard slices created after the index inherit it too.
        for i in 64..128 {
            db.insert("events", Doc::obj().with("signal", format!("S-{}", i % 4)));
        }
        assert_eq!(db.find("events", &Filter::eq("signal", "S-2")).len(), 32);
    }

    #[test]
    fn shard_of_is_stable() {
        // The persisted layout depends on this hash never changing.
        assert_eq!(shard_of("events", 1), shard_of("events", 1));
        let spread: std::collections::HashSet<usize> =
            (0..1000).map(|id| shard_of("events", id)).collect();
        assert!(spread.len() > NUM_SHARDS / 2, "hash must actually spread ids");
    }

    #[test]
    fn empty_indexed_collection_persists_in_snapshot() {
        let dir = tmpdir("empty-indexed");
        {
            let db = Database::open(&dir).unwrap();
            db.create_index("events", "signal");
            db.save().unwrap();
        }
        assert!(dir.join("events.jsonl").exists());
        let db = Database::open(&dir).unwrap();
        assert!(db.collection_names().contains(&"events".to_string()));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

//! In-repo JSON serializer/parser for [`Doc`] (no external dependency —
//! the workspace's allowed-crate list has `serde` but no `serde_json`,
//! and the store needs exact control over number round-tripping anyway).

use std::collections::BTreeMap;

use crate::doc::Doc;
use crate::{Result, StoreError};

/// Serialize a document to compact JSON.
pub fn to_json(doc: &Doc) -> String {
    let mut out = String::new();
    write_doc(doc, &mut out);
    out
}

fn write_doc(doc: &Doc, out: &mut String) {
    match doc {
        Doc::Null => out.push_str("null"),
        Doc::Bool(true) => out.push_str("true"),
        Doc::Bool(false) => out.push_str("false"),
        Doc::I64(v) => out.push_str(&v.to_string()),
        Doc::F64(v) => {
            if v.is_finite() {
                let s = format!("{v:?}"); // Debug prints a lossless float
                out.push_str(&s);
            } else {
                // JSON has no NaN/Inf: encode as null (Mongo does the same
                // on strict export).
                out.push_str("null");
            }
        }
        Doc::Str(s) => write_string(s, out),
        Doc::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_doc(item, out);
            }
            out.push(']');
        }
        Doc::Obj(map) => {
            out.push('{');
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_doc(v, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document.
pub fn from_json(input: &str) -> Result<Doc> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    let doc = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(StoreError::Parse { offset: pos, message: "trailing characters".into() });
    }
    Ok(doc)
}

fn err(pos: usize, message: &str) -> StoreError {
    StoreError::Parse { offset: pos, message: message.to_string() }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Doc> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Doc::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Doc::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Doc::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Doc::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Doc) -> Result<Doc> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(err(*pos, "invalid literal"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Doc> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| err(start, "invalid utf-8 in number"))?;
    if text.is_empty() || text == "-" {
        return Err(err(start, "invalid number"));
    }
    if is_float {
        text.parse::<f64>().map(Doc::F64).map_err(|_| err(start, "invalid float"))
    } else {
        // Large integers fall back to f64 (matching JS semantics).
        text.parse::<i64>()
            .map(Doc::I64)
            .or_else(|_| text.parse::<f64>().map(Doc::F64))
            .map_err(|_| err(start, "invalid integer"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| err(*pos, "bad \\u escape"))?,
                            16,
                        )
                        .map_err(|_| err(*pos, "bad \\u escape"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 code point.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| err(*pos, "invalid utf-8"))?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Doc> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Doc::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b']') => {
                *pos += 1;
                return Ok(Doc::Arr(items));
            }
            _ => return Err(err(*pos, "expected ',' or ']'")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Doc> {
    *pos += 1; // consume '{'
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Doc::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(err(*pos, "expected object key"));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(err(*pos, "expected ':'"));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b'}') => {
                *pos += 1;
                return Ok(Doc::Obj(map));
            }
            _ => return Err(err(*pos, "expected ',' or '}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sintel_common::SintelRng;

    #[test]
    fn roundtrip_scalars() {
        for doc in [
            Doc::Null,
            Doc::Bool(true),
            Doc::Bool(false),
            Doc::I64(-42),
            Doc::I64(i64::MAX),
            Doc::F64(3.25),
            Doc::F64(-0.001),
            Doc::Str("hello world".into()),
        ] {
            assert_eq!(from_json(&to_json(&doc)).unwrap(), doc, "{doc:?}");
        }
    }

    #[test]
    fn roundtrip_nested() {
        let doc = Doc::obj()
            .with("signal", "S-1")
            .with("events", vec![Doc::obj().with("start", 10i64).with("score", 0.93)])
            .with("tags", vec!["confirmed", "seen before"])
            .with("nested", Doc::obj().with("deep", Doc::from(vec![1i64, 2, 3])));
        assert_eq!(from_json(&to_json(&doc)).unwrap(), doc);
    }

    #[test]
    fn string_escapes() {
        let doc = Doc::Str("line1\nline2\t\"quoted\" \\slash\u{0001}".into());
        let json = to_json(&doc);
        assert!(json.contains("\\n") && json.contains("\\\"") && json.contains("\\u0001"));
        assert_eq!(from_json(&json).unwrap(), doc);
    }

    #[test]
    fn unicode_roundtrip() {
        let doc = Doc::Str("télémétrie 信号 🚀".into());
        assert_eq!(from_json(&to_json(&doc)).unwrap(), doc);
        // Parse a \u escape directly.
        assert_eq!(from_json(r#""A""#).unwrap(), Doc::Str("A".into()));
    }

    #[test]
    fn nonfinite_floats_become_null() {
        assert_eq!(to_json(&Doc::F64(f64::NAN)), "null");
        assert_eq!(to_json(&Doc::F64(f64::INFINITY)), "null");
    }

    #[test]
    fn parse_whitespace_tolerant() {
        let doc = from_json("  {\n\t\"a\" : [ 1 , 2.5 ] ,\"b\": null }  ").unwrap();
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(doc.get("b"), Some(&Doc::Null));
    }

    #[test]
    fn parse_errors_reported_with_offset() {
        for bad in ["{", "[1,", "\"unterminated", "{\"a\" 1}", "tru", "1.2.3", "", "[1] x"] {
            let e = from_json(bad).unwrap_err();
            assert!(matches!(e, StoreError::Parse { .. }), "{bad}: {e:?}");
        }
    }

    #[test]
    fn empty_containers() {
        assert_eq!(from_json("[]").unwrap(), Doc::Arr(vec![]));
        assert_eq!(from_json("{}").unwrap(), Doc::obj());
        assert_eq!(to_json(&Doc::Arr(vec![])), "[]");
        assert_eq!(to_json(&Doc::obj()), "{}");
    }

    /// Characters exercising the escaper: alphanumerics plus quotes,
    /// backslashes and control characters.
    const STR_CHARS: &[char] = &[
        'a', 'Z', '0', '9', ' ', '_', '-', '"', '\\', '\n', '\t', 'é', '…',
    ];

    fn random_string(rng: &mut SintelRng, max_len: usize) -> String {
        let len = rng.index(max_len + 1);
        (0..len).map(|_| *rng.choice(STR_CHARS)).collect()
    }

    fn random_key(rng: &mut SintelRng) -> String {
        let len = 1 + rng.index(8);
        (0..len).map(|_| (b'a' + rng.index(26) as u8) as char).collect()
    }

    /// Random document with nesting up to `depth`; mirrors the old
    /// property-test strategy (scalar leaves, arrays, objects).
    fn random_doc(rng: &mut SintelRng, depth: usize) -> Doc {
        let variants = if depth == 0 { 5 } else { 7 };
        match rng.index(variants) {
            0 => Doc::Null,
            1 => Doc::Bool(rng.chance(0.5)),
            2 => Doc::I64(rng.next_u64() as i64),
            3 => Doc::F64(rng.uniform_range(-1e15, 1e15)),
            4 => Doc::Str(random_string(rng, 20)),
            5 => {
                let n = rng.index(6);
                Doc::Arr((0..n).map(|_| random_doc(rng, depth - 1)).collect())
            }
            _ => {
                let n = rng.index(6);
                let mut map = std::collections::BTreeMap::new();
                for _ in 0..n {
                    let key = random_key(rng);
                    let child = random_doc(rng, depth - 1);
                    map.insert(key, child);
                }
                Doc::Obj(map)
            }
        }
    }

    #[test]
    fn prop_roundtrip() {
        let mut rng = SintelRng::seed_from_u64(0x7111);
        for _ in 0..512 {
            let doc = random_doc(&mut rng, 3);
            let json = to_json(&doc);
            let parsed = from_json(&json).unwrap();
            assert_eq!(parsed, doc);
        }
    }
}

//! The JSON-like document value.

use std::collections::BTreeMap;

/// A document value (JSON data model, `f64` numbers kept separate from
/// integers so ids and timestamps round-trip exactly).
#[derive(Debug, Clone, PartialEq)]
pub enum Doc {
    /// JSON null.
    Null,
    /// Boolean.
    Bool(bool),
    /// Integer (ids, timestamps).
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Doc>),
    /// Object with sorted keys (stable serialisation).
    Obj(BTreeMap<String, Doc>),
}

impl Doc {
    /// Empty object.
    pub fn obj() -> Doc {
        Doc::Obj(BTreeMap::new())
    }

    /// Builder-style field insertion (no-op on non-objects).
    pub fn with(mut self, key: &str, value: impl Into<Doc>) -> Doc {
        if let Doc::Obj(map) = &mut self {
            map.insert(key.to_string(), value.into());
        }
        self
    }

    /// Field access on objects.
    pub fn get(&self, key: &str) -> Option<&Doc> {
        match self {
            Doc::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// Dotted-path access (`"pipeline.name"`).
    pub fn path(&self, path: &str) -> Option<&Doc> {
        let mut cur = self;
        for part in path.split('.') {
            cur = cur.get(part)?;
        }
        Some(cur)
    }

    /// Set a field on an object in place; returns false on non-objects.
    pub fn set(&mut self, key: &str, value: impl Into<Doc>) -> bool {
        match self {
            Doc::Obj(map) => {
                map.insert(key.to_string(), value.into());
                true
            }
            _ => false,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Doc::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Integer view (accepts integral floats).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Doc::I64(v) => Some(*v),
            Doc::F64(v) if v.fract() == 0.0 => Some(*v as i64),
            _ => None,
        }
    }

    /// Float view (accepts integers).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Doc::F64(v) => Some(*v),
            Doc::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Doc::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_arr(&self) -> Option<&[Doc]> {
        match self {
            Doc::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Total ordering used by comparison filters: type rank, then value.
    /// Numbers compare numerically across I64/F64.
    pub fn compare(&self, other: &Doc) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        fn rank(d: &Doc) -> u8 {
            match d {
                Doc::Null => 0,
                Doc::Bool(_) => 1,
                Doc::I64(_) | Doc::F64(_) => 2,
                Doc::Str(_) => 3,
                Doc::Arr(_) => 4,
                Doc::Obj(_) => 5,
            }
        }
        match (self, other) {
            (Doc::I64(a), Doc::I64(b)) => a.cmp(b),
            (Doc::F64(a), Doc::F64(b)) => a.total_cmp(b),
            (Doc::I64(a), Doc::F64(b)) => (*a as f64).total_cmp(b),
            (Doc::F64(a), Doc::I64(b)) => a.total_cmp(&(*b as f64)),
            (Doc::Bool(a), Doc::Bool(b)) => a.cmp(b),
            (Doc::Str(a), Doc::Str(b)) => a.cmp(b),
            (Doc::Arr(a), Doc::Arr(b)) => {
                for (x, y) in a.iter().zip(b) {
                    let ord = x.compare(y);
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
                a.len().cmp(&b.len())
            }
            _ => rank(self).cmp(&rank(other)),
        }
    }
}

impl From<bool> for Doc {
    fn from(v: bool) -> Doc {
        Doc::Bool(v)
    }
}
impl From<i64> for Doc {
    fn from(v: i64) -> Doc {
        Doc::I64(v)
    }
}
impl From<u64> for Doc {
    fn from(v: u64) -> Doc {
        Doc::I64(v as i64)
    }
}
impl From<usize> for Doc {
    fn from(v: usize) -> Doc {
        Doc::I64(v as i64)
    }
}
impl From<f64> for Doc {
    fn from(v: f64) -> Doc {
        Doc::F64(v)
    }
}
impl From<&str> for Doc {
    fn from(v: &str) -> Doc {
        Doc::Str(v.to_string())
    }
}
impl From<String> for Doc {
    fn from(v: String) -> Doc {
        Doc::Str(v)
    }
}
impl<T: Into<Doc>> From<Vec<T>> for Doc {
    fn from(v: Vec<T>) -> Doc {
        Doc::Arr(v.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn builder_and_access() {
        let d = Doc::obj()
            .with("name", "S-1")
            .with("len", 100i64)
            .with("score", 0.5)
            .with("tags", vec!["a", "b"]);
        assert_eq!(d.get("name").unwrap().as_str(), Some("S-1"));
        assert_eq!(d.get("len").unwrap().as_i64(), Some(100));
        assert_eq!(d.get("score").unwrap().as_f64(), Some(0.5));
        assert_eq!(d.get("tags").unwrap().as_arr().unwrap().len(), 2);
        assert!(d.get("missing").is_none());
    }

    #[test]
    fn dotted_path() {
        let d = Doc::obj().with("pipeline", Doc::obj().with("name", "arima"));
        assert_eq!(d.path("pipeline.name").unwrap().as_str(), Some("arima"));
        assert!(d.path("pipeline.missing").is_none());
        assert!(d.path("a.b.c").is_none());
    }

    #[test]
    fn set_in_place() {
        let mut d = Doc::obj();
        assert!(d.set("x", 1i64));
        assert_eq!(d.get("x").unwrap().as_i64(), Some(1));
        let mut not_obj = Doc::I64(3);
        assert!(!not_obj.set("x", 1i64));
    }

    #[test]
    fn numeric_coercions() {
        assert_eq!(Doc::F64(3.0).as_i64(), Some(3));
        assert_eq!(Doc::F64(3.5).as_i64(), None);
        assert_eq!(Doc::I64(3).as_f64(), Some(3.0));
    }

    #[test]
    fn cross_type_numeric_compare() {
        assert_eq!(Doc::I64(2).compare(&Doc::F64(2.0)), Ordering::Equal);
        assert_eq!(Doc::I64(2).compare(&Doc::F64(2.5)), Ordering::Less);
        assert_eq!(Doc::F64(3.0).compare(&Doc::I64(2)), Ordering::Greater);
    }

    #[test]
    fn heterogeneous_compare_by_rank() {
        assert_eq!(Doc::Null.compare(&Doc::Bool(false)), Ordering::Less);
        assert_eq!(Doc::Str("a".into()).compare(&Doc::I64(9)), Ordering::Greater);
    }

    #[test]
    fn array_lexicographic_compare() {
        let a = Doc::from(vec![1i64, 2]);
        let b = Doc::from(vec![1i64, 3]);
        let c = Doc::from(vec![1i64, 2, 0]);
        assert_eq!(a.compare(&b), Ordering::Less);
        assert_eq!(a.compare(&c), Ordering::Less);
        assert_eq!(a.compare(&a.clone()), Ordering::Equal);
    }
}

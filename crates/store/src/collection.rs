//! Id-keyed document storage with secondary equality indexes.

use std::collections::{BTreeMap, HashMap};

use crate::doc::Doc;
use crate::json::to_json;
use crate::query::Filter;
use crate::{Result, StoreError};

/// A collection of documents. Every inserted document receives a
/// monotonically increasing `_id`. Optional secondary indexes accelerate
/// equality filters on a field.
#[derive(Debug, Clone)]
pub struct Collection {
    docs: BTreeMap<u64, Doc>,
    next_id: u64,
    /// field -> (serialised key -> ids)
    indexes: HashMap<String, HashMap<String, Vec<u64>>>,
}

impl Default for Collection {
    fn default() -> Self {
        Self::new()
    }
}

fn index_key(value: &Doc) -> String {
    to_json(value)
}

impl Collection {
    /// Empty collection.
    pub fn new() -> Self {
        Self { docs: BTreeMap::new(), next_id: 1, indexes: HashMap::new() }
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Insert a document; stamps and returns its `_id`.
    pub fn insert(&mut self, mut doc: Doc) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        doc.set("_id", id);
        self.index_doc(id, &doc);
        self.docs.insert(id, doc);
        id
    }

    /// Fetch by id.
    pub fn get(&self, id: u64) -> Option<&Doc> {
        self.docs.get(&id)
    }

    /// Replace a document (keeps its `_id`).
    pub fn update(&mut self, id: u64, mut doc: Doc) -> Result<()> {
        if !self.docs.contains_key(&id) {
            return Err(StoreError::NotFound(id));
        }
        let old = self.docs.remove(&id).expect("checked above");
        self.unindex_doc(id, &old);
        doc.set("_id", id);
        self.index_doc(id, &doc);
        self.docs.insert(id, doc);
        Ok(())
    }

    /// Merge fields into an existing document.
    pub fn patch(&mut self, id: u64, fields: &[(&str, Doc)]) -> Result<()> {
        let mut doc = self.docs.get(&id).cloned().ok_or(StoreError::NotFound(id))?;
        for (k, v) in fields {
            doc.set(k, v.clone());
        }
        self.update(id, doc)
    }

    /// Delete by id.
    pub fn delete(&mut self, id: u64) -> Result<()> {
        let doc = self.docs.remove(&id).ok_or(StoreError::NotFound(id))?;
        self.unindex_doc(id, &doc);
        Ok(())
    }

    /// Create a secondary index on a (dotted) field; existing documents
    /// are indexed immediately. Idempotent.
    pub fn create_index(&mut self, field: &str) {
        if self.indexes.contains_key(field) {
            return;
        }
        let mut index: HashMap<String, Vec<u64>> = HashMap::new();
        for (&id, doc) in &self.docs {
            if let Some(v) = doc.path(field) {
                index.entry(index_key(v)).or_default().push(id);
            }
        }
        self.indexes.insert(field.to_string(), index);
    }

    /// Whether a field is indexed.
    pub fn has_index(&self, field: &str) -> bool {
        self.indexes.contains_key(field)
    }

    fn index_doc(&mut self, id: u64, doc: &Doc) {
        for (field, index) in &mut self.indexes {
            if let Some(v) = doc.path(field) {
                index.entry(index_key(v)).or_default().push(id);
            }
        }
    }

    fn unindex_doc(&mut self, id: u64, doc: &Doc) {
        for (field, index) in &mut self.indexes {
            if let Some(v) = doc.path(field) {
                if let Some(ids) = index.get_mut(&index_key(v)) {
                    ids.retain(|&x| x != id);
                }
            }
        }
    }

    /// Find documents matching a filter, in `_id` order. Routes through a
    /// secondary index when the filter pins an indexed field by equality.
    pub fn find(&self, filter: &Filter) -> Vec<&Doc> {
        // Index fast path.
        for (field, index) in &self.indexes {
            if let Some(value) = filter.pinned_eq(field) {
                let mut hits: Vec<&Doc> = index
                    .get(&index_key(value))
                    .map(|ids| {
                        ids.iter().filter_map(|id| self.docs.get(id)).collect::<Vec<_>>()
                    })
                    .unwrap_or_default();
                hits.retain(|doc| filter.matches(doc));
                hits.sort_by_key(|d| d.get("_id").and_then(Doc::as_i64).unwrap_or(0));
                return hits;
            }
        }
        self.docs.values().filter(|doc| filter.matches(doc)).collect()
    }

    /// First match, if any.
    pub fn find_one(&self, filter: &Filter) -> Option<&Doc> {
        self.find(filter).into_iter().next()
    }

    /// Count matches.
    pub fn count(&self, filter: &Filter) -> usize {
        self.find(filter).len()
    }

    /// Iterate all documents in `_id` order.
    pub fn iter(&self) -> impl Iterator<Item = (&u64, &Doc)> {
        self.docs.iter()
    }

    /// Restore a document with a known id (used when loading from disk).
    pub(crate) fn restore(&mut self, id: u64, doc: Doc) {
        self.next_id = self.next_id.max(id + 1);
        self.index_doc(id, &doc);
        self.docs.insert(id, doc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(signal: &str, score: f64) -> Doc {
        Doc::obj().with("signal", signal).with("score", score)
    }

    #[test]
    fn insert_assigns_sequential_ids() {
        let mut c = Collection::new();
        let a = c.insert(event("S-1", 0.5));
        let b = c.insert(event("S-2", 0.9));
        assert_eq!((a, b), (1, 2));
        assert_eq!(c.get(1).unwrap().get("signal").unwrap().as_str(), Some("S-1"));
        assert_eq!(c.get(1).unwrap().get("_id").unwrap().as_i64(), Some(1));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn update_patch_delete() {
        let mut c = Collection::new();
        let id = c.insert(event("S-1", 0.5));
        c.patch(id, &[("score", Doc::F64(0.7))]).unwrap();
        assert_eq!(c.get(id).unwrap().get("score").unwrap().as_f64(), Some(0.7));
        assert_eq!(c.get(id).unwrap().get("signal").unwrap().as_str(), Some("S-1"));
        c.update(id, event("S-9", 1.0)).unwrap();
        assert_eq!(c.get(id).unwrap().get("signal").unwrap().as_str(), Some("S-9"));
        c.delete(id).unwrap();
        assert!(c.get(id).is_none());
        assert_eq!(c.delete(id).unwrap_err(), StoreError::NotFound(id));
        assert_eq!(c.update(id, event("x", 0.0)).unwrap_err(), StoreError::NotFound(id));
    }

    #[test]
    fn find_with_filters() {
        let mut c = Collection::new();
        for i in 0..10 {
            c.insert(event(if i % 2 == 0 { "S-1" } else { "S-2" }, i as f64 / 10.0));
        }
        assert_eq!(c.find(&Filter::eq("signal", "S-1")).len(), 5);
        assert_eq!(c.count(&Filter::Gt("score".into(), Doc::F64(0.65))), 3);
        assert_eq!(c.find(&Filter::All).len(), 10);
        assert!(c.find_one(&Filter::eq("signal", "S-3")).is_none());
    }

    #[test]
    fn index_agrees_with_scan() {
        let mut c = Collection::new();
        for i in 0..50 {
            c.insert(event(&format!("S-{}", i % 5), i as f64));
        }
        let scan = c.find(&Filter::eq("signal", "S-3")).len();
        c.create_index("signal");
        assert!(c.has_index("signal"));
        let indexed = c.find(&Filter::eq("signal", "S-3")).len();
        assert_eq!(scan, indexed);
        // Compound filter routed through the index still applies the rest.
        let f = Filter::And(vec![
            Filter::eq("signal", "S-3"),
            Filter::Gt("score".into(), Doc::F64(20.0)),
        ]);
        let hits = c.find(&f);
        assert!(hits.iter().all(|d| d.get("score").unwrap().as_f64().unwrap() > 20.0));
    }

    #[test]
    fn index_maintained_across_mutations() {
        let mut c = Collection::new();
        c.create_index("signal");
        let id = c.insert(event("S-1", 0.1));
        assert_eq!(c.find(&Filter::eq("signal", "S-1")).len(), 1);
        c.update(id, event("S-2", 0.2)).unwrap();
        assert_eq!(c.find(&Filter::eq("signal", "S-1")).len(), 0);
        assert_eq!(c.find(&Filter::eq("signal", "S-2")).len(), 1);
        c.delete(id).unwrap();
        assert_eq!(c.find(&Filter::eq("signal", "S-2")).len(), 0);
    }

    #[test]
    fn restore_preserves_id_monotonicity() {
        let mut c = Collection::new();
        c.restore(17, event("S-1", 0.0));
        let next = c.insert(event("S-2", 0.0));
        assert_eq!(next, 18);
    }
}

//! MongoDB-flavoured document filters.

use crate::doc::Doc;

/// A filter expression evaluated against a document. Field names accept
/// dotted paths (`"pipeline.name"`).
#[derive(Debug, Clone, PartialEq)]
pub enum Filter {
    /// Match everything.
    All,
    /// Field equals value (missing fields never match).
    Eq(String, Doc),
    /// Field differs from value (missing fields match, as in Mongo).
    Ne(String, Doc),
    /// Field strictly greater than value.
    Gt(String, Doc),
    /// Field greater than or equal.
    Gte(String, Doc),
    /// Field strictly less than value.
    Lt(String, Doc),
    /// Field less than or equal.
    Lte(String, Doc),
    /// Field equals one of the values.
    In(String, Vec<Doc>),
    /// Field exists (or not).
    Exists(String, bool),
    /// Array field contains the value.
    Contains(String, Doc),
    /// Conjunction.
    And(Vec<Filter>),
    /// Disjunction.
    Or(Vec<Filter>),
    /// Negation.
    Not(Box<Filter>),
}

impl Filter {
    /// Evaluate against a document.
    pub fn matches(&self, doc: &Doc) -> bool {
        use std::cmp::Ordering::*;
        match self {
            Filter::All => true,
            Filter::Eq(field, value) => doc.path(field).is_some_and(|v| v == value),
            Filter::Ne(field, value) => doc.path(field).is_none_or(|v| v != value),
            Filter::Gt(field, value) => {
                doc.path(field).is_some_and(|v| v.compare(value) == Greater)
            }
            Filter::Gte(field, value) => {
                doc.path(field).is_some_and(|v| v.compare(value) != Less)
            }
            Filter::Lt(field, value) => {
                doc.path(field).is_some_and(|v| v.compare(value) == Less)
            }
            Filter::Lte(field, value) => {
                doc.path(field).is_some_and(|v| v.compare(value) != Greater)
            }
            Filter::In(field, values) => {
                doc.path(field).is_some_and(|v| values.iter().any(|w| w == v))
            }
            Filter::Exists(field, want) => doc.path(field).is_some() == *want,
            Filter::Contains(field, value) => doc
                .path(field)
                .and_then(Doc::as_arr)
                .is_some_and(|arr| arr.iter().any(|v| v == value)),
            Filter::And(filters) => filters.iter().all(|f| f.matches(doc)),
            Filter::Or(filters) => filters.iter().any(|f| f.matches(doc)),
            Filter::Not(inner) => !inner.matches(doc),
        }
    }

    /// Convenience equality constructor.
    pub fn eq(field: &str, value: impl Into<Doc>) -> Filter {
        Filter::Eq(field.to_string(), value.into())
    }

    /// If this filter (or a conjunct of it) pins `field == value`,
    /// return that value — lets collections route through an index.
    pub fn pinned_eq(&self, field: &str) -> Option<&Doc> {
        match self {
            Filter::Eq(f, v) if f == field => Some(v),
            Filter::And(filters) => filters.iter().find_map(|f| f.pinned_eq(field)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> Doc {
        Doc::obj()
            .with("name", "S-1")
            .with("score", 0.8)
            .with("len", 100i64)
            .with("tags", vec!["confirmed", "satellite"])
            .with("meta", Doc::obj().with("owner", "alice"))
    }

    #[test]
    fn eq_and_path() {
        assert!(Filter::eq("name", "S-1").matches(&doc()));
        assert!(!Filter::eq("name", "S-2").matches(&doc()));
        assert!(Filter::eq("meta.owner", "alice").matches(&doc()));
        assert!(!Filter::eq("missing", 1i64).matches(&doc()));
    }

    #[test]
    fn ne_semantics_on_missing_field() {
        assert!(Filter::Ne("missing".into(), Doc::I64(1)).matches(&doc()));
        assert!(Filter::Ne("len".into(), Doc::I64(1)).matches(&doc()));
        assert!(!Filter::Ne("len".into(), Doc::I64(100)).matches(&doc()));
    }

    #[test]
    fn comparisons_cross_numeric() {
        assert!(Filter::Gt("score".into(), Doc::F64(0.5)).matches(&doc()));
        assert!(Filter::Gte("len".into(), Doc::I64(100)).matches(&doc()));
        assert!(Filter::Lt("len".into(), Doc::F64(100.5)).matches(&doc()));
        assert!(!Filter::Lte("score".into(), Doc::F64(0.5)).matches(&doc()));
        // Missing field never satisfies a comparison.
        assert!(!Filter::Gt("missing".into(), Doc::I64(0)).matches(&doc()));
    }

    #[test]
    fn in_exists_contains() {
        assert!(Filter::In("name".into(), vec![Doc::from("S-1"), Doc::from("S-2")])
            .matches(&doc()));
        assert!(Filter::Exists("tags".into(), true).matches(&doc()));
        assert!(Filter::Exists("nope".into(), false).matches(&doc()));
        assert!(Filter::Contains("tags".into(), Doc::from("confirmed")).matches(&doc()));
        assert!(!Filter::Contains("tags".into(), Doc::from("anomaly")).matches(&doc()));
        assert!(!Filter::Contains("name".into(), Doc::from("S")).matches(&doc()));
    }

    #[test]
    fn boolean_combinators() {
        let f = Filter::And(vec![
            Filter::eq("name", "S-1"),
            Filter::Or(vec![
                Filter::Gt("score".into(), Doc::F64(0.9)),
                Filter::Gt("len".into(), Doc::I64(50)),
            ]),
        ]);
        assert!(f.matches(&doc()));
        assert!(!Filter::Not(Box::new(f)).matches(&doc()));
        assert!(Filter::And(vec![]).matches(&doc())); // vacuous truth
        assert!(!Filter::Or(vec![]).matches(&doc()));
    }

    #[test]
    fn pinned_eq_detection() {
        let f = Filter::And(vec![
            Filter::Gt("score".into(), Doc::F64(0.1)),
            Filter::eq("name", "S-1"),
        ]);
        assert_eq!(f.pinned_eq("name"), Some(&Doc::from("S-1")));
        assert_eq!(f.pinned_eq("score"), None);
        assert_eq!(Filter::All.pinned_eq("name"), None);
    }
}

//! Append-only, checksummed write-ahead log.
//!
//! Every committed mutation batch becomes one **record** on the log:
//!
//! ```text
//! ┌────────────┬────────────┬───────────────────────────┐
//! │ len: u32LE │ crc: u32LE │ payload (len bytes, JSON) │
//! └────────────┴────────────┴───────────────────────────┘
//! ```
//!
//! The payload is a JSON array of operations ([`WalOp`]), serialised
//! with the in-repo [`crate::json`] writer; `crc` is the IEEE CRC-32 of
//! the payload bytes. Records are appended with `sync_data` on the log
//! file (when the database runs at [`crate::Durability::WalSync`]) and
//! the log's directory is fsynced when the file is created or reset, so
//! a committed batch survives power loss.
//!
//! Recovery ([`Wal::open`]) replays records in order and **truncates at
//! the first torn record** — a short header, a length pointing past the
//! end of the file, a checksum mismatch, or an undecodable payload. A
//! torn tail is the signature of a crash mid-append; everything before
//! it is intact by construction (records are written front to back and
//! fsynced in order), so truncation loses at most the one in-flight
//! batch and never panics.
//!
//! Crash-point fault injection (the `faulty` feature, [`fault`]) lets
//! tests simulate a crash *inside* the append/compaction path: the hook
//! leaves the file exactly as a real crash would (partial record, full
//! record without fsync, orphan temp file) and surfaces
//! [`StoreError::Injected`] so the harness can drop the handle and
//! re-open from disk.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::doc::Doc;
use crate::json::{from_json, to_json};
use crate::{Result, StoreError};

/// File name of the log inside a database directory.
pub const WAL_FILE: &str = "sintel.wal";

/// Bytes of the per-record header (length + checksum).
const HEADER_BYTES: usize = 8;

/// Upper bound on a single record's payload; a "length" beyond this is
/// treated as tail corruption rather than an allocation request.
const MAX_RECORD_BYTES: usize = 64 * 1024 * 1024;

fn io_err(e: impl std::fmt::Display) -> StoreError {
    StoreError::Io(e.to_string())
}

// ---- CRC-32 (IEEE 802.3 polynomial, table-driven) ----------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// IEEE CRC-32 of a byte slice (the checksum stored in record headers).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        let idx = ((c ^ b as u32) & 0xFF) as usize;
        // In range: idx is masked to 0..256.
        c = CRC_TABLE[idx] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// `fsync` a directory so a just-created/renamed/truncated entry inside
/// it is durable (POSIX requires syncing the *directory* for that).
pub(crate) fn fsync_dir(dir: &Path) -> Result<()> {
    File::open(dir).and_then(|d| d.sync_all()).map_err(io_err)
}

// ---- Operations & batch codec ------------------------------------------

/// One logical mutation inside a WAL record. Mutations are logged as
/// *post-images*: `Put` carries the full document after the write
/// (insert, update and patch all reduce to it), which makes replay a
/// pure upsert — idempotent over any snapshot the crash left behind.
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp {
    /// Upsert `doc` (which carries its `_id`) into `collection`.
    Put {
        /// Target collection.
        collection: String,
        /// Document id (also stamped in `doc` as `_id`).
        id: u64,
        /// Full post-image of the document.
        doc: Doc,
    },
    /// Delete document `id` from `collection`.
    Delete {
        /// Target collection.
        collection: String,
        /// Document id.
        id: u64,
    },
}

/// Serialise a batch of operations into a record payload (JSON array).
pub fn encode_batch(ops: &[WalOp]) -> String {
    let items: Vec<Doc> = ops
        .iter()
        .map(|op| match op {
            WalOp::Put { collection, id, doc } => Doc::obj()
                .with("op", "put")
                .with("c", collection.as_str())
                .with("id", *id)
                .with("doc", doc.clone()),
            WalOp::Delete { collection, id } => Doc::obj()
                .with("op", "del")
                .with("c", collection.as_str())
                .with("id", *id),
        })
        .collect();
    to_json(&Doc::Arr(items))
}

/// Parse a record payload back into operations. Any structural problem
/// is an error — the replay loop treats it as tail corruption.
pub fn decode_batch(payload: &str) -> Result<Vec<WalOp>> {
    let parsed = from_json(payload)?;
    let Doc::Arr(items) = parsed else {
        return Err(StoreError::Schema("wal record payload is not an array".into()));
    };
    let mut ops = Vec::with_capacity(items.len());
    for item in items {
        let kind = item
            .get("op")
            .and_then(Doc::as_str)
            .ok_or_else(|| StoreError::Schema("wal op lacks 'op'".into()))?;
        let collection = item
            .get("c")
            .and_then(Doc::as_str)
            .ok_or_else(|| StoreError::Schema("wal op lacks 'c'".into()))?
            .to_string();
        let id = item
            .get("id")
            .and_then(Doc::as_i64)
            .filter(|id| *id >= 0)
            .ok_or_else(|| StoreError::Schema("wal op lacks a valid 'id'".into()))?
            as u64;
        match kind {
            "put" => {
                let doc = item
                    .get("doc")
                    .cloned()
                    .ok_or_else(|| StoreError::Schema("wal put lacks 'doc'".into()))?;
                ops.push(WalOp::Put { collection, id, doc });
            }
            "del" => ops.push(WalOp::Delete { collection, id }),
            other => {
                return Err(StoreError::Schema(format!("unknown wal op '{other}'")));
            }
        }
    }
    Ok(ops)
}

// ---- Crash-point fault injection ---------------------------------------

/// Crash-point fault injection for the durability tests (`faulty`
/// feature only). Arm a [`fault::CrashPoint`] and the next I/O path
/// that reaches it fails with [`StoreError::Injected`], leaving the
/// on-disk state exactly as a real crash at that instant would.
#[cfg(feature = "faulty")]
pub mod fault {
    use std::sync::Mutex;

    /// Where in the durability path the simulated crash strikes.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum CrashPoint {
        /// Before any record byte is written: the batch is wholly lost.
        BeforeAppend,
        /// After the header and half the payload: a torn tail.
        MidAppend,
        /// After the full record, before `sync_data`: the batch may or
        /// may not survive (it does on a same-process re-open; on real
        /// power loss the page cache decides).
        AfterAppendBeforeSync,
        /// During compaction, after a snapshot temp file is written but
        /// before it is renamed into place: an orphan `.tmp` is left
        /// and the WAL still holds everything.
        MidCompaction,
    }

    impl CrashPoint {
        /// All crash points, for exhaustive harness sweeps.
        pub const ALL: [CrashPoint; 4] = [
            CrashPoint::BeforeAppend,
            CrashPoint::MidAppend,
            CrashPoint::AfterAppendBeforeSync,
            CrashPoint::MidCompaction,
        ];

        /// Stable label (used in the injected error and in logs).
        pub fn label(self) -> &'static str {
            match self {
                CrashPoint::BeforeAppend => "before-append",
                CrashPoint::MidAppend => "mid-append",
                CrashPoint::AfterAppendBeforeSync => "after-append-before-fsync",
                CrashPoint::MidCompaction => "mid-compaction",
            }
        }
    }

    static ARMED: Mutex<Option<CrashPoint>> = Mutex::new(None);

    fn armed() -> std::sync::MutexGuard<'static, Option<CrashPoint>> {
        ARMED.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Arm one crash point; the next path reaching it crashes (once).
    pub fn arm(point: CrashPoint) {
        *armed() = Some(point);
    }

    /// Disarm any armed crash point.
    pub fn disarm() {
        *armed() = None;
    }

    /// True (and disarms) when `point` is the armed crash point.
    pub(crate) fn take(point: CrashPoint) -> bool {
        let mut guard = armed();
        if *guard == Some(point) {
            *guard = None;
            true
        } else {
            false
        }
    }
}

#[cfg(feature = "faulty")]
pub(crate) fn injected(point: fault::CrashPoint) -> StoreError {
    StoreError::Injected(point.label())
}

/// Check a crash point in the I/O path; compiles to nothing without the
/// `faulty` feature.
macro_rules! crash_point {
    ($point:ident, $on_crash:expr) => {
        #[cfg(feature = "faulty")]
        {
            if $crate::wal::fault::take($crate::wal::fault::CrashPoint::$point) {
                return $on_crash($crate::wal::injected($crate::wal::fault::CrashPoint::$point));
            }
        }
    };
}

pub(crate) use crash_point;

// ---- The log itself ----------------------------------------------------

/// An open write-ahead log: an append cursor over `sintel.wal` inside a
/// database directory.
pub struct Wal {
    file: File,
    dir: PathBuf,
    len: u64,
    sync: bool,
}

/// What [`Wal::open`] recovered from an existing log.
#[derive(Debug, Clone, Default)]
pub struct Replay {
    /// Every committed batch, in append order.
    pub batches: Vec<Vec<WalOp>>,
    /// Byte offset the log was truncated at, when a torn tail was found.
    pub truncated_at: Option<u64>,
}

impl Wal {
    /// Open (creating if needed) the log inside `dir`, replaying and
    /// repairing it: committed batches are returned in order and a torn
    /// tail — crash debris — is truncated away, never propagated.
    pub fn open(dir: &Path, sync: bool) -> Result<(Wal, Replay)> {
        let path = dir.join(WAL_FILE);
        let existed = path.exists();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(io_err)?;
        if !existed {
            // The log file's *existence* must survive a crash too.
            fsync_dir(dir)?;
        }

        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes).map_err(io_err)?;

        let mut replay = Replay::default();
        let mut off = 0usize;
        while off < bytes.len() {
            match read_record(&bytes, off) {
                Some((payload, next)) => match decode_batch(payload) {
                    Ok(ops) => {
                        replay.batches.push(ops);
                        off = next;
                    }
                    Err(_) => {
                        replay.truncated_at = Some(off as u64);
                        break;
                    }
                },
                None => {
                    replay.truncated_at = Some(off as u64);
                    break;
                }
            }
        }
        if replay.truncated_at.is_some() {
            file.set_len(off as u64).map_err(io_err)?;
            file.sync_data().map_err(io_err)?;
        }
        file.seek(SeekFrom::Start(off as u64)).map_err(io_err)?;

        Ok((Wal { file, dir: dir.to_path_buf(), len: off as u64, sync }, replay))
    }

    /// Append one record. With `sync` durability the record is
    /// `sync_data`'d before returning: a successful append is durable.
    pub fn append(&mut self, payload: &str) -> Result<()> {
        crash_point!(BeforeAppend, Err);
        let bytes = payload.as_bytes();
        let mut record = Vec::with_capacity(HEADER_BYTES + bytes.len());
        record.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        record.extend_from_slice(&crc32(bytes).to_le_bytes());
        record.extend_from_slice(bytes);

        #[cfg(feature = "faulty")]
        if fault::take(fault::CrashPoint::MidAppend) {
            // A torn write: the header plus half the payload hit the
            // disk, then the machine dies.
            let torn = HEADER_BYTES + bytes.len() / 2;
            let partial = record.get(..torn).unwrap_or(&record);
            self.file.write_all(partial).map_err(io_err)?;
            self.file.sync_data().map_err(io_err)?;
            return Err(injected(fault::CrashPoint::MidAppend));
        }

        if let Err(e) = self.file.write_all(&record) {
            // The write may have landed partially; repair the tail now
            // so a *later* successful append can't hide behind torn
            // bytes (replay truncates at the first bad record, which
            // would silently drop everything after it).
            let _ = self.file.set_len(self.len);
            let _ = self.file.seek(SeekFrom::Start(self.len));
            return Err(io_err(e));
        }

        // Simulated machine death: the record sits in the page cache,
        // unsynced, and the handle must be dropped and reopened — no
        // repair, exactly like real power loss.
        crash_point!(AfterAppendBeforeSync, Err);

        self.len += record.len() as u64;
        if self.sync {
            self.file.sync_data().map_err(io_err)?;
        }
        Ok(())
    }

    /// Whether appends are fsynced individually.
    pub fn synced(&self) -> bool {
        self.sync
    }

    /// Current length of the log in bytes (committed records only).
    pub fn size(&self) -> u64 {
        self.len
    }

    /// Truncate the log to empty (after a successful compaction made
    /// its contents redundant) and make the truncation durable.
    pub fn reset(&mut self) -> Result<()> {
        self.file.set_len(0).map_err(io_err)?;
        self.file.seek(SeekFrom::Start(0)).map_err(io_err)?;
        self.file.sync_data().map_err(io_err)?;
        fsync_dir(&self.dir)?;
        self.len = 0;
        Ok(())
    }
}

/// Decode the record starting at `off`; `None` marks a torn/corrupt
/// tail (short header, impossible length, bad checksum, non-UTF-8).
fn read_record(bytes: &[u8], off: usize) -> Option<(&str, usize)> {
    let header = bytes.get(off..off + HEADER_BYTES)?;
    let len = u32::from_le_bytes(header.get(..4)?.try_into().ok()?) as usize;
    let crc = u32::from_le_bytes(header.get(4..8)?.try_into().ok()?);
    if len > MAX_RECORD_BYTES {
        return None;
    }
    let start = off + HEADER_BYTES;
    let payload = bytes.get(start..start.checked_add(len)?)?;
    if crc32(payload) != crc {
        return None;
    }
    let text = std::str::from_utf8(payload).ok()?;
    Some((text, start + len))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sintel-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create tmpdir");
        dir
    }

    fn put(c: &str, id: u64, v: i64) -> WalOp {
        WalOp::Put {
            collection: c.to_string(),
            id,
            doc: Doc::obj().with("_id", id).with("v", v),
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn batch_codec_round_trips() {
        let ops = vec![put("events", 1, 7), WalOp::Delete { collection: "events".into(), id: 1 }];
        let payload = encode_batch(&ops);
        assert_eq!(decode_batch(&payload).expect("decodes"), ops);
    }

    #[test]
    fn decode_rejects_malformed_payloads() {
        assert!(decode_batch("{}").is_err());
        assert!(decode_batch("[{\"op\":\"warp\",\"c\":\"x\",\"id\":1}]").is_err());
        assert!(decode_batch("[{\"op\":\"put\",\"c\":\"x\",\"id\":-4}]").is_err());
        assert!(decode_batch("not json").is_err());
    }

    #[test]
    fn append_and_replay_round_trip() {
        let dir = tmpdir("roundtrip");
        {
            let (mut wal, replay) = Wal::open(&dir, true).expect("open");
            assert!(replay.batches.is_empty());
            wal.append(&encode_batch(&[put("a", 1, 10)])).expect("append");
            wal.append(&encode_batch(&[put("a", 2, 20), put("b", 1, 30)])).expect("append");
        }
        let (wal, replay) = Wal::open(&dir, true).expect("reopen");
        assert_eq!(replay.batches.len(), 2);
        assert_eq!(replay.truncated_at, None);
        assert_eq!(replay.batches[1].len(), 2);
        assert!(wal.size() > 0);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let dir = tmpdir("torn");
        let full_len;
        {
            let (mut wal, _) = Wal::open(&dir, true).expect("open");
            wal.append(&encode_batch(&[put("a", 1, 1)])).expect("append");
            wal.append(&encode_batch(&[put("a", 2, 2)])).expect("append");
            full_len = wal.size();
        }
        let path = dir.join(WAL_FILE);
        let bytes = std::fs::read(&path).expect("read wal");
        assert_eq!(bytes.len() as u64, full_len);
        // Chop 3 bytes off the last record: checksum can't match.
        std::fs::write(&path, &bytes[..bytes.len() - 3]).expect("truncate");
        let (wal, replay) = Wal::open(&dir, true).expect("recover");
        assert_eq!(replay.batches.len(), 1, "only the intact record survives");
        assert!(replay.truncated_at.is_some());
        // The file was repaired to the last good boundary.
        assert_eq!(
            std::fs::metadata(&path).expect("meta").len(),
            wal.size(),
            "file truncated to the committed prefix"
        );
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn bitflip_in_payload_is_detected() {
        let dir = tmpdir("bitflip");
        {
            let (mut wal, _) = Wal::open(&dir, true).expect("open");
            wal.append(&encode_batch(&[put("a", 1, 1)])).expect("append");
        }
        let path = dir.join(WAL_FILE);
        let mut bytes = std::fs::read(&path).expect("read");
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).expect("write");
        let (_, replay) = Wal::open(&dir, true).expect("recover");
        assert!(replay.batches.is_empty(), "corrupted record must not replay");
        assert_eq!(replay.truncated_at, Some(0));
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn reset_empties_the_log_durably() {
        let dir = tmpdir("reset");
        {
            let (mut wal, _) = Wal::open(&dir, false).expect("open");
            wal.append(&encode_batch(&[put("a", 1, 1)])).expect("append");
            wal.reset().expect("reset");
            assert_eq!(wal.size(), 0);
            wal.append(&encode_batch(&[put("a", 2, 2)])).expect("append after reset");
        }
        let (_, replay) = Wal::open(&dir, false).expect("reopen");
        assert_eq!(replay.batches.len(), 1);
        assert_eq!(
            replay.batches[0],
            vec![put("a", 2, 2)],
            "only the post-reset record remains"
        );
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}

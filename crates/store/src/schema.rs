//! The Sintel knowledge-base schema (paper Figure 6).
//!
//! Entities and relationships:
//!
//! ```text
//! dataset 1—n signal
//! template 1—n pipeline
//! experiment n—1 dataset, n—1 pipeline      (a benchmark/detection run)
//! signalrun  n—1 experiment, n—1 signal     (one signal through one run)
//! event      n—1 signalrun                  (a detected anomaly)
//! annotation n—1 event, n—1 user            (expert feedback)
//! comment    n—1 event, n—1 user            (discussion panel)
//! ```
//!
//! [`SintelDb`] wraps the generic [`Database`] with typed helpers so the
//! core framework and the HIL subsystem store/retrieve these entities
//! consistently.

use std::path::Path;

use crate::db::{BatchScope, Database, RecoveryReport, StoreOptions};
use crate::doc::Doc;
use crate::query::Filter;
use crate::Result;

/// Typed facade over the Sintel schema.
pub struct SintelDb {
    db: Database,
}

/// Collection names of the schema.
pub mod collections {
    /// Datasets (NAB, NASA, YAHOO…).
    pub const DATASETS: &str = "datasets";
    /// Signals, each belonging to a dataset.
    pub const SIGNALS: &str = "signals";
    /// Pipeline templates.
    pub const TEMPLATES: &str = "templates";
    /// Configured pipelines.
    pub const PIPELINES: &str = "pipelines";
    /// Experiments (detection / benchmark runs).
    pub const EXPERIMENTS: &str = "experiments";
    /// Per-signal runs within an experiment.
    pub const SIGNALRUNS: &str = "signalruns";
    /// Detected anomalous events.
    pub const EVENTS: &str = "events";
    /// Expert annotations on events.
    pub const ANNOTATIONS: &str = "annotations";
    /// Discussion comments on events.
    pub const COMMENTS: &str = "comments";
    /// Users (experts, operators).
    pub const USERS: &str = "users";
    /// Classified failures of benchmark/detection runs.
    pub const RUN_FAILURES: &str = "run_failures";
    /// Quarantined `pipeline × signal` pairs (skip on later runs).
    pub const QUARANTINE: &str = "quarantine";
    /// Observability metrics snapshots, one per instrumented run.
    pub const METRICS_SNAPSHOTS: &str = "metrics_snapshots";
    /// Static-analysis diagnostics recorded for benchmarked pipelines.
    pub const DIAGNOSTICS: &str = "diagnostics";
    /// Serving-tier session checkpoints, one per tenant.
    pub const SERVE_SESSIONS: &str = "serve_sessions";
    /// Serving-tier committed anomaly events (`seq` is per-tenant dense).
    pub const SERVE_EVENTS: &str = "serve_events";
    /// Serving-tier engine metadata (tick counter etc.).
    pub const SERVE_META: &str = "serve_meta";
    /// Serving-tier per-tick wide events (one structured record per
    /// tick: admissions, latencies, checkpoint cost, backlog).
    pub const SERVE_TICKS: &str = "serve_ticks";
}

impl SintelDb {
    /// In-memory knowledge base.
    pub fn in_memory() -> Self {
        let s = Self { db: Database::in_memory() };
        s.create_indexes();
        s
    }

    /// Persistent knowledge base under `dir`, with default durability
    /// (write-ahead logged, fsync per commit).
    pub fn open(dir: &Path) -> Result<Self> {
        let s = Self { db: Database::open(dir)? };
        s.create_indexes();
        Ok(s)
    }

    /// Persistent knowledge base under `dir` with explicit
    /// [`StoreOptions`] (durability level, compaction threshold).
    pub fn open_with(dir: &Path, opts: StoreOptions) -> Result<Self> {
        let s = Self { db: Database::open_with(dir, opts)? };
        s.create_indexes();
        Ok(s)
    }

    fn create_indexes(&self) {
        self.db.create_index(collections::SIGNALS, "dataset");
        self.db.create_index(collections::SIGNALRUNS, "experiment_id");
        self.db.create_index(collections::EVENTS, "signalrun_id");
        self.db.create_index(collections::EVENTS, "signal");
        self.db.create_index(collections::ANNOTATIONS, "event_id");
        self.db.create_index(collections::COMMENTS, "event_id");
        self.db.create_index(collections::RUN_FAILURES, "pipeline");
        self.db.create_index(collections::QUARANTINE, "pipeline");
        self.db.create_index(collections::METRICS_SNAPSHOTS, "run");
        self.db.create_index(collections::DIAGNOSTICS, "pipeline");
        self.db.create_index(collections::SERVE_SESSIONS, "tenant");
        self.db.create_index(collections::SERVE_EVENTS, "tenant");
        self.db.create_index(collections::SERVE_META, "kind");
        self.db.create_index(collections::SERVE_TICKS, "tick");
    }

    /// Access the raw database (escape hatch).
    pub fn raw(&self) -> &Database {
        &self.db
    }

    /// Persist to disk (no-op when in-memory).
    pub fn save(&self) -> Result<()> {
        self.db.save()
    }

    /// Open a group-commit scope: writes until `commit()` land as one
    /// WAL record (see [`Database::batch`]).
    pub fn batch(&self) -> BatchScope<'_> {
        self.db.batch()
    }

    /// What crash recovery found and repaired when this database was
    /// opened (see [`Database::recovery`]).
    pub fn recovery(&self) -> &RecoveryReport {
        self.db.recovery()
    }

    // ---- typed inserts -------------------------------------------------

    /// Register a dataset.
    pub fn add_dataset(&self, name: &str, entity: &str) -> u64 {
        self.db.insert(
            collections::DATASETS,
            Doc::obj().with("name", name).with("entity", entity),
        )
    }

    /// Register a signal belonging to a dataset.
    pub fn add_signal(&self, name: &str, dataset: &str, start: i64, stop: i64) -> u64 {
        self.db.insert(
            collections::SIGNALS,
            Doc::obj()
                .with("name", name)
                .with("dataset", dataset)
                .with("start_time", start)
                .with("stop_time", stop),
        )
    }

    /// Register a user.
    pub fn add_user(&self, name: &str, role: &str) -> u64 {
        self.db.insert(collections::USERS, Doc::obj().with("name", name).with("role", role))
    }

    /// Register a pipeline (name + json-ish spec).
    pub fn add_pipeline(&self, name: &str, spec: Doc) -> u64 {
        self.db.insert(
            collections::PIPELINES,
            Doc::obj().with("name", name).with("json", spec),
        )
    }

    /// Register an experiment over a dataset with a pipeline.
    pub fn add_experiment(&self, name: &str, dataset: &str, pipeline: &str) -> u64 {
        self.db.insert(
            collections::EXPERIMENTS,
            Doc::obj().with("name", name).with("dataset", dataset).with("pipeline", pipeline),
        )
    }

    /// Register one signal's run within an experiment.
    pub fn add_signalrun(&self, experiment_id: u64, signal: &str, status: &str) -> u64 {
        self.db.insert(
            collections::SIGNALRUNS,
            Doc::obj()
                .with("experiment_id", experiment_id)
                .with("signal", signal)
                .with("status", status),
        )
    }

    /// Record a detected event (anomaly interval + severity).
    pub fn add_event(
        &self,
        signalrun_id: u64,
        signal: &str,
        start: i64,
        stop: i64,
        severity: f64,
    ) -> u64 {
        self.db.insert(
            collections::EVENTS,
            Doc::obj()
                .with("signalrun_id", signalrun_id)
                .with("signal", signal)
                .with("start_time", start)
                .with("stop_time", stop)
                .with("severity", severity)
                .with("status", "unreviewed")
                .with("source", "ML"),
        )
    }

    /// Record an expert annotation on an event.
    pub fn add_annotation(&self, event_id: u64, user_id: u64, action: &str, tag: &str) -> u64 {
        self.db.insert(
            collections::ANNOTATIONS,
            Doc::obj()
                .with("event_id", event_id)
                .with("user_id", user_id)
                .with("action", action)
                .with("tag", tag),
        )
    }

    /// Record a discussion comment on an event.
    pub fn add_comment(&self, event_id: u64, user_id: u64, text: &str) -> u64 {
        self.db.insert(
            collections::COMMENTS,
            Doc::obj().with("event_id", event_id).with("user_id", user_id).with("text", text),
        )
    }

    /// Record a classified run failure (`kind` is a stable label such as
    /// `panic`/`timeout`; `strikes` is how many attempts were burned).
    pub fn add_run_failure(
        &self,
        pipeline: &str,
        signal: &str,
        kind: &str,
        message: &str,
        strikes: usize,
    ) -> u64 {
        self.db.insert(
            collections::RUN_FAILURES,
            Doc::obj()
                .with("pipeline", pipeline)
                .with("signal", signal)
                .with("kind", kind)
                .with("message", message)
                .with("strikes", strikes),
        )
    }

    /// Record a static-analysis diagnostic for a pipeline (`code` is a
    /// stable `SAxxx` code, `severity` is `error`/`warning`, `step` is
    /// the offending primitive's name).
    pub fn add_diagnostic(
        &self,
        pipeline: &str,
        code: &str,
        severity: &str,
        step: &str,
        message: &str,
    ) -> u64 {
        self.db.insert(
            collections::DIAGNOSTICS,
            Doc::obj()
                .with("pipeline", pipeline)
                .with("code", code)
                .with("severity", severity)
                .with("step", step)
                .with("message", message),
        )
    }

    /// All diagnostics recorded for a pipeline.
    pub fn diagnostics_for_pipeline(&self, pipeline: &str) -> Vec<Doc> {
        self.db.find(collections::DIAGNOSTICS, &Filter::eq("pipeline", pipeline))
    }

    /// Total failed attempts recorded for a `pipeline × signal` pair.
    pub fn failure_strikes(&self, pipeline: &str, signal: &str) -> usize {
        self.db
            .find(collections::RUN_FAILURES, &Self::pair_filter(pipeline, signal))
            .iter()
            .filter_map(|doc| doc.get("strikes").and_then(|d| d.as_i64()))
            .sum::<i64>()
            .max(0) as usize
    }

    /// Quarantine a `pipeline × signal` pair so later runs skip it.
    pub fn add_quarantine(&self, pipeline: &str, signal: &str, reason: &str) -> u64 {
        self.db.insert(
            collections::QUARANTINE,
            Doc::obj()
                .with("pipeline", pipeline)
                .with("signal", signal)
                .with("reason", reason),
        )
    }

    /// Whether a `pipeline × signal` pair has been quarantined.
    pub fn is_quarantined(&self, pipeline: &str, signal: &str) -> bool {
        self.db.count(collections::QUARANTINE, &Self::pair_filter(pipeline, signal)) > 0
    }

    /// Store a metrics snapshot for a run, in both exporter formats
    /// (Prometheus text dump and JSON).
    pub fn add_metrics_snapshot(&self, run: &str, prometheus: &str, json: &str) -> u64 {
        self.db.insert(
            collections::METRICS_SNAPSHOTS,
            Doc::obj()
                .with("run", run)
                .with("prometheus", prometheus)
                .with("json", json),
        )
    }

    /// Metrics snapshots recorded under a run label, insertion order.
    pub fn metrics_snapshots(&self, run: &str) -> Vec<Doc> {
        self.db.find(collections::METRICS_SNAPSHOTS, &Filter::eq("run", run))
    }

    // ---- serving tier --------------------------------------------------

    /// Upsert a tenant's serving-session checkpoint: update in place
    /// when `doc_id` is known, insert otherwise. Returns the document
    /// id (stable across updates, so the serving engine can keep
    /// checkpointing into the same slot).
    pub fn upsert_serve_session(&self, doc_id: Option<u64>, doc: Doc) -> Result<u64> {
        match doc_id {
            Some(id) => {
                self.db.update(collections::SERVE_SESSIONS, id, doc)?;
                Ok(id)
            }
            None => Ok(self.db.insert(collections::SERVE_SESSIONS, doc)),
        }
    }

    /// A tenant's persisted serving-session checkpoint, if any.
    pub fn serve_session(&self, tenant: &str) -> Option<Doc> {
        self.db.find_one(collections::SERVE_SESSIONS, &Filter::eq("tenant", tenant))
    }

    /// Record a committed serving-tier anomaly event.
    #[allow(clippy::too_many_arguments)]
    pub fn add_serve_event(
        &self,
        tenant: &str,
        signal: &str,
        seq: u64,
        start: i64,
        stop: i64,
        severity: f64,
        pass: u64,
    ) -> u64 {
        self.db.insert(
            collections::SERVE_EVENTS,
            Doc::obj()
                .with("tenant", tenant)
                .with("signal", signal)
                .with("seq", seq)
                .with("start_time", start)
                .with("stop_time", stop)
                .with("severity", severity)
                .with("pass", pass),
        )
    }

    /// Committed serving-tier events for a tenant, insertion order
    /// (which, by the engine's protocol, is also `seq` order).
    pub fn serve_events_for_tenant(&self, tenant: &str) -> Vec<Doc> {
        self.db.find(collections::SERVE_EVENTS, &Filter::eq("tenant", tenant))
    }

    /// Record one per-tick wide event (the caller builds the document;
    /// the engine's `TickWideEvent::to_doc` is the canonical shape).
    pub fn add_serve_tick(&self, doc: Doc) -> u64 {
        self.db.insert(collections::SERVE_TICKS, doc)
    }

    /// All persisted wide events, insertion order (= tick order, since
    /// only the single-writer engine appends them).
    pub fn serve_ticks(&self) -> Vec<Doc> {
        self.db.find(collections::SERVE_TICKS, &Filter::All)
    }

    /// Wide events for one tick (normally 0 or 1).
    pub fn serve_ticks_at(&self, tick: u64) -> Vec<Doc> {
        self.db.find(collections::SERVE_TICKS, &Filter::eq("tick", tick))
    }

    fn pair_filter(pipeline: &str, signal: &str) -> Filter {
        Filter::And(vec![Filter::eq("pipeline", pipeline), Filter::eq("signal", signal)])
    }

    // ---- typed queries -------------------------------------------------

    /// Events detected on a signal.
    pub fn events_for_signal(&self, signal: &str) -> Vec<Doc> {
        self.db.find(collections::EVENTS, &Filter::eq("signal", signal))
    }

    /// Events of a signalrun.
    pub fn events_for_signalrun(&self, signalrun_id: u64) -> Vec<Doc> {
        self.db.find(collections::EVENTS, &Filter::eq("signalrun_id", signalrun_id))
    }

    /// Annotations attached to an event.
    pub fn annotations_for_event(&self, event_id: u64) -> Vec<Doc> {
        self.db.find(collections::ANNOTATIONS, &Filter::eq("event_id", event_id))
    }

    /// Comments attached to an event.
    pub fn comments_for_event(&self, event_id: u64) -> Vec<Doc> {
        self.db.find(collections::COMMENTS, &Filter::eq("event_id", event_id))
    }

    /// Signals of a dataset.
    pub fn signals_for_dataset(&self, dataset: &str) -> Vec<Doc> {
        self.db.find(collections::SIGNALS, &Filter::eq("dataset", dataset))
    }

    /// Update an event's review status (`unreviewed`, `confirmed`,
    /// `rejected`, `modified`, `created`…).
    pub fn set_event_status(&self, event_id: u64, status: &str) -> Result<()> {
        self.db.patch(collections::EVENTS, event_id, &[("status", Doc::from(status))])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Walk the whole Figure 6 graph: dataset -> signal -> experiment ->
    /// signalrun -> event -> annotation/comment.
    #[test]
    fn full_schema_walk() {
        let db = SintelDb::in_memory();
        db.add_dataset("NASA", "spacecraft");
        db.add_signal("S-1", "NASA", 0, 10_000);
        db.add_signal("S-2", "NASA", 0, 10_000);
        let user = db.add_user("alice", "satellite engineer");
        db.add_pipeline("lstm_dynamic_threshold", Doc::obj().with("window", 50i64));
        let exp = db.add_experiment("exp-1", "NASA", "lstm_dynamic_threshold");
        let run = db.add_signalrun(exp, "S-1", "done");
        let ev = db.add_event(run, "S-1", 100, 200, 0.9);
        db.add_annotation(ev, user, "confirm", "anomaly");
        db.add_comment(ev, user, "looks like a real thermal excursion");

        assert_eq!(db.signals_for_dataset("NASA").len(), 2);
        assert_eq!(db.events_for_signal("S-1").len(), 1);
        assert_eq!(db.events_for_signalrun(run).len(), 1);
        assert_eq!(db.annotations_for_event(ev).len(), 1);
        assert_eq!(db.comments_for_event(ev).len(), 1);
        assert!(db.events_for_signal("S-2").is_empty());
    }

    #[test]
    fn event_status_lifecycle() {
        let db = SintelDb::in_memory();
        let run = db.add_signalrun(1, "S-1", "done");
        let ev = db.add_event(run, "S-1", 0, 10, 0.5);
        let doc = db.events_for_signal("S-1").pop().unwrap();
        assert_eq!(doc.get("status").unwrap().as_str(), Some("unreviewed"));
        db.set_event_status(ev, "confirmed").unwrap();
        let doc = db.events_for_signal("S-1").pop().unwrap();
        assert_eq!(doc.get("status").unwrap().as_str(), Some("confirmed"));
    }

    #[test]
    fn failure_strikes_accumulate_into_quarantine() {
        let db = SintelDb::in_memory();
        assert_eq!(db.failure_strikes("arima", "S-1"), 0);
        assert!(!db.is_quarantined("arima", "S-1"));

        db.add_run_failure("arima", "S-1", "panic", "injected panic", 1);
        assert_eq!(db.failure_strikes("arima", "S-1"), 1);
        db.add_run_failure("arima", "S-1", "timeout", "exceeded budget", 2);
        assert_eq!(db.failure_strikes("arima", "S-1"), 3);
        // Strikes are per pair, not per pipeline or per signal.
        assert_eq!(db.failure_strikes("arima", "S-2"), 0);
        assert_eq!(db.failure_strikes("tadgan", "S-1"), 0);

        db.add_quarantine("arima", "S-1", "3 strikes");
        assert!(db.is_quarantined("arima", "S-1"));
        assert!(!db.is_quarantined("arima", "S-2"));
    }

    #[test]
    fn diagnostics_round_trip() {
        let db = SintelDb::in_memory();
        assert!(db.diagnostics_for_pipeline("lstm_dynamic_threshold").is_empty());
        db.add_diagnostic(
            "lstm_dynamic_threshold",
            "SA001",
            "error",
            "lstm_regressor",
            "required input 'windows' (windows) is never produced by an upstream step",
        );
        db.add_diagnostic("arima", "SA002", "warning", "arima", "unused output");
        let diags = db.diagnostics_for_pipeline("lstm_dynamic_threshold");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].get("code").unwrap().as_str(), Some("SA001"));
        assert_eq!(diags[0].get("severity").unwrap().as_str(), Some("error"));
        assert_eq!(diags[0].get("step").unwrap().as_str(), Some("lstm_regressor"));
        assert_eq!(db.diagnostics_for_pipeline("arima").len(), 1);
        assert!(db.diagnostics_for_pipeline("tadgan").is_empty());
    }

    #[test]
    fn metrics_snapshots_round_trip() {
        let db = SintelDb::in_memory();
        assert!(db.metrics_snapshots("benchmark").is_empty());
        db.add_metrics_snapshot("benchmark", "# TYPE x counter\nx 1\n", "{\"x\":1}");
        db.add_metrics_snapshot("tune", "# TYPE y counter\ny 2\n", "{\"y\":2}");
        let snaps = db.metrics_snapshots("benchmark");
        assert_eq!(snaps.len(), 1);
        assert!(snaps[0]
            .get("prometheus")
            .and_then(|d| d.as_str())
            .is_some_and(|s| s.contains("x 1")));
        assert_eq!(db.metrics_snapshots("tune").len(), 1);
    }

    #[test]
    fn serve_schema_round_trip() {
        let db = SintelDb::in_memory();
        assert!(db.serve_session("acme").is_none());

        let id = db
            .upsert_serve_session(None, Doc::obj().with("tenant", "acme").with("next_seq", 0i64))
            .unwrap();
        let again = db
            .upsert_serve_session(
                Some(id),
                Doc::obj().with("tenant", "acme").with("next_seq", 3i64),
            )
            .unwrap();
        assert_eq!(id, again, "upsert must keep the same document id");
        let doc = db.serve_session("acme").unwrap();
        assert_eq!(doc.get("next_seq").unwrap().as_i64(), Some(3));
        // Only one checkpoint per tenant, not one per upsert.
        assert_eq!(db.raw().count(collections::SERVE_SESSIONS, &Filter::All), 1);

        db.add_serve_event("acme", "cpu", 0, 100, 120, 4.5, 2);
        db.add_serve_event("acme", "cpu", 1, 300, 310, 2.0, 4);
        db.add_serve_event("other", "mem", 0, 5, 6, 1.0, 1);
        let events = db.serve_events_for_tenant("acme");
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].get("seq").unwrap().as_i64(), Some(0));
        assert_eq!(events[1].get("seq").unwrap().as_i64(), Some(1));
        assert_eq!(events[1].get("severity").unwrap().as_f64(), Some(2.0));
        assert_eq!(db.serve_events_for_tenant("other").len(), 1);
    }

    #[test]
    fn serve_ticks_round_trip() {
        let db = SintelDb::in_memory();
        assert!(db.serve_ticks().is_empty());
        db.add_serve_tick(Doc::obj().with("tick", 0u64).with("accepted", 5u64));
        db.add_serve_tick(Doc::obj().with("tick", 1u64).with("accepted", 9u64));
        let ticks = db.serve_ticks();
        assert_eq!(ticks.len(), 2);
        assert_eq!(ticks[0].get("tick").unwrap().as_i64(), Some(0));
        assert_eq!(ticks[1].get("accepted").unwrap().as_i64(), Some(9));
        let at = db.serve_ticks_at(1);
        assert_eq!(at.len(), 1);
        assert_eq!(at[0].get("accepted").unwrap().as_i64(), Some(9));
        assert!(db.serve_ticks_at(7).is_empty());
    }

    #[test]
    fn persistence_of_knowledge_base() {
        let dir = std::env::temp_dir().join(format!(
            "sintel-kb-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let db = SintelDb::open(&dir).unwrap();
            let run = db.add_signalrun(1, "S-1", "done");
            db.add_event(run, "S-1", 5, 9, 0.4);
            db.save().unwrap();
        }
        let db = SintelDb::open(&dir).unwrap();
        assert_eq!(db.events_for_signal("S-1").len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

//! Crash-recovery harness (requires `--features faulty`).
//!
//! Simulates a crash at every injection point in the durability path
//! and at **every byte offset** of a torn WAL tail, then reopens the
//! database and asserts the recovery contract: no panic, all committed
//! batches present, at most the single in-flight batch lost, and no
//! orphan temp/log debris left behind.
//!
//! An injected crash leaves the on-disk state exactly as a real crash
//! would and kills nothing — so after each one, the harness does what
//! a restarted process does: drop the handle, `Database::open`, and
//! inspect the [`RecoveryReport`].
#![cfg(feature = "faulty")]

use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};

use sintel_common::check::{forall, shrinks, Config};
use sintel_common::SintelRng;
use sintel_store::wal::fault::{self, CrashPoint};
use sintel_store::wal::WAL_FILE;
use sintel_store::{Database, Doc, Filter, StoreError};

/// The fault-injection arm point is process-global; crash tests must
/// not interleave.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    let guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    fault::disarm();
    guard
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sintel-crash-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn doc(v: i64) -> Doc {
    Doc::obj().with("v", v)
}

/// Directory entries that are neither snapshots nor the log — i.e.
/// debris recovery should never leave behind (`.corrupt` quarantines
/// are deliberate and excluded).
fn debris(dir: &PathBuf) -> Vec<String> {
    std::fs::read_dir(dir)
        .expect("readdir")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|name| {
            name != WAL_FILE && !name.ends_with(".jsonl") && !name.ends_with(".corrupt")
        })
        .collect()
}

#[test]
fn append_crash_points_lose_at_most_the_inflight_batch() {
    let _guard = serial();
    for point in [
        CrashPoint::BeforeAppend,
        CrashPoint::MidAppend,
        CrashPoint::AfterAppendBeforeSync,
    ] {
        let dir = tmpdir(point.label());
        {
            let db = Database::open(&dir).expect("open");
            db.try_insert("events", doc(1)).expect("commit 1");
            db.try_insert("events", doc(2)).expect("commit 2");
            fault::arm(point);
            let crashed = db.try_insert("events", doc(3));
            assert!(
                matches!(crashed, Err(StoreError::Injected(_))),
                "{point:?}: expected injected crash, got {crashed:?}"
            );
            // The write is applied in memory regardless — availability —
            // but the handle is now a crashed machine: drop it.
            assert_eq!(db.count("events", &Filter::All), 3);
        }
        let db = Database::open(&dir)
            .unwrap_or_else(|e| panic!("{point:?}: reopen must recover, got {e}"));
        let committed = db.count("events", &Filter::All);
        match point {
            // Nothing of batch 3 reached the disk.
            CrashPoint::BeforeAppend => assert_eq!(committed, 2, "{point:?}"),
            // A torn tail: truncated away, batch 3 lost.
            CrashPoint::MidAppend => {
                assert_eq!(committed, 2, "{point:?}");
                assert!(
                    db.recovery().wal_truncated_at.is_some(),
                    "{point:?}: torn tail must be reported"
                );
            }
            // The full record reached the page cache; a same-process
            // reopen reads it back (real power loss may or may not).
            CrashPoint::AfterAppendBeforeSync => assert_eq!(committed, 3, "{point:?}"),
            CrashPoint::MidCompaction => unreachable!(),
        }
        // Batches 1 and 2 were acknowledged as durable: always present.
        for v in [1i64, 2] {
            assert_eq!(
                db.count("events", &Filter::Gt("v".into(), Doc::I64(v - 1))) >= 1,
                true,
                "{point:?}: committed doc v={v} lost"
            );
        }
        assert_eq!(debris(&dir), Vec::<String>::new(), "{point:?}");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}

#[test]
fn mid_compaction_crash_leaves_wal_authoritative() {
    let _guard = serial();
    let dir = tmpdir("mid-compaction");
    {
        let db = Database::open(&dir).expect("open");
        for v in 0..5 {
            db.try_insert("events", doc(v)).expect("commit");
        }
        fault::arm(CrashPoint::MidCompaction);
        let crashed = db.save();
        assert!(
            matches!(crashed, Err(StoreError::Injected(_))),
            "expected injected compaction crash, got {crashed:?}"
        );
        // The crash struck after a temp file was flushed but before its
        // rename: an orphan is on disk and the WAL was NOT truncated.
        let tmps: Vec<String> = debris(&dir);
        assert!(
            tmps.iter().any(|n| n.ends_with(".tmp")),
            "expected an orphan temp file, found {tmps:?}"
        );
    }
    let db = Database::open(&dir).expect("reopen after compaction crash");
    assert!(
        !db.recovery().orphans_removed.is_empty(),
        "recovery must report the orphan it removed"
    );
    assert_eq!(db.count("events", &Filter::All), 5, "WAL still held every batch");
    assert_eq!(debris(&dir), Vec::<String>::new());
    // With the fault disarmed, compaction completes and a further
    // reopen is clean.
    db.save().expect("compaction succeeds once the fault is gone");
    drop(db);
    let db = Database::open(&dir).expect("clean reopen");
    assert!(db.recovery().is_clean(), "got {:?}", db.recovery());
    assert_eq!(db.count("events", &Filter::All), 5);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn crash_during_batch_commit_loses_only_that_batch() {
    let _guard = serial();
    let dir = tmpdir("batch-crash");
    {
        let db = Database::open(&dir).expect("open");
        db.try_insert("events", doc(1)).expect("commit");
        let scope = db.batch();
        db.insert("events", doc(2));
        db.insert("events", doc(3));
        fault::arm(CrashPoint::MidAppend);
        let crashed = scope.commit();
        assert!(matches!(crashed, Err(StoreError::Injected(_))), "got {crashed:?}");
    }
    let db = Database::open(&dir).expect("reopen");
    // The batch was one record: both of its writes vanish together.
    assert_eq!(db.count("events", &Filter::All), 1);
    assert_eq!(db.recovery().wal_replayed_batches, 1);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// Every byte offset of the log is a possible torn-tail boundary; all
/// of them must recover to exactly the committed prefix.
#[test]
fn torn_tail_recovers_at_every_byte_offset() {
    let _guard = serial();
    let base = tmpdir("sweep-base");
    {
        let db = Database::open(&base).expect("open");
        for v in 0..3 {
            db.try_insert("events", doc(v)).expect("commit");
        }
    }
    let wal = std::fs::read(base.join(WAL_FILE)).expect("read canonical log");
    std::fs::remove_dir_all(&base).expect("cleanup base");

    // Record boundaries, from the length prefixes.
    let mut boundaries = vec![0usize];
    let mut off = 0usize;
    while off < wal.len() {
        let len =
            u32::from_le_bytes(wal[off..off + 4].try_into().expect("header")) as usize;
        off += 8 + len;
        boundaries.push(off);
    }
    assert_eq!(boundaries.len(), 4, "expected 3 records");
    assert_eq!(off, wal.len());

    for cut in 0..=wal.len() {
        let dir = tmpdir("sweep-case");
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(dir.join(WAL_FILE), &wal[..cut]).expect("plant torn log");
        let db = Database::open(&dir)
            .unwrap_or_else(|e| panic!("offset {cut}: recovery failed: {e}"));
        // Committed prefix: every record wholly before the cut.
        let expected = boundaries.iter().filter(|b| **b <= cut).count() - 1;
        assert_eq!(
            db.recovery().wal_replayed_batches,
            expected,
            "offset {cut}: wrong batch count"
        );
        assert_eq!(db.count("events", &Filter::All), expected, "offset {cut}");
        let clean_cut = cut == boundaries[expected];
        assert_eq!(
            db.recovery().wal_truncated_at.is_some(),
            !clean_cut,
            "offset {cut}: truncation report mismatch"
        );
        // The log was repaired to the last committed boundary.
        let repaired = std::fs::metadata(dir.join(WAL_FILE)).expect("meta").len();
        assert_eq!(repaired as usize, boundaries[expected], "offset {cut}");
        assert_eq!(debris(&dir), Vec::<String>::new(), "offset {cut}");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}

/// Randomised workloads with a crash injected at a random point: after
/// reopening, every *acknowledged* write is present and at most the
/// one in-flight write is unaccounted for.
#[test]
fn random_workloads_survive_random_crashes() {
    let _guard = serial();
    let cfg = Config::default().cases(24).seed(0xC4A5_11ED);
    forall(
        "random crash-point workload recovers",
        &cfg,
        |rng: &mut SintelRng| {
            let before = rng.index(6);
            let after = rng.index(6);
            let point = CrashPoint::ALL[rng.index(3)]; // append-path points
            (before, point, after)
        },
        shrinks::none,
        |&(before, point, after)| {
            let dir = tmpdir("forall");
            let mut acked: Vec<u64> = Vec::new();
            let mut inflight: Option<u64> = None;
            {
                let db = Database::open(&dir).map_err(|e| e.to_string())?;
                for v in 0..before {
                    acked.push(
                        db.try_insert("events", doc(v as i64)).map_err(|e| e.to_string())?,
                    );
                }
                fault::arm(point);
                match db.try_insert("events", doc(1000)) {
                    Ok(id) => acked.push(id),
                    Err(StoreError::Injected(_)) => {
                        inflight = db
                            .find("events", &Filter::eq("v", 1000i64))
                            .first()
                            .and_then(|d| d.get("_id"))
                            .and_then(Doc::as_i64)
                            .map(|id| id as u64);
                    }
                    Err(other) => return Err(format!("unexpected error: {other}")),
                }
                fault::disarm();
            }
            // Crash: drop the handle, restart the machine.
            {
                let db = Database::open(&dir).map_err(|e| e.to_string())?;
                for &id in &acked {
                    if db.get("events", id).is_none() {
                        return Err(format!("acknowledged doc {id} lost after {point:?}"));
                    }
                }
                let survivors = db.count("events", &Filter::All);
                let max_expected = acked.len() + usize::from(inflight.is_some());
                if survivors < acked.len() || survivors > max_expected {
                    return Err(format!(
                        "{survivors} docs after crash at {point:?}; \
                         acked {} inflight {inflight:?}",
                        acked.len()
                    ));
                }
                // The machine restarts and keeps working.
                for v in 0..after {
                    db.try_insert("events", doc(2000 + v as i64)).map_err(|e| e.to_string())?;
                }
            }
            let db = Database::open(&dir).map_err(|e| e.to_string())?;
            let total = db.count("events", &Filter::All);
            if total < acked.len() + after {
                return Err(format!("post-restart writes lost: {total}"));
            }
            std::fs::remove_dir_all(&dir).map_err(|e| e.to_string())?;
            Ok(())
        },
    );
}

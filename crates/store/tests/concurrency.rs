//! Concurrency properties of the sharded store.
//!
//! 1. **Snapshot determinism** — a workload partitioned across 1, 2 and
//!    8 worker threads (single writer per collection, fixed per-
//!    collection op order, reads interleaved throughout) must produce
//!    bitwise-identical post-compaction snapshot files at every thread
//!    count: persisted bytes are a function of the logical workload,
//!    never of scheduling.
//! 2. **Reader isolation** — readers of one shard never block on a
//!    writer hammering a different shard, asserted through the
//!    `sintel_store_shard_read_blocked_total` counter.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};

use sintel_common::check::{forall, shrinks, Config};
use sintel_common::SintelRng;
use sintel_store::{shard_of, Database, Doc, Filter};

/// The blocked-reader counter is process-global; keep the two tests in
/// this binary from polluting each other's readings.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sintel-conc-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Op codes for one collection's workload; values are derived from
/// `(collection, op index)` so replays are exact.
type Workload = Vec<Vec<u8>>;

/// Run `spec` with `threads` workers over a fresh database in `dir`,
/// compact, and return every snapshot file's bytes.
fn run_workload(spec: &Workload, threads: usize, dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let db = Arc::new(Database::open(dir).expect("open"));
    let spec = Arc::new(spec.clone());
    let mut handles = Vec::new();
    for t in 0..threads {
        let db = Arc::clone(&db);
        let spec = Arc::clone(&spec);
        handles.push(std::thread::spawn(move || {
            // Collection `ci` belongs to worker `ci % threads`: one
            // writer per collection, op order fixed — the id sequence
            // of each collection is identical at any thread count.
            for (ci, ops) in spec.iter().enumerate() {
                if ci % threads != t {
                    continue;
                }
                let col = format!("c{ci}");
                let mut live: Vec<u64> = Vec::new();
                for (oi, &code) in ops.iter().enumerate() {
                    let value = (ci * 1000 + oi) as i64;
                    match code % 4 {
                        2 if !live.is_empty() => {
                            let id = live[oi % live.len()];
                            db.patch(&col, id, &[("v", Doc::I64(value))]).expect("patch");
                        }
                        3 if !live.is_empty() => {
                            let id = live.remove(oi % live.len());
                            db.delete(&col, id).expect("delete");
                        }
                        _ => {
                            live.push(db.insert(&col, Doc::obj().with("v", value)));
                        }
                    }
                    // Interleave reads with every write: they must see
                    // a consistent collection and never deadlock.
                    assert_eq!(db.count(&col, &Filter::All), live.len());
                }
            }
        }));
    }
    for h in handles {
        h.join().expect("worker");
    }
    db.save().expect("compact");
    let mut files = BTreeMap::new();
    for entry in std::fs::read_dir(dir).expect("readdir") {
        let path = entry.expect("entry").path();
        if path.extension().and_then(|e| e.to_str()) == Some("jsonl") {
            let name = path.file_name().and_then(|n| n.to_str()).expect("name").to_string();
            files.insert(name, std::fs::read(&path).expect("read snapshot"));
        }
    }
    files
}

#[test]
fn snapshot_bytes_identical_at_1_2_8_threads() {
    let _guard = serial();
    let cfg = Config::default().cases(10).seed(0x5AFE_BEEF);
    forall(
        "post-compaction snapshots are thread-count-invariant",
        &cfg,
        |rng: &mut SintelRng| -> Workload {
            let ncols = 3 + rng.index(5);
            (0..ncols)
                .map(|_| (0..5 + rng.index(25)).map(|_| rng.index(4) as u8).collect())
                .collect()
        },
        shrinks::none,
        |spec| {
            let mut baseline: Option<BTreeMap<String, Vec<u8>>> = None;
            for threads in [1usize, 2, 8] {
                let dir = tmpdir(&format!("bytes-{threads}"));
                let files = run_workload(spec, threads, &dir);
                std::fs::remove_dir_all(&dir).map_err(|e| e.to_string())?;
                if files.is_empty() {
                    return Err("workload produced no snapshots".to_string());
                }
                match &baseline {
                    None => baseline = Some(files),
                    Some(expected) => {
                        if *expected != files {
                            let diff: Vec<&String> = expected
                                .keys()
                                .chain(files.keys())
                                .filter(|k| expected.get(*k) != files.get(*k))
                                .collect();
                            return Err(format!(
                                "snapshots diverge at {threads} threads: {diff:?}"
                            ));
                        }
                    }
                }
            }
            Ok(())
        },
    );
}

#[test]
fn readers_never_block_on_a_writer_to_another_shard() {
    let _guard = serial();
    let db = Arc::new(Database::in_memory());

    // The writer hammers exactly one document — one shard.
    let writer_id = db.insert("w", Doc::obj().with("v", 0i64));
    let writer_shard = shard_of("w", writer_id);

    // Readers get ids proven (via the public hash) to live on other
    // shards, so the writer's exclusive lock is never in their way.
    let mut reader_ids = Vec::new();
    for _ in 0..64 {
        let id = db.insert("r", Doc::obj().with("v", 1i64));
        if shard_of("r", id) != writer_shard {
            reader_ids.push(id);
        }
    }
    assert!(reader_ids.len() > 32, "hash should spread ids off one shard");
    let reader_ids = Arc::new(reader_ids);

    let counter = "sintel_store_shard_read_blocked_total";
    let before = sintel_obs::global().snapshot().counter(counter).unwrap_or(0);

    let writer = {
        let db = Arc::clone(&db);
        std::thread::spawn(move || {
            for i in 0..3000i64 {
                db.update("w", writer_id, Doc::obj().with("v", i)).expect("update");
            }
        })
    };
    let readers: Vec<_> = (0..4)
        .map(|t| {
            let db = Arc::clone(&db);
            let ids = Arc::clone(&reader_ids);
            std::thread::spawn(move || {
                for i in 0..3000usize {
                    let id = ids[(i + t) % ids.len()];
                    assert!(db.get("r", id).is_some());
                }
            })
        })
        .collect();
    writer.join().expect("writer");
    for r in readers {
        r.join().expect("reader");
    }

    let after = sintel_obs::global().snapshot().counter(counter).unwrap_or(0);
    assert_eq!(
        after - before,
        0,
        "readers of disjoint shards must never wait on the writer lock"
    );
}

#![warn(missing_docs)]

//! # sintel-stats
//!
//! Statistical modeling substrate for the Sintel reproduction:
//!
//! * [`arima`] — an ARIMA(p, d, q) forecaster fitted with the
//!   Hannan–Rissanen two-stage regression, powering the `arima` pipeline
//!   (Pena et al. [37]).
//! * [`fft`] — an in-repo radix-2 complex FFT.
//! * [`spectral`] — the spectral-residual saliency detector of Ren et
//!   al. (KDD 2019), the published algorithm behind the Microsoft Azure
//!   Anomaly Detector service; this is the local stand-in for the
//!   paper's `azure` pipeline (see DESIGN.md §2).
//! * [`threshold`] — the nonparametric dynamic error threshold of
//!   Hundman et al. (KDD 2018) used by the `find_anomalies`
//!   postprocessing primitive, plus a fixed k·σ baseline for ablation.
//! * [`decompose`] — seasonal-trend decomposition and change-point
//!   detection, the §5 "distribution shift" preprocessing toolkit.
//! * [`matrix_profile`] — nearest-neighbour subsequence distances (the
//!   Stumpy comparator), an extension pipeline in the hub.
//! * [`holt_winters`] — additive triple exponential smoothing, the
//!   second forecaster of the paper's reference [37].

pub mod arima;
pub mod decompose;
pub mod fft;
pub mod holt_winters;
pub mod matrix_profile;
pub mod spectral;
pub mod threshold;

pub use arima::Arima;
pub use decompose::{change_points, decompose, estimate_period, Decomposition};
pub use fft::{fft, ifft, Complex};
pub use holt_winters::HoltWinters;
pub use matrix_profile::{matrix_profile, MatrixProfile};
pub use spectral::spectral_residual_saliency;
pub use threshold::{dynamic_threshold, fixed_threshold, AnomalySpan, ThresholdParams};

/// Errors produced by statistical models.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StatsError {
    /// Not enough data for the requested model order / operation.
    InsufficientData {
        /// Minimum sample count required.
        needed: usize,
        /// Samples actually available.
        got: usize,
    },
    /// Invalid configuration value.
    InvalidParameter(String),
    /// Underlying linear algebra failure (singular design, etc.).
    Numerical(String),
    /// Work was cancelled by a watchdog (`sintel_common::cancel`): the
    /// run budget expired and a recursion loop bailed out early.
    Cancelled,
}

impl std::fmt::Display for StatsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StatsError::InsufficientData { needed, got } => {
                write!(f, "insufficient data: needed {needed}, got {got}")
            }
            StatsError::InvalidParameter(m) => write!(f, "invalid parameter: {m}"),
            StatsError::Numerical(m) => write!(f, "numerical failure: {m}"),
            StatsError::Cancelled => write!(f, "cancelled by run budget"),
        }
    }
}

impl std::error::Error for StatsError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, StatsError>;

//! Holt–Winters additive triple exponential smoothing — the second
//! forecaster of the paper's ARIMA reference (Pena et al. [37] evaluate
//! "ARIMA and HWDS"), added to the hub as an extension pipeline.

use crate::{Result, StatsError};

/// A fitted additive Holt–Winters model.
#[derive(Debug, Clone)]
pub struct HoltWinters {
    alpha: f64,
    beta: f64,
    gamma: f64,
    period: usize,
}

impl HoltWinters {
    /// Create with smoothing factors in `(0, 1)` and a seasonal period.
    pub fn new(alpha: f64, beta: f64, gamma: f64, period: usize) -> Result<Self> {
        for (name, v) in [("alpha", alpha), ("beta", beta), ("gamma", gamma)] {
            if !(0.0..=1.0).contains(&v) {
                return Err(StatsError::InvalidParameter(format!("{name}={v} not in [0,1]")));
            }
        }
        if period < 2 {
            return Err(StatsError::InvalidParameter(format!("period {period} must be >= 2")));
        }
        Ok(Self { alpha, beta, gamma, period })
    }

    /// Rolling one-step-ahead forecasts over `values`.
    ///
    /// Returns `(predictions, offset)`: `predictions[i]` forecasts
    /// `values[i + offset]` using only earlier samples. The warm-up is
    /// one full season (plus one sample for the trend estimate).
    pub fn predict_series(&self, values: &[f64]) -> Result<(Vec<f64>, usize)> {
        let p = self.period;
        let offset = p + 1;
        if values.len() < offset + p {
            return Err(StatsError::InsufficientData { needed: offset + p, got: values.len() });
        }

        // Initial state from the first season.
        let mut level = sintel_common::mean(&values[..p]);
        let mut trend = (values[p] - values[0]) / p as f64;
        let mut season: Vec<f64> = values[..p].iter().map(|v| v - level).collect();

        let mut preds = Vec::with_capacity(values.len() - offset);
        for t in offset..values.len() {
            // Forecast before seeing values[t].
            let s = season[t % p];
            preds.push(level + trend + s);
            // Update with the observation.
            let x = values[t];
            let last_level = level;
            level = self.alpha * (x - s) + (1.0 - self.alpha) * (level + trend);
            trend = self.beta * (level - last_level) + (1.0 - self.beta) * trend;
            season[t % p] = self.gamma * (x - level) + (1.0 - self.gamma) * s;
        }
        Ok((preds, offset))
    }
}

impl HoltWinters {
    /// Multi-step-ahead forecast: run the smoothing state through
    /// `history`, then project `horizon` values ahead
    /// (`level + h*trend + season`).
    pub fn forecast(&self, history: &[f64], horizon: usize) -> Result<Vec<f64>> {
        let p = self.period;
        if history.len() < 2 * p + 1 {
            return Err(StatsError::InsufficientData { needed: 2 * p + 1, got: history.len() });
        }
        let mut level = sintel_common::mean(&history[..p]);
        let mut trend = (history[p] - history[0]) / p as f64;
        let mut season: Vec<f64> = history[..p].iter().map(|v| v - level).collect();
        for (t, &x) in history.iter().enumerate().skip(p + 1) {
            let s = season[t % p];
            let last_level = level;
            level = self.alpha * (x - s) + (1.0 - self.alpha) * (level + trend);
            trend = self.beta * (level - last_level) + (1.0 - self.beta) * trend;
            season[t % p] = self.gamma * (x - level) + (1.0 - self.gamma) * s;
        }
        let n = history.len();
        Ok((1..=horizon)
            .map(|h| level + h as f64 * trend + season[(n + h - 1) % p])
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sintel_common::SintelRng;

    #[test]
    fn forecasts_seasonal_series_well() {
        let period = 24;
        let mut rng = SintelRng::seed_from_u64(7);
        let values: Vec<f64> = (0..600)
            .map(|t| {
                10.0 + 0.01 * t as f64
                    + 3.0 * (std::f64::consts::TAU * t as f64 / period as f64).sin()
                    + rng.normal(0.0, 0.1)
            })
            .collect();
        let hw = HoltWinters::new(0.3, 0.05, 0.2, period).unwrap();
        let (preds, offset) = hw.predict_series(&values).unwrap();
        let truth = &values[offset..];
        let mae: f64 = preds
            .iter()
            .zip(truth)
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            / preds.len() as f64;
        assert!(mae < 0.6, "mae {mae}");
    }

    #[test]
    fn parameter_validation() {
        assert!(HoltWinters::new(1.5, 0.1, 0.1, 12).is_err());
        assert!(HoltWinters::new(0.5, -0.1, 0.1, 12).is_err());
        assert!(HoltWinters::new(0.5, 0.1, 0.1, 1).is_err());
        let hw = HoltWinters::new(0.5, 0.1, 0.1, 12).unwrap();
        assert!(hw.predict_series(&[0.0; 20]).is_err());
    }

    #[test]
    fn forecast_continues_the_season() {
        let period = 24;
        let series: Vec<f64> = (0..480)
            .map(|t| 10.0 + 3.0 * (std::f64::consts::TAU * t as f64 / period as f64).sin())
            .collect();
        let hw = HoltWinters::new(0.3, 0.05, 0.3, period).unwrap();
        let fc = hw.forecast(&series, 48).unwrap();
        assert_eq!(fc.len(), 48);
        // The forecast should track the true continuation closely.
        let truth: Vec<f64> = (480..528)
            .map(|t| 10.0 + 3.0 * (std::f64::consts::TAU * t as f64 / period as f64).sin())
            .collect();
        let mae: f64 = fc.iter().zip(&truth).map(|(a, b)| (a - b).abs()).sum::<f64>() / 48.0;
        assert!(mae < 0.5, "mae {mae}");
        assert!(hw.forecast(&series[..10], 5).is_err());
    }

    #[test]
    fn alignment_offset() {
        let values: Vec<f64> =
            (0..200).map(|t| (std::f64::consts::TAU * t as f64 / 10.0).sin()).collect();
        let hw = HoltWinters::new(0.4, 0.1, 0.3, 10).unwrap();
        let (preds, offset) = hw.predict_series(&values).unwrap();
        assert_eq!(offset, 11);
        assert_eq!(preds.len(), values.len() - offset);
        assert!(preds.iter().all(|p| p.is_finite()));
    }
}

//! Seasonal-trend decomposition (an STL-flavoured additive decomposition)
//! and change-point detection.
//!
//! The paper's §5 ("Addressing distribution shifts") attributes the F1
//! drop on Yahoo's A4 subset to unhandled change points (86% of A4
//! signals contain one) and prescribes exactly these preprocessing
//! techniques: *"feature shift-elimination techniques such as
//! decomposition as well as segmenting signals using change point
//! detection"*. This module provides both, and the `detrend`
//! preprocessing primitive plugs them into any pipeline.

use crate::{Result, StatsError};

/// Additive decomposition `x = trend + seasonal + residual`.
#[derive(Debug, Clone)]
pub struct Decomposition {
    /// Centred moving-average trend.
    pub trend: Vec<f64>,
    /// Periodic component (seasonal means of the detrended series).
    pub seasonal: Vec<f64>,
    /// What remains.
    pub residual: Vec<f64>,
}

/// Decompose a series with a known seasonal `period` (in samples).
///
/// Classic two-pass procedure: (1) centred moving average of width
/// `period` estimates the trend; (2) per-phase means of the detrended
/// series estimate the seasonal component; (3) the rest is residual.
pub fn decompose(values: &[f64], period: usize) -> Result<Decomposition> {
    if period < 2 {
        return Err(StatsError::InvalidParameter(format!("period must be >= 2, got {period}")));
    }
    if values.len() < 2 * period {
        return Err(StatsError::InsufficientData { needed: 2 * period, got: values.len() });
    }
    let n = values.len();

    // Centred moving average, shrinking the window at the edges.
    let half = period / 2;
    let mut trend = Vec::with_capacity(n);
    for i in 0..n {
        let lo = i.saturating_sub(half);
        let hi = (i + half + 1).min(n);
        trend.push(sintel_common::mean(&values[lo..hi]));
    }

    // Seasonal means per phase, centred to sum to ~zero.
    let mut phase_sum = vec![0.0; period];
    let mut phase_count = vec![0usize; period];
    for i in 0..n {
        phase_sum[i % period] += values[i] - trend[i];
        phase_count[i % period] += 1;
    }
    let mut phase_mean: Vec<f64> = phase_sum
        .iter()
        .zip(&phase_count)
        .map(|(s, &c)| if c == 0 { 0.0 } else { s / c as f64 })
        .collect();
    let grand = sintel_common::mean(&phase_mean);
    phase_mean.iter_mut().for_each(|m| *m -= grand);

    let seasonal: Vec<f64> = (0..n).map(|i| phase_mean[i % period]).collect();
    let residual: Vec<f64> =
        (0..n).map(|i| values[i] - trend[i] - seasonal[i]).collect();
    Ok(Decomposition { trend, seasonal, residual })
}

/// Estimate the dominant seasonal period from the autocorrelation peak
/// in `[min_lag, max_lag]`; `None` when nothing is periodic enough.
pub fn estimate_period(values: &[f64], min_lag: usize, max_lag: usize) -> Option<usize> {
    let n = values.len();
    if n < 3 * min_lag.max(2) || min_lag >= max_lag {
        return None;
    }
    let mu = sintel_common::mean(values);
    let var: f64 = values.iter().map(|v| (v - mu) * (v - mu)).sum();
    if var <= 1e-12 {
        return None;
    }
    let max_lag = max_lag.min(n / 2);
    let mut best = (0usize, 0.0f64);
    for lag in min_lag..=max_lag {
        let mut acf = 0.0;
        for i in lag..n {
            acf += (values[i] - mu) * (values[i - lag] - mu);
        }
        acf /= var;
        if acf > best.1 {
            best = (lag, acf);
        }
    }
    (best.1 > 0.3).then_some(best.0)
}

/// Offline change-point detection by binary segmentation over a
/// piecewise-constant-mean cost (sum of squared deviations).
///
/// Splits recursively while the best split improves the cost by more
/// than `penalty * variance_of_whole_series`, up to `max_points` change
/// points. Returns sorted change-point indices.
pub fn change_points(values: &[f64], penalty: f64, max_points: usize) -> Vec<usize> {
    let n = values.len();
    if n < 8 || max_points == 0 {
        return Vec::new();
    }
    let scale = sintel_common::variance(values).max(1e-12) * n as f64;
    let mut segments = vec![(0usize, n)];
    let mut found: Vec<usize> = Vec::new();
    while found.len() < max_points {
        // Best split across all current segments.
        let mut best: Option<(f64, usize, usize)> = None; // (gain, seg idx, split)
        for (k, &(lo, hi)) in segments.iter().enumerate() {
            if hi - lo < 8 {
                continue;
            }
            if let Some((gain, split)) = best_split(&values[lo..hi]) {
                let split = lo + split;
                if best.as_ref().is_none_or(|b| gain > b.0) {
                    best = Some((gain, k, split));
                }
            }
        }
        let Some((gain, k, split)) = best else { break };
        if gain < penalty * scale {
            break;
        }
        let (lo, hi) = segments[k];
        segments[k] = (lo, split);
        segments.push((split, hi));
        found.push(split);
    }
    found.sort_unstable();
    found
}

/// Best single split of a segment under the piecewise-mean cost; returns
/// `(cost gain, split index)` with split in `[4, len-4]`.
fn best_split(seg: &[f64]) -> Option<(f64, usize)> {
    let n = seg.len();
    if n < 8 {
        return None;
    }
    // Prefix sums for O(1) segment costs.
    let mut sum = vec![0.0; n + 1];
    let mut sq = vec![0.0; n + 1];
    for (i, &v) in seg.iter().enumerate() {
        sum[i + 1] = sum[i] + v;
        sq[i + 1] = sq[i] + v * v;
    }
    let cost = |lo: usize, hi: usize| -> f64 {
        let len = (hi - lo) as f64;
        let s = sum[hi] - sum[lo];
        (sq[hi] - sq[lo]) - s * s / len
    };
    let total = cost(0, n);
    let mut best: Option<(f64, usize)> = None;
    for split in 4..=(n - 4) {
        let gain = total - cost(0, split) - cost(split, n);
        if best.is_none_or(|b| gain > b.0) {
            best = Some((gain, split));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use sintel_common::SintelRng;

    fn seasonal_series(n: usize, period: usize, trend_slope: f64, noise: f64) -> Vec<f64> {
        let mut rng = SintelRng::seed_from_u64(5);
        (0..n)
            .map(|t| {
                trend_slope * t as f64
                    + 2.0 * (std::f64::consts::TAU * t as f64 / period as f64).sin()
                    + rng.normal(0.0, noise)
            })
            .collect()
    }

    #[test]
    fn decompose_recovers_components() {
        let period = 24;
        let values = seasonal_series(480, period, 0.01, 0.05);
        let d = decompose(&values, period).unwrap();
        // Residual variance is far below the signal variance.
        assert!(
            sintel_common::variance(&d.residual) < 0.1 * sintel_common::variance(&values),
            "residual variance too large"
        );
        // Components re-add to the original exactly.
        for (i, v) in values.iter().enumerate() {
            assert!((d.trend[i] + d.seasonal[i] + d.residual[i] - v).abs() < 1e-9);
        }
        // Seasonal is periodic in the interior.
        for i in period..(values.len() - 2 * period) {
            assert!((d.seasonal[i] - d.seasonal[i + period]).abs() < 1e-9);
        }
    }

    #[test]
    fn decompose_validates_inputs() {
        assert!(decompose(&[1.0; 10], 1).is_err());
        assert!(decompose(&[1.0; 10], 8).is_err());
    }

    #[test]
    fn estimate_period_finds_cycle() {
        let values = seasonal_series(600, 48, 0.0, 0.1);
        let p = estimate_period(&values, 8, 120).unwrap();
        assert!((46..=50).contains(&p), "estimated {p}");
    }

    #[test]
    fn estimate_period_rejects_noise() {
        let mut rng = SintelRng::seed_from_u64(9);
        let noise: Vec<f64> = (0..500).map(|_| rng.normal(0.0, 1.0)).collect();
        assert_eq!(estimate_period(&noise, 8, 120), None);
        assert_eq!(estimate_period(&[1.0; 100], 8, 20), None); // constant
    }

    #[test]
    fn change_points_find_level_shift() {
        let mut values = vec![0.0; 300];
        for v in &mut values[120..] {
            *v = 5.0;
        }
        let mut rng = SintelRng::seed_from_u64(2);
        for v in &mut values {
            *v += rng.normal(0.0, 0.2);
        }
        let cps = change_points(&values, 0.05, 4);
        assert_eq!(cps.len(), 1, "{cps:?}");
        assert!((115..=125).contains(&cps[0]), "{cps:?}");
    }

    #[test]
    fn change_points_multiple_shifts() {
        let mut values = Vec::new();
        for (level, len) in [(0.0, 100), (4.0, 100), (-3.0, 100)] {
            values.extend(std::iter::repeat_n(level, len));
        }
        let mut rng = SintelRng::seed_from_u64(3);
        for v in &mut values {
            *v += rng.normal(0.0, 0.3);
        }
        let cps = change_points(&values, 0.02, 5);
        assert_eq!(cps.len(), 2, "{cps:?}");
        assert!((95..=105).contains(&cps[0]));
        assert!((195..=205).contains(&cps[1]));
    }

    #[test]
    fn change_points_quiet_on_stationary_data() {
        let mut rng = SintelRng::seed_from_u64(4);
        let values: Vec<f64> = (0..400).map(|_| rng.normal(0.0, 1.0)).collect();
        let cps = change_points(&values, 0.05, 5);
        assert!(cps.is_empty(), "{cps:?}");
    }

    #[test]
    fn change_points_edge_inputs() {
        assert!(change_points(&[], 0.1, 3).is_empty());
        assert!(change_points(&[1.0; 5], 0.1, 3).is_empty());
        assert!(change_points(&[1.0; 100], 0.1, 0).is_empty());
    }
}

//! Iterative radix-2 Cooley–Tukey FFT over an in-repo complex type.
//!
//! Only what the spectral-residual detector needs: forward/inverse
//! transforms of power-of-two length (callers zero-pad).

/// A complex number (f64 re/im).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Construct from parts.
    pub fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// `e^{iθ}`.
    pub fn cis(theta: f64) -> Self {
        Self { re: theta.cos(), im: theta.sin() }
    }

    /// Magnitude.
    pub fn abs(&self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Complex multiplication.
    pub fn mul(&self, o: &Complex) -> Complex {
        Complex {
            re: self.re * o.re - self.im * o.im,
            im: self.re * o.im + self.im * o.re,
        }
    }

    /// Complex addition.
    pub fn add(&self, o: &Complex) -> Complex {
        Complex { re: self.re + o.re, im: self.im + o.im }
    }

    /// Complex subtraction.
    pub fn sub(&self, o: &Complex) -> Complex {
        Complex { re: self.re - o.re, im: self.im - o.im }
    }
}

/// Round `n` up to the next power of two (min 1).
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

fn fft_in_place(buf: &mut [Complex], inverse: bool) {
    let n = buf.len();
    assert!(n.is_power_of_two(), "fft length must be a power of two, got {n}");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            buf.swap(i, j);
        }
    }
    // Danielson–Lanczos butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2usize;
    while len <= n {
        let ang = sign * std::f64::consts::TAU / len as f64;
        let wlen = Complex::cis(ang);
        let mut i = 0;
        while i < n {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = buf[i + k];
                let v = buf[i + k + len / 2].mul(&w);
                buf[i + k] = u.add(&v);
                buf[i + k + len / 2] = u.sub(&v);
                w = w.mul(&wlen);
            }
            i += len;
        }
        len <<= 1;
    }
    if inverse {
        let scale = 1.0 / n as f64;
        for c in buf {
            c.re *= scale;
            c.im *= scale;
        }
    }
}

/// Forward FFT of a real signal, zero-padded to the next power of two.
pub fn fft(values: &[f64]) -> Vec<Complex> {
    let n = next_pow2(values.len());
    let mut buf: Vec<Complex> = values.iter().map(|&v| Complex::new(v, 0.0)).collect();
    buf.resize(n, Complex::default());
    fft_in_place(&mut buf, false);
    buf
}

/// Inverse FFT; input length must be a power of two.
pub fn ifft(spectrum: &[Complex]) -> Vec<Complex> {
    let mut buf = spectrum.to_vec();
    fft_in_place(&mut buf, true);
    buf
}

#[cfg(test)]
mod tests {
    use super::*;
    use sintel_common::SintelRng;

    #[test]
    fn fft_of_impulse_is_flat() {
        let spec = fft(&[1.0, 0.0, 0.0, 0.0]);
        for c in &spec {
            assert!((c.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn fft_of_constant_concentrates_at_dc() {
        let spec = fft(&[2.0; 8]);
        assert!((spec[0].abs() - 16.0).abs() < 1e-9);
        for c in &spec[1..] {
            assert!(c.abs() < 1e-9);
        }
    }

    #[test]
    fn fft_of_sine_peaks_at_frequency() {
        let n = 64usize;
        let k = 5usize;
        let sig: Vec<f64> =
            (0..n).map(|t| (std::f64::consts::TAU * k as f64 * t as f64 / n as f64).sin()).collect();
        let spec = fft(&sig);
        let mags: Vec<f64> = spec.iter().map(Complex::abs).collect();
        let peak = sintel_common::argmax(&mags[..n / 2]).unwrap();
        assert_eq!(peak, k);
    }

    #[test]
    fn roundtrip_identity() {
        let v = [1.0, -2.0, 3.5, 0.25, -1.0, 0.0, 2.0, 7.0];
        let back = ifft(&fft(&v));
        for (orig, rec) in v.iter().zip(&back) {
            assert!((orig - rec.re).abs() < 1e-10);
            assert!(rec.im.abs() < 1e-10);
        }
    }

    #[test]
    fn zero_padding_length() {
        assert_eq!(fft(&[1.0, 2.0, 3.0]).len(), 4);
        assert_eq!(fft(&[0.0; 17]).len(), 32);
        assert_eq!(next_pow2(0), 1);
    }

    #[test]
    fn complex_arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a.mul(&b), Complex::new(5.0, 5.0));
        assert_eq!(a.add(&b), Complex::new(4.0, 1.0));
        assert_eq!(a.sub(&b), Complex::new(-2.0, 3.0));
        assert!((Complex::new(3.0, 4.0).abs() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn prop_roundtrip() {
        let mut rng = SintelRng::seed_from_u64(0x4111);
        for _ in 0..128 {
            let len = 1 + rng.index(127);
            let v: Vec<f64> = (0..len).map(|_| rng.uniform_range(-100.0, 100.0)).collect();
            let spec = fft(&v);
            let back = ifft(&spec);
            for (i, orig) in v.iter().enumerate() {
                assert!((orig - back[i].re).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn prop_parseval() {
        let mut rng = SintelRng::seed_from_u64(0x4112);
        for _ in 0..128 {
            // Energy in time domain == energy in frequency domain / N
            // (zero padding does not change either side).
            let len = 1 + rng.index(63);
            let v: Vec<f64> = (0..len).map(|_| rng.uniform_range(-10.0, 10.0)).collect();
            let spec = fft(&v);
            let n = spec.len() as f64;
            let time: f64 = v.iter().map(|x| x * x).sum();
            let freq: f64 = spec.iter().map(|c| c.abs() * c.abs()).sum::<f64>() / n;
            assert!((time - freq).abs() < 1e-6 * (1.0 + time));
        }
    }
}

//! Spectral-residual saliency — the algorithm behind the Microsoft Azure
//! Anomaly Detector service (Ren et al., *Time-Series Anomaly Detection
//! Service at Microsoft*, KDD 2019).
//!
//! The paper benchmarks a pipeline that calls the Azure SaaS; since a
//! closed cloud service cannot be vendored, the reproduction implements
//! the same published algorithm locally:
//!
//! 1. FFT of the series, log-amplitude spectrum `L`;
//! 2. spectral residual `R = L - avg_filter(L)`;
//! 3. inverse FFT of `exp(R + i·phase)` — the *saliency map*;
//! 4. points whose saliency deviates from the local saliency average
//!    beyond a threshold are anomalous.
//!
//! Matching Table 3's observation, the detector is tuned high-recall /
//! low-precision: it fires on nearly every irregularity.

use crate::fft::{fft, ifft, Complex};

/// Compute the saliency map of a series (step 1–3 above).
///
/// `window` is the moving-average width used on the log spectrum
/// (Ren et al. use q = 3) — must be >= 1.
pub fn spectral_residual_saliency(values: &[f64], window: usize) -> Vec<f64> {
    assert!(window >= 1, "filter window must be >= 1");
    if values.is_empty() {
        return Vec::new();
    }
    let spec = fft(values);
    let n = spec.len();
    let eps = 1e-8;

    // Log-amplitude and phase.
    let amp: Vec<f64> = spec.iter().map(|c| c.abs().max(eps)).collect();
    let log_amp: Vec<f64> = amp.iter().map(|a| a.ln()).collect();

    // Moving average of the log spectrum.
    let avg = moving_average(&log_amp, window);

    // Residual spectrum, re-combined with the original phase.
    let mut residual_spec = Vec::with_capacity(n);
    for i in 0..n {
        let r = (log_amp[i] - avg[i]).exp();
        // unit phase = spec / |spec|
        let phase_re = spec[i].re / amp[i];
        let phase_im = spec[i].im / amp[i];
        residual_spec.push(Complex::new(r * phase_re, r * phase_im));
    }
    let saliency = ifft(&residual_spec);
    saliency.iter().take(values.len()).map(Complex::abs).collect()
}

/// Anomaly scores in `[0, ∞)`: relative deviation of each saliency value
/// from the trailing local average (Ren et al.'s detection rule). Values
/// above ~`threshold` (typically 1–3) are anomalous.
pub fn spectral_residual_scores(values: &[f64], window: usize, score_window: usize) -> Vec<f64> {
    let sal = spectral_residual_saliency(values, window);
    let n = sal.len();
    let mut scores = vec![0.0; n];
    if n == 0 {
        return scores;
    }
    let w = score_window.max(1);
    let mut sum = 0.0;
    let mut buf: std::collections::VecDeque<f64> = std::collections::VecDeque::with_capacity(w);
    for i in 0..n {
        // Warm-up guard: with too little history the trailing average is
        // meaningless and the saliency map's boundary artifacts dominate.
        if buf.len() >= w.min(n / 2).max(1) {
            let local_avg = sum / buf.len() as f64;
            let denom = local_avg.max(1e-8);
            scores[i] = (sal[i] - local_avg).max(0.0) / denom;
        }
        sum += sal[i];
        buf.push_back(sal[i]);
        if buf.len() > w {
            sum -= buf.pop_front().expect("non-empty");
        }
    }
    scores
}

fn moving_average(xs: &[f64], window: usize) -> Vec<f64> {
    let n = xs.len();
    let mut out = Vec::with_capacity(n);
    let half = window / 2;
    let mut acc = 0.0;
    let mut lo = 0usize;
    let mut hi = 0usize; // exclusive
    for i in 0..n {
        let want_lo = i.saturating_sub(half);
        let want_hi = (i + half + 1).min(n);
        while hi < want_hi {
            acc += xs[hi];
            hi += 1;
        }
        while lo < want_lo {
            acc -= xs[lo];
            lo += 1;
        }
        out.push(acc / (hi - lo) as f64);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moving_average_flat_is_identity() {
        let v = [2.0; 10];
        assert_eq!(moving_average(&v, 3), v.to_vec());
    }

    #[test]
    fn moving_average_window_one() {
        let v = [1.0, 5.0, 3.0];
        // window 1 -> half 0 -> each point averages itself only.
        assert_eq!(moving_average(&v, 1), v.to_vec());
    }

    #[test]
    fn saliency_highlights_spike() {
        // A smooth sine with one big spike: the spike should carry the
        // highest saliency.
        let n = 256;
        let mut v: Vec<f64> =
            (0..n).map(|t| (std::f64::consts::TAU * t as f64 / 32.0).sin()).collect();
        v[128] += 10.0;
        let sal = spectral_residual_saliency(&v, 3);
        let peak = sintel_common::argmax(&sal).unwrap();
        assert!(
            (peak as i64 - 128).abs() <= 2,
            "saliency peak at {peak}, expected near 128"
        );
    }

    #[test]
    fn scores_flag_spike_not_baseline() {
        let n = 256;
        let mut v: Vec<f64> =
            (0..n).map(|t| (std::f64::consts::TAU * t as f64 / 32.0).sin()).collect();
        v[200] += 8.0;
        let scores = spectral_residual_scores(&v, 3, 21);
        let peak = sintel_common::argmax(&scores).unwrap();
        assert!((peak as i64 - 200).abs() <= 2, "peak {peak}");
        assert!(scores[200].max(scores[199]).max(scores[201]) > 1.0);
    }

    #[test]
    fn empty_input_ok() {
        assert!(spectral_residual_saliency(&[], 3).is_empty());
        assert!(spectral_residual_scores(&[], 3, 10).is_empty());
    }

    #[test]
    fn constant_input_produces_finite_scores() {
        let scores = spectral_residual_scores(&[5.0; 64], 3, 10);
        assert!(scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn output_length_matches_input() {
        // Input length 100 pads to 128 internally but output is trimmed.
        let v = vec![0.5; 100];
        assert_eq!(spectral_residual_saliency(&v, 3).len(), 100);
    }
}

//! ARIMA(p, d, q) forecasting via the Hannan–Rissanen procedure.
//!
//! The paper's `arima` pipeline predicts each value from its recent past
//! and scores the discrepancy between prediction and observation. This
//! implementation:
//!
//! 1. differences the series `d` times;
//! 2. fits a long autoregression to estimate innovations;
//! 3. regresses the differenced series on its `p` lags and the `q` lagged
//!    innovations (ordinary least squares with a small ridge);
//! 4. produces rolling one-step-ahead forecasts, integrating the
//!    differences back to the original scale.

use sintel_linalg::Matrix;

use crate::{Result, StatsError};

/// A fitted ARIMA(p, d, q) model.
#[derive(Debug, Clone)]
pub struct Arima {
    p: usize,
    d: usize,
    q: usize,
    intercept: f64,
    /// AR coefficients (phi_1 … phi_p).
    phi: Vec<f64>,
    /// MA coefficients (theta_1 … theta_q).
    theta: Vec<f64>,
}

fn difference(values: &[f64], d: usize) -> Vec<f64> {
    let mut out = values.to_vec();
    for _ in 0..d {
        out = out.windows(2).map(|w| w[1] - w[0]).collect();
    }
    out
}

impl Arima {
    /// Fit ARIMA(p, d, q) to a series. Requires enough samples for the
    /// long-AR stage (`~ p + q + 20` after differencing).
    pub fn fit(values: &[f64], p: usize, d: usize, q: usize) -> Result<Self> {
        if p == 0 && q == 0 {
            return Err(StatsError::InvalidParameter("p and q cannot both be zero".into()));
        }
        if d > 2 {
            return Err(StatsError::InvalidParameter(format!("d={d} unsupported (max 2)")));
        }
        let y = difference(values, d);
        let long_order = (p + q + 3).max(6);
        let needed = long_order * 3 + p + q + 4;
        if y.len() < needed {
            return Err(StatsError::InsufficientData { needed, got: y.len() });
        }

        // Stage 1: long AR to estimate innovations.
        let long_coef = fit_ar(&y, long_order)?;
        let Some((long_intercept, long_lags)) = long_coef.split_first() else {
            return Err(StatsError::Numerical("empty long-AR coefficient vector".into()));
        };
        let mut resid = vec![0.0; y.len()];
        for t in long_order..y.len() {
            // Watchdogged runs poll for cancellation so an abandoned fit
            // stops instead of leaking its thread (amortised: the check
            // is off the flop path for all but 1 in 1024 iterations).
            if t % 1024 == 0 && sintel_common::cancelled() {
                return Err(StatsError::Cancelled);
            }
            let mut pred = *long_intercept;
            // Lags newest-first: y[t-1], y[t-2], … — same summation order
            // as explicit `y[t - 1 - k]` indexing, without the indexing.
            for (c, &lag) in long_lags.iter().zip(y[..t].iter().rev()) {
                pred += c * lag;
            }
            resid[t] = y[t] - pred;
        }

        // Stage 2: regress y_t on p lags of y and q lags of residuals.
        let start = long_order + q.max(p);
        let rows = y.len() - start;
        if rows < p + q + 2 {
            return Err(StatsError::InsufficientData { needed: start + p + q + 2, got: y.len() });
        }
        let mut design = Vec::with_capacity(rows);
        let mut target = Vec::with_capacity(rows);
        for t in start..y.len() {
            let mut row = Vec::with_capacity(1 + p + q);
            row.push(1.0);
            // Lag columns newest-first, matching the prediction loops.
            row.extend(y[t - p..t].iter().rev());
            row.extend(resid[t - q..t].iter().rev());
            design.push(row);
            target.push(y[t]);
        }
        let design = Matrix::from_rows(&design);
        let beta = design
            .least_squares(&target, 1e-6)
            .map_err(|e| StatsError::Numerical(e.to_string()))?;
        if beta.len() != 1 + p + q {
            return Err(StatsError::Numerical(format!(
                "least squares returned {} coefficients, expected {}",
                beta.len(),
                1 + p + q
            )));
        }

        Ok(Self {
            p,
            d,
            q,
            intercept: beta[0],
            phi: beta[1..1 + p].to_vec(),
            theta: beta[1 + p..1 + p + q].to_vec(),
        })
    }

    /// Model orders `(p, d, q)`.
    pub fn orders(&self) -> (usize, usize, usize) {
        (self.p, self.d, self.q)
    }

    /// Rolling one-step-ahead forecast over `values`.
    ///
    /// Returns `(predictions, offset)`: `predictions[i]` forecasts
    /// `values[i + offset]` using only samples before it. The offset is
    /// the model's warm-up (`p + q + d`).
    pub fn predict_series(&self, values: &[f64]) -> Result<(Vec<f64>, usize)> {
        let offset = self.p.max(self.q) + self.d;
        if values.len() <= offset {
            return Err(StatsError::InsufficientData { needed: offset + 1, got: values.len() });
        }
        let y = difference(values, self.d);
        // Rolling residuals on the differenced scale.
        let mut resid = vec![0.0; y.len()];
        let warm = self.p.max(self.q);
        let mut preds = Vec::with_capacity(values.len() - offset);
        for t in warm..y.len() {
            if t % 1024 == 0 && sintel_common::cancelled() {
                return Err(StatsError::Cancelled);
            }
            let mut yhat = self.intercept;
            for (c, &lag) in self.phi.iter().zip(y[..t].iter().rev()) {
                yhat += c * lag;
            }
            for (c, &lag) in self.theta.iter().zip(resid[..t].iter().rev()) {
                yhat += c * lag;
            }
            resid[t] = y[t] - yhat;
            // Integrate back: with d=0 the forecast is yhat; with d=1 it
            // is previous original value + yhat; with d=2, accumulate.
            let pred_original = match self.d {
                0 => yhat,
                // y index t aligns with original t+1 target
                1 => match values.get(t) {
                    Some(&x) => x + yhat,
                    None => {
                        return Err(StatsError::Numerical(format!(
                            "integration index {t} out of range ({} values)",
                            values.len()
                        )))
                    }
                },
                _ => {
                    // d == 2: y_t = x_{t+2} - 2 x_{t+1} + x_t
                    match (values.get(t), values.get(t + 1)) {
                        (Some(&x0), Some(&x1)) => 2.0 * x1 - x0 + yhat,
                        _ => {
                            return Err(StatsError::Numerical(format!(
                                "integration index {} out of range ({} values)",
                                t + 1,
                                values.len()
                            )))
                        }
                    }
                }
            };
            preds.push(pred_original);
        }
        debug_assert_eq!(preds.len(), values.len() - offset);
        Ok((preds, offset))
    }
}

/// Fit an AR(`order`) model with intercept by least squares; returns
/// `[c, a_1 … a_order]`.
fn fit_ar(y: &[f64], order: usize) -> Result<Vec<f64>> {
    if y.len() < order * 2 + 2 {
        return Err(StatsError::InsufficientData { needed: order * 2 + 2, got: y.len() });
    }
    let rows = y.len() - order;
    let mut design = Vec::with_capacity(rows);
    let mut target = Vec::with_capacity(rows);
    for t in order..y.len() {
        let mut row = Vec::with_capacity(order + 1);
        row.push(1.0);
        for k in 1..=order {
            row.push(y[t - k]);
        }
        design.push(row);
        target.push(y[t]);
    }
    Matrix::from_rows(&design)
        .least_squares(&target, 1e-6)
        .map_err(|e| StatsError::Numerical(e.to_string()))
}

impl Arima {
    /// Multi-step-ahead forecast: extend `history` by `horizon` values.
    ///
    /// Innovations beyond the observed history are taken as zero (their
    /// conditional expectation), so the forecast converges towards the
    /// process mean/trend as the MA memory runs out.
    pub fn forecast(&self, history: &[f64], horizon: usize) -> Result<Vec<f64>> {
        let warm = self.p.max(self.q);
        if history.len() < warm + self.d + 1 {
            return Err(StatsError::InsufficientData {
                needed: warm + self.d + 1,
                got: history.len(),
            });
        }
        // Differenced history and its rolling residuals.
        let mut x = history.to_vec();
        let mut y = difference(&x, self.d);
        let mut resid = vec![0.0; y.len()];
        for t in warm..y.len() {
            let mut yhat = self.intercept;
            for (c, &lag) in self.phi.iter().zip(y[..t].iter().rev()) {
                yhat += c * lag;
            }
            for (c, &lag) in self.theta.iter().zip(resid[..t].iter().rev()) {
                yhat += c * lag;
            }
            resid[t] = y[t] - yhat;
        }
        let mut out = Vec::with_capacity(horizon);
        for _ in 0..horizon {
            let mut yhat = self.intercept;
            for (c, &lag) in self.phi.iter().zip(y.iter().rev()) {
                yhat += c * lag;
            }
            for (c, &lag) in self.theta.iter().zip(resid.iter().rev()) {
                yhat += c * lag;
            }
            // Integrate back to the original scale; the history-length
            // guard above means the tail patterns always match.
            let next = match (self.d, x.as_slice()) {
                (0, _) => yhat,
                (1, [.., last]) => last + yhat,
                (_, [.., prev, last]) => 2.0 * last - prev + yhat,
                _ => {
                    return Err(StatsError::InsufficientData { needed: 2, got: x.len() })
                }
            };
            y.push(yhat);
            resid.push(0.0); // future innovations expected zero
            x.push(next);
            out.push(next);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sintel_common::SintelRng;

    fn ar1_series(phi: f64, n: usize, noise: f64, seed: u64) -> Vec<f64> {
        let mut rng = SintelRng::seed_from_u64(seed);
        let mut v = vec![0.0; n];
        for t in 1..n {
            v[t] = phi * v[t - 1] + rng.normal(0.0, noise);
        }
        v
    }

    #[test]
    fn recovers_ar1_coefficient() {
        let series = ar1_series(0.8, 2000, 0.5, 1);
        let model = Arima::fit(&series, 1, 0, 0).unwrap();
        assert!((model.phi[0] - 0.8).abs() < 0.05, "phi = {}", model.phi[0]);
    }

    #[test]
    fn predicts_ar1_better_than_mean() {
        let series = ar1_series(0.9, 1500, 0.3, 2);
        let (train, test) = series.split_at(1000);
        let model = Arima::fit(train, 2, 0, 1).unwrap();
        let (preds, offset) = model.predict_series(test).unwrap();
        let truth = &test[offset..];
        let model_mse = sintel_metricsless_mse(truth, &preds);
        let mean = sintel_common::mean(train);
        let mean_mse = truth.iter().map(|t| (t - mean) * (t - mean)).sum::<f64>()
            / truth.len() as f64;
        assert!(model_mse < mean_mse * 0.5, "model {model_mse} vs mean {mean_mse}");
    }

    // Local MSE to avoid a dev-dependency on sintel-metrics.
    fn sintel_metricsless_mse(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>() / a.len() as f64
    }

    #[test]
    fn differencing_handles_trend() {
        // Linear trend + AR noise: d=1 should forecast well.
        let mut series = ar1_series(0.5, 1200, 0.2, 3);
        for (t, v) in series.iter_mut().enumerate() {
            *v += 0.05 * t as f64;
        }
        let model = Arima::fit(&series[..800], 2, 1, 0).unwrap();
        let (preds, offset) = model.predict_series(&series[800..]).unwrap();
        let truth = &series[800 + offset..];
        let mse = sintel_metricsless_mse(truth, &preds);
        assert!(mse < 0.5, "mse {mse}");
    }

    #[test]
    fn insufficient_data_rejected() {
        let err = Arima::fit(&[1.0; 10], 2, 0, 1).unwrap_err();
        assert!(matches!(err, StatsError::InsufficientData { .. }));
    }

    #[test]
    fn invalid_orders_rejected() {
        assert!(Arima::fit(&[1.0; 100], 0, 0, 0).is_err());
        assert!(Arima::fit(&ar1_series(0.5, 100, 0.1, 4), 1, 3, 0).is_err());
    }

    #[test]
    fn predict_alignment_offset() {
        let series = ar1_series(0.7, 600, 0.3, 5);
        let model = Arima::fit(&series, 3, 1, 1).unwrap();
        let (preds, offset) = model.predict_series(&series).unwrap();
        assert_eq!(offset, 4); // max(p, q) + d = 3 + 1
        assert_eq!(preds.len(), series.len() - offset);
        assert!(preds.iter().all(|p| p.is_finite()));
    }

    #[test]
    fn forecast_extends_trend_and_converges() {
        // Damped AR(1): forecasts decay towards the mean.
        let series = ar1_series(0.8, 1500, 0.2, 7);
        let model = Arima::fit(&series, 1, 0, 0).unwrap();
        let fc = model.forecast(&series, 50).unwrap();
        assert_eq!(fc.len(), 50);
        assert!(fc.iter().all(|v| v.is_finite()));
        // Magnitude shrinks towards the process mean (~0).
        assert!(fc[49].abs() <= fc[0].abs() + 0.2);
        // Too-short history is rejected.
        assert!(model.forecast(&series[..1], 5).is_err());
    }

    #[test]
    fn forecast_with_differencing_follows_trend() {
        let mut series = ar1_series(0.3, 900, 0.05, 8);
        for (t, v) in series.iter_mut().enumerate() {
            *v += 0.1 * t as f64;
        }
        let model = Arima::fit(&series, 2, 1, 0).unwrap();
        let fc = model.forecast(&series, 20).unwrap();
        // The d=1 model keeps climbing with the trend (~0.1/step).
        let slope = (fc[19] - fc[0]) / 19.0;
        assert!((slope - 0.1).abs() < 0.05, "slope {slope}");
    }

    #[test]
    fn difference_helper() {
        assert_eq!(difference(&[1.0, 3.0, 6.0, 10.0], 1), vec![2.0, 3.0, 4.0]);
        assert_eq!(difference(&[1.0, 3.0, 6.0, 10.0], 2), vec![1.0, 1.0]);
        assert_eq!(difference(&[5.0], 0), vec![5.0]);
    }

    #[test]
    fn constant_series_fits_without_blowup() {
        // Degenerate input: ridge keeps the solve stable.
        let v = vec![3.0; 200];
        let model = Arima::fit(&v, 2, 0, 0).unwrap();
        let (preds, _) = model.predict_series(&v).unwrap();
        for p in preds {
            assert!((p - 3.0).abs() < 1e-3);
        }
    }
}

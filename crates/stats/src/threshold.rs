//! Nonparametric dynamic error thresholding (Hundman et al., KDD 2018).
//!
//! The `find_anomalies` postprocessing primitive turns a point-wise error
//! series into anomalous index ranges:
//!
//! 1. smooth the errors (EWMA);
//! 2. per evaluation window, choose the threshold `ε = µ + z·σ` whose
//!    removal most reduces the mean/std of the remaining errors relative
//!    to the number of points and contiguous sequences it prunes;
//! 3. group above-threshold indices into sequences;
//! 4. prune sequences whose maximum error does not "step down" enough
//!    relative to the next one (minimum percent drop `p`).
//!
//! A fixed `k·σ` rule ([`fixed_threshold`]) is included as the ablation
//! baseline (DESIGN.md §4).

use crate::{Result, StatsError};

/// A detected anomalous index range with a severity score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnomalySpan {
    /// First anomalous sample index (inclusive).
    pub start: usize,
    /// Last anomalous sample index (inclusive).
    pub end: usize,
    /// Severity: how far above the threshold the worst error was,
    /// normalised by µ + σ.
    pub score: f64,
}

/// Parameters of [`dynamic_threshold`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdParams {
    /// EWMA smoothing factor applied to the error series (0 < α <= 1).
    pub smoothing_alpha: f64,
    /// Candidate z values are swept over `[z_min, z_max]`.
    pub z_min: f64,
    /// Upper end of the z sweep.
    pub z_max: f64,
    /// z sweep granularity.
    pub z_step: f64,
    /// Minimum relative drop between consecutive sequence maxima during
    /// pruning (Hundman's `p`, typically 0.1–0.13). 0 disables pruning.
    pub min_percent_drop: f64,
    /// Evaluation window length; the error series is processed in
    /// consecutive windows of this many samples (the threshold is local,
    /// which is what makes it *dynamic*). 0 means one global window.
    pub window_size: usize,
}

impl Default for ThresholdParams {
    fn default() -> Self {
        Self {
            smoothing_alpha: 0.2,
            z_min: 2.0,
            z_max: 10.0,
            z_step: 0.5,
            min_percent_drop: 0.1,
            window_size: 0,
        }
    }
}

/// Reject parameter combinations that would make the sweep meaningless
/// or non-terminating (a non-positive `z_step` loops forever).
fn validate_params(params: &ThresholdParams) -> Result<()> {
    if !(params.smoothing_alpha > 0.0 && params.smoothing_alpha <= 1.0) {
        return Err(StatsError::InvalidParameter(format!(
            "smoothing_alpha={} not in (0, 1]",
            params.smoothing_alpha
        )));
    }
    if !params.z_step.is_finite() || params.z_step <= 0.0 {
        return Err(StatsError::InvalidParameter(format!(
            "z_step={} must be positive and finite (the z sweep would never terminate)",
            params.z_step
        )));
    }
    if !params.z_min.is_finite() || !params.z_max.is_finite() || params.z_min > params.z_max {
        return Err(StatsError::InvalidParameter(format!(
            "z range [{}, {}] is not a finite ascending interval",
            params.z_min, params.z_max
        )));
    }
    if !params.min_percent_drop.is_finite() || params.min_percent_drop < 0.0 {
        return Err(StatsError::InvalidParameter(format!(
            "min_percent_drop={} must be finite and >= 0",
            params.min_percent_drop
        )));
    }
    Ok(())
}

/// Detect anomalous spans in an error series with a *fixed* `µ + k·σ`
/// threshold — the simple baseline the dynamic method is compared
/// against in the ablation bench.
pub fn fixed_threshold(errors: &[f64], k: f64) -> Result<Vec<AnomalySpan>> {
    if !k.is_finite() || k < 0.0 {
        return Err(StatsError::InvalidParameter(format!(
            "k={k} must be a finite non-negative sigma multiplier"
        )));
    }
    if errors.is_empty() {
        return Ok(Vec::new());
    }
    let mu = sintel_common::mean(errors);
    let sigma = sintel_common::stddev(errors);
    let eps = mu + k * sigma;
    Ok(group_spans(errors, eps, mu, sigma))
}

/// Detect anomalous spans with the dynamic threshold described above.
pub fn dynamic_threshold(
    errors: &[f64],
    params: &ThresholdParams,
) -> Result<Vec<AnomalySpan>> {
    validate_params(params)?;
    if errors.is_empty() {
        return Ok(Vec::new());
    }
    let smoothed = sintel_common::ewma(errors, params.smoothing_alpha);
    let win = if params.window_size == 0 { smoothed.len() } else { params.window_size };

    let mut spans = Vec::new();
    let mut start = 0usize;
    while start < smoothed.len() {
        let end = (start + win).min(smoothed.len());
        let window = &smoothed[start..end];
        for mut span in window_spans(window, params) {
            span.start += start;
            span.end += start;
            spans.push(span);
        }
        start = end;
    }
    // Merge spans that touch across window borders.
    merge_adjacent(&mut spans);
    Ok(spans)
}

fn window_spans(errors: &[f64], params: &ThresholdParams) -> Vec<AnomalySpan> {
    let mu = sintel_common::mean(errors);
    let sigma = sintel_common::stddev(errors);
    if sigma < 1e-12 {
        return Vec::new(); // perfectly flat errors: nothing stands out
    }

    // Sweep z, score each candidate threshold.
    let mut best: Option<(f64, f64)> = None; // (score, eps)
    let mut z = params.z_min;
    while z <= params.z_max + 1e-9 {
        let eps = mu + z * sigma;
        let below: Vec<f64> = errors.iter().copied().filter(|&e| e <= eps).collect();
        let n_above = errors.len() - below.len();
        if n_above == 0 {
            z += params.z_step;
            continue;
        }
        let seqs = count_sequences(errors, eps);
        let delta_mean = mu - sintel_common::mean(&below);
        let delta_std = sigma - sintel_common::stddev(&below);
        let score = (delta_mean / mu.abs().max(1e-12) + delta_std / sigma)
            / (n_above as f64 + (seqs * seqs) as f64);
        if best.is_none_or(|(s, _)| score > s) {
            best = Some((score, eps));
        }
        z += params.z_step;
    }
    let Some((_, eps)) = best else {
        return Vec::new();
    };

    let mut spans = group_spans(errors, eps, mu, sigma);
    if params.min_percent_drop > 0.0 {
        spans = prune(spans, errors, eps, params.min_percent_drop, mu, sigma);
    }
    spans
}

/// Group consecutive above-threshold indices into spans.
fn group_spans(errors: &[f64], eps: f64, mu: f64, sigma: f64) -> Vec<AnomalySpan> {
    let denom = (mu + sigma).abs().max(1e-12);
    let mut spans = Vec::new();
    let mut cur: Option<(usize, usize, f64)> = None;
    for (i, &e) in errors.iter().enumerate() {
        if e > eps {
            cur = match cur {
                Some((s, _, m)) => Some((s, i, m.max(e))),
                None => Some((i, i, e)),
            };
        } else if let Some((s, t, m)) = cur.take() {
            spans.push(AnomalySpan { start: s, end: t, score: (m - eps).max(0.0) / denom });
        }
    }
    if let Some((s, t, m)) = cur {
        spans.push(AnomalySpan { start: s, end: t, score: (m - eps).max(0.0) / denom });
    }
    spans
}

fn count_sequences(errors: &[f64], eps: f64) -> usize {
    let mut seqs = 0usize;
    let mut in_seq = false;
    for &e in errors {
        if e > eps {
            if !in_seq {
                seqs += 1;
                in_seq = true;
            }
        } else {
            in_seq = false;
        }
    }
    seqs
}

/// Hundman's pruning: sort sequence maxima descending, append ε as a
/// floor, walk the relative drops; sequences after the last drop
/// exceeding `p` are discarded.
fn prune(
    spans: Vec<AnomalySpan>,
    errors: &[f64],
    eps: f64,
    p: f64,
    _mu: f64,
    _sigma: f64,
) -> Vec<AnomalySpan> {
    if spans.is_empty() {
        return spans;
    }
    let mut maxima: Vec<(usize, f64)> = spans
        .iter()
        .enumerate()
        .map(|(k, s)| {
            // Spans are derived from `errors` by group_spans, so the range
            // is always valid; the checked access keeps a malformed span
            // from panicking instead of scoring as "nothing to prune".
            let m = errors
                .get(s.start..=s.end)
                .map_or(f64::NEG_INFINITY, |w| {
                    w.iter().copied().fold(f64::NEG_INFINITY, f64::max)
                });
            (k, m)
        })
        .collect();
    maxima.sort_by(|a, b| b.1.total_cmp(&a.1));

    // Relative drops between consecutive maxima, with eps as the floor.
    // Everything above (and including) the last significant drop is kept;
    // if no drop is significant, nothing is pruned.
    let mut last_significant = 0usize;
    for i in 0..maxima.len() {
        let next = if i + 1 < maxima.len() { maxima[i + 1].1 } else { eps };
        let drop = (maxima[i].1 - next) / maxima[i].1.abs().max(1e-12);
        if drop > p {
            last_significant = i + 1;
        }
    }
    let keep_n = if last_significant == 0 { maxima.len() } else { last_significant };
    let keep: std::collections::HashSet<usize> =
        maxima.iter().take(keep_n).map(|&(k, _)| k).collect();
    spans
        .into_iter()
        .enumerate()
        .filter(|(k, _)| keep.contains(k))
        .map(|(_, s)| s)
        .collect()
}

fn merge_adjacent(spans: &mut Vec<AnomalySpan>) {
    spans.sort_by_key(|s| s.start);
    let mut out: Vec<AnomalySpan> = Vec::with_capacity(spans.len());
    for s in spans.drain(..) {
        match out.last_mut() {
            Some(last) if s.start <= last.end + 1 => {
                last.end = last.end.max(s.end);
                last.score = last.score.max(s.score);
            }
            _ => out.push(s),
        }
    }
    *spans = out;
}

#[cfg(test)]
mod tests {
    use super::*;
    use sintel_common::SintelRng;

    fn noisy_errors(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = SintelRng::seed_from_u64(seed);
        (0..n).map(|_| rng.normal(1.0, 0.1).abs()).collect()
    }

    #[test]
    fn flat_errors_produce_nothing() {
        assert!(dynamic_threshold(&[0.5; 100], &ThresholdParams::default()).unwrap().is_empty());
        assert!(dynamic_threshold(&[], &ThresholdParams::default()).unwrap().is_empty());
    }

    #[test]
    fn detects_single_burst() {
        let mut errors = noisy_errors(500, 1);
        for e in &mut errors[200..215] {
            *e += 5.0;
        }
        let spans = dynamic_threshold(&errors, &ThresholdParams::default()).unwrap();
        assert_eq!(spans.len(), 1, "{spans:?}");
        let s = spans[0];
        assert!(s.start >= 195 && s.start <= 205, "start {}", s.start);
        assert!(s.end >= 210 && s.end <= 225, "end {}", s.end);
        assert!(s.score > 0.0);
    }

    #[test]
    fn detects_two_separated_bursts() {
        let mut errors = noisy_errors(800, 2);
        for e in &mut errors[100..110] {
            *e += 6.0;
        }
        for e in &mut errors[600..620] {
            *e += 4.0;
        }
        // Windowed evaluation is what makes the threshold *dynamic*: each
        // window picks its own ε, so bursts of different magnitude are
        // both found.
        let params = ThresholdParams { window_size: 400, ..Default::default() };
        let spans = dynamic_threshold(&errors, &params).unwrap();
        assert!(spans.len() >= 2, "{spans:?}");
        assert!(spans[0].start < 150 && spans.last().unwrap().start > 550);
    }

    #[test]
    fn pruning_drops_marginal_sequences() {
        let mut errors = noisy_errors(600, 3);
        // One dominant anomaly and one barely-above-noise bump.
        for e in &mut errors[100..110] {
            *e += 8.0;
        }
        for e in &mut errors[400..405] {
            *e += 0.45;
        }
        let strict = ThresholdParams { min_percent_drop: 0.35, ..Default::default() };
        let spans = dynamic_threshold(&errors, &strict).unwrap();
        // The dominant burst survives; the bump is pruned (or never
        // crossed the threshold).
        assert!(spans.iter().any(|s| s.start < 150));
        assert!(spans.iter().all(|s| s.start < 150 || s.score > 0.0));
        let lenient = ThresholdParams { min_percent_drop: 0.0, ..Default::default() };
        let spans_all = dynamic_threshold(&errors, &lenient).unwrap();
        assert!(spans_all.len() >= spans.len());
    }

    #[test]
    fn fixed_threshold_known_case() {
        let mut errors = vec![1.0; 100];
        errors[50] = 10.0;
        let spans = fixed_threshold(&errors, 3.0).unwrap();
        assert_eq!(spans.len(), 1);
        assert_eq!((spans[0].start, spans[0].end), (50, 50));
    }

    #[test]
    fn fixed_threshold_empty_and_flat() {
        assert!(fixed_threshold(&[], 3.0).unwrap().is_empty());
        assert!(fixed_threshold(&[2.0; 50], 3.0).unwrap().is_empty());
    }

    #[test]
    fn windowed_processing_merges_across_borders() {
        let mut errors = noisy_errors(400, 4);
        for e in &mut errors[195..205] {
            *e += 6.0;
        }
        // Window border at 200 cuts the burst in half.
        let params = ThresholdParams { window_size: 200, ..Default::default() };
        let spans = dynamic_threshold(&errors, &params).unwrap();
        assert_eq!(spans.len(), 1, "{spans:?}");
        assert!(spans[0].start <= 197 && spans[0].end >= 202);
    }

    #[test]
    fn scores_rank_severity() {
        let mut errors = noisy_errors(600, 5);
        for e in &mut errors[100..105] {
            *e += 10.0;
        }
        for e in &mut errors[400..405] {
            *e += 3.0;
        }
        let params = ThresholdParams {
            min_percent_drop: 0.0,
            window_size: 300,
            ..Default::default()
        };
        let spans = dynamic_threshold(&errors, &params).unwrap();
        let big = spans.iter().find(|s| s.start < 150).expect("big burst found");
        let small = spans.iter().find(|s| s.start > 350).expect("small burst found");
        assert!(big.score > small.score);
    }

    #[test]
    fn bad_parameters_are_typed_errors_not_hangs() {
        let errors = noisy_errors(50, 7);
        // A non-positive z_step used to spin the sweep loop forever.
        let frozen = ThresholdParams { z_step: 0.0, ..Default::default() };
        assert!(matches!(
            dynamic_threshold(&errors, &frozen),
            Err(StatsError::InvalidParameter(_))
        ));
        let negative = ThresholdParams { z_step: -0.5, ..Default::default() };
        assert!(dynamic_threshold(&errors, &negative).is_err());
        let bad_alpha = ThresholdParams { smoothing_alpha: 0.0, ..Default::default() };
        assert!(dynamic_threshold(&errors, &bad_alpha).is_err());
        let inverted = ThresholdParams { z_min: 5.0, z_max: 2.0, ..Default::default() };
        assert!(dynamic_threshold(&errors, &inverted).is_err());
        let nan_drop =
            ThresholdParams { min_percent_drop: f64::NAN, ..Default::default() };
        assert!(dynamic_threshold(&errors, &nan_drop).is_err());
        assert!(matches!(
            fixed_threshold(&errors, f64::INFINITY),
            Err(StatsError::InvalidParameter(_))
        ));
        assert!(fixed_threshold(&errors, -1.0).is_err());
    }

    #[test]
    fn group_spans_handles_trailing_run() {
        let errors = [0.0, 0.0, 5.0, 5.0];
        let spans = group_spans(&errors, 1.0, 0.5, 0.5);
        assert_eq!(spans.len(), 1);
        assert_eq!((spans[0].start, spans[0].end), (2, 3));
    }
}

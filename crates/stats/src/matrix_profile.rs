//! A matrix profile (nearest-neighbour subsequence distance) detector —
//! the "Stumpy" comparator of Table 1, added to the hub as an extension
//! pipeline.
//!
//! For each window of length `m`, the matrix profile stores the distance
//! to its nearest non-trivial neighbour under z-normalised Euclidean
//! distance. Discords (windows far from every other window) are anomaly
//! candidates. The implementation precomputes per-window means/stds and
//! evaluates dot products incrementally along diagonals (a STOMP-style
//! recurrence), which keeps the O(n²) scan fast enough for the scaled
//! corpora.

use crate::{Result, StatsError};

/// Matrix profile values, aligned with window starts (`n - m + 1` long).
#[derive(Debug, Clone)]
pub struct MatrixProfile {
    /// Distance to the nearest neighbour per window.
    pub profile: Vec<f64>,
    /// Window length used.
    pub window: usize,
}

/// Compute the matrix profile of `values` with subsequence length `m`.
///
/// The exclusion zone (`m / 2` around each window) suppresses trivial
/// self-matches.
pub fn matrix_profile(values: &[f64], m: usize) -> Result<MatrixProfile> {
    let n = values.len();
    if m < 4 {
        return Err(StatsError::InvalidParameter(format!("window must be >= 4, got {m}")));
    }
    if n < 2 * m {
        return Err(StatsError::InsufficientData { needed: 2 * m, got: n });
    }
    let k = n - m + 1; // number of windows
    let excl = (m / 2).max(1);

    // Per-window mean and std via prefix sums.
    let mut sum = vec![0.0; n + 1];
    let mut sq = vec![0.0; n + 1];
    for (i, &v) in values.iter().enumerate() {
        sum[i + 1] = sum[i] + v;
        sq[i + 1] = sq[i] + v * v;
    }
    let mf = m as f64;
    let mean: Vec<f64> = (0..k).map(|i| (sum[i + m] - sum[i]) / mf).collect();
    let std: Vec<f64> = (0..k)
        .map(|i| {
            let var = (sq[i + m] - sq[i]) / mf - mean[i] * mean[i];
            var.max(1e-12).sqrt()
        })
        .collect();

    let mut profile = vec![f64::INFINITY; k];
    // Walk diagonals: for offset d, Q(i) = dot(values[i..i+m], values[i+d..i+d+m])
    // follows a rolling recurrence along i.
    for d in excl..k {
        let mut q: f64 =
            (0..m).map(|t| values[t] * values[t + d]).sum();
        for i in 0..(k - d) {
            let j = i + d;
            if i > 0 {
                q += values[i + m - 1] * values[j + m - 1] - values[i - 1] * values[j - 1];
            }
            // z-normalised distance from the dot product.
            let corr = (q - mf * mean[i] * mean[j]) / (mf * std[i] * std[j]);
            let dist = (2.0 * mf * (1.0 - corr.clamp(-1.0, 1.0))).max(0.0).sqrt();
            if dist < profile[i] {
                profile[i] = dist;
            }
            if dist < profile[j] {
                profile[j] = dist;
            }
        }
    }
    Ok(MatrixProfile { profile, window: m })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sintel_common::SintelRng;

    #[test]
    fn discord_has_highest_profile() {
        // Periodic signal with one aberrant cycle.
        let n = 600;
        let mut values: Vec<f64> =
            (0..n).map(|t| (std::f64::consts::TAU * t as f64 / 30.0).sin()).collect();
        for (off, v) in values[300..330].iter_mut().enumerate() {
            *v = 0.8 * ((off as f64) * 0.7).cos() + 1.5; // unique shape
        }
        let mp = matrix_profile(&values, 30).unwrap();
        let peak = sintel_common::argmax(&mp.profile).unwrap();
        assert!(
            (280..=335).contains(&peak),
            "discord at {peak}, expected near 300"
        );
    }

    #[test]
    fn repeated_motifs_have_low_profile() {
        let values: Vec<f64> =
            (0..400).map(|t| (std::f64::consts::TAU * t as f64 / 25.0).sin()).collect();
        let mp = matrix_profile(&values, 25).unwrap();
        // Perfectly repeating pattern: every window has a near-identical
        // neighbour.
        let max = mp.profile.iter().copied().fold(0.0, f64::max);
        assert!(max < 1.0, "max profile {max}");
    }

    #[test]
    fn profile_length_and_validation() {
        let values: Vec<f64> = (0..100).map(|t| (t as f64 * 0.3).sin()).collect();
        let mp = matrix_profile(&values, 10).unwrap();
        assert_eq!(mp.profile.len(), 91);
        assert!(mp.profile.iter().all(|d| d.is_finite()));
        assert!(matrix_profile(&values, 2).is_err());
        assert!(matrix_profile(&values[..15], 10).is_err());
    }

    #[test]
    fn constant_regions_do_not_blow_up() {
        let mut rng = SintelRng::seed_from_u64(1);
        let mut values = vec![1.0; 300];
        for v in values[150..].iter_mut() {
            *v = rng.normal(0.0, 1.0);
        }
        let mp = matrix_profile(&values, 16).unwrap();
        assert!(mp.profile.iter().all(|d| d.is_finite()));
    }
}

//! Property-based suite for the statistical detectors, built on
//! `sintel_common::check`. Failures print a replayable case seed; rerun
//! a whole suite run with `SINTEL_CHECK_SEED=<root>`.

use sintel_common::check::{forall, shrinks, Config};
use sintel_common::SintelRng;
use sintel_stats::{fixed_threshold, Arima};

/// Random non-negative error series with a few injected spikes, the
/// shape `fixed_threshold` sees in the pipeline (absolute residuals).
fn random_errors(rng: &mut SintelRng) -> Vec<f64> {
    let n = rng.int_range(20, 200) as usize;
    let mut errors: Vec<f64> = (0..n).map(|_| rng.normal_std().abs()).collect();
    for _ in 0..rng.int_range(0, 4) {
        let i = rng.index(errors.len());
        errors[i] += rng.uniform_range(2.0, 10.0);
    }
    errors
}

/// Total number of samples covered by the detected spans.
fn flagged_samples(spans: &[sintel_stats::AnomalySpan]) -> usize {
    spans.iter().map(|s| s.end - s.start + 1).sum()
}

/// Raising the sigma multiplier `k` raises the threshold `µ + k·σ`, so
/// the set of flagged samples can only shrink — monotonicity in z. A
/// mutation that breaks threshold pruning (e.g. comparing with the
/// wrong inequality) fails this with a replayable seed.
#[test]
fn fixed_threshold_is_monotone_in_k() {
    forall(
        "fixed_threshold flags monotonically fewer samples as k grows",
        &Config::default(),
        |rng| {
            let errors = random_errors(rng);
            let k_lo = rng.uniform_range(0.0, 3.0);
            let k_hi = k_lo + rng.uniform_range(0.1, 3.0);
            (errors, k_lo, k_hi)
        },
        |(errors, k_lo, k_hi)| {
            shrinks::truncate_vec(errors)
                .into_iter()
                .map(|e| (e, *k_lo, *k_hi))
                .collect()
        },
        |(errors, k_lo, k_hi)| {
            let lo = fixed_threshold(errors, *k_lo).map_err(|e| e.to_string())?;
            let hi = fixed_threshold(errors, *k_hi).map_err(|e| e.to_string())?;
            let (n_lo, n_hi) = (flagged_samples(&lo), flagged_samples(&hi));
            if n_hi <= n_lo {
                Ok(())
            } else {
                Err(format!(
                    "k={k_hi} flagged {n_hi} samples but lower k={k_lo} flagged only {n_lo}"
                ))
            }
        },
    );
}

/// Every sample a fixed-threshold span covers must actually exceed the
/// threshold `µ + k·σ` somewhere in the span, and spans must be
/// in-bounds, ordered, and non-overlapping.
#[test]
fn fixed_threshold_spans_are_well_formed() {
    forall(
        "fixed_threshold spans are ordered, disjoint, in bounds",
        &Config::default(),
        |rng| (random_errors(rng), rng.uniform_range(0.5, 4.0)),
        |(errors, k)| {
            shrinks::truncate_vec(errors).into_iter().map(|e| (e, *k)).collect()
        },
        |(errors, k)| {
            let spans = fixed_threshold(errors, *k).map_err(|e| e.to_string())?;
            let mut prev_end: Option<usize> = None;
            for s in &spans {
                if s.start > s.end || s.end >= errors.len() {
                    return Err(format!("span {}..={} out of bounds", s.start, s.end));
                }
                if let Some(p) = prev_end {
                    if s.start <= p {
                        return Err(format!(
                            "span {}..={} overlaps or precedes previous end {p}",
                            s.start, s.end
                        ));
                    }
                }
                if !s.score.is_finite() || s.score < 0.0 {
                    return Err(format!("span score {} not finite/non-negative", s.score));
                }
                prev_end = Some(s.end);
            }
            Ok(())
        },
    );
}

/// Fit ARIMA on a random stationary AR(1) series and forecast: every
/// forecast value must be finite. Catches coefficient blow-ups and NaN
/// propagation in the two-stage Hannan–Rissanen fit.
#[test]
fn arima_forecasts_are_finite_on_stationary_series() {
    forall(
        "Arima::forecast is finite on random stationary AR(1) input",
        &Config::default().cases(48),
        |rng| {
            let n = rng.int_range(80, 240) as usize;
            let phi = rng.uniform_range(-0.8, 0.8);
            let mut x = 0.0f64;
            let series: Vec<f64> = (0..n)
                .map(|_| {
                    x = phi * x + rng.normal_std();
                    x
                })
                .collect();
            let horizon = rng.int_range(1, 12) as usize;
            (series, horizon)
        },
        shrinks::none,
        |(series, horizon)| {
            let model = Arima::fit(series, 2, 0, 1).map_err(|e| e.to_string())?;
            let forecast = model.forecast(series, *horizon).map_err(|e| e.to_string())?;
            if forecast.len() != *horizon {
                return Err(format!(
                    "asked for {horizon} steps, got {}",
                    forecast.len()
                ));
            }
            if let Some(bad) = forecast.iter().find(|v| !v.is_finite()) {
                return Err(format!("non-finite forecast value {bad}"));
            }
            Ok(())
        },
    );
}

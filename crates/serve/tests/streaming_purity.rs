//! Purity of the serving tier: emissions are a pure function of the
//! accepted event sequence — invariant under worker thread count, tick
//! batching, and the engine machinery itself (queues, parallel
//! execution, group-committed checkpoints).

use sintel_pipeline::template::{StepSpec, Template};
use sintel_primitives::HyperValue;
use sintel_serve::session::PassReport;
use sintel_serve::{
    AnomalyEvent, IngestEvent, ServeConfig, ServeEngine, TenantSession, TenantSpec,
};
use sintel_store::SintelDb;

const TENANTS: [&str; 3] = ["t0", "t1", "t2"];

fn cheap_template() -> Template {
    Template {
        name: "purity_test".into(),
        steps: vec![
            StepSpec::plain("azure_anomaly_service"),
            StepSpec::with("fixed_threshold", &[("k", HyperValue::Float(2.0))]),
        ],
    }
}

/// Interleaved three-tenant stream with a distinct spike per tenant.
fn stream() -> Vec<IngestEvent> {
    let mut events = Vec::new();
    for t in 0..200i64 {
        for (i, name) in TENANTS.iter().enumerate() {
            let phase = (i as f64 + 1.0) * 0.17;
            let spike = if t == 60 + 20 * i as i64 { 5.0 + i as f64 } else { 0.0 };
            events.push(IngestEvent::new(name, "cpu", t, (t as f64 * phase).sin() + spike));
        }
    }
    events
}

fn specs() -> Vec<TenantSpec> {
    TENANTS.iter().map(|name| TenantSpec::new(name, 5, cheap_template())).collect()
}

/// Offer the full stream, ticking every `chunk` events, and return the
/// emission sequence.
fn run(chunk: usize) -> Vec<AnomalyEvent> {
    let mut engine =
        ServeEngine::open(SintelDb::in_memory(), ServeConfig::for_tests(), specs())
            .expect("open engine");
    let mut out = Vec::new();
    for (i, event) in stream().iter().enumerate() {
        engine.offer(event).expect("offer");
        if (i + 1) % chunk == 0 {
            out.extend(engine.tick().expect("tick"));
        }
    }
    out.extend(engine.tick().expect("tick"));
    out
}

fn per_tenant(events: &[AnomalyEvent]) -> Vec<Vec<AnomalyEvent>> {
    TENANTS
        .iter()
        .map(|name| events.iter().filter(|e| e.tenant == *name).cloned().collect())
        .collect()
}

#[test]
fn emissions_are_thread_count_invariant() {
    // This test owns the global thread knob; no other test in this
    // binary touches it.
    sintel_common::set_threads(Some(1));
    let base = run(37);
    assert!(!base.is_empty(), "the spikes must be detected");
    for threads in [2, 8] {
        sintel_common::set_threads(Some(threads));
        let got = run(37);
        sintel_common::set_threads(None);
        assert_eq!(got, base, "thread count {threads} changed the emission sequence");
    }
}

#[test]
fn tick_chunking_is_immaterial_per_tenant() {
    let fine = run(1);
    let coarse = run(97);
    assert_eq!(
        per_tenant(&fine),
        per_tenant(&coarse),
        "per-tenant emissions must not depend on tick batching"
    );
}

#[test]
fn engine_matches_direct_session_feed() {
    let cfg = ServeConfig::for_tests();
    let events: Vec<IngestEvent> =
        stream().into_iter().filter(|e| e.tenant == "t0").collect();

    let mut engine = ServeEngine::open(
        SintelDb::in_memory(),
        cfg.clone(),
        vec![TenantSpec::new("t0", 5, cheap_template())],
    )
    .expect("open engine");
    let mut engine_out = Vec::new();
    for (i, event) in events.iter().enumerate() {
        engine.offer(event).expect("offer");
        if (i + 1) % 23 == 0 {
            engine_out.extend(engine.tick().expect("tick"));
        }
    }
    engine_out.extend(engine.tick().expect("tick"));

    // The same events through a bare session, no engine machinery.
    let template = cheap_template();
    let mut session = TenantSession::new("t0");
    let mut report = PassReport::default();
    for event in &events {
        session.absorb(event, &template, &cfg, &mut report);
    }

    assert_eq!(engine_out, report.events, "the engine must add nothing and lose nothing");
    assert_eq!(engine.session("t0"), Some(&session), "session state must match too");
}

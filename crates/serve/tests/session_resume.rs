//! Crash-recovery property: for a random event stream, a random crash
//! point, and a random tick cadence, `recover → replay the stream`
//! commits exactly the anomaly-event sequence an uninterrupted run
//! commits — nothing lost, nothing duplicated.

use sintel_common::check::{self, Config, PropResult};
use sintel_common::SintelRng;
use sintel_pipeline::template::{StepSpec, Template};
use sintel_primitives::HyperValue;
use sintel_serve::{Admission, AnomalyEvent, IngestEvent, ServeConfig, ServeEngine, TenantSpec};
use sintel_store::SintelDb;

fn cheap_template() -> Template {
    Template {
        name: "resume_test".into(),
        steps: vec![
            StepSpec::plain("azure_anomaly_service"),
            StepSpec::with("fixed_threshold", &[("k", HyperValue::Float(2.0))]),
        ],
    }
}

fn test_config() -> ServeConfig {
    ServeConfig { window: 96, hop: 16, min_points: 16, ..ServeConfig::for_tests() }
}

fn open_engine(db: SintelDb) -> Result<ServeEngine, String> {
    ServeEngine::open(db, test_config(), vec![TenantSpec::new("acme", 5, cheap_template())])
        .map_err(|e| format!("open: {e}"))
}

/// Offer `values[from..to]` as events, ticking every `tick_every`
/// offers; `final_tick` controls whether the tail is flushed (a crash
/// leaves it queued and volatile).
fn feed(
    engine: &mut ServeEngine,
    values: &[f64],
    from: usize,
    to: usize,
    tick_every: usize,
    final_tick: bool,
) -> Result<(), String> {
    for (offered, t) in (from..to).enumerate() {
        let event = IngestEvent::new("acme", "cpu", t as i64, values[t]);
        match engine.offer(&event).map_err(|e| format!("offer: {e}"))? {
            Admission::Accepted => {}
            other => return Err(format!("unexpected admission {other:?}")),
        }
        if (offered + 1) % tick_every == 0 {
            engine.tick().map_err(|e| format!("tick: {e}"))?;
        }
    }
    if final_tick {
        engine.tick().map_err(|e| format!("tick: {e}"))?;
    }
    Ok(())
}

fn assert_dense_seq(events: &[AnomalyEvent]) -> Result<(), String> {
    for (i, event) in events.iter().enumerate() {
        if event.seq != i as u64 {
            return Err(format!(
                "seq not dense: position {i} has seq {} (duplicate or lost emission)",
                event.seq
            ));
        }
    }
    Ok(())
}

#[derive(Debug, Clone)]
struct Case {
    values: Vec<f64>,
    cut: usize,
    tick_every: usize,
}

fn gen(rng: &mut SintelRng) -> Case {
    let len = 48 + rng.index(160);
    let mut values = Vec::with_capacity(len);
    for t in 0..len {
        let mut v = (t as f64 * 0.21).sin();
        if rng.index(24) == 0 {
            v += 3.0 + rng.index(50) as f64 / 10.0;
        }
        values.push(v);
    }
    Case { values, cut: rng.index(len + 1), tick_every: 1 + rng.index(12) }
}

fn shrink(case: &Case) -> Vec<Case> {
    let mut out = Vec::new();
    for values in check::shrinks::truncate_vec(&case.values) {
        let cut = case.cut.min(values.len());
        out.push(Case { values, cut, tick_every: case.tick_every });
    }
    for cut in check::shrinks::halve_usize(case.cut) {
        out.push(Case { values: case.values.clone(), cut, tick_every: case.tick_every });
    }
    out
}

fn prop(case: &Case) -> PropResult {
    // Reference: the uninterrupted run.
    let mut reference_engine = open_engine(SintelDb::in_memory())?;
    feed(&mut reference_engine, &case.values, 0, case.values.len(), case.tick_every, true)?;
    let reference = reference_engine.committed_events("acme");

    // Crash at `cut`: whatever was still queued (not yet ticked) is
    // volatile and dies with the engine; only group-committed state
    // survives in the store.
    let mut first = open_engine(SintelDb::in_memory())?;
    feed(&mut first, &case.values, 0, case.cut, case.tick_every, false)?;
    let surviving_db = first.into_db();

    // Recover and replay the *whole* stream (at-least-once delivery);
    // idempotent absorption must turn that into exactly-once emission.
    let mut resumed = open_engine(surviving_db)?;
    feed(&mut resumed, &case.values, 0, case.values.len(), case.tick_every, true)?;
    let recovered = resumed.committed_events("acme");

    if recovered != reference {
        return Err(format!(
            "committed events diverged: reference {} events, recovered {} events \
             (cut={}, tick_every={})",
            reference.len(),
            recovered.len(),
            case.cut,
            case.tick_every
        ));
    }
    assert_dense_seq(&recovered)
}

#[test]
fn crash_recover_replay_commits_identical_events() {
    check::forall(
        "serve::crash_recover_replay",
        &Config::default().cases(40),
        gen,
        shrink,
        prop,
    );
}

/// The same protocol against a real on-disk store: drop the engine with
/// no shutdown whatsoever (equivalent to `kill -9` for WAL-committed
/// state), reopen, replay, compare.
#[test]
fn hard_stop_on_disk_loses_only_the_unflushed_tail() {
    let dir = std::env::temp_dir().join(format!(
        "sintel-serve-resume-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);

    let values: Vec<f64> = (0..256)
        .map(|t| (t as f64 * 0.19).sin() + if t > 0 && t % 97 == 0 { 4.0 } else { 0.0 })
        .collect();

    let mut reference_engine = open_engine(SintelDb::in_memory()).expect("open");
    feed(&mut reference_engine, &values, 0, values.len(), 16, true).expect("reference run");
    let reference = reference_engine.committed_events("acme");
    assert!(!reference.is_empty(), "the spikes must be detected");

    {
        let db = SintelDb::open(&dir).expect("open store");
        let mut engine = open_engine(db).expect("open engine");
        feed(&mut engine, &values, 0, 150, 16, false).expect("partial run");
        // Dropped here: no graceful shutdown, no final tick.
    }

    let db = SintelDb::open(&dir).expect("reopen store");
    let mut engine = open_engine(db).expect("recover engine");
    let committed_at_recovery = engine.committed_events("acme").len();
    feed(&mut engine, &values, 0, values.len(), 16, true).expect("replay");
    let recovered = engine.committed_events("acme");

    assert_eq!(recovered, reference, "recovered run must commit identical events");
    assert_dense_seq(&recovered).expect("dense seq");
    assert!(
        committed_at_recovery <= reference.len(),
        "recovery cannot resurrect events that were never committed"
    );

    drop(engine);
    let _ = std::fs::remove_dir_all(&dir);
}

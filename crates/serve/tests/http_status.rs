//! Smoke tests for the HTTP status endpoint: every route answers with
//! well-formed payloads while the engine ingests, and shutdown joins
//! cleanly. The determinism side (scrapes cannot perturb committed
//! state) lives in `scrape_under_load.rs`; this binary checks the
//! protocol surface.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

use sintel_pipeline::template::{StepSpec, Template};
use sintel_primitives::HyperValue;
use sintel_serve::{IngestEvent, ServeConfig, ServeEngine, StatusServer, TenantSpec};
use sintel_store::SintelDb;

fn cheap_template() -> Template {
    Template {
        name: "http_test".into(),
        steps: vec![
            StepSpec::plain("azure_anomaly_service"),
            StepSpec::with("fixed_threshold", &[("k", HyperValue::Float(2.0))]),
        ],
    }
}

/// One HTTP GET against the status server: returns (status code, body).
fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to status server");
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").as_bytes())
        .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let code = raw.split_whitespace().nth(1).and_then(|c| c.parse().ok()).unwrap_or(0);
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (code, body)
}

/// Every non-comment line of a Prometheus text payload must be
/// `name value` or `name{labels} value` with a parseable float value;
/// comments must be `# HELP` or `# TYPE`.
fn assert_prometheus_well_formed(body: &str) {
    for line in body.lines().filter(|l| !l.trim().is_empty()) {
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            assert!(
                comment.starts_with("HELP") || comment.starts_with("TYPE"),
                "unexpected comment line: {line}"
            );
            continue;
        }
        let (name, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("metric line has no value: {line}");
        });
        assert!(!name.is_empty(), "empty metric name: {line}");
        assert!(
            value.parse::<f64>().is_ok(),
            "metric value does not parse as f64: {line}"
        );
    }
}

#[test]
fn all_routes_answer_with_well_formed_payloads() {
    sintel_obs::tracing_start();
    let mut engine = ServeEngine::open(
        SintelDb::in_memory(),
        ServeConfig::for_tests(),
        vec![
            TenantSpec::new("acme", 5, cheap_template()),
            TenantSpec::new("beta", 2, cheap_template()),
        ],
    )
    .expect("open engine");

    let shared = engine.enable_status();
    let server = StatusServer::bind("127.0.0.1:0", shared).expect("bind status server");
    let addr = server.local_addr();

    // Ingest with the endpoint live, scraping between ticks.
    for t in 0..96i64 {
        for tenant in ["acme", "beta"] {
            let spike = if t == 70 { 6.0 } else { 0.0 };
            let value = (t as f64 / 8.0).sin() + spike;
            engine.offer(&IngestEvent::new(tenant, "cpu", t, value)).expect("offer");
        }
        if (t + 1) % 16 == 0 {
            engine.tick().expect("tick");
            let (code, _) = get(addr, "/healthz");
            assert_eq!(code, 200, "healthz must stay up mid-ingest");
        }
    }

    // /metrics: Prometheus text with the serve tick counter and the
    // windowed rollup series present.
    let (code, metrics) = get(addr, "/metrics");
    assert_eq!(code, 200);
    assert_prometheus_well_formed(&metrics);
    assert!(metrics.contains("sintel_serve_ticks_total"), "{metrics}");
    assert!(metrics.contains("sintel_serve_events_per_tick"), "rollup series missing");

    // /healthz: JSON readiness with the tick counter.
    let (code, health) = get(addr, "/healthz");
    assert_eq!(code, 200);
    let doc = sintel_store::json::from_json(&health).expect("healthz is valid JSON");
    assert_eq!(doc.get("status").and_then(|d| d.as_str()), Some("ok"));
    assert_eq!(doc.get("ticks").and_then(|d| d.as_i64()), Some(6));

    // /tenants: JSON array with one SLO summary per registered tenant
    // (the `_self` monitor must NOT appear).
    let (code, tenants) = get(addr, "/tenants");
    assert_eq!(code, 200);
    let doc = sintel_store::json::from_json(&tenants).expect("tenants is valid JSON");
    let arr = doc.as_arr().expect("tenants is an array");
    let names: Vec<&str> =
        arr.iter().filter_map(|t| t.get("tenant").and_then(|d| d.as_str())).collect();
    assert_eq!(names, vec!["acme", "beta"]);
    for tenant in arr {
        assert!(tenant.get("accepted").and_then(|d| d.as_i64()).unwrap_or(-1) > 0);
        assert_eq!(
            tenant.get("breaker_state").and_then(|d| d.as_str()),
            Some("closed")
        );
        assert!(tenant.get("shed_ratio").and_then(|d| d.as_f64()).is_some());
    }

    // /trace: JSONL span tail, parseable by the obs parser.
    let (code, trace) = get(addr, "/trace?n=64");
    assert_eq!(code, 200);
    let events = sintel_obs::parse_jsonl(&trace).expect("trace tail parses");
    assert!(
        events.iter().any(|e| e.name == "serve.tick"),
        "tick spans must appear in the trace tail"
    );

    // Unknown routes 404; non-GET methods are rejected.
    let (code, _) = get(addr, "/nope");
    assert_eq!(code, 404);

    let _ = sintel_obs::tracing_stop();
    server.stop();
}

#[test]
fn healthz_reports_unready_when_all_tenants_quarantined() {
    // Drive readiness through the published snapshot directly — the
    // engine-side quarantine path is covered by the chaos suite.
    use sintel_serve::{StatusSnapshot, TenantSlo, TenantStats};
    let shared = sintel_serve::slo::shared_status();
    let snapshot = StatusSnapshot {
        ticks: 3,
        backlog: 0,
        tenants: vec![TenantSlo {
            tenant: "acme".to_string(),
            priority: 5,
            queue_depth: 0,
            stats: TenantStats { quarantined: true, ..TenantStats::default() },
            breaker_state: "open".to_string(),
        }],
        last_tick: None,
    };
    sintel_serve::slo::publish(&shared, snapshot);
    let server = StatusServer::bind("127.0.0.1:0", shared).expect("bind");
    let (code, body) = get(server.local_addr(), "/healthz");
    assert_eq!(code, 503, "all tenants quarantined must fail readiness: {body}");
    assert!(body.contains("\"status\":\"unready\""));
    server.stop();
}

//! Golden-diagnostic fixtures for the whole-deployment static analysis
//! (SA008, SA010-SA014) plus the clean-deployment assertions: the
//! shipped default configuration must analyze without errors, and
//! `ServeEngine::open` must refuse deployments whose report has errors.

use sintel_pipeline::template::{StepSpec, Template};
use sintel_pipeline::template_by_name;
use sintel_primitives::HyperValue;
use sintel_serve::engine::fallback_template;
use sintel_serve::{analyze_deployment, ServeConfig, ServeEngine, ServeError, TenantSpec};
use sintel_store::SintelDb;

/// A primary strictly cheaper than nothing is hard to build from clean
/// templates; this one (azure + threshold) costs exactly what the
/// default fallback costs, and the matrix-profile hub template costs
/// strictly more — both ends of the SA008 severity split.
fn azure_template(name: &str) -> Template {
    Template {
        name: name.to_string(),
        steps: vec![
            StepSpec::plain("azure_anomaly_service"),
            StepSpec::with("fixed_threshold", &[("k", HyperValue::Float(2.0))]),
        ],
    }
}

// ---------------------------------------------------------------------
// Clean deployments.
// ---------------------------------------------------------------------

#[test]
fn default_deployment_with_roster_analyzes_clean() {
    // Eight tenants saturate the default backlog bound (8 x 1024 >=
    // high_water 8192) and one sits below the priority floor, so the
    // shedding checks have nothing to warn about; the deep primary is
    // strictly costlier than the fallback, so SA008 stays silent.
    let cfg = ServeConfig::default();
    let specs: Vec<TenantSpec> = (0..8)
        .map(|i| {
            let template = template_by_name("lstm_dynamic_threshold").expect("hub template");
            TenantSpec::new(&format!("tenant-{i}"), if i == 0 { 0 } else { 2 }, template)
        })
        .collect();
    let report = analyze_deployment(&cfg, &specs);
    assert!(!report.has_errors(), "{}", report.render());
    assert_eq!(report.summary(), "clean", "{}", report.render());
}

#[test]
fn test_config_analyzes_without_errors() {
    let report = analyze_deployment(&ServeConfig::for_tests(), &[]);
    assert!(!report.has_errors(), "{}", report.render());
}

#[test]
fn every_hub_template_is_deployable_as_a_primary() {
    let cfg = ServeConfig::default();
    for name in sintel_pipeline::available_pipelines() {
        let specs =
            vec![TenantSpec::new("acme", 0, template_by_name(name).expect("hub template"))];
        let report = analyze_deployment(&cfg, &specs);
        assert!(!report.has_errors(), "hub template '{name}':\n{}", report.render());
    }
}

#[test]
fn analysis_is_pure_and_deterministic() {
    let cfg = ServeConfig::default();
    let specs = vec![
        TenantSpec::new("a", 0, azure_template("a_primary")),
        TenantSpec::new("a", 3, azure_template("dup_primary")),
    ];
    let first = analyze_deployment(&cfg, &specs).render();
    let second = analyze_deployment(&cfg, &specs).render();
    assert_eq!(first, second);
}

// ---------------------------------------------------------------------
// SA008: the degradation invariant.
// ---------------------------------------------------------------------

#[test]
fn sa008_fallback_costlier_than_primary_is_an_error() {
    let mut cfg = ServeConfig::default();
    cfg.fallback = template_by_name("matrix_profile").expect("hub template");
    let specs = vec![TenantSpec::new("acme", 2, azure_template("cheap_primary"))];
    let report = analyze_deployment(&cfg, &specs);
    assert!(report.has_errors(), "{}", report.render());
    let rendered = report.render();
    assert!(rendered.contains("error[SA008]: fallback 'matrix_profile' is costlier than tenant 'acme' primary 'cheap_primary'"), "{rendered}");
    assert!(rendered.contains("degradation would make overload worse"), "{rendered}");
    assert!(rendered.contains("--> deployment, step 0 (acme)"), "{rendered}");
}

#[test]
fn sa008_fallback_equal_to_primary_is_a_warning() {
    let cfg = ServeConfig::for_tests();
    // for_tests ships the azure fallback with k=2.0; an identical
    // primary costs exactly the same.
    let specs = vec![TenantSpec::new("acme", 2, azure_template("same_cost"))];
    let report = analyze_deployment(&cfg, &specs);
    assert!(!report.has_errors(), "{}", report.render());
    let rendered = report.render();
    assert!(
        rendered.contains("warning[SA008]: fallback 'serve_fallback' costs the same as tenant 'acme' primary 'same_cost'"),
        "{rendered}"
    );
    assert!(rendered.contains("degradation sheds accuracy without shedding load"), "{rendered}");
}

#[test]
fn sa008_skips_fault_injection_templates() {
    let cfg = ServeConfig::for_tests();
    let chaos = Template {
        name: "chaos".to_string(),
        steps: vec![
            StepSpec::plain("faulty_panic"),
            StepSpec::with("fixed_threshold", &[("k", HyperValue::Float(2.0))]),
        ],
    };
    let report = analyze_deployment(&cfg, &[TenantSpec::new("victim", 2, chaos)]);
    assert_eq!(report.summary(), "clean", "{}", report.render());
}

// ---------------------------------------------------------------------
// SA010: config-domain diagnostics (formerly ad-hoc validate strings).
// ---------------------------------------------------------------------

#[test]
fn sa010_config_domain_errors_are_coded_and_rendered() {
    let mut cfg = ServeConfig::default();
    cfg.window = 0;
    cfg.hop = 0;
    cfg.queue_capacity = 0;
    let report = analyze_deployment(&cfg, &[]);
    let rendered = report.render();
    assert!(rendered.contains("error[SA010]: window must be > 0"), "{rendered}");
    assert!(rendered.contains("error[SA010]: hop must be > 0"), "{rendered}");
    assert!(rendered.contains("error[SA010]: queue_capacity must be > 0"), "{rendered}");
    assert!(rendered.contains("--> deployment, step 0 (serve_config)"), "{rendered}");
    // Unsound window geometry gates the downstream checks: no SA008,
    // SA012 or SA013 noise on top of a config that cannot hold data.
    assert!(!rendered.contains("SA012"), "{rendered}");
}

#[test]
fn sa010_min_points_above_window() {
    let mut cfg = ServeConfig::default();
    cfg.min_points = cfg.window + 1;
    let report = analyze_deployment(&cfg, &[]);
    assert!(
        report.render().contains("error[SA010]: min_points must be in 1..=window (513 vs 512)"),
        "{}",
        report.render()
    );
}

// ---------------------------------------------------------------------
// SA011: tenant roster collisions.
// ---------------------------------------------------------------------

#[test]
fn sa011_reserved_and_duplicate_tenant_names() {
    let cfg = ServeConfig::default();
    let specs = vec![
        TenantSpec::new("_self", 2, azure_template("p1")),
        TenantSpec::new("acme", 2, azure_template("p2")),
        TenantSpec::new("acme", 2, azure_template("p3")),
    ];
    let report = analyze_deployment(&cfg, &specs);
    let rendered = report.render();
    assert!(
        rendered.contains("error[SA011]: tenant name '_self' is reserved for self-monitoring"),
        "{rendered}"
    );
    assert!(rendered.contains("error[SA011]: duplicate tenant 'acme'"), "{rendered}");
    assert!(rendered.contains("--> deployment, step 0 (_self)"), "{rendered}");
}

// ---------------------------------------------------------------------
// SA012: statically dead fallback.
// ---------------------------------------------------------------------

#[test]
fn sa012_fallback_that_cannot_fit_the_window_is_an_error() {
    let mut cfg = ServeConfig::default();
    cfg.window = 32;
    cfg.min_points = 16;
    // The deep hub template's rolling windows need 51 samples; inside a
    // 32-sample serve window its own shape analysis proves the output
    // statically empty (SA007), which SA012 surfaces at the deployment
    // level.
    cfg.fallback = template_by_name("lstm_dynamic_threshold").expect("hub template");
    let report = analyze_deployment(&cfg, &[]);
    assert!(report.has_errors(), "{}", report.render());
    let rendered = report.render();
    assert!(
        rendered.contains(
            "error[SA012]: fallback template 'lstm_dynamic_threshold' fails static analysis \
             (SA007\u{d7}1)"
        ),
        "{rendered}"
    );
    assert!(rendered.contains("fix the fallback template"), "{rendered}");
}

#[test]
fn sa012_fallback_above_min_points_is_a_warning() {
    let mut cfg = ServeConfig::for_tests();
    // The deep fallback's 51-sample warm-up fits the 128-sample window
    // but exceeds min_points 32: early degraded passes produce nothing.
    cfg.fallback = template_by_name("lstm_dynamic_threshold").expect("hub template");
    let report = analyze_deployment(&cfg, &[]);
    let rendered = report.render();
    assert!(!report.has_errors(), "{rendered}");
    assert!(
        rendered.contains(
            "warning[SA012]: fallback 'lstm_dynamic_threshold' requires at least 51 input \
             samples but passes may fire from min_points 32"
        ),
        "{rendered}"
    );
    assert!(rendered.contains("early degraded passes will produce nothing"), "{rendered}");
}

// ---------------------------------------------------------------------
// SA013: shedding reachability.
// ---------------------------------------------------------------------

#[test]
fn sa013_zero_high_water_with_sheddable_tenants_is_an_error() {
    let mut cfg = ServeConfig::default();
    cfg.high_water = 0;
    let specs = vec![TenantSpec::new("acme", 0, azure_template("p"))];
    let report = analyze_deployment(&cfg, &specs);
    let rendered = report.render();
    assert!(
        rendered.contains(
            "error[SA013]: high_water is 0: every event from tenants below the priority floor \
             is shed unconditionally"
        ),
        "{rendered}"
    );
}

#[test]
fn sa013_unreachable_high_water_is_a_warning() {
    let mut cfg = ServeConfig::default();
    cfg.queue_capacity = 16;
    cfg.high_water = 1_000_000;
    let specs = vec![TenantSpec::new("acme", 0, azure_template("p"))];
    let report = analyze_deployment(&cfg, &specs);
    let rendered = report.render();
    assert!(!report.has_errors(), "{rendered}");
    assert!(
        rendered.contains(
            "warning[SA013]: high_water 1000000 exceeds the maximum possible backlog 16 \
             (1 tenants x queue_capacity 16); load shedding can never fire"
        ),
        "{rendered}"
    );
}

#[test]
fn sa013_no_sheddable_tenant_is_a_warning() {
    let mut cfg = ServeConfig::default();
    cfg.high_water = 100;
    let specs = vec![TenantSpec::new("acme", 5, azure_template("p"))];
    let report = analyze_deployment(&cfg, &specs);
    let rendered = report.render();
    assert!(!report.has_errors(), "{rendered}");
    assert!(
        rendered.contains("warning[SA013]: no tenant's priority is below the floor (1)"),
        "{rendered}"
    );
}

// ---------------------------------------------------------------------
// SA014: breaker liveness.
// ---------------------------------------------------------------------

#[test]
fn sa014_cooldown_at_pass_clock_ceiling_is_an_error() {
    let mut cfg = ServeConfig::default();
    cfg.breaker_cooldown = u64::MAX;
    let report = analyze_deployment(&cfg, &[]);
    let rendered = report.render();
    assert!(rendered.contains("error[SA014]"), "{rendered}");
    assert!(rendered.contains("an open breaker can never half-open"), "{rendered}");
}

// ---------------------------------------------------------------------
// The engine gate: `open` refuses error reports, tolerates warnings.
// ---------------------------------------------------------------------

#[test]
fn open_refuses_sa010_deployments_with_rendered_report() {
    let mut cfg = ServeConfig::for_tests();
    cfg.window = 0;
    let err = ServeEngine::open(SintelDb::in_memory(), cfg, vec![])
        .err()
        .expect("open must refuse a zero-window deployment");
    match err {
        ServeError::Config(rendered) => {
            assert!(rendered.contains("error[SA010]: window must be > 0"), "{rendered}");
        }
        other => panic!("expected Config error, got {other:?}"),
    }
}

#[test]
fn open_refuses_sa008_cost_inverted_deployments() {
    let mut cfg = ServeConfig::for_tests();
    cfg.fallback = template_by_name("matrix_profile").expect("hub template");
    let specs = vec![TenantSpec::new("acme", 2, azure_template("cheap_primary"))];
    let err = ServeEngine::open(SintelDb::in_memory(), cfg, specs)
        .err()
        .expect("open must refuse a cost-inverted degradation path");
    match err {
        ServeError::Config(rendered) => {
            assert!(rendered.contains("error[SA008]"), "{rendered}");
        }
        other => panic!("expected Config error, got {other:?}"),
    }
}

#[test]
fn open_tolerates_warning_only_deployments() {
    // Equal-cost fallback is a warning, not an error: the engine opens.
    let cfg = ServeConfig::for_tests();
    let specs = vec![TenantSpec::new("acme", 2, azure_template("same_cost"))];
    let engine = ServeEngine::open(SintelDb::in_memory(), cfg, specs);
    assert!(engine.is_ok(), "{:?}", engine.err().map(|e| e.to_string()));
}

//! The introspection tier's determinism contract, proven end to end:
//! a run with the HTTP status endpoint live and a scraper hammering
//! every route between ticks must leave **bitwise identical** committed
//! emissions and persisted store bytes as a run with the endpoint
//! disabled — at every worker thread count. Scrapes read published
//! `Arc` snapshots only; this suite is the enforcement.
//!
//! Store bytes are compared after masking exactly
//! [`sintel_serve::VOLATILE_TICK_FIELDS`] (wall-clock pass/commit
//! durations), recursively — per-tenant slices nested inside a wide
//! event carry `pass_seconds` too. Everything else must match byte for
//! byte, including the `serve_ticks` wide events and the `_self`
//! monitor's session checkpoint.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use sintel_pipeline::template::{StepSpec, Template};
use sintel_primitives::HyperValue;
use sintel_serve::{
    AnomalyEvent, IngestEvent, ServeConfig, ServeEngine, StatusServer, TenantSpec,
    VOLATILE_TICK_FIELDS,
};
use sintel_store::{Doc, SintelDb};

/// Serializes tests: the thread budget override is process-global.
static GUARD: Mutex<()> = Mutex::new(());

const TENANTS: [&str; 3] = ["t0", "t1", "t2"];

/// Events offered between ticks. Small enough that detection passes
/// (and the self-monitor's differenced streams) see plenty of ticks.
const CHUNK: usize = 24;

fn cheap_template() -> Template {
    Template {
        name: "scrape_purity".into(),
        steps: vec![
            StepSpec::plain("azure_anomaly_service"),
            StepSpec::with("fixed_threshold", &[("k", HyperValue::Float(2.0))]),
        ],
    }
}

fn specs() -> Vec<TenantSpec> {
    TENANTS.iter().map(|name| TenantSpec::new(name, 5, cheap_template())).collect()
}

/// Interleaved three-tenant stream with a distinct spike per tenant.
fn stream() -> Vec<IngestEvent> {
    let mut events = Vec::new();
    for t in 0..200i64 {
        for (i, name) in TENANTS.iter().enumerate() {
            let phase = (i as f64 + 1.0) * 0.17;
            let spike = if t == 60 + 20 * i as i64 { 5.0 + i as f64 } else { 0.0 };
            events.push(IngestEvent::new(name, "cpu", t, (t as f64 * phase).sin() + spike));
        }
    }
    events
}

/// One best-effort GET against the status server (the scraper thread
/// races engine shutdown, so failures are ignored, not asserted).
fn scrape_once(addr: SocketAddr, path: &str) {
    let Ok(mut stream) = TcpStream::connect(addr) else { return };
    let request = format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n");
    if stream.write_all(request.as_bytes()).is_err() {
        return;
    }
    let mut sink = String::new();
    let _ = stream.read_to_string(&mut sink);
}

/// Mask wall-clock fields wherever they appear, including inside the
/// per-tenant array nested in a wide event.
fn scrub_doc(doc: Doc) -> Doc {
    match doc {
        Doc::Obj(map) => Doc::Obj(
            map.into_iter()
                .map(|(key, value)| {
                    let value = if VOLATILE_TICK_FIELDS.contains(&key.as_str()) {
                        Doc::from("<volatile>")
                    } else {
                        scrub_doc(value)
                    };
                    (key, value)
                })
                .collect(),
        ),
        Doc::Arr(items) => Doc::Arr(items.into_iter().map(scrub_doc).collect()),
        other => other,
    }
}

/// Every persisted collection file, sorted by name, with volatile
/// fields masked line by line.
fn store_files(dir: &PathBuf) -> Vec<(String, String)> {
    let mut files: Vec<(String, String)> = std::fs::read_dir(dir)
        .expect("store dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "jsonl"))
        .map(|p| {
            let name = p.file_name().expect("file name").to_string_lossy().into_owned();
            let raw = std::fs::read_to_string(&p).expect("collection readable");
            let scrubbed: String = raw
                .lines()
                .map(|line| {
                    let doc = sintel_store::json::from_json(line).expect("store line parses");
                    sintel_store::json::to_json(&scrub_doc(doc)) + "\n"
                })
                .collect();
            (name, scrubbed)
        })
        .collect();
    files.sort();
    files
}

struct RunOutput {
    /// Committed emissions per tenant, `_self` last.
    emissions: Vec<Vec<AnomalyEvent>>,
    /// Persisted store files after `save()`, volatile fields masked.
    files: Vec<(String, String)>,
}

/// Offer the full stream, ticking every [`CHUNK`] events — with or
/// without a live status server being scraped from another thread —
/// then collect committed emissions and the persisted store bytes.
fn run(threads: usize, scrape: bool) -> RunOutput {
    sintel_common::set_threads(Some(threads));
    let dir = std::env::temp_dir().join(format!(
        "sintel-scrape-purity-{}-{threads}-{scrape}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let db = SintelDb::open(&dir).expect("open store");
    let mut engine =
        ServeEngine::open(db, ServeConfig::for_tests(), specs()).expect("open engine");

    let mut server = None;
    let mut scraper = None;
    let stop = Arc::new(AtomicBool::new(false));
    if scrape {
        let shared = engine.enable_status();
        let bound = StatusServer::bind("127.0.0.1:0", shared).expect("bind status server");
        let addr = bound.local_addr();
        let flag = Arc::clone(&stop);
        scraper = Some(std::thread::spawn(move || {
            let routes = ["/metrics", "/tenants", "/healthz", "/trace?n=32"];
            let mut hits = 0usize;
            while !flag.load(Ordering::Relaxed) {
                scrape_once(addr, routes[hits % routes.len()]);
                hits += 1;
            }
            hits
        }));
        server = Some(bound);
    }

    for (i, event) in stream().iter().enumerate() {
        engine.offer(event).expect("offer");
        if (i + 1) % CHUNK == 0 {
            engine.tick().expect("tick");
        }
    }
    engine.tick().expect("final tick");

    stop.store(true, Ordering::Relaxed);
    if let Some(handle) = scraper {
        let hits = handle.join().expect("scraper thread joins");
        assert!(hits > 0, "scraper must actually have raced the engine");
    }
    if let Some(server) = server {
        server.stop();
    }

    let mut emissions: Vec<Vec<AnomalyEvent>> =
        TENANTS.iter().map(|t| engine.committed_events(t)).collect();
    emissions.push(engine.self_events());
    let db = engine.into_db();
    db.save().expect("persist store");
    let files = store_files(&dir);
    let _ = std::fs::remove_dir_all(&dir);
    RunOutput { emissions, files }
}

#[test]
fn scraping_never_perturbs_emissions_or_store_bytes() {
    let _lock = GUARD.lock().unwrap_or_else(|e| e.into_inner());

    let baseline = run(1, false);
    assert!(
        baseline.emissions.iter().any(|events| !events.is_empty()),
        "workload must actually emit anomalies"
    );
    let (_, ticks) = baseline
        .files
        .iter()
        .find(|(name, _)| name.starts_with("serve_ticks"))
        .expect("wide events must be persisted");
    assert!(
        ticks.contains("<volatile>"),
        "masking must have touched the wide events' wall-clock fields"
    );

    for threads in [1usize, 2, 8] {
        for scrape in [false, true] {
            if threads == 1 && !scrape {
                continue; // that is the baseline itself
            }
            let probe = run(threads, scrape);
            assert_eq!(
                probe.emissions, baseline.emissions,
                "emissions diverged at threads={threads} scrape={scrape}"
            );
            let names = |files: &[(String, String)]| {
                files.iter().map(|(n, _)| n.clone()).collect::<Vec<_>>()
            };
            assert_eq!(
                names(&probe.files),
                names(&baseline.files),
                "collection set diverged at threads={threads} scrape={scrape}"
            );
            for ((name, probe_body), (_, base_body)) in
                probe.files.iter().zip(baseline.files.iter())
            {
                assert_eq!(
                    probe_body, base_body,
                    "store bytes diverged in {name} at threads={threads} scrape={scrape}"
                );
            }
        }
    }

    sintel_common::set_threads(None);
}
